//! # fp-ctrl — closed-loop fault remediation
//!
//! The FlowPulse paper stops at localization: the operator learns *which*
//! leaf–spine cable went bad. This crate closes the loop inside the
//! simulation — an online control plane that rides a trial
//! ([`flowpulse::eval::run_trial_ctl`]), consumes the in-switch counters as
//! each training iteration closes, and feeds remediation back into the
//! fabric:
//!
//! 1. **Detect** — a [`Monitor`](flowpulse::monitor::Monitor) with a
//!    learned baseline scans the just-closed iteration; hysteresis means
//!    one *fresh* alarm per fault episode, not one per iteration.
//! 2. **Localize** — ring correlation over the fresh alarms' shortfall
//!    ports names culprit cables.
//! 3. **Mitigate** — each culprit is admin-downed
//!    ([`ControlAction::admin_down_cable`]) via
//!    [`Simulator::schedule_control`] after a configurable reaction
//!    latency, modelling the detect→ticket→drain delay of a real NOC. The
//!    engine applies the action deterministically on its own clock, so
//!    controller-enabled trials stay byte-identical across scheduler
//!    backends and worker-thread counts.
//! 4. **Rebaseline** — once the remediation lands, the monitor relearns its
//!    baseline against the post-mitigation `d/(s−f)` load shape and the
//!    iteration the action landed mid-flight in (partly faulty, partly
//!    healed) is skipped so it cannot poison the new baseline. Detection is
//!    then re-armed for the *next* fault.
//!
//! The controller is deliberately trusting of its localizer: a wrong
//! verdict admin-downs a healthy cable, which the harness counts as a
//! *false mitigation* ([`flowpulse::eval::CtrlOutcome::false_mitigations`]).
//! A budget ([`CtrlConfig::max_mitigations`]) bounds the damage a confused
//! controller can do to the fabric.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use flowpulse::detector::Detector;
use flowpulse::eval::{
    CtrlAction, CtrlPhase, CtrlSummary, TrialController, TrialResult, TrialSpec,
};
use flowpulse::localizer::Localizer;
use flowpulse::monitor::{Alarm, Monitor};
use fp_netsim::control::ControlAction;
use fp_netsim::sim::Simulator;
use fp_netsim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Which remediation verb the controller schedules on a localized cable.
#[derive(Copy, Clone, PartialEq, Eq, Serialize, Deserialize, Debug, Default)]
pub enum Mitigation {
    /// Admin-down the cable (the paper's remediation): hard, drains
    /// queues, removes capacity until an operator restores it.
    #[default]
    AdminDown,
    /// Entropy-recycle quarantine
    /// ([`fp_netsim::control::ControlVerb::RecycleEntropy`]): the cable
    /// stays up but sprayers steer away from it — REPS-style soft
    /// failover with no capacity cliff and no queue drain.
    RecycleEntropy,
    /// Detect and localize but schedule nothing (ablation baseline).
    None,
}

/// Knobs of the closed loop.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct CtrlConfig {
    /// Detection threshold for the online monitor (paper: 0.01).
    pub threshold: f64,
    /// Iterations the learned baseline averages before detection arms —
    /// both at job start and after every post-mitigation rebaseline.
    pub warmup: u32,
    /// Simulated delay between the localization verdict and the remediation
    /// landing in the fabric (detect → ticket → drain in a real NOC).
    pub reaction_latency: SimDuration,
    /// Most cables this controller will ever admin-down in one run; a wrong
    /// localization chain cannot take the fabric apart.
    pub max_mitigations: u32,
    /// Remediation verb scheduled on localized culprits. Serde-defaulted
    /// so specs and configs that predate the mitigation zoo keep their
    /// admin-down behaviour.
    #[serde(default)]
    pub mitigation: Mitigation,
}

impl Default for CtrlConfig {
    fn default() -> Self {
        CtrlConfig {
            threshold: 0.01,
            warmup: 1,
            reaction_latency: SimDuration::from_us(50),
            max_mitigations: 4,
            mitigation: Mitigation::default(),
        }
    }
}

/// The online detect→localize→mitigate→rebaseline state machine.
///
/// Construct one per trial ([`Controller::for_spec`]) and hand it to
/// [`flowpulse::eval::run_trial_ctl`] — or use [`run_ctrl_trial`] which does
/// both. Campaigns fan controller-enabled trials across threads by building
/// the controller *inside* the worker closure; nothing here is `Send`.
pub struct Controller {
    cfg: CtrlConfig,
    job: u32,
    leaves: u32,
    monitor: Monitor,
    summary: CtrlSummary,
    /// Remediations scheduled but not yet applied: control-event index
    /// (from [`Simulator::schedule_control`]) → `(leaf, vspine)` cable.
    in_flight: BTreeMap<u32, (u32, u32)>,
    /// Harvest cursor into [`Simulator::applied_controls`].
    applied_seen: usize,
    /// Cables admin-downed so far, against the budget.
    mitigations: u32,
}

impl Controller {
    /// Controller for `job` on a fabric with `leaves` leaf switches.
    pub fn new(job: u32, leaves: u32, cfg: CtrlConfig) -> Controller {
        Controller {
            cfg,
            job,
            leaves,
            monitor: Monitor::new_learned(job, Detector::new(cfg.threshold), cfg.warmup),
            summary: CtrlSummary::default(),
            in_flight: BTreeMap::new(),
            applied_seen: 0,
            mitigations: 0,
        }
    }

    /// Controller matching a trial spec (the harness runs the measured
    /// collective as job 1).
    pub fn for_spec(spec: &TrialSpec, cfg: CtrlConfig) -> Controller {
        Controller::new(1, spec.leaves, cfg)
    }

    fn act(&mut self, t_ns: u64, phase: CtrlPhase, detail: String) {
        self.summary.actions.push(CtrlAction {
            t_ns,
            phase,
            detail,
        });
    }

    /// Record remediations the engine applied since the last callback.
    /// Returns `(any_applied, mixed)`: `mixed` is `true` if one landed
    /// mid-iteration `iter` (making that iteration's counters a
    /// faulty/healed mix).
    fn harvest_applied(&mut self, sim: &Simulator, iter: u32) -> (bool, bool) {
        let applied = sim.applied_controls()[self.applied_seen..].to_vec();
        self.applied_seen += applied.len();
        if applied.is_empty() {
            return (false, false);
        }
        let iter_start_ns = sim
            .iter_spans()
            .iter()
            .find(|s| s.job == self.job && s.iter == iter)
            .map(|s| s.start.as_ns())
            .unwrap_or(0);
        let mut mixed = false;
        for ac in &applied {
            let Some(cable) = self.in_flight.remove(&ac.idx) else {
                continue; // not ours (another controller / scripted event)
            };
            if self.summary.mitigate_ns.is_none() {
                self.summary.mitigate_ns = Some(ac.at.as_ns());
                self.summary.mitigate_iter = Some(iter);
            }
            self.summary.mitigated_ports.push(cable);
            self.act(
                ac.at.as_ns(),
                CtrlPhase::Mitigate,
                format!("{} cable ({},{})", ac.action.verb.name(), cable.0, cable.1),
            );
            mixed |= ac.at.as_ns() > iter_start_ns;
        }
        (true, mixed)
    }

    /// Culprit cables from the fresh alarms' shortfall ports, via ring
    /// correlation (paired and unpaired verdicts both name a cable to pull).
    fn localize(&self, fresh: &[Alarm]) -> Vec<(u32, u32)> {
        let mut ports: Vec<(u32, u32)> = fresh
            .iter()
            .flat_map(|a| {
                a.deviations
                    .iter()
                    .filter(|d| d.rel < 0.0)
                    .map(|d| (d.leaf, d.vspine))
            })
            .collect();
        ports.sort_unstable();
        ports.dedup();
        if ports.is_empty() {
            return Vec::new();
        }
        let leaves = self.leaves;
        let loc = Localizer::default().localize_ring(&ports, |l| (l + 1) % leaves);
        let mut culprits = loc.cables;
        culprits.extend(loc.unpaired);
        culprits.sort_unstable();
        culprits.dedup();
        culprits
    }
}

impl TrialController for Controller {
    fn on_iteration_end(&mut self, sim: &mut Simulator, iter: u32) {
        // 1. Harvest remediations that landed since the last callback; each
        //    batch re-arms detection against the post-mitigation shape.
        let (harvested, mixed) = self.harvest_applied(sim, iter);
        if harvested {
            self.monitor.rebaseline();
            self.summary.rebaselines += 1;
            self.act(
                sim.now().as_ns(),
                CtrlPhase::Rebaseline,
                "relearn baseline post-mitigation".into(),
            );
        }
        if mixed {
            // The iteration the action landed in is part-faulty,
            // part-healed; evaluating it would poison the fresh baseline.
            self.monitor.skip_to(iter + 1);
        }

        // 2. Scan the just-closed iteration. No iteration-`iter+1` packet
        //    exists yet, so `iter` is complete — flush evaluates it now.
        let before = self.monitor.alarms.len();
        self.monitor.scan(&sim.counters, true);
        let fresh: Vec<Alarm> = self.monitor.alarms[before..]
            .iter()
            .filter(|a| a.fresh)
            .cloned()
            .collect();
        if fresh.is_empty() || !self.in_flight.is_empty() {
            // Nothing new, or a remediation is already in flight — alarms
            // raised while it travels are the same fault still burning.
            return;
        }
        let now = sim.now();
        if self.summary.detect_ns.is_none() {
            self.summary.detect_ns = Some(now.as_ns());
        }
        self.act(
            now.as_ns(),
            CtrlPhase::Detect,
            format!("{} fresh alarm(s) at iter {iter}", fresh.len()),
        );

        // 3. Localize and schedule remediation after the reaction latency.
        for (leaf, v) in self.localize(&fresh) {
            if self.mitigations >= self.cfg.max_mitigations {
                self.act(
                    now.as_ns(),
                    CtrlPhase::Localize,
                    format!("cable ({leaf},{v}) named, mitigation budget exhausted"),
                );
                continue;
            }
            if self.cfg.mitigation == Mitigation::None {
                self.act(
                    now.as_ns(),
                    CtrlPhase::Localize,
                    format!("cable ({leaf},{v}) named, mitigation disabled"),
                );
                continue;
            }
            self.mitigations += 1;
            let link = sim.topo.downlink(v, leaf);
            let at = now + self.cfg.reaction_latency;
            let action = match self.cfg.mitigation {
                Mitigation::AdminDown => ControlAction::admin_down_cable(link),
                Mitigation::RecycleEntropy => ControlAction::recycle_entropy_cable(link),
                Mitigation::None => unreachable!("handled above"),
            };
            let idx = sim.schedule_control(at, action);
            self.in_flight.insert(idx, (leaf, v));
            self.act(
                now.as_ns(),
                CtrlPhase::Localize,
                format!(
                    "cable ({leaf},{v}) → {} at {}ns",
                    action.verb.name(),
                    at.as_ns()
                ),
            );
        }
    }

    fn summary(&self) -> CtrlSummary {
        self.summary.clone()
    }
}

/// [`flowpulse::eval::run_trial_with`] plus a [`Controller`] built from
/// `cfg`, with the telemetry recorder riding along.
pub fn run_ctrl_trial_with(
    spec: &TrialSpec,
    cfg: CtrlConfig,
    recorder: Option<Box<dyn fp_telemetry::Recorder>>,
) -> (TrialResult, Option<Box<dyn fp_telemetry::Recorder>>) {
    let ctl = Rc::new(RefCell::new(Controller::for_spec(spec, cfg)));
    flowpulse::eval::run_trial_ctl(spec, recorder, Some(ctl))
}

/// Run one trial closed-loop: a fresh [`Controller`] built from `cfg` rides
/// the simulation and its record lands in [`TrialResult::ctrl`].
pub fn run_ctrl_trial(spec: &TrialSpec, cfg: CtrlConfig) -> TrialResult {
    run_ctrl_trial_with(spec, cfg, None).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowpulse::eval::{FaultSpec, InjectedFault};

    fn small_spec() -> TrialSpec {
        TrialSpec {
            leaves: 8,
            spines: 4,
            bytes_per_node: 8 * 1024 * 1024,
            iterations: 6,
            ..Default::default()
        }
    }

    #[test]
    fn config_defaults_match_the_paper_loop() {
        let cfg = CtrlConfig::default();
        assert_eq!(cfg.threshold, 0.01);
        assert_eq!(cfg.warmup, 1);
        assert_eq!(cfg.reaction_latency, SimDuration::from_us(50));
        assert_eq!(cfg.max_mitigations, 4);
    }

    #[test]
    fn clean_run_takes_no_action() {
        let r = run_ctrl_trial(&small_spec(), CtrlConfig::default());
        let c = r.ctrl.expect("controller rode the trial");
        assert_eq!(c.false_mitigations, 0);
        assert!(c.mitigated_ports.is_empty());
        assert!(c.time_to_detect_ns.is_none());
        assert!(c.time_to_mitigate_ns.is_none());
        assert!(c.actions.is_empty(), "{:?}", c.actions);
    }

    #[test]
    fn blackhole_is_detected_localized_and_mitigated() {
        let mut spec = small_spec();
        spec.fault = Some(FaultSpec {
            kind: InjectedFault::Blackhole,
            at_iter: 2,
            heal_at_iter: None,
            bidirectional: false,
        });
        let r = run_ctrl_trial(&spec, CtrlConfig::default());
        let c = r.ctrl.as_ref().expect("controller rode the trial");
        assert!(c.time_to_detect_ns.is_some(), "{c:?}");
        assert!(c.time_to_mitigate_ns.is_some(), "{c:?}");
        assert!(c.time_to_mitigate_ns >= c.time_to_detect_ns);
        assert_eq!(c.mitigated_ports, vec![r.fault_port.unwrap()]);
        assert_eq!(c.false_mitigations, 0);
        assert_eq!(c.rebaselines, 1);
        // The loop ran all four phases, in order.
        let phases: Vec<CtrlPhase> = c.actions.iter().map(|a| a.phase).collect();
        assert_eq!(
            phases,
            vec![
                CtrlPhase::Detect,
                CtrlPhase::Localize,
                CtrlPhase::Mitigate,
                CtrlPhase::Rebaseline,
            ]
        );
    }

    #[test]
    fn budget_bounds_the_damage() {
        let mut spec = small_spec();
        spec.fault = Some(FaultSpec {
            kind: InjectedFault::Blackhole,
            at_iter: 2,
            heal_at_iter: None,
            bidirectional: false,
        });
        let cfg = CtrlConfig {
            max_mitigations: 0,
            ..CtrlConfig::default()
        };
        let r = run_ctrl_trial(&spec, cfg);
        let c = r.ctrl.expect("controller rode the trial");
        assert!(c.mitigated_ports.is_empty(), "budget 0 admin-downs nothing");
        assert!(c.time_to_detect_ns.is_some(), "detection still reports");
        assert!(c
            .actions
            .iter()
            .any(|a| a.detail.contains("budget exhausted")));
    }
}
