//! End-to-end closed-loop scenarios: the controller catches an injected
//! fault, admin-downs the right cable, and training goodput recovers —
//! while a controller-less baseline stays degraded. Plus the determinism
//! contract: a controller-enabled trial is byte-identical across event
//! scheduler backends.

use flowpulse::prelude::*;
use fp_ctrl::{run_ctrl_trial, CtrlConfig, Mitigation};
use fp_netsim::engine::SchedKind;
use fp_netsim::spray::SprayPolicy;
use fp_netsim::time::SimDuration;

fn spec_with(kind: InjectedFault, at_iter: u32) -> TrialSpec {
    TrialSpec {
        leaves: 8,
        spines: 4,
        bytes_per_node: 8 * 1024 * 1024,
        iterations: 8,
        fault: Some(FaultSpec {
            kind,
            at_iter,
            heal_at_iter: None,
            bidirectional: false,
        }),
        ..Default::default()
    }
}

/// Mean goodput of the pre-fault iterations.
fn pre_fault_goodput(r: &TrialResult, at_iter: u32) -> f64 {
    let pre: Vec<f64> = r
        .iter_goodput
        .iter()
        .filter(|&&(i, _)| i < at_iter)
        .map(|&(_, g)| g)
        .collect();
    assert!(!pre.is_empty());
    pre.iter().sum::<f64>() / pre.len() as f64
}

fn last_goodput(r: &TrialResult) -> f64 {
    r.iter_goodput.last().expect("iterations ran").1
}

fn assert_recovers(kind: InjectedFault, name: &str) {
    let spec = spec_with(kind, 2);
    let ctl = run_ctrl_trial(&spec, CtrlConfig::default());
    let base = run_trial(&spec);

    let c = ctl.ctrl.as_ref().expect("controller rode the trial");
    assert!(c.time_to_detect_ns.is_some(), "{name}: never detected");
    assert!(c.time_to_mitigate_ns.is_some(), "{name}: never mitigated");
    assert_eq!(
        c.mitigated_ports,
        vec![ctl.fault_port.unwrap()],
        "{name}: wrong cable pulled"
    );
    assert_eq!(c.false_mitigations, 0, "{name}: healthy cable pulled");

    let pre = pre_fault_goodput(&ctl, 2);
    let post = last_goodput(&ctl);
    assert!(
        post >= 0.95 * pre,
        "{name}: post-mitigation goodput {post:.3e} not within 5% of pre-fault {pre:.3e}"
    );
    // The controller-less baseline stays degraded to the end of the run.
    let base_pre = pre_fault_goodput(&base, 2);
    let base_post = last_goodput(&base);
    assert!(
        base_post < 0.95 * base_pre,
        "{name}: baseline recovered on its own ({base_post:.3e} vs {base_pre:.3e}) — \
         the controller comparison is meaningless"
    );
}

#[test]
fn blackhole_goodput_recovers_under_the_controller() {
    assert_recovers(InjectedFault::Blackhole, "blackhole");
}

#[test]
fn dst_blackhole_goodput_recovers_under_the_controller() {
    assert_recovers(InjectedFault::DstBlackhole, "dst_blackhole");
}

/// Entropy-recycle remediation: instead of admin-downing the cable, the
/// controller steers the localized leaf's sprayer away from the suspect
/// uplink. Goodput must recover without a single admin_down verb.
fn assert_recovers_by_recycling(spray: Option<SprayPolicy>, name: &str) {
    let mut spec = spec_with(InjectedFault::Blackhole, 2);
    if let Some(p) = spray {
        spec.sim.spray = p;
    }
    let cfg = CtrlConfig {
        mitigation: Mitigation::RecycleEntropy,
        ..CtrlConfig::default()
    };
    let ctl = run_ctrl_trial(&spec, cfg);

    let c = ctl.ctrl.as_ref().expect("controller rode the trial");
    assert!(c.time_to_detect_ns.is_some(), "{name}: never detected");
    assert!(c.time_to_mitigate_ns.is_some(), "{name}: never mitigated");
    assert_eq!(
        c.mitigated_ports,
        vec![ctl.fault_port.unwrap()],
        "{name}: wrong cable quarantined"
    );
    assert_eq!(c.false_mitigations, 0, "{name}: healthy cable quarantined");
    assert!(
        c.actions
            .iter()
            .any(|a| a.detail.contains("recycle_entropy")),
        "{name}: no recycle_entropy action recorded: {:?}",
        c.actions
    );
    assert!(
        !c.actions.iter().any(|a| a.detail.contains("admin_down")),
        "{name}: cable was admin-downed despite RecycleEntropy: {:?}",
        c.actions
    );

    let pre = pre_fault_goodput(&ctl, 2);
    let post = last_goodput(&ctl);
    assert!(
        post >= 0.95 * pre,
        "{name}: goodput {post:.3e} did not recover to 5% of pre-fault \
         {pre:.3e} via entropy recycling alone"
    );
}

#[test]
fn blackhole_recovers_via_entropy_recycling_default_backend() {
    assert_recovers_by_recycling(None, "adaptive+recycle");
}

#[test]
fn blackhole_recovers_via_entropy_recycling_reps_backend() {
    assert_recovers_by_recycling(Some(SprayPolicy::Reps), "reps+recycle");
}

#[test]
fn mitigation_none_names_the_cable_but_leaves_it_up() {
    let spec = spec_with(InjectedFault::Blackhole, 2);
    let cfg = CtrlConfig {
        mitigation: Mitigation::None,
        ..CtrlConfig::default()
    };
    let r = run_ctrl_trial(&spec, cfg);
    let c = r.ctrl.expect("controller rode the trial");
    assert!(c.time_to_detect_ns.is_some(), "detection still reports");
    assert!(c.time_to_mitigate_ns.is_none(), "nothing was scheduled");
    assert!(c.mitigated_ports.is_empty());
    assert!(
        c.actions
            .iter()
            .any(|a| a.detail.contains("mitigation disabled")),
        "localization should still name the cable: {:?}",
        c.actions
    );
}

#[test]
fn fault_free_run_has_zero_false_mitigations() {
    let spec = TrialSpec {
        leaves: 8,
        spines: 4,
        bytes_per_node: 8 * 1024 * 1024,
        iterations: 6,
        ..Default::default()
    };
    let r = run_ctrl_trial(&spec, CtrlConfig::default());
    let c = r.ctrl.expect("controller rode the trial");
    assert_eq!(c.false_mitigations, 0);
    assert!(c.mitigated_ports.is_empty());
}

#[test]
fn reaction_latency_delays_mitigation() {
    let slow = CtrlConfig {
        reaction_latency: SimDuration::from_us(200),
        ..CtrlConfig::default()
    };
    let fast = CtrlConfig {
        reaction_latency: SimDuration::from_us(0),
        ..CtrlConfig::default()
    };
    let spec = spec_with(InjectedFault::Blackhole, 2);
    let s = run_ctrl_trial(&spec, slow).ctrl.unwrap();
    let f = run_ctrl_trial(&spec, fast).ctrl.unwrap();
    assert_eq!(s.time_to_detect_ns, f.time_to_detect_ns);
    assert!(
        s.time_to_mitigate_ns.unwrap() >= f.time_to_mitigate_ns.unwrap() + 200_000,
        "slow {s:?} vs fast {f:?}"
    );
}

/// The determinism contract extended to the control plane: the full
/// closed-loop trial — alarms, control actions, goodput trajectory,
/// event totals — is identical whichever scheduler backend runs it.
#[test]
fn controller_trial_is_byte_identical_across_sched_backends() {
    let mut heap_spec = spec_with(InjectedFault::Blackhole, 2);
    heap_spec.sim.sched = Some(SchedKind::Heap);
    let mut wheel_spec = heap_spec.clone();
    wheel_spec.sim.sched = Some(SchedKind::Wheel);

    let h = run_ctrl_trial(&heap_spec, CtrlConfig::default());
    let w = run_ctrl_trial(&wheel_spec, CtrlConfig::default());
    assert_eq!(h.sched_kind, SchedKind::Heap);
    assert_eq!(w.sched_kind, SchedKind::Wheel);

    assert_eq!(h.ctrl, w.ctrl, "control-plane record diverged");
    assert_eq!(h.alarms, w.alarms);
    assert_eq!(h.stats.events, w.stats.events);
    // Byte-level: the serialized closed-loop story must match exactly.
    let story = |r: &TrialResult| {
        format!(
            "{:?}|{:?}|{:?}|{:?}",
            r.ctrl, r.alarms, r.iter_goodput, r.iter_max_dev
        )
    };
    assert_eq!(story(&h), story(&w));
}
