//! Lockstep property: a trial with temporal-symmetry fast-forward enabled
//! (`TrialSpec::memo`) is byte-identical to the same trial run fully live,
//! across random fault schedules, both scheduler backends and both
//! memo-eligible and -ineligible spray policies. The only permitted
//! divergence is the `MemoFastForward` trace records themselves (and the
//! trace's offered count, which includes them). Debug builds additionally
//! re-snapshot after every replay inside the engine, so each proptest case
//! also validates the fingerprint theorem empirically on miss-heavy paths
//! (fault mid-run, PFC state, refused boundaries).

use flowpulse::eval::{memo_ineligibility, run_trial_ctl, TrialController};
use flowpulse::prelude::*;
use fp_collectives::jitter::JitterModel;
use fp_netsim::engine::SchedKind;
use fp_netsim::spray::SprayPolicy;
use fp_netsim::time::SimDuration;
use fp_netsim::trace::TraceEvent;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn base_spec(seed: u64, iterations: u32, wheel: bool, least_loaded: bool) -> TrialSpec {
    let mut spec = TrialSpec {
        leaves: 8,
        spines: 4,
        bytes_per_node: 256 * 1024,
        iterations,
        jitter: JitterModel::None,
        seed,
        ..Default::default()
    };
    spec.sim.sched = Some(if wheel {
        SchedKind::Wheel
    } else {
        SchedKind::Heap
    });
    if least_loaded {
        spec.sim.spray = SprayPolicy::LeastLoaded;
    }
    spec
}

/// Trace records with the memo markers stripped — the one allowed
/// on-vs-off divergence.
fn trace_without_memo(r: &TrialResult) -> Vec<String> {
    r.trace
        .iter()
        .filter(|t| !matches!(t.event, TraceEvent::MemoFastForward { .. }))
        .map(|t| format!("{t:?}"))
        .collect()
}

/// Everything observable must match; `sched`/`sched_kind` are telemetry
/// (absolute-time wheel placement diagnostics are approximated on replay
/// and documented as such), and the memo counters differ by design.
fn assert_lockstep(off: &TrialResult, on: &TrialResult) {
    assert_eq!(off.iter_max_dev, on.iter_max_dev, "iter_max_dev");
    assert_eq!(format!("{:?}", off.alarms), format!("{:?}", on.alarms));
    assert_eq!(off.fault_port, on.fault_port);
    assert_eq!(off.fault_iter, on.fault_iter);
    assert_eq!(off.heal_iter, on.heal_iter);
    assert_eq!(off.detected, on.detected, "detected");
    assert_eq!(off.false_alarm, on.false_alarm, "false_alarm");
    assert_eq!(
        format!("{:?}", off.localization),
        format!("{:?}", on.localization)
    );
    assert_eq!(off.localized_correctly, on.localized_correctly);
    assert_eq!(off.preexisting_ports, on.preexisting_ports);
    assert_eq!(
        format!("{:?}", off.learned_events),
        format!("{:?}", on.learned_events)
    );
    assert_eq!(
        format!("{:?}", off.stats),
        format!("{:?}", on.stats),
        "stats"
    );
    assert_eq!(trace_without_memo(off), trace_without_memo(on), "trace");
    assert_eq!(
        format!("{:?}", off.observed),
        format!("{:?}", on.observed),
        "observed loads"
    );
    assert_eq!(
        format!("{:?}", off.observed_by_src),
        format!("{:?}", on.observed_by_src)
    );
    assert_eq!(off.iter_goodput, on.iter_goodput, "iter_goodput");
    assert_eq!(
        format!("{:?}", off.snapshots),
        format!("{:?}", on.snapshots),
        "snapshot stream"
    );
    assert_eq!(off.shards, on.shards);
    assert_eq!(off.shard_fallback, on.shard_fallback);
}

fn run_pair(spec: &TrialSpec) -> (TrialResult, TrialResult) {
    let mut off = spec.clone();
    off.memo = Some(false);
    let mut on = spec.clone();
    on.memo = Some(true);
    (run_trial(&off), run_trial(&on))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random fault schedules: kind, onset, optional heal, direction —
    /// plus scheduler backend and spray policy. Memoized and live runs
    /// must agree on every observable artifact, whether the boundary
    /// chain hits (fault-free tails), is barred (onset/heal barriers) or
    /// is refused outright (adaptive spray, active fault windows).
    /// `fault_kind` 0 runs fault-free; `heal_after` 0 keeps the fault
    /// permanent.
    #[test]
    fn memo_lockstep_random_fault_schedules(
        seed in 0u64..u64::MAX,
        iterations in 10u32..14,
        wheel in 0u8..2,
        least_loaded in 0u8..2,
        fault_kind in 0u8..4,
        at_iter in 2u32..6,
        heal_after in 0u32..5,
        bidirectional in 0u8..2,
    ) {
        let mut spec = base_spec(seed, iterations, wheel == 1, least_loaded == 1);
        if fault_kind > 0 {
            spec.fault = Some(FaultSpec {
                kind: match fault_kind {
                    1 => InjectedFault::Drop { rate: 0.02 },
                    2 => InjectedFault::Blackhole,
                    _ => InjectedFault::DstBlackhole,
                },
                at_iter,
                heal_at_iter: (heal_after > 0).then(|| at_iter + heal_after),
                bidirectional: bidirectional == 1,
            });
        }
        let (off, on) = run_pair(&spec);
        assert_lockstep(&off, &on);
        prop_assert_eq!(off.memo_hits, 0);
        prop_assert!(off.memo_fallback.is_none());
    }
}

/// Fault-free steady state must actually fast-forward (hits > 0) while
/// staying byte-identical — the quickstart-path guarantee.
#[test]
fn fault_free_run_replays_and_matches() {
    let spec = base_spec(7, 12, false, true);
    let (off, on) = run_pair(&spec);
    assert_lockstep(&off, &on);
    assert!(
        on.memo_fallback.is_none(),
        "fallback: {:?}",
        on.memo_fallback
    );
    assert!(on.memo_hits > 0, "steady state never fast-forwarded");
    assert!(on.memo_replayed_iters > 0);
    assert!(on.memo_replayed_events > 0);
    // The memoized trace carries exactly `hits` extra records.
    assert_eq!(on.trace.len() as u64, off.trace.len() as u64 + on.memo_hits);
}

/// A transient drop fault: the replay chain must stop at the onset
/// barrier, stay live across the faulted window (fingerprint misses: RNG
/// draws, link-fault-active), then re-converge and fast-forward the
/// post-heal tail — all byte-identical.
#[test]
fn transient_fault_reconverges_after_heal() {
    let mut spec = base_spec(11, 18, false, true);
    spec.fault = Some(FaultSpec {
        kind: InjectedFault::Drop { rate: 0.03 },
        at_iter: 3,
        heal_at_iter: Some(5),
        bidirectional: false,
    });
    let (off, on) = run_pair(&spec);
    assert_lockstep(&off, &on);
    assert!(on.detected, "fault must be visible for a meaningful test");
    assert!(
        on.memo_hits > 0,
        "post-heal tail never fast-forwarded (fallback: {:?})",
        on.memo_fallback
    );
}

/// Wheel backend, same transient schedule: replay must be byte-identical
/// under `FP_SCHED=wheel` too.
#[test]
fn transient_fault_reconverges_on_wheel() {
    let mut spec = base_spec(11, 18, true, true);
    spec.fault = Some(FaultSpec {
        kind: InjectedFault::Drop { rate: 0.03 },
        at_iter: 3,
        heal_at_iter: Some(5),
        bidirectional: false,
    });
    let (off, on) = run_pair(&spec);
    assert_lockstep(&off, &on);
    assert!(on.memo_hits > 0, "fallback: {:?}", on.memo_fallback);
}

/// The hash backends of the spray engine are memo-eligible: ECMP is
/// stateless and a clean PRIME run has no congestion epochs, so both
/// fingerprint cleanly and the steady state fast-forwards byte-identically.
#[test]
fn ecmp_and_clean_prime_fast_forward_and_match() {
    for policy in [SprayPolicy::Ecmp, SprayPolicy::Prime] {
        let mut spec = base_spec(7, 12, false, false);
        spec.sim.spray = policy;
        let (off, on) = run_pair(&spec);
        assert_lockstep(&off, &on);
        assert!(
            on.memo_fallback.is_none(),
            "{policy:?} fallback: {:?}",
            on.memo_fallback
        );
        assert!(on.memo_hits > 0, "{policy:?}: never fast-forwarded");
    }
}

/// REPS carries ACK-fed entropy state the fingerprint cannot cover; the
/// engine must refuse with its explicit residual reason — and the refused
/// run still matches the live one byte for byte.
#[test]
fn reps_refuses_memo_with_residual_reason() {
    for policy in [SprayPolicy::Reps, SprayPolicy::RepsFailover] {
        let mut spec = base_spec(7, 12, false, false);
        spec.sim.spray = policy;
        let (off, on) = run_pair(&spec);
        assert_lockstep(&off, &on);
        assert_eq!(on.memo_hits, 0, "{policy:?}: fast-forwarded unsoundly");
        let reason = on.memo_fallback.expect("REPS must refuse the memo");
        assert!(
            reason.contains("reps-entropy-cache"),
            "{policy:?} reason: {reason}"
        );
    }
}

struct NoopController;
impl TrialController for NoopController {
    fn on_iteration_end(&mut self, _sim: &mut fp_netsim::sim::Simulator, _iter: u32) {}
    fn summary(&self) -> CtrlSummary {
        CtrlSummary::default()
    }
}

/// Eligibility gate: controllers, jitter and adaptive spray all refuse
/// with a reason (never silently), and refused trials still match live.
#[test]
fn gate_refuses_with_reasons() {
    // Controller active: the harness refuses before enabling.
    let mut spec = base_spec(3, 8, false, true);
    spec.memo = Some(true);
    let ctl: Rc<RefCell<dyn TrialController>> = Rc::new(RefCell::new(NoopController));
    let (r, _) = run_trial_ctl(&spec, None, Some(ctl));
    assert_eq!(r.memo_hits, 0);
    let reason = r.memo_fallback.expect("controller must refuse");
    assert!(reason.contains("controller"), "reason: {reason}");

    // Start jitter: refused by the harness gate.
    let mut spec = base_spec(3, 8, false, true);
    spec.jitter = JitterModel::Uniform {
        max: SimDuration::from_us(1),
    };
    spec.memo = Some(true);
    let r = run_trial(&spec);
    assert_eq!(r.memo_hits, 0);
    let reason = r.memo_fallback.expect("jitter must refuse");
    assert!(reason.contains("jitter"), "reason: {reason}");

    // Adaptive spray (the default): the engine refuses at enable time
    // (absolute-grid deficit decay), surfaced through the same field.
    let spec = base_spec(3, 8, false, false);
    let (off, on) = run_pair(&spec);
    assert_lockstep(&off, &on);
    assert_eq!(on.memo_hits, 0);
    let reason = on.memo_fallback.expect("adaptive spray must refuse");
    assert!(reason.contains("adaptive"), "reason: {reason}");

    // The pure gate function, for the ineligibility table in DESIGN.md.
    let eligible = base_spec(3, 8, false, true);
    assert_eq!(memo_ineligibility(&eligible, false, false, false), None);
    assert!(memo_ineligibility(&eligible, true, false, false).is_some());
    assert!(memo_ineligibility(&eligible, false, true, false).is_some());
    assert!(memo_ineligibility(&eligible, false, false, true).is_some());
}
