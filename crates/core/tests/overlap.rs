//! Overlapping concurrent faults: a silent drop on one spine cable while a
//! destination-selective black hole burns on another. Detection must alarm
//! on both and ring localization must name both ports — neither fault may
//! mask the other (the paper's per-leaf independence argument: each leaf's
//! temporal-symmetry check needs no knowledge of what other links do).

use flowpulse::prelude::*;
use fp_collectives::ring::ring_allreduce;
use fp_collectives::runner::{CollectiveRunner, RunnerConfig};
use fp_netsim::config::SimConfig;
use fp_netsim::fault::{FaultAction, FaultKind};
use fp_netsim::ids::HostId;
use fp_netsim::sim::Simulator;
use fp_netsim::topology::{FatTreeSpec, Topology};

const LEAVES: u32 = 8;
const SPINES: u32 = 4;

/// The two concurrent faults, on distinct leaves AND distinct vspines so a
/// correct localization reports two independent unpaired ports (same-vspine
/// alarms at successor leaves would merge into a cable verdict instead).
const DROP_PORT: (u32, u32) = (2, 1);
const BLACKHOLE_PORT: (u32, u32) = (5, 3);

fn run_with_overlapping_faults(iters: u32) -> Simulator {
    let topo = Topology::fat_tree(FatTreeSpec {
        leaves: LEAVES,
        spines: SPINES,
        ..Default::default()
    });
    let hosts: Vec<HostId> = (0..LEAVES).map(HostId).collect();
    let sched = ring_allreduce(&hosts, 8 * 1024 * 1024);
    let mut sim = Simulator::new(topo, SimConfig::default(), 9);
    let mut runner = CollectiveRunner::new(
        sched,
        RunnerConfig {
            iterations: iters,
            ..Default::default()
        },
    );
    let mut installed = false;
    runner.set_iteration_start_hook(Box::new(move |sim, iter| {
        if !installed && iter >= 1 {
            installed = true;
            let (dl, dv) = DROP_PORT;
            sim.apply_fault_now(
                sim.topo.downlink(dv, dl),
                FaultAction::Set(FaultKind::SilentDrop { rate: 0.05 }),
                false,
            );
            let (bl, bv) = BLACKHOLE_PORT;
            sim.apply_fault_now(
                sim.topo.downlink(bv, bl),
                FaultAction::Set(FaultKind::DstBlackhole {
                    dst_leaf: bl as u16,
                }),
                false,
            );
        }
    }));
    sim.set_app(Box::new(runner));
    sim.run();
    sim
}

#[test]
fn overlapping_drop_and_dst_blackhole_are_both_localized() {
    let sim = run_with_overlapping_faults(3);
    let mut monitor = Monitor::new_learned(1, Detector::new(0.01), 1);
    monitor.scan(&sim.counters, true);

    // Both faulty iterations alarm, and both faulted ports show a
    // shortfall — the screaming black hole does not drown out the 5% drop.
    assert!(
        monitor.alarms.iter().any(|a| a.iter == 1),
        "no alarm in the first faulty iteration: {:?}",
        monitor.alarms
    );
    let ports = monitor.shortfall_ports(1);
    assert!(
        ports.contains(&DROP_PORT),
        "drop fault masked: shortfall ports {ports:?}"
    );
    assert!(
        ports.contains(&BLACKHOLE_PORT),
        "dst-blackhole fault masked: shortfall ports {ports:?}"
    );

    // Ring correlation names both ports, as independent unpaired verdicts
    // (unidirectional downlink faults have no corroborating pair).
    let loc = Localizer::default().localize_ring(&ports, |l| (l + 1) % LEAVES);
    let mut named = loc.cables.clone();
    named.extend(loc.unpaired.iter().copied());
    assert!(
        named.contains(&DROP_PORT),
        "drop cable not localized: {loc:?}"
    );
    assert!(
        named.contains(&BLACKHOLE_PORT),
        "dst-blackhole cable not localized: {loc:?}"
    );
}

#[test]
fn dst_blackhole_only_starves_its_own_leaf() {
    // Selectivity cross-check: the destination-selective black hole on
    // spine 3's cable to leaf 5 must not produce shortfalls at any other
    // leaf's ingress from that spine (a full blackhole there would starve
    // every leaf the spine serves via sprayed ring shares).
    let sim = run_with_overlapping_faults(3);
    let mut monitor = Monitor::new_learned(1, Detector::new(0.01), 1);
    monitor.scan(&sim.counters, true);
    let (bl, bv) = BLACKHOLE_PORT;
    for (leaf, v) in monitor.shortfall_ports(1) {
        if v == bv {
            assert_eq!(
                leaf, bl,
                "dst-selective fault leaked a shortfall to leaf {leaf} on vspine {v}"
            );
        }
    }
}
