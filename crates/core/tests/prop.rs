//! Property-based tests for FlowPulse models and detection logic.

use flowpulse::prelude::*;
use fp_collectives::prelude::*;
use fp_netsim::ids::HostId;
use fp_netsim::topology::{FatTreeSpec, Topology};
use proptest::prelude::*;

fn hosts(n: u32) -> Vec<HostId> {
    (0..n).map(HostId).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Analytical model conserves bytes: total predicted equals total
    /// non-local demand (when nothing is unroutable).
    #[test]
    fn analytical_conserves_demand(
        leaves in 2u32..16,
        spines in 2u32..8,
        bytes in 4096u64..10_000_000,
    ) {
        let t = Topology::fat_tree(FatTreeSpec { leaves, spines, ..Default::default() });
        prop_assume!(bytes >= leaves as u64);
        let sched = ring_allreduce(&hosts(leaves), bytes);
        let d = sched.demand(t.n_hosts());
        let p = AnalyticalModel::new(&t, []).predict(&d);
        prop_assert_eq!(p.unroutable_bytes, 0);
        prop_assert!((p.loads.total() - d.total() as f64).abs() < 1e-6 * d.total() as f64 + 1e-6);
    }

    /// Fault-free prediction is spatially balanced: every port of a leaf
    /// carries the same expected load.
    #[test]
    fn fault_free_prediction_is_balanced(leaves in 2u32..12, spines in 2u32..8) {
        let t = Topology::fat_tree(FatTreeSpec { leaves, spines, ..Default::default() });
        let sched = ring_allreduce(&hosts(leaves), 1_000_000);
        let p = AnalyticalModel::new(&t, []).predict(&sched.demand(t.n_hosts()));
        for leaf in 0..leaves {
            let ports = p.loads.leaf(leaf);
            for w in ports.windows(2) {
                prop_assert!((w[0] - w[1]).abs() < 1e-9);
            }
        }
    }

    /// Removing one spine's links from a (src,dst) pair raises every other
    /// port's share by exactly s/(s−1).
    #[test]
    fn fault_redistribution_factor(spines in 3u32..12, bytes in 10_000u64..1_000_000) {
        let t = Topology::fat_tree(FatTreeSpec { leaves: 4, spines, ..Default::default() });
        let mut d = fp_collectives::demand::DemandMatrix::new(4);
        d.add(HostId(0), HostId(2), bytes);
        let clean = AnalyticalModel::new(&t, []).predict(&d);
        let down = AnalyticalModel::new(&t, [t.uplink(0, 0)]).predict(&d);
        let s = spines as f64;
        for v in 1..spines {
            let ratio = down.loads.get(2, v) / clean.loads.get(2, v);
            prop_assert!((ratio - s / (s - 1.0)).abs() < 1e-9);
        }
        prop_assert_eq!(down.loads.get(2, 0), 0.0);
    }

    /// Detector monotonicity: a higher threshold never yields more
    /// deviations.
    #[test]
    fn detector_threshold_monotone(
        loads in proptest::collection::vec(100.0f64..10_000.0, 4..32),
        noise in proptest::collection::vec(-0.1f64..0.1, 4..32),
    ) {
        let n = loads.len().min(noise.len());
        let expected = PortLoads { n_leaves: 1, n_vspines: n, bytes: loads[..n].to_vec() };
        let observed = PortLoads {
            n_leaves: 1,
            n_vspines: n,
            bytes: loads[..n].iter().zip(&noise[..n]).map(|(l, e)| l * (1.0 + e)).collect(),
        };
        let lo = Detector::new(0.01).compare(&expected, &observed).len();
        let hi = Detector::new(0.05).compare(&expected, &observed).len();
        prop_assert!(hi <= lo);
        // max_abs_rel bounds every reported deviation.
        let m = Detector::new(0.01).max_abs_rel(&expected, &observed);
        for d in Detector::new(0.01).compare(&expected, &observed) {
            prop_assert!(d.rel.abs() <= m + 1e-12);
        }
    }

    /// ROC curves are monotone non-increasing in the threshold for both
    /// axes, and bounded to [0,1].
    #[test]
    fn roc_is_monotone(
        clean in proptest::collection::vec(0.0f64..0.05, 1..50),
        faulty in proptest::collection::vec(0.0f64..0.2, 1..50),
    ) {
        let thresholds = [0.001, 0.005, 0.01, 0.02, 0.05, 0.1];
        let pts = roc_curve(&clean, &faulty, &thresholds);
        for p in &pts {
            prop_assert!((0.0..=1.0).contains(&p.fpr));
            prop_assert!((0.0..=1.0).contains(&p.tpr));
        }
        for w in pts.windows(2) {
            prop_assert!(w[1].fpr <= w[0].fpr);
            prop_assert!(w[1].tpr <= w[0].tpr);
        }
    }

    /// Rates bookkeeping: totals match the number of evaluated iterations.
    #[test]
    fn rates_totals(tp in 0u32..100, fn_ in 0u32..100, fp in 0u32..100, tn in 0u32..100) {
        let r = Rates { tp, fn_, fp, tn };
        prop_assert!(r.fpr() >= 0.0 && r.fpr() <= 1.0);
        prop_assert!(r.fnr() >= 0.0 && r.fnr() <= 1.0);
        prop_assert!((r.tpr() + r.fnr() - 1.0).abs() < 1e-12 || (tp + fn_) == 0);
    }

    /// The learned model's baseline is the exact mean of its warmup
    /// samples.
    #[test]
    fn learned_baseline_is_mean(
        a in proptest::collection::vec(100.0f64..1000.0, 4),
        b in proptest::collection::vec(100.0f64..1000.0, 4),
    ) {
        let mut m = LearnedModel::new(2, 0.01);
        let pa = PortLoads { n_leaves: 1, n_vspines: 4, bytes: a.clone() };
        let pb = PortLoads { n_leaves: 1, n_vspines: 4, bytes: b.clone() };
        m.observe(&pa);
        m.observe(&pb);
        let base = m.baseline().unwrap();
        for i in 0..4 {
            prop_assert!((base.bytes[i] - (a[i] + b[i]) / 2.0).abs() < 1e-9);
        }
    }

    /// Ring localization: for any single injected alarm pair along the
    /// ring, the cable is recovered; random unpaired alarms stay unpaired.
    #[test]
    fn ring_localization_recovers_pairs(leaves in 3u32..64, leaf in 0u32..64, v in 0u32..16) {
        prop_assume!(leaf < leaves);
        let succ = |l: u32| (l + 1) % leaves;
        let alarms = [(leaf, v), (succ(leaf), v)];
        let loc = Localizer::default().localize_ring(&alarms, succ);
        prop_assert_eq!(loc.cables, vec![(leaf, v)]);
        prop_assert!(loc.unpaired.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End-to-end invariant: on a clean fabric the analytical model never
    /// false-alarms at the paper's 1% threshold, across random shapes.
    #[test]
    fn no_false_alarms_across_shapes(
        leaves_pow in 2u32..4,
        seed in 0u64..50,
    ) {
        let leaves = 1u32 << leaves_pow; // 4..8
        let spec = TrialSpec {
            leaves,
            spines: leaves / 2,
            bytes_per_node: 4 * 1024 * 1024,
            iterations: 2,
            seed,
            ..Default::default()
        };
        let r = run_trial(&spec);
        prop_assert!(!r.false_alarm, "alarms: {:?}", r.alarms);
    }
}
