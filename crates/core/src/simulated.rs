//! Simulation-based load prediction (paper §5.2).
//!
//! "To achieve higher prediction fidelity, the expected per-port load can be
//! taken from a simulation of the network. This allows FlowPulse to exactly
//! incorporate knowledge about known faults (including gray faults), the
//! exact load-balancing algorithms used, and other implementation details
//! … While a simulation yields the highest fidelity, significant time and
//! computation resources must be spent running the simulation before every
//! training job."
//!
//! Here the "simulation" is a pristine `fp-netsim` run: same topology spec,
//! same known faults, same collective schedule, no silent faults, no
//! jitter. Its iteration-0 counters are the prediction.

use crate::model::{PortLoads, PortSrcLoads};
use fp_collectives::runner::{CollectiveRunner, MeasuredSubset, RunnerConfig};
use fp_collectives::schedule::Schedule;
use fp_netsim::config::SimConfig;
use fp_netsim::fault::{FaultAction, FaultKind};
use fp_netsim::ids::LinkId;
use fp_netsim::sim::Simulator;
use fp_netsim::topology::Topology;

/// Simulation-based predictor.
pub struct SimulationModel {
    /// Simulator parameters (use the production fabric's config for highest
    /// fidelity).
    pub cfg: SimConfig,
    /// Seed for the prediction run (the prediction is deterministic given
    /// the seed; with the default `Adaptive` spray the seed barely
    /// matters).
    pub seed: u64,
    /// Known gray faults to reproduce in the prediction run (silent faults
    /// the operator already knows about — the paper notes simulation can
    /// incorporate them, unlike the analytical model).
    pub known_gray: Vec<(LinkId, FaultKind)>,
}

impl SimulationModel {
    /// Predictor with the given fabric config.
    pub fn new(cfg: SimConfig) -> Self {
        SimulationModel {
            cfg,
            seed: 0x51D,
            known_gray: Vec::new(),
        }
    }

    /// Run one clean iteration of `sched` on a replica of `topo` with the
    /// given known-down links and return per-port (and per-sender) loads.
    pub fn predict(
        &self,
        topo: &Topology,
        admin_down: &[LinkId],
        sched: &Schedule,
        job: u32,
    ) -> (PortLoads, PortSrcLoads) {
        self.predict_measured(topo, admin_down, sched, job, MeasuredSubset::All)
    }

    /// Like [`SimulationModel::predict`], but measuring only a subset of
    /// the schedule's transfers (mirrors the production runner's §5.1
    /// subset configuration for multi-destination collectives).
    pub fn predict_measured(
        &self,
        topo: &Topology,
        admin_down: &[LinkId],
        sched: &Schedule,
        job: u32,
        measured: MeasuredSubset,
    ) -> (PortLoads, PortSrcLoads) {
        let mut sim = Simulator::new(topo.clone(), self.cfg.clone(), self.seed);
        for &l in admin_down {
            sim.apply_fault_now(l, FaultAction::Set(FaultKind::AdminDown), false);
        }
        for &(l, kind) in &self.known_gray {
            sim.apply_fault_now(l, FaultAction::Set(kind), false);
        }
        let rcfg = RunnerConfig {
            job,
            iterations: 1,
            measured,
            ..Default::default()
        };
        sim.set_app(Box::new(CollectiveRunner::new(sched.clone(), rcfg)));
        sim.run();
        let c = sim
            .counters
            .get(job, 0)
            .expect("prediction run produced no tagged traffic");
        (PortLoads::from_counters(c), PortSrcLoads::from_counters(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical::AnalyticalModel;
    use fp_collectives::ring::ring_allreduce;
    use fp_netsim::ids::HostId;
    use fp_netsim::topology::FatTreeSpec;

    fn topo() -> Topology {
        Topology::fat_tree(FatTreeSpec {
            leaves: 8,
            spines: 4,
            ..Default::default()
        })
    }

    #[test]
    fn simulated_matches_analytical_fault_free() {
        let t = topo();
        let hosts: Vec<HostId> = (0..8).map(HostId).collect();
        let sched = ring_allreduce(&hosts, 4 * 1024 * 1024);
        let (sim_loads, _) = SimulationModel::new(SimConfig::default()).predict(&t, &[], &sched, 1);
        let ana = AnalyticalModel::new(&t, []).predict(&sched.demand(8));
        // Fig. 2's claim: analytical ≈ simulation. Adaptive spraying tracks
        // the ideal split to within a fraction of a percent.
        let dev = ana.loads.max_rel_dev(&sim_loads, 1.0);
        assert!(
            dev < 0.005,
            "analytical-vs-sim deviation {:.4}%",
            dev * 100.0
        );
    }

    #[test]
    fn simulated_accounts_for_admin_faults() {
        let t = topo();
        let hosts: Vec<HostId> = (0..8).map(HostId).collect();
        let sched = ring_allreduce(&hosts, 2 * 1024 * 1024);
        let down = [t.uplink(0, 1), t.downlink(1, 0)];
        let (sim_loads, _) =
            SimulationModel::new(SimConfig::default()).predict(&t, &down, &sched, 1);
        // Leaf 1 receives from leaf 0; vspine 1 is cut on the source side.
        assert_eq!(sim_loads.get(1, 1), 0.0);
        assert!(sim_loads.get(1, 0) > 0.0);
        let ana = AnalyticalModel::new(&t, down).predict(&sched.demand(8));
        let dev = ana.loads.max_rel_dev(&sim_loads, 1.0);
        assert!(dev < 0.005, "deviation {:.4}%", dev * 100.0);
    }

    #[test]
    fn simulated_can_model_known_gray_faults() {
        // A known 20% gray drop on one downlink: the simulation predictor
        // reproduces the depressed delivered volume that the analytical
        // model cannot express.
        let t = topo();
        let hosts: Vec<HostId> = (0..8).map(HostId).collect();
        let sched = ring_allreduce(&hosts, 1024 * 1024);
        let mut m = SimulationModel::new(SimConfig::default());
        let bad = t.downlink(2, 3);
        m.known_gray
            .push((bad, FaultKind::SilentDrop { rate: 0.2 }));
        let (loads, _) = m.predict(&t, &[], &sched, 1);
        let clean = SimulationModel::new(SimConfig::default())
            .predict(&t, &[], &sched, 1)
            .0;
        // Port (leaf 3, vspine 2) sees visibly less than in the clean run.
        assert!(loads.get(3, 2) < clean.get(3, 2) * 0.9);
    }
}
