//! Baseline detectors FlowPulse is compared against.
//!
//! * [`SpatialSymmetryDetector`] — the "obvious" APS-fabric check (paper
//!   §1): in a healthy non-blocking fabric all of a leaf's spine-ingress
//!   ports should carry ~equal load, so flag any port that strays from the
//!   leaf's mean. Its fatal flaw, which E6 demonstrates: *pre-existing*
//!   faults permanently break spatial symmetry, so in a realistic fabric it
//!   alarms forever and cannot see a *new* fault on top.
//! * [`run_probe_mesh`] — a Pingmesh-style active prober: rounds of small
//!   end-to-end probes between all host pairs. It can find silent faults,
//!   but pays injected-traffic overhead and needs many probes per faulty
//!   path because each sprayed probe only crosses a given link with
//!   probability 1/s (paper §3: probing struggles exactly when links are
//!   loaded and BERs bite large flows).

use crate::model::PortLoads;
use fp_netsim::ids::HostId;
use fp_netsim::packet::Priority;
use fp_netsim::sim::Simulator;
use serde::{Deserialize, Serialize};

/// A spatial-symmetry violation at one port.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct SpatialAlarm {
    /// Leaf raising the alarm.
    pub leaf: u32,
    /// Offending ingress port.
    pub vspine: u32,
    /// Port load relative to the leaf's mean, minus one (signed).
    pub rel_to_mean: f64,
}

/// Flags ports deviating from their leaf's mean load.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct SpatialSymmetryDetector {
    /// Allowed relative deviation from the leaf mean.
    pub threshold: f64,
    /// Leaves with mean load below this are skipped.
    pub min_mean: f64,
}

impl Default for SpatialSymmetryDetector {
    fn default() -> Self {
        SpatialSymmetryDetector {
            threshold: 0.01,
            min_mean: 1.0,
        }
    }
}

impl SpatialSymmetryDetector {
    /// Check one iteration's observed loads — no model, no history.
    pub fn check(&self, obs: &PortLoads) -> Vec<SpatialAlarm> {
        let mut out = Vec::new();
        for leaf in 0..obs.n_leaves as u32 {
            let ports = obs.leaf(leaf);
            let mean = ports.iter().sum::<f64>() / ports.len().max(1) as f64;
            if mean < self.min_mean {
                continue;
            }
            for (v, &p) in ports.iter().enumerate() {
                let rel = p / mean - 1.0;
                if rel.abs() > self.threshold {
                    out.push(SpatialAlarm {
                        leaf,
                        vspine: v as u32,
                        rel_to_mean: rel,
                    });
                }
            }
        }
        out
    }
}

/// Probe-mesh parameters.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct ProbeMeshConfig {
    /// Bytes per probe (one MTU by default: silent faults are sampled per
    /// packet, so bigger probes only add overhead).
    pub probe_bytes: u64,
    /// Probe rounds; each round sends `probes_per_pair` probes between
    /// every ordered host pair.
    pub rounds: u32,
    /// Probes per pair per round.
    pub probes_per_pair: u32,
}

impl Default for ProbeMeshConfig {
    fn default() -> Self {
        ProbeMeshConfig {
            probe_bytes: 4096,
            rounds: 1,
            probes_per_pair: 4,
        }
    }
}

/// What a probe campaign found.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct ProbeReport {
    /// Probes injected.
    pub probes_sent: u64,
    /// Probe payload bytes injected into the fabric (the overhead FlowPulse
    /// avoids entirely).
    pub bytes_injected: u64,
    /// Any probe experienced loss (retransmission or abandonment).
    pub detected: bool,
    /// Destination leaves whose probes saw loss, with loss counts —
    /// the prober's (coarse) localization signal.
    pub lossy_dst_leaves: Vec<(u32, u32)>,
}

/// Run a probe campaign on `sim` (which may already carry faults). Probes
/// run at background priority so they contend like real probe traffic.
pub fn run_probe_mesh(sim: &mut Simulator, cfg: &ProbeMeshConfig) -> ProbeReport {
    let n = sim.topo.n_hosts() as u32;
    let first_flow = sim.flows.len();
    let mut probes = 0u64;
    for _ in 0..cfg.rounds {
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                for _ in 0..cfg.probes_per_pair {
                    sim.post_message(
                        HostId(src),
                        HostId(dst),
                        cfg.probe_bytes,
                        None,
                        Priority::BACKGROUND,
                    );
                    probes += 1;
                }
            }
        }
        sim.run();
    }
    let mut lossy: std::collections::BTreeMap<u32, u32> = Default::default();
    for f in &sim.flows[first_flow..] {
        if f.retx > 0 || f.failed {
            *lossy.entry(sim.topo.leaf_of(f.dst)).or_default() += 1;
        }
    }
    ProbeReport {
        probes_sent: probes,
        bytes_injected: probes * cfg.probe_bytes,
        detected: !lossy.is_empty(),
        lossy_dst_leaves: lossy.into_iter().collect(),
    }
}

/// Centralized counter-aggregation baseline (LossRadar/Everflow-style,
/// paper §1/§3): periodically collect every link's tx/rx counters at a
/// central point and flag links whose ends disagree.
///
/// It *can* see silent drops — when the counters themselves are honest,
/// which the paper points out is not a given ("the counters themselves
/// might be incorrect because of a hardware fault"). Its structural cost is
/// what FlowPulse avoids: every sweep moves `O(links)` counter state to a
/// central collector, with detection latency bounded by the sweep period.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct CounterSweepConfig {
    /// Links missing fewer packets than this are ignored (absorbs
    /// in-flight skew when sweeping a live fabric).
    pub min_missing_pkts: u64,
    /// Bytes of counter state reported per directed link per sweep.
    pub bytes_per_link_report: u64,
}

impl Default for CounterSweepConfig {
    fn default() -> Self {
        CounterSweepConfig {
            min_missing_pkts: 2,
            bytes_per_link_report: 16,
        }
    }
}

/// Result of one centralized counter sweep.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct CounterSweepReport {
    /// Links whose transmit counter exceeds the far end's receive counter,
    /// with the missing-packet count.
    pub suspect_links: Vec<(u32, u64)>,
    /// Counter state moved to the collector for this sweep.
    pub collection_bytes: u64,
    /// Links polled.
    pub links_polled: u64,
}

/// Perform one centralized sweep over `sim`'s link counters.
pub fn sweep_link_counters(sim: &Simulator, cfg: &CounterSweepConfig) -> CounterSweepReport {
    let mut suspects = Vec::new();
    let n = sim.topo.n_links();
    for i in 0..n {
        let id = fp_netsim::ids::LinkId(i as u32);
        let l = sim.link(id);
        let missing = l
            .txed_pkts
            .saturating_sub(l.delivered_pkts + l.queued_pkts() as u64);
        if missing >= cfg.min_missing_pkts {
            suspects.push((i as u32, missing));
        }
    }
    CounterSweepReport {
        suspect_links: suspects,
        collection_bytes: n as u64 * cfg.bytes_per_link_report,
        links_polled: n as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_netsim::config::SimConfig;
    use fp_netsim::fault::{FaultAction, FaultKind};
    use fp_netsim::topology::{FatTreeSpec, Topology};

    #[test]
    fn spatial_detector_flags_imbalance() {
        let d = SpatialSymmetryDetector::default();
        let obs = PortLoads {
            n_leaves: 1,
            n_vspines: 4,
            bytes: vec![100.0, 100.0, 100.0, 80.0],
        };
        let alarms = d.check(&obs);
        // The short port deviates -16% from mean 95; the others +5%.
        assert!(alarms.iter().any(|a| a.vspine == 3 && a.rel_to_mean < 0.0));
        assert_eq!(alarms.len(), 4, "all ports stray from the skewed mean");
    }

    #[test]
    fn spatial_detector_passes_balance() {
        let d = SpatialSymmetryDetector::default();
        let obs = PortLoads {
            n_leaves: 2,
            n_vspines: 2,
            bytes: vec![100.0, 100.0, 0.0, 0.0], // idle leaf skipped
        };
        assert!(d.check(&obs).is_empty());
    }

    #[test]
    fn spatial_detector_false_positives_on_preexisting_faults() {
        // The paper's core criticism: a leaf with one admin-down ingress
        // port looks permanently asymmetric.
        let d = SpatialSymmetryDetector::default();
        let obs = PortLoads {
            n_leaves: 1,
            n_vspines: 4,
            bytes: vec![133.3, 133.3, 133.3, 0.0], // port 3 routed around
        };
        assert!(!d.check(&obs).is_empty());
    }

    #[test]
    fn probe_mesh_finds_a_blackhole() {
        let topo = Topology::fat_tree(FatTreeSpec {
            leaves: 4,
            spines: 2,
            ..Default::default()
        });
        let mut sim = Simulator::new(topo, SimConfig::default(), 7);
        let bad = sim.topo.downlink(0, 2);
        sim.apply_fault_now(bad, FaultAction::Set(FaultKind::SilentBlackhole), false);
        let report = run_probe_mesh(&mut sim, &ProbeMeshConfig::default());
        assert!(report.detected);
        // Loss concentrates on destination leaf 2.
        let worst = report
            .lossy_dst_leaves
            .iter()
            .max_by_key(|(_, c)| *c)
            .unwrap();
        assert_eq!(worst.0, 2);
        assert!(report.bytes_injected > 0);
    }

    #[test]
    fn probe_mesh_clean_fabric_is_silent() {
        let topo = Topology::fat_tree(FatTreeSpec {
            leaves: 4,
            spines: 2,
            ..Default::default()
        });
        let mut sim = Simulator::new(topo, SimConfig::default(), 8);
        let report = run_probe_mesh(&mut sim, &ProbeMeshConfig::default());
        assert!(!report.detected);
        assert_eq!(report.probes_sent, (4 * 3 * 4) as u64);
    }

    #[test]
    fn counter_sweep_pins_the_lossy_link() {
        let topo = Topology::fat_tree(FatTreeSpec {
            leaves: 4,
            spines: 2,
            ..Default::default()
        });
        let mut sim = Simulator::new(topo, SimConfig::default(), 21);
        let bad = sim.topo.downlink(1, 3);
        sim.apply_fault_now(
            bad,
            FaultAction::Set(FaultKind::SilentDrop { rate: 0.1 }),
            false,
        );
        sim.post_message(
            fp_netsim::ids::HostId(0),
            fp_netsim::ids::HostId(3),
            2_000_000,
            None,
            fp_netsim::packet::Priority::MEASURED,
        );
        sim.run();
        let rep = sweep_link_counters(&sim, &CounterSweepConfig::default());
        assert_eq!(rep.suspect_links.len(), 1);
        assert_eq!(rep.suspect_links[0].0, bad.0);
        assert!(rep.suspect_links[0].1 > 0);
        assert_eq!(rep.links_polled as usize, sim.topo.n_links());
        assert!(rep.collection_bytes > 0);
    }

    #[test]
    fn counter_sweep_clean_fabric_is_silent() {
        let topo = Topology::fat_tree(FatTreeSpec {
            leaves: 4,
            spines: 2,
            ..Default::default()
        });
        let mut sim = Simulator::new(topo, SimConfig::default(), 22);
        sim.post_message(
            fp_netsim::ids::HostId(1),
            fp_netsim::ids::HostId(2),
            1_000_000,
            None,
            fp_netsim::packet::Priority::MEASURED,
        );
        sim.run();
        let rep = sweep_link_counters(&sim, &CounterSweepConfig::default());
        assert!(rep.suspect_links.is_empty(), "{:?}", rep.suspect_links);
    }

    #[test]
    fn probe_mesh_can_miss_low_rate_faults() {
        // A 1% silent drop often evades a small probe budget — the paper's
        // argument for passive monitoring. With 48 probes crossing the
        // faulty link with prob 1/2 (2 spines), expected hits ~0.24.
        let topo = Topology::fat_tree(FatTreeSpec {
            leaves: 4,
            spines: 2,
            ..Default::default()
        });
        let mut sim = Simulator::new(topo, SimConfig::default(), 11);
        let bad = sim.topo.downlink(0, 2);
        sim.apply_fault_now(
            bad,
            FaultAction::Set(FaultKind::SilentDrop { rate: 0.01 }),
            false,
        );
        let cfg = ProbeMeshConfig {
            probes_per_pair: 1,
            ..Default::default()
        };
        let report = run_probe_mesh(&mut sim, &cfg);
        // Not asserting a miss (it's stochastic) — asserting the *budget*
        // accounting exists so harnesses can compare detection probability
        // per injected byte.
        assert_eq!(report.probes_sent, 12);
    }
}
