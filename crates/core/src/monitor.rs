//! Continuous monitoring (paper §5.1/§5.3).
//!
//! The [`Monitor`] consumes the in-switch counters as training iterations
//! complete and raises [`Alarm`]s on temporal-symmetry violations. Key
//! behaviours from the paper:
//!
//! * An iteration is considered finished when the *next* iteration's first
//!   packet is seen ("FlowPulse is oblivious to stragglers. It considers a
//!   collective as finished at the start of the next iteration") — so the
//!   monitor only evaluates *closed* iterations, plus an explicit flush at
//!   job end.
//! * Detection is per-leaf and requires no cross-switch coordination; the
//!   monitor here just batches all leaves' independent checks in one pass.
//! * The prediction can be a fixed model (analytical/simulation) or a
//!   [`LearnedModel`] with healing rebaseline.

use crate::detector::{Detector, Deviation};
use crate::learned::{LearnedModel, LearnedUpdate};
use crate::model::PortLoads;
use fp_netsim::counters::CounterStore;
use serde::{Deserialize, Serialize};

/// Where predictions come from.
pub enum ModelSource {
    /// Analytical or simulation-based prediction, fixed for the job.
    Fixed(PortLoads),
    /// Learn from the first iterations (with healing rebaseline).
    Learned(LearnedModel),
}

/// A per-leaf, per-iteration alarm.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct Alarm {
    /// Training iteration that violated symmetry.
    pub iter: u32,
    /// Leaf that raised the alarm.
    pub leaf: u32,
    /// The offending ports.
    pub deviations: Vec<Deviation>,
    /// Hysteresis flag: `true` if this alarm opens a fault *episode* —
    /// i.e. at least one of its ports was not already alarming on the
    /// immediately preceding iteration. Consecutive-iteration repeats of
    /// an uncleared fault have `fresh = false`, so episode consumers (the
    /// control plane, the JSONL export) see one alarm per fault, while
    /// per-iteration detection rates still count every alarm.
    pub fresh: bool,
}

/// Continuous per-job monitor.
pub struct Monitor {
    /// Job (collective tag sentinel) being monitored.
    pub job: u32,
    /// Threshold comparator.
    pub detector: Detector,
    model: ModelSource,
    next_iter: u32,
    /// All alarms raised so far.
    pub alarms: Vec<Alarm>,
    /// Per-iteration max |relative deviation| (iter, value) — the raw
    /// signal ROC sweeps evaluate many thresholds against. Only recorded
    /// once a baseline/prediction exists.
    pub iter_max_dev: Vec<(u32, f64)>,
    /// Learned-model verdicts per iteration (empty for fixed models).
    pub learned_events: Vec<(u32, LearnedUpdate)>,
    /// Hysteresis state: last iteration each `(leaf, vspine)` port
    /// alarmed, for episode freshness tracking.
    port_last_alarm: std::collections::BTreeMap<(u32, u32), u32>,
}

impl Monitor {
    /// Monitor `job` against a fixed prediction.
    pub fn new_fixed(job: u32, detector: Detector, prediction: PortLoads) -> Self {
        Monitor {
            job,
            detector,
            model: ModelSource::Fixed(prediction),
            next_iter: 0,
            alarms: Vec::new(),
            iter_max_dev: Vec::new(),
            learned_events: Vec::new(),
            port_last_alarm: Default::default(),
        }
    }

    /// Monitor `job` with a baseline learned from the first `warmup`
    /// iterations.
    pub fn new_learned(job: u32, detector: Detector, warmup: u32) -> Self {
        Monitor {
            job,
            detector,
            model: ModelSource::Learned(LearnedModel::new(warmup, detector.threshold)),
            next_iter: 0,
            alarms: Vec::new(),
            iter_max_dev: Vec::new(),
            learned_events: Vec::new(),
            port_last_alarm: Default::default(),
        }
    }

    /// The learned model, if this monitor learns.
    pub fn learned(&self) -> Option<&LearnedModel> {
        match &self.model {
            ModelSource::Learned(m) => Some(m),
            ModelSource::Fixed(_) => None,
        }
    }

    /// Process every *closed* iteration in `counters`. Iteration `i` is
    /// closed once iteration `i+1` has been observed; pass `flush = true`
    /// at end of job to evaluate the trailing iteration too.
    pub fn scan(&mut self, counters: &CounterStore, flush: bool) {
        loop {
            let i = self.next_iter;
            let Some(c) = counters.get(self.job, i) else {
                break;
            };
            let closed = flush || counters.get(self.job, i + 1).is_some();
            if !closed {
                break;
            }
            let obs = PortLoads::from_counters(c);
            self.evaluate(i, &obs);
            self.next_iter += 1;
        }
    }

    fn evaluate(&mut self, iter: u32, obs: &PortLoads) {
        match &mut self.model {
            ModelSource::Fixed(expected) => {
                let expected = expected.clone();
                self.iter_max_dev
                    .push((iter, self.detector.max_abs_rel(&expected, obs)));
                let devs = self.detector.compare(&expected, obs);
                self.push_alarms(iter, devs);
            }
            ModelSource::Learned(lm) => {
                let baseline_before = lm.baseline().cloned();
                let verdict = lm.observe(obs);
                self.learned_events.push((iter, verdict.clone()));
                if let Some(base) = baseline_before {
                    self.iter_max_dev
                        .push((iter, self.detector.max_abs_rel(&base, obs)));
                    if matches!(verdict, LearnedUpdate::Deviating { .. }) {
                        let devs = self.detector.compare(&base, obs);
                        self.push_alarms(iter, devs);
                    }
                }
            }
        }
    }

    fn push_alarms(&mut self, iter: u32, devs: Vec<Deviation>) {
        if devs.is_empty() {
            return;
        }
        // Group by leaf: each leaf raises its own independent alarm.
        let mut by_leaf: std::collections::BTreeMap<u32, Vec<Deviation>> = Default::default();
        for d in devs {
            by_leaf.entry(d.leaf).or_default().push(d);
        }
        for (leaf, deviations) in by_leaf {
            // Hysteresis: the alarm is fresh (opens an episode) unless every
            // one of its ports was already alarming on the previous
            // iteration. Ports within one iteration are unique, so updating
            // the map per leaf-group cannot affect sibling groups.
            let fresh = iter == 0
                || deviations
                    .iter()
                    .any(|d| self.port_last_alarm.get(&(d.leaf, d.vspine)) != Some(&(iter - 1)));
            for d in &deviations {
                self.port_last_alarm.insert((d.leaf, d.vspine), iter);
            }
            self.alarms.push(Alarm {
                iter,
                leaf,
                deviations,
                fresh,
            });
        }
    }

    /// Reset detection state after a remediation landed: force the learned
    /// model (if any) to relearn its baseline against the post-mitigation
    /// load shape, and clear the alarm-episode hysteresis so the next fault
    /// raises a fresh alarm. Past alarms are kept (rates/figures depend on
    /// the complete per-iteration record).
    pub fn rebaseline(&mut self) {
        if let ModelSource::Learned(lm) = &mut self.model {
            lm.force_relearn();
        }
        self.port_last_alarm.clear();
    }

    /// Skip evaluation forward to `iter`: iterations before it that have
    /// not yet been scanned are discarded without being compared. The
    /// control plane uses this to drop the mixed iteration during which a
    /// remediation landed mid-flight (partly faulty, partly healthy — it
    /// would poison a relearned baseline).
    pub fn skip_to(&mut self, iter: u32) {
        self.next_iter = self.next_iter.max(iter);
    }

    /// Alarms that opened a fault episode (see [`Alarm::fresh`]) at
    /// iteration ≥ `from`.
    pub fn fresh_alarms(&self, from: u32) -> impl Iterator<Item = &Alarm> {
        self.alarms
            .iter()
            .filter(move |a| a.fresh && a.iter >= from)
    }

    /// Export alarms into a telemetry recorder as structured
    /// [`fp_telemetry::Event::Alarm`]s. Only *fresh* alarms are exported —
    /// one per fault episode, not one per iteration (see [`Alarm::fresh`]).
    /// `verdict` attaches each alarm's localization verdict, when one is
    /// known. Monitoring is post-hoc (counters are scanned after the run),
    /// so the caller supplies the simulated time `at_ns` the scan is
    /// attributed to — conventionally the end-of-run clock.
    pub fn export_alarms(
        &self,
        at_ns: u64,
        rec: &mut dyn fp_telemetry::Recorder,
        verdict: impl Fn(&Alarm) -> Option<String>,
    ) {
        for a in self.alarms.iter().filter(|a| a.fresh) {
            let worst_rel = a
                .deviations
                .iter()
                .map(|d| d.rel)
                .max_by(|x, y| x.abs().total_cmp(&y.abs()))
                .unwrap_or(0.0);
            rec.on_event(
                at_ns,
                &fp_telemetry::Event::Alarm {
                    iter: a.iter,
                    leaf: a.leaf,
                    worst_rel,
                    verdict: verdict(a),
                },
            );
        }
    }

    /// Alarms raised for iterations in `[from, to)`.
    pub fn alarms_in(&self, from: u32, to: u32) -> impl Iterator<Item = &Alarm> {
        self.alarms
            .iter()
            .filter(move |a| a.iter >= from && a.iter < to)
    }

    /// Alarmed `(leaf, vspine)` ports across all iterations ≥ `from`
    /// (input for ring localization).
    pub fn alarmed_ports(&self, from: u32) -> Vec<(u32, u32)> {
        self.collect_ports(from, |_| true)
    }

    /// Alarmed ports showing a *shortfall* (observed < expected). Fault
    /// localization reasons about reduced traffic (§5.3); ports that merely
    /// absorbed the retransmitted excess are excluded here.
    pub fn shortfall_ports(&self, from: u32) -> Vec<(u32, u32)> {
        self.collect_ports(from, |rel| rel < 0.0)
    }

    fn collect_ports(&self, from: u32, keep: impl Fn(f64) -> bool) -> Vec<(u32, u32)> {
        let mut v: Vec<(u32, u32)> = self
            .alarms
            .iter()
            .filter(|a| a.iter >= from)
            .flat_map(|a| {
                a.deviations
                    .iter()
                    .filter(|d| keep(d.rel))
                    .map(|d| (d.leaf, d.vspine))
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_netsim::packet::CollectiveTag;
    use fp_netsim::time::SimTime;

    /// Build a counter store with `iters` iterations of the given per-port
    /// byte matrix (1 leaf × 2 ports shape for brevity).
    fn store(iters: &[[u64; 2]]) -> CounterStore {
        let mut s = CounterStore::new(1, 2);
        for (i, ports) in iters.iter().enumerate() {
            for (v, &b) in ports.iter().enumerate() {
                if b > 0 {
                    s.record(
                        0,
                        v as u32,
                        CollectiveTag {
                            job: 1,
                            iter: i as u32,
                        },
                        0,
                        b,
                        SimTime::from_ns(i as u64),
                    );
                }
            }
        }
        s
    }

    fn prediction(a: f64, b: f64) -> PortLoads {
        PortLoads {
            n_leaves: 1,
            n_vspines: 2,
            bytes: vec![a, b],
        }
    }

    #[test]
    fn closed_iterations_only() {
        let s = store(&[[1000, 1000], [1000, 1000]]);
        let mut m = Monitor::new_fixed(1, Detector::new(0.01), prediction(1000.0, 1000.0));
        m.scan(&s, false);
        // Iteration 0 closed by iteration 1's presence; iteration 1 open.
        assert_eq!(m.iter_max_dev.len(), 1);
        m.scan(&s, true);
        assert_eq!(m.iter_max_dev.len(), 2);
        assert!(m.alarms.is_empty());
    }

    #[test]
    fn scan_is_incremental() {
        let s = store(&[[1000, 1000], [1000, 1000], [900, 1000]]);
        let mut m = Monitor::new_fixed(1, Detector::new(0.01), prediction(1000.0, 1000.0));
        m.scan(&s, false);
        m.scan(&s, false); // idempotent on already-closed iterations
        m.scan(&s, true);
        assert_eq!(m.iter_max_dev.len(), 3);
        assert_eq!(m.alarms.len(), 1);
        assert_eq!(m.alarms[0].iter, 2);
        assert_eq!(m.alarms[0].leaf, 0);
        assert_eq!(m.alarms[0].deviations[0].vspine, 0);
    }

    #[test]
    fn learned_monitor_warms_then_detects() {
        let s = store(&[
            [1000, 1000], // warmup
            [1000, 1000], // consistent
            [940, 1000],  // fault
        ]);
        let mut m = Monitor::new_learned(1, Detector::new(0.01), 1);
        m.scan(&s, true);
        assert_eq!(m.alarms.len(), 1);
        assert_eq!(m.alarms[0].iter, 2);
        // iter 0 had no baseline yet → only 2 max-dev records.
        assert_eq!(m.iter_max_dev.len(), 2);
        assert!(matches!(
            m.learned_events[0],
            (0, LearnedUpdate::BaselineReady)
        ));
    }

    #[test]
    fn learned_monitor_rebaselines_on_heal() {
        let s = store(&[
            [700, 1000],  // transient fault during warmup
            [700, 1000],  // still faulty, consistent with learned baseline
            [1000, 1000], // heal: rebaseline, no alarm
            [1000, 1000], // consistent with new baseline
        ]);
        let mut m = Monitor::new_learned(1, Detector::new(0.01), 1);
        m.scan(&s, true);
        assert!(m.alarms.is_empty(), "heal must not alarm: {:?}", m.alarms);
        assert!(m
            .learned_events
            .iter()
            .any(|(_, u)| matches!(u, LearnedUpdate::Rebalanced)));
        assert_eq!(m.learned().unwrap().rebaselines, 1);
    }

    #[test]
    fn alarmed_ports_dedup() {
        let s = store(&[[900, 1000], [900, 1000], [900, 1000]]);
        let mut m = Monitor::new_fixed(1, Detector::new(0.01), prediction(1000.0, 1000.0));
        m.scan(&s, true);
        assert_eq!(m.alarmed_ports(0), vec![(0, 0)]);
        assert_eq!(m.alarms.len(), 3); // one per iteration
        assert_eq!(m.alarms_in(1, 2).count(), 1);
    }

    #[test]
    fn hysteresis_one_fresh_alarm_per_episode() {
        // One uncleared fault alarming on three consecutive iterations:
        // episode consumers see exactly one fresh alarm, per-iteration
        // consumers still see all three.
        let s = store(&[[900, 1000], [900, 1000], [900, 1000]]);
        let mut m = Monitor::new_fixed(1, Detector::new(0.01), prediction(1000.0, 1000.0));
        m.scan(&s, true);
        assert_eq!(m.alarms.len(), 3);
        assert_eq!(m.fresh_alarms(0).count(), 1);
        assert_eq!(m.fresh_alarms(0).next().unwrap().iter, 0);
    }

    #[test]
    fn hysteresis_gap_reopens_episode() {
        // Fault alarms, clears for one iteration, then alarms again: two
        // distinct episodes, two fresh alarms.
        let s = store(&[[900, 1000], [1000, 1000], [900, 1000], [900, 1000]]);
        let mut m = Monitor::new_fixed(1, Detector::new(0.01), prediction(1000.0, 1000.0));
        m.scan(&s, true);
        assert_eq!(m.alarms.len(), 3);
        let fresh: Vec<u32> = m.fresh_alarms(0).map(|a| a.iter).collect();
        assert_eq!(fresh, vec![0, 2]);
    }

    #[test]
    fn rebaseline_rearms_hysteresis_and_relearns() {
        let s = store(&[[900, 1000], [900, 1000]]);
        let mut m = Monitor::new_fixed(1, Detector::new(0.01), prediction(1000.0, 1000.0));
        m.scan(&s, false); // iter 0 closed, alarmed
        assert_eq!(m.fresh_alarms(0).count(), 1);
        m.rebaseline();
        m.scan(&s, true); // iter 1: same ports, but hysteresis was cleared
        assert_eq!(m.alarms.len(), 2);
        assert_eq!(m.fresh_alarms(0).count(), 2, "rebaseline re-arms episodes");

        let mut lm = Monitor::new_learned(1, Detector::new(0.01), 1);
        lm.scan(&store(&[[1000, 1000], [1000, 1000]]), true);
        assert!(lm.learned().unwrap().baseline().is_some());
        lm.rebaseline();
        assert!(lm.learned().unwrap().baseline().is_none());
        assert_eq!(lm.learned().unwrap().rebaselines, 1);
    }

    #[test]
    fn skip_to_discards_mixed_iterations() {
        // Iteration 1 is "mixed" (remediation landed mid-iteration): a
        // controller skips it before its counters close, so it is never
        // evaluated even though the skipped data looks alarming.
        let mut m = Monitor::new_fixed(1, Detector::new(0.01), prediction(1000.0, 1000.0));
        m.scan(&store(&[[1000, 1000], [600, 1000]]), false); // closes iter 0 only
        m.skip_to(2);
        m.scan(&store(&[[1000, 1000], [600, 1000], [1000, 1000]]), true);
        assert!(m.alarms.is_empty(), "skipped iteration must not alarm");
        assert_eq!(m.iter_max_dev.len(), 2); // iters 0 and 2
    }

    #[test]
    fn export_emits_fresh_alarms_with_verdicts() {
        struct Collect(Vec<fp_telemetry::Event>);
        impl fp_telemetry::Recorder for Collect {
            fn on_event(&mut self, _t: u64, ev: &fp_telemetry::Event) {
                self.0.push(ev.clone());
            }
        }
        let s = store(&[[900, 1000], [900, 1000], [900, 1000]]);
        let mut m = Monitor::new_fixed(1, Detector::new(0.01), prediction(1000.0, 1000.0));
        m.scan(&s, true);
        let mut c = Collect(Vec::new());
        m.export_alarms(42, &mut c, |a| Some(format!("cable({},0)", a.leaf)));
        assert_eq!(c.0.len(), 1, "one export per episode, not per iteration");
        assert_eq!(
            c.0[0],
            fp_telemetry::Event::Alarm {
                iter: 0,
                leaf: 0,
                worst_rel: -0.1,
                verdict: Some("cable(0,0)".into()),
            }
        );
    }
}
