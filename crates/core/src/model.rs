//! Per-link load representations.
//!
//! A [`PortLoads`] holds the expected (or observed) byte volume on every
//! monitored port — the spine→leaf ingress ports of every leaf — for one
//! collective iteration. Load models (§5.2) produce predicted `PortLoads`;
//! the in-switch counters produce observed ones; the detector (§5.3)
//! compares them.

use fp_netsim::counters::IterCounters;
use serde::{Deserialize, Serialize};

/// Byte volume per `(leaf, vspine)` monitored port.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct PortLoads {
    /// Number of leaves.
    pub n_leaves: usize,
    /// Number of virtual spines (monitored ingress ports per leaf).
    pub n_vspines: usize,
    /// Row-major `[leaf][vspine]` bytes.
    pub bytes: Vec<f64>,
}

impl PortLoads {
    /// All-zero loads.
    pub fn zeros(n_leaves: usize, n_vspines: usize) -> Self {
        PortLoads {
            n_leaves,
            n_vspines,
            bytes: vec![0.0; n_leaves * n_vspines],
        }
    }

    /// Convert observed in-switch counters into loads.
    pub fn from_counters(c: &IterCounters) -> Self {
        let (n_leaves, n_vspines) = {
            // bytes layout is [leaf * n_vspines + vspine]
            let nl = c.first_seen.len();
            (nl, c.bytes.len() / nl.max(1))
        };
        PortLoads {
            n_leaves,
            n_vspines,
            bytes: c.bytes.iter().map(|&b| b as f64).collect(),
        }
    }

    /// Load on one port.
    pub fn get(&self, leaf: u32, vspine: u32) -> f64 {
        self.bytes[leaf as usize * self.n_vspines + vspine as usize]
    }

    /// Add to one port.
    pub fn add(&mut self, leaf: u32, vspine: u32, bytes: f64) {
        self.bytes[leaf as usize * self.n_vspines + vspine as usize] += bytes;
    }

    /// One leaf's monitored ports.
    pub fn leaf(&self, leaf: u32) -> &[f64] {
        let s = leaf as usize * self.n_vspines;
        &self.bytes[s..s + self.n_vspines]
    }

    /// Sum over all ports.
    pub fn total(&self) -> f64 {
        self.bytes.iter().sum()
    }

    /// Element-wise mean of several load maps (all same shape).
    pub fn mean_of(samples: &[PortLoads]) -> PortLoads {
        assert!(!samples.is_empty());
        let mut out = PortLoads::zeros(samples[0].n_leaves, samples[0].n_vspines);
        for s in samples {
            assert_eq!(s.bytes.len(), out.bytes.len(), "shape mismatch");
            for (o, &v) in out.bytes.iter_mut().zip(&s.bytes) {
                *o += v;
            }
        }
        let k = samples.len() as f64;
        for o in out.bytes.iter_mut() {
            *o /= k;
        }
        out
    }

    /// Coefficient of variation (σ/μ) of one leaf's non-trivial ports.
    /// Spatial-asymmetry measure: pre-existing faults push it up.
    pub fn leaf_cov(&self, leaf: u32) -> f64 {
        let ports = self.leaf(leaf);
        let n = ports.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = ports.iter().sum::<f64>() / n;
        if mean <= 0.0 {
            return 0.0;
        }
        let var = ports.iter().map(|&p| (p - mean) * (p - mean)).sum::<f64>() / n;
        var.sqrt() / mean
    }

    /// Largest |observed−expected|/expected across all ports with
    /// `expected ≥ min_expected`.
    pub fn max_rel_dev(&self, observed: &PortLoads, min_expected: f64) -> f64 {
        assert_eq!(self.bytes.len(), observed.bytes.len(), "shape mismatch");
        let mut worst = 0.0f64;
        for (&e, &o) in self.bytes.iter().zip(&observed.bytes) {
            if e >= min_expected {
                worst = worst.max(((o - e) / e).abs());
            } else if o > min_expected {
                // Traffic where none was expected is itself a deviation.
                worst = worst.max(1.0);
            }
        }
        worst
    }
}

/// Byte volume per `(row, vspine, src_leaf)` — the per-sender breakdown
/// used by the localization logic (§5.3, Fig. 4). Rows are leaves for the
/// leaf-level store and aggregation switches for the 3-level agg store.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct PortSrcLoads {
    /// Number of monitoring rows (leaves, or aggs for the 3-level store).
    pub n_leaves: usize,
    /// Number of virtual spines.
    pub n_vspines: usize,
    /// Number of traffic sources (always leaves).
    pub n_src: usize,
    /// `[(row * n_vspines + vspine) * n_src + src_leaf]` bytes.
    pub bytes: Vec<f64>,
}

impl PortSrcLoads {
    /// All-zero, sources = rows (2-level leaf store shape).
    pub fn zeros(n_leaves: usize, n_vspines: usize) -> Self {
        Self::zeros_with_src(n_leaves, n_vspines, n_leaves)
    }

    /// All-zero with an explicit source dimension.
    pub fn zeros_with_src(n_rows: usize, n_vspines: usize, n_src: usize) -> Self {
        PortSrcLoads {
            n_leaves: n_rows,
            n_vspines,
            n_src,
            bytes: vec![0.0; n_rows * n_vspines * n_src],
        }
    }

    /// Convert from in-switch counters.
    pub fn from_counters(c: &IterCounters) -> Self {
        let rows = c.first_seen.len();
        let nv = c.bytes.len().checked_div(rows).unwrap_or(0);
        let n_src = if c.bytes.is_empty() {
            0
        } else {
            c.by_src.len() / c.bytes.len()
        };
        PortSrcLoads {
            n_leaves: rows,
            n_vspines: nv,
            n_src,
            bytes: c.by_src.iter().map(|&b| b as f64).collect(),
        }
    }

    /// Bytes from `src_leaf` seen at `leaf` via `vspine`.
    pub fn get(&self, leaf: u32, vspine: u32, src_leaf: u32) -> f64 {
        self.bytes
            [(leaf as usize * self.n_vspines + vspine as usize) * self.n_src + src_leaf as usize]
    }

    /// Add bytes.
    pub fn add(&mut self, leaf: u32, vspine: u32, src_leaf: u32, bytes: f64) {
        self.bytes[(leaf as usize * self.n_vspines + vspine as usize) * self.n_src
            + src_leaf as usize] += bytes;
    }

    /// Collapse the per-sender axis into plain [`PortLoads`].
    pub fn port_totals(&self) -> PortLoads {
        let mut out = PortLoads::zeros(self.n_leaves, self.n_vspines);
        for leaf in 0..self.n_leaves {
            for v in 0..self.n_vspines {
                let base = (leaf * self.n_vspines + v) * self.n_src;
                out.bytes[leaf * self.n_vspines + v] =
                    self.bytes[base..base + self.n_src].iter().sum();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_accessors() {
        let mut p = PortLoads::zeros(2, 3);
        p.add(1, 2, 100.0);
        assert_eq!(p.get(1, 2), 100.0);
        assert_eq!(p.leaf(1), &[0.0, 0.0, 100.0]);
        assert_eq!(p.total(), 100.0);
    }

    #[test]
    fn mean_of_averages() {
        let mut a = PortLoads::zeros(1, 2);
        a.add(0, 0, 10.0);
        let mut b = PortLoads::zeros(1, 2);
        b.add(0, 0, 20.0);
        b.add(0, 1, 4.0);
        let m = PortLoads::mean_of(&[a, b]);
        assert_eq!(m.get(0, 0), 15.0);
        assert_eq!(m.get(0, 1), 2.0);
    }

    #[test]
    fn max_rel_dev_symmetric_cases() {
        let mut e = PortLoads::zeros(1, 2);
        e.add(0, 0, 100.0);
        e.add(0, 1, 100.0);
        let mut o = e.clone();
        assert_eq!(e.max_rel_dev(&o, 1.0), 0.0);
        o.bytes[0] = 98.0; // -2%
        let d = e.max_rel_dev(&o, 1.0);
        assert!((d - 0.02).abs() < 1e-12);
    }

    #[test]
    fn unexpected_traffic_counts_as_deviation() {
        let e = PortLoads::zeros(1, 1); // expect nothing
        let mut o = PortLoads::zeros(1, 1);
        o.add(0, 0, 500.0);
        assert_eq!(e.max_rel_dev(&o, 1.0), 1.0);
    }

    #[test]
    fn cov_reflects_imbalance() {
        let mut balanced = PortLoads::zeros(1, 4);
        for v in 0..4 {
            balanced.add(0, v, 100.0);
        }
        assert_eq!(balanced.leaf_cov(0), 0.0);
        let mut skewed = balanced.clone();
        skewed.bytes[0] = 10.0;
        assert!(skewed.leaf_cov(0) > 0.2);
    }

    #[test]
    fn port_src_roundtrip() {
        let mut p = PortSrcLoads::zeros(2, 2);
        p.add(1, 0, 0, 30.0);
        p.add(1, 0, 1, 12.0);
        assert_eq!(p.get(1, 0, 0), 30.0);
        let t = p.port_totals();
        assert_eq!(t.get(1, 0), 42.0);
        assert_eq!(t.get(0, 0), 0.0);
    }
}
