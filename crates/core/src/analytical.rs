//! The analytical per-link load model (paper §5.2).
//!
//! "If a given source-destination pair is expected to send *d* bytes, *f*
//! spines have failed links to either the source or destination, and there
//! are *s* total spines, then each remaining spine is traversed by
//! *d/(s−f)* bytes. … Adding up the contributions from each
//! source-destination pair whose destination corresponds to a given leaf
//! switch is all that is needed to predict the load on each of the leaf
//! switch's ingress ports from spines."
//!
//! Known (admin-down) faults shape the valid-spine sets; silent faults, by
//! definition, do not. The model is exact for an ideally load-balanced APS
//! fabric, which the `Adaptive` spray policy approximates to within a
//! packet or two per port (see Fig. 2 / experiment E1).

use crate::model::{PortLoads, PortSrcLoads};
use fp_collectives::demand::DemandMatrix;
use fp_netsim::ids::LinkId;
use fp_netsim::topology::Topology;
use std::collections::HashSet;

/// Analytical load model over a fat-tree with known faults.
pub struct AnalyticalModel<'a> {
    topo: &'a Topology,
    admin_down: HashSet<LinkId>,
}

/// Prediction plus diagnostics.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Expected bytes per monitored leaf port.
    pub loads: PortLoads,
    /// Expected bytes per monitored leaf port, broken down by source leaf
    /// (feeds the localizer).
    pub by_src: PortSrcLoads,
    /// 3-level only: expected bytes per monitored agg port (rows = global
    /// aggs, columns = core slots) — the second monitoring tier of §7.
    pub agg_loads: Option<PortLoads>,
    /// Demand bytes with *no* valid path (every spine cut off by known
    /// faults). Non-zero means the fabric is partitioned for some pair.
    pub unroutable_bytes: u64,
}

impl<'a> AnalyticalModel<'a> {
    /// Model over `topo` with the given known-down directed links.
    /// (Pass both directions of a cable for physical-link faults.)
    pub fn new(topo: &'a Topology, admin_down: impl IntoIterator<Item = LinkId>) -> Self {
        AnalyticalModel {
            topo,
            admin_down: admin_down.into_iter().collect(),
        }
    }

    /// Is the directed link usable per the routing tables?
    fn up(&self, l: LinkId) -> bool {
        !self.admin_down.contains(&l)
    }

    /// Valid virtual spines for traffic `src_leaf → dst_leaf`: those whose
    /// uplink from the source leaf *and* downlink to the destination leaf
    /// are both known-good.
    pub fn valid_vspines(&self, src_leaf: u32, dst_leaf: u32) -> Vec<u32> {
        (0..self.topo.n_vspines() as u32)
            .filter(|&v| {
                self.up(self.topo.uplink(src_leaf, v)) && self.up(self.topo.downlink(v, dst_leaf))
            })
            .collect()
    }

    /// 3-level: valid core slots for an agg `g` (global) toward `dst_pod`.
    fn valid_core_slots(&self, g: u32, dst_pod: u32) -> Vec<u32> {
        let k = self.topo.cores_per_group;
        let a = g % self.topo.spec.spines;
        (0..k)
            .filter(|&kk| {
                let up = self.topo.agg_uplink(g, kk);
                let c = self.topo.core_global(a, kk);
                let down = self.topo.core_downlink(c, dst_pod);
                self.up(up) && self.up(down)
            })
            .collect()
    }

    /// Predict per-port loads for one iteration of a collective with the
    /// given demand matrix. For 3-level topologies this also produces the
    /// agg-level prediction (§7: FlowPulse at both leaf and spine levels).
    pub fn predict(&self, demand: &DemandMatrix) -> Prediction {
        let nl = self.topo.n_leaves();
        let nv = self.topo.n_vspines();
        let three = self.topo.is_three_level();
        let mut loads = PortLoads::zeros(nl, nv);
        let mut by_src = PortSrcLoads::zeros(nl, nv);
        let mut agg_loads =
            three.then(|| PortLoads::zeros(self.topo.n_aggs(), self.topo.cores_per_group as usize));
        let mut unroutable = 0u64;
        for (src, dst, d) in demand.pairs() {
            let src_leaf = self.topo.leaf_of(src);
            let dst_leaf = self.topo.leaf_of(dst);
            if src_leaf == dst_leaf {
                continue; // local traffic never crosses a spine
            }
            let src_pod = self.topo.pod_of_leaf(src_leaf);
            let dst_pod = self.topo.pod_of_leaf(dst_leaf);
            if !three || src_pod == dst_pod {
                // Single spray stage: even split over valid spines/aggs.
                let valid = self.valid_vspines(src_leaf, dst_leaf);
                if valid.is_empty() {
                    unroutable += d;
                    continue;
                }
                let share = d as f64 / valid.len() as f64;
                for v in valid {
                    loads.add(dst_leaf, v, share);
                    by_src.add(dst_leaf, v, src_leaf, share);
                }
            } else {
                // Two spray stages: leaf→agg then agg→core. An agg is
                // valid only if it still reaches the destination pod.
                let valid_aggs: Vec<u32> = self
                    .valid_vspines(src_leaf, dst_leaf)
                    .into_iter()
                    .filter(|&a| {
                        !self
                            .valid_core_slots(self.topo.agg_global(src_pod, a), dst_pod)
                            .is_empty()
                    })
                    .collect();
                if valid_aggs.is_empty() {
                    unroutable += d;
                    continue;
                }
                let share_a = d as f64 / valid_aggs.len() as f64;
                for a in valid_aggs {
                    loads.add(dst_leaf, a, share_a);
                    by_src.add(dst_leaf, a, src_leaf, share_a);
                    if let Some(al) = agg_loads.as_mut() {
                        let g_src = self.topo.agg_global(src_pod, a);
                        let g_dst = self.topo.agg_global(dst_pod, a);
                        let slots = self.valid_core_slots(g_src, dst_pod);
                        let share_k = share_a / slots.len() as f64;
                        for kk in slots {
                            al.add(g_dst, kk, share_k);
                        }
                    }
                }
            }
        }
        Prediction {
            loads,
            by_src,
            agg_loads,
            unroutable_bytes: unroutable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_netsim::ids::HostId;
    use fp_netsim::topology::FatTreeSpec;

    fn topo(leaves: u32, spines: u32) -> Topology {
        Topology::fat_tree(FatTreeSpec {
            leaves,
            spines,
            ..Default::default()
        })
    }

    #[test]
    fn fault_free_single_flow_splits_evenly() {
        let t = topo(4, 4);
        let m = AnalyticalModel::new(&t, []);
        let mut d = DemandMatrix::new(4);
        d.add(HostId(0), HostId(2), 4_000);
        let p = m.predict(&d);
        for v in 0..4 {
            assert_eq!(p.loads.get(2, v), 1_000.0);
            assert_eq!(p.by_src.get(2, v, 0), 1_000.0);
        }
        assert_eq!(p.loads.total(), 4_000.0);
        assert_eq!(p.unroutable_bytes, 0);
    }

    #[test]
    fn source_side_fault_redistributes() {
        let t = topo(4, 4);
        // Source leaf 0's uplink to vspine 1 is down.
        let m = AnalyticalModel::new(&t, [t.uplink(0, 1)]);
        let mut d = DemandMatrix::new(4);
        d.add(HostId(0), HostId(2), 3_000);
        let p = m.predict(&d);
        assert_eq!(p.loads.get(2, 1), 0.0);
        for v in [0u32, 2, 3] {
            assert_eq!(p.loads.get(2, v), 1_000.0);
        }
    }

    #[test]
    fn dest_side_fault_redistributes() {
        let t = topo(4, 4);
        // Destination leaf 2's downlink from vspine 3 is down.
        let m = AnalyticalModel::new(&t, [t.downlink(3, 2)]);
        let mut d = DemandMatrix::new(4);
        d.add(HostId(1), HostId(2), 3_000);
        let p = m.predict(&d);
        assert_eq!(p.loads.get(2, 3), 0.0);
        assert_eq!(p.loads.get(2, 0), 1_000.0);
    }

    #[test]
    fn fault_on_unrelated_leaf_changes_nothing() {
        let t = topo(4, 4);
        let m = AnalyticalModel::new(&t, [t.uplink(3, 0)]);
        let mut d = DemandMatrix::new(4);
        d.add(HostId(0), HostId(2), 4_000);
        let p = m.predict(&d);
        for v in 0..4 {
            assert_eq!(p.loads.get(2, v), 1_000.0);
        }
    }

    #[test]
    fn local_traffic_is_invisible() {
        let t = Topology::fat_tree(FatTreeSpec {
            leaves: 2,
            spines: 2,
            hosts_per_leaf: 2,
            ..Default::default()
        });
        let m = AnalyticalModel::new(&t, []);
        let mut d = DemandMatrix::new(4);
        d.add(HostId(0), HostId(1), 9_999); // same leaf
        let p = m.predict(&d);
        assert_eq!(p.loads.total(), 0.0);
    }

    #[test]
    fn fully_cut_pair_is_unroutable() {
        let t = topo(2, 2);
        let m = AnalyticalModel::new(&t, [t.uplink(0, 0), t.uplink(0, 1)]);
        let mut d = DemandMatrix::new(2);
        d.add(HostId(0), HostId(1), 777);
        let p = m.predict(&d);
        assert_eq!(p.unroutable_bytes, 777);
        assert_eq!(p.loads.total(), 0.0);
    }

    #[test]
    fn ring_demand_concentrates_on_successor_leaf() {
        use fp_collectives::ring::ring_allreduce;
        let t = topo(4, 2);
        let hosts: Vec<HostId> = (0..4).map(HostId).collect();
        let sched = ring_allreduce(&hosts, 4_000);
        let d = sched.demand(4);
        let m = AnalyticalModel::new(&t, []);
        let p = m.predict(&d);
        // Each leaf receives only from its ring predecessor: per-port
        // by-src must be zero except src = pred(leaf).
        for leaf in 0..4u32 {
            let pred = (leaf + 3) % 4;
            for v in 0..2u32 {
                for src in 0..4u32 {
                    let b = p.by_src.get(leaf, v, src);
                    if src == pred {
                        assert!(b > 0.0);
                    } else {
                        assert_eq!(b, 0.0);
                    }
                }
            }
        }
        // Volume conservation: total = all non-local demand.
        assert!((p.loads.total() - d.total() as f64).abs() < 1e-6);
    }

    #[test]
    fn three_level_conserves_demand_at_both_tiers() {
        use fp_netsim::topology::Clos3Spec;
        let t = Topology::clos3(Clos3Spec {
            pods: 2,
            leaves_per_pod: 2,
            aggs_per_pod: 2,
            cores_per_group: 2,
            hosts_per_leaf: 1,
            ..Default::default()
        });
        let mut d = DemandMatrix::new(4);
        d.add(HostId(0), HostId(3), 8_000); // cross-pod (pod0 -> pod1)
        d.add(HostId(0), HostId(1), 4_000); // intra-pod
        let p = AnalyticalModel::new(&t, []).predict(&d);
        assert_eq!(p.unroutable_bytes, 0);
        // Leaf tier conserves all non-local demand.
        assert!((p.loads.total() - 12_000.0).abs() < 1e-9);
        // Agg tier carries only the cross-pod share.
        let agg = p.agg_loads.as_ref().unwrap();
        assert!((agg.total() - 8_000.0).abs() < 1e-9);
        // Cross-pod share splits 2 aggs x 2 cores = 2000 per (agg, slot),
        // landing at the destination pod's aggs (global 2 and 3).
        for g in [2u32, 3] {
            for k in [0u32, 1] {
                assert!((agg.get(g, k) - 2_000.0).abs() < 1e-9);
            }
        }
        for g in [0u32, 1] {
            assert_eq!(agg.leaf(g).iter().sum::<f64>(), 0.0);
        }
    }

    #[test]
    fn three_level_core_fault_reshapes_agg_prediction() {
        use fp_netsim::topology::Clos3Spec;
        let t = Topology::clos3(Clos3Spec {
            pods: 2,
            leaves_per_pod: 2,
            aggs_per_pod: 2,
            cores_per_group: 2,
            hosts_per_leaf: 1,
            ..Default::default()
        });
        let mut d = DemandMatrix::new(4);
        d.add(HostId(0), HostId(3), 8_000);
        // Known fault: core 0 (group 0) lost its link to pod 1.
        let down = t.core_downlink(0, 1);
        let p = AnalyticalModel::new(&t, [down]).predict(&d);
        let agg = p.agg_loads.as_ref().unwrap();
        // Group 0's surviving core slot carries the whole group share.
        let g_dst = t.agg_global(1, 0);
        assert!((agg.get(g_dst, 0) - 0.0).abs() < 1e-9);
        assert!((agg.get(g_dst, 1) - 4_000.0).abs() < 1e-9);
        // Leaf-level split across aggs is unchanged (both aggs still reach).
        assert!((p.loads.get(3, 0) - 4_000.0).abs() < 1e-9);
        assert!((p.loads.get(3, 1) - 4_000.0).abs() < 1e-9);
    }

    #[test]
    fn three_level_agg_cut_off_redistributes_leaf_tier() {
        use fp_netsim::topology::Clos3Spec;
        let t = Topology::clos3(Clos3Spec {
            pods: 2,
            leaves_per_pod: 2,
            aggs_per_pod: 2,
            cores_per_group: 1,
            hosts_per_leaf: 1,
            ..Default::default()
        });
        let mut d = DemandMatrix::new(4);
        d.add(HostId(0), HostId(3), 6_000);
        // With one core per group, downing group 0's core link to pod 1
        // removes agg 0 entirely from the cross-pod path.
        let down = t.core_downlink(t.core_global(0, 0), 1);
        let p = AnalyticalModel::new(&t, [down]).predict(&d);
        assert_eq!(p.loads.get(3, 0), 0.0);
        assert!((p.loads.get(3, 1) - 6_000.0).abs() < 1e-9);
    }

    #[test]
    fn by_src_collapses_to_port_totals() {
        let t = topo(4, 4);
        let m = AnalyticalModel::new(&t, [t.uplink(1, 2)]);
        let mut d = DemandMatrix::new(4);
        d.add(HostId(1), HostId(3), 6_000);
        d.add(HostId(0), HostId(3), 8_000);
        let p = m.predict(&d);
        let collapsed = p.by_src.port_totals();
        for v in 0..4 {
            assert!((collapsed.get(3, v) - p.loads.get(3, v)).abs() < 1e-9);
        }
    }
}
