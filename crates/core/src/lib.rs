//! # flowpulse — silent-fault detection via temporal symmetry
//!
//! Rust reproduction of **"FlowPulse: Catching Network Failures in ML
//! Clusters"** (HotNets '25). FlowPulse detects *silent* network faults —
//! random drops, black holes, corruption-induced losses that never show up
//! in switch telemetry — in fabrics that use adaptive per-packet spraying
//! (APS), by exploiting **temporal symmetry**: an ML training job runs an
//! identical collective every iteration, so the byte volume crossing each
//! spine→leaf link repeats exactly, iteration after iteration, even in the
//! presence of *known* faults. A new silent fault perturbs that repetition
//! on the links it touches.
//!
//! ## Pipeline
//!
//! 1. **Measure** ([`fp_netsim::counters`]) — every leaf switch counts
//!    tagged collective bytes per spine-ingress port per iteration, with a
//!    per-source-leaf breakdown (§5.1).
//! 2. **Predict** ([`analytical`], [`simulated`], [`learned`]) — expected
//!    per-port volume from the demand matrix and known faults (§5.2).
//! 3. **Detect** ([`detector`], [`monitor`]) — per-leaf threshold
//!    comparison at iteration boundaries, no coordination (§5.3).
//! 4. **Localize** ([`localizer`]) — per-sender counters distinguish local
//!    from remote link faults (Fig. 4); for single-sender ring workloads,
//!    cross-leaf alarm correlation pins the cable.
//!
//! [`baselines`] implements the spatial-symmetry check and a
//! Pingmesh-style prober for comparison; [`eval`] is the end-to-end trial
//! harness behind every figure reproduction in `fp-bench`.
//!
//! ## Quick example
//!
//! ```
//! use flowpulse::prelude::*;
//! use fp_collectives::jitter::JitterModel;
//!
//! // Paper-style scenario, scaled down: inject a 3% silent drop at
//! // iteration 1 and watch FlowPulse catch and localize it.
//! let spec = TrialSpec {
//!     leaves: 8,
//!     spines: 4,
//!     bytes_per_node: 4 * 1024 * 1024,
//!     iterations: 3,
//!     jitter: JitterModel::None,
//!     fault: Some(FaultSpec {
//!         kind: InjectedFault::Drop { rate: 0.03 },
//!         at_iter: 1,
//!         heal_at_iter: None,
//!         bidirectional: false,
//!     }),
//!     ..Default::default()
//! };
//! let result = run_trial(&spec);
//! assert!(result.detected && !result.false_alarm);
//! assert_eq!(result.localized_correctly, Some(true));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analytical;
pub mod baselines;
pub mod detector;
pub mod eval;
pub mod learned;
pub mod localizer;
pub mod model;
pub mod monitor;
pub mod simulated;
pub mod snapshot;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::analytical::{AnalyticalModel, Prediction};
    pub use crate::baselines::{
        run_probe_mesh, ProbeMeshConfig, ProbeReport, SpatialSymmetryDetector,
    };
    pub use crate::detector::{Detector, Deviation};
    pub use crate::eval::{
        monitord_feed, roc_curve, run_trial, run_trial_ctl, run_trial_with, CollectiveKind,
        CtrlAction, CtrlOutcome, CtrlPhase, CtrlSummary, FaultSpec, InjectedFault, ModelKind,
        Rates, RocPoint, TrialController, TrialResult, TrialSpec,
    };
    pub use crate::learned::{LearnedModel, LearnedUpdate};
    pub use crate::localizer::{Localizer, PortVerdict, RingLocalization};
    pub use crate::model::{PortLoads, PortSrcLoads};
    pub use crate::monitor::{Alarm, Monitor};
    pub use crate::simulated::SimulationModel;
    pub use crate::snapshot::CounterSnapshot;
}
