//! Fault localization (paper §5.3, Fig. 4).
//!
//! "Reduced traffic at a given ingress port can indicate either a fault on
//! the local link between that port and the corresponding spine switch, or
//! a fault on a remote link between a different leaf switch and the spine
//! switch. To distinguish these cases, FlowPulse compares the traffic
//! volumes received from different senders over the given port. If traffic
//! from all senders is equally affected, the local link is marked as
//! failed. However, if only one sender is affected, the link between the
//! spine switch and the leaf switch of the sender is marked as failed."
//!
//! Two methods are provided:
//!
//! * [`Localizer::localize_port`] — the paper's per-sender comparison.
//!   Needs multiple senders per monitored port (e.g. AlltoAll workloads).
//! * [`Localizer::localize_ring`] — for ring collectives, where each port
//!   sees a *single* sender, per-port comparison is inconclusive; instead,
//!   a physical cable fault `X↔S` produces a tell-tale *pair* of alarms
//!   (at leaf `X` itself, whose ingress from `S` is cut, and at `succ(X)`,
//!   which stops receiving `X`'s sprayed share via `S`). Correlating alarm
//!   reports across leaves pins the cable.

use crate::model::PortSrcLoads;
use serde::{Deserialize, Serialize};

/// Verdict for one alarmed port from per-sender comparison.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub enum PortVerdict {
    /// All senders equally affected → the leaf's own link to that spine.
    Local,
    /// Only some senders affected → the remote leaf↔spine links of those
    /// senders.
    Remote {
        /// Source leaves whose traffic is short on this port.
        senders: Vec<u32>,
    },
    /// No sender shows a significant shortfall (port-level alarm was noise
    /// or excess-traffic-driven).
    Inconclusive,
}

/// Localization of a single-sender (ring) alarm pattern.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug, Default)]
pub struct RingLocalization {
    /// Physical cables confidently identified: `(leaf, vspine)` pairs where
    /// both the leaf's own ingress and its successor's ingress alarmed.
    pub cables: Vec<(u32, u32)>,
    /// Alarmed ports with no corroborating pair — a one-directional fault;
    /// the culprit is one of the two links meeting at that port's spine.
    pub unpaired: Vec<(u32, u32)>,
}

/// Per-sender localization logic.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct Localizer {
    /// Relative shortfall for a sender to count as affected.
    pub sender_threshold: f64,
    /// Senders expected to contribute fewer bytes than this are ignored.
    pub min_expected: f64,
}

impl Default for Localizer {
    fn default() -> Self {
        Localizer {
            sender_threshold: 0.01,
            min_expected: 1.0,
        }
    }
}

impl Localizer {
    /// Per-sender comparison at one alarmed `(leaf, vspine)` port (Fig. 4).
    pub fn localize_port(
        &self,
        expected: &PortSrcLoads,
        observed: &PortSrcLoads,
        leaf: u32,
        vspine: u32,
    ) -> PortVerdict {
        let mut affected = Vec::new();
        let mut unaffected = 0u32;
        for src in 0..expected.n_src as u32 {
            let e = expected.get(leaf, vspine, src);
            if e < self.min_expected {
                continue;
            }
            let o = observed.get(leaf, vspine, src);
            if (e - o) / e > self.sender_threshold {
                affected.push(src);
            } else {
                unaffected += 1;
            }
        }
        if affected.is_empty() {
            PortVerdict::Inconclusive
        } else if unaffected == 0 {
            PortVerdict::Local
        } else {
            PortVerdict::Remote { senders: affected }
        }
    }

    /// Cross-leaf correlation for single-sender-per-port (ring) workloads.
    ///
    /// `alarms` are the alarmed `(leaf, vspine)` ports fleet-wide;
    /// `succ_leaf` maps each leaf to its ring successor's leaf.
    pub fn localize_ring(
        &self,
        alarms: &[(u32, u32)],
        succ_leaf: impl Fn(u32) -> u32,
    ) -> RingLocalization {
        use std::collections::HashSet;
        let set: HashSet<(u32, u32)> = alarms.iter().copied().collect();
        let mut out = RingLocalization::default();
        let mut paired: HashSet<(u32, u32)> = HashSet::new();
        for &(leaf, v) in alarms {
            let s = succ_leaf(leaf);
            if set.contains(&(s, v)) {
                out.cables.push((leaf, v));
                paired.insert((leaf, v));
                paired.insert((s, v));
            }
        }
        for &a in alarms {
            if !paired.contains(&a) {
                out.unpaired.push(a);
            }
        }
        out.cables.sort_unstable();
        out.cables.dedup();
        out.unpaired.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 leaves, 2 vspines; equal 100-byte expectation from every remote
    /// sender on every port.
    fn uniform_expected() -> PortSrcLoads {
        let mut e = PortSrcLoads::zeros(3, 2);
        for leaf in 0..3u32 {
            for v in 0..2u32 {
                for src in 0..3u32 {
                    if src != leaf {
                        e.add(leaf, v, src, 100.0);
                    }
                }
            }
        }
        e
    }

    #[test]
    fn all_senders_short_means_local() {
        let e = uniform_expected();
        let mut o = e.clone();
        // At (leaf 2, vspine 1): every sender 10% short.
        for src in [0u32, 1] {
            let cur = o.get(2, 1, src);
            o.bytes[(2 * 2 + 1) * 3 + src as usize] = cur * 0.9;
        }
        let l = Localizer::default();
        assert_eq!(l.localize_port(&e, &o, 2, 1), PortVerdict::Local);
    }

    #[test]
    fn one_sender_short_means_remote() {
        // Fig. 4: L2 still receives L3's expected traffic via S1, so the
        // failed link must be remote (L1–S1).
        let e = uniform_expected();
        let mut o = e.clone();
        o.bytes[(2 * 2 + 1) * 3] = 50.0; // only sender 0 short
        let l = Localizer::default();
        assert_eq!(
            l.localize_port(&e, &o, 2, 1),
            PortVerdict::Remote { senders: vec![0] }
        );
    }

    #[test]
    fn no_shortfall_is_inconclusive() {
        let e = uniform_expected();
        let o = e.clone();
        let l = Localizer::default();
        assert_eq!(l.localize_port(&e, &o, 0, 0), PortVerdict::Inconclusive);
    }

    #[test]
    fn negligible_senders_are_ignored() {
        let mut e = PortSrcLoads::zeros(2, 1);
        e.add(1, 0, 0, 0.5); // below min_expected
        let o = PortSrcLoads::zeros(2, 1);
        let l = Localizer::default();
        assert_eq!(l.localize_port(&e, &o, 1, 0), PortVerdict::Inconclusive);
    }

    #[test]
    fn ring_pair_pins_the_cable() {
        // 4-leaf ring 0→1→2→3→0; cable fault at (leaf 1, vspine 0):
        // leaf 1 alarms (its ingress from spine 0 is cut) and leaf 2 alarms
        // (leaf 1's sprayed share via spine 0 is lost).
        let l = Localizer::default();
        let alarms = [(1u32, 0u32), (2u32, 0u32)];
        let loc = l.localize_ring(&alarms, |x| (x + 1) % 4);
        assert_eq!(loc.cables, vec![(1, 0)]);
        assert!(loc.unpaired.is_empty());
    }

    #[test]
    fn one_directional_fault_stays_unpaired() {
        let l = Localizer::default();
        let alarms = [(3u32, 2u32)];
        let loc = l.localize_ring(&alarms, |x| (x + 1) % 8);
        assert!(loc.cables.is_empty());
        assert_eq!(loc.unpaired, vec![(3, 2)]);
    }

    #[test]
    fn different_vspines_do_not_pair() {
        let l = Localizer::default();
        let alarms = [(1u32, 0u32), (2u32, 1u32)];
        let loc = l.localize_ring(&alarms, |x| (x + 1) % 4);
        assert!(loc.cables.is_empty());
        assert_eq!(loc.unpaired.len(), 2);
    }
}
