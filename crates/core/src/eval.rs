//! The evaluation harness: one-stop trial runner for every experiment.
//!
//! A [`TrialSpec`] describes a complete scenario — fabric shape, collective,
//! pre-existing (known) faults, an optionally injected silent fault, the
//! prediction model and detection threshold. [`run_trial`] executes it
//! end-to-end and returns per-iteration deviations, alarms, localization
//! verdicts and transport statistics. The `fp-bench` binaries are thin
//! sweeps over `TrialSpec`s; FPR/FNR/ROC aggregation lives here so tests
//! can exercise it too.

use crate::analytical::AnalyticalModel;
use crate::detector::Detector;
use crate::learned::LearnedUpdate;
use crate::localizer::{Localizer, RingLocalization};
use crate::model::{PortLoads, PortSrcLoads};
use crate::monitor::{Alarm, Monitor};
use crate::simulated::SimulationModel;
use fp_collectives::alltoall::alltoall_uniform;
use fp_collectives::halving::halving_doubling_allreduce;
use fp_collectives::jitter::JitterModel;
use fp_collectives::ring::{ring_allreduce, ring_reduce_scatter};
use fp_collectives::runner::{CollectiveRunner, RunnerConfig};
use fp_collectives::schedule::Schedule;
use fp_netsim::config::SimConfig;
use fp_netsim::fault::{FaultAction, FaultKind};
use fp_netsim::ids::{HostId, LinkId};
use fp_netsim::rng::splitmix64;
use fp_netsim::sim::Simulator;
use fp_netsim::stats::Stats;
use fp_netsim::time::SimDuration;
use fp_netsim::topology::{FatTreeSpec, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Which collective the measured job runs.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub enum CollectiveKind {
    /// Full 2(N−1)-stage Ring-AllReduce (the paper's workload).
    RingAllReduce,
    /// N−1-stage ring ReduceScatter (the "31-stage" variant).
    RingReduceScatter,
    /// Uniform AlltoAll (multi-sender ports; used by localization).
    AllToAll,
    /// Recursive halving-doubling AllReduce (ablation).
    HalvingDoubling,
}

/// Which prediction model the monitor uses (§5.2).
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub enum ModelKind {
    /// Closed-form `d/(s−f)` model.
    Analytical,
    /// Clean-run simulation prediction.
    Simulation,
    /// Baseline learned from the first `warmup` iterations.
    Learned {
        /// Iterations averaged into the baseline.
        warmup: u32,
    },
}

/// The silent fault injected mid-run.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct FaultSpec {
    /// Fault kind.
    pub kind: InjectedFault,
    /// Iteration at whose start the fault is installed.
    pub at_iter: u32,
    /// Iteration at whose start the fault heals again (`None` = permanent).
    /// Transient faults drive the Fig. 3 learning-rebaseline experiment.
    pub heal_at_iter: Option<u32>,
    /// Apply to both directions of the cable (default: spine→leaf only,
    /// matching §6 "configure a single leaf-spine link to drop packets").
    pub bidirectional: bool,
}

/// Injectable silent fault kinds.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub enum InjectedFault {
    /// Random per-packet drop at `rate`.
    Drop {
        /// Drop probability.
        rate: f64,
    },
    /// Drop everything.
    Blackhole,
    /// Destination-selective black hole: only packets destined to the fault
    /// cable's leaf are dropped (a corrupted FIB entry for one prefix,
    /// `fp_netsim::FaultKind::DstBlackhole`).
    DstBlackhole,
}

/// A complete experiment scenario.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct TrialSpec {
    /// Leaf switch count.
    pub leaves: u32,
    /// Spine switch count.
    pub spines: u32,
    /// Hosts per leaf.
    pub hosts_per_leaf: u32,
    /// Parallel leaf–spine links.
    pub parallel_links: u32,
    /// Collective kind.
    pub collective: CollectiveKind,
    /// Collective buffer size per node (for AllToAll: bytes per pair =
    /// `bytes_per_node / (n_hosts − 1)`).
    pub bytes_per_node: u64,
    /// Training iterations.
    pub iterations: u32,
    /// Per-node iteration-start jitter.
    pub jitter: JitterModel,
    /// Number of pre-existing known (admin-down) leaf–spine cables.
    pub preexisting: u32,
    /// Silent fault to inject, if any.
    pub fault: Option<FaultSpec>,
    /// Prediction model.
    pub model: ModelKind,
    /// Detection threshold (paper: 0.01).
    pub threshold: f64,
    /// Fabric/transport parameters (includes the spray policy).
    pub sim: SimConfig,
    /// Master seed (fault placement, spray randomness, jitter).
    pub seed: u64,
    /// Intra-trial shard count: partition the fabric by leaf into this
    /// many per-shard simulators synchronized with conservative lookahead
    /// (`None` = the `FP_SHARDS` environment override, default 1 =
    /// classic single-simulator execution). Results are byte-identical at
    /// any shard count. Trials that are ineligible for sharding (attached
    /// controller, randomized spray, bidirectional fault — see
    /// [`shard_ineligibility`]) fall back to unsharded with a stderr
    /// warning, a `shard_fallback` telemetry milestone, and the reason in
    /// [`TrialResult::shard_fallback`]. Telemetry recorders ride sharded
    /// runs via per-shard taps merged back into unsharded hook order.
    #[serde(default)]
    pub shards: Option<u32>,
    /// Epoch cap for sharded runs: how many conservative windows may run
    /// per coordinator synchronization (`None` = `FP_SHARD_EPOCH`, default
    /// 32; `1` = the per-window protocol). Results are byte-identical at
    /// every setting — only the synchronization transport changes.
    #[serde(default)]
    pub shard_epoch: Option<u32>,
    /// Temporal-symmetry fast-forward: memoize steady-state collective
    /// iterations and replay their recorded deltas instead of simulating
    /// them (`None` = the `FP_MEMO` environment override, default off).
    /// Results are byte-identical either way; fault onsets, heal edges and
    /// scheduled controls act as barriers the replay never crosses. Trials
    /// that are ineligible (start jitter, online controller, telemetry
    /// recorder, sharded execution — see [`memo_ineligibility`]) run fully
    /// live with the reason in [`TrialResult::memo_fallback`]; ineligible
    /// *configurations* (random or adaptive spray) surface the engine's
    /// own refusal reason the same way.
    #[serde(default)]
    pub memo: Option<bool>,
}

impl Default for TrialSpec {
    /// The paper's §6 setup: 32 leaves × 16 spines, one host per leaf,
    /// Ring-AllReduce on all nodes, analytical model, 1% threshold.
    fn default() -> Self {
        TrialSpec {
            leaves: 32,
            spines: 16,
            hosts_per_leaf: 1,
            parallel_links: 1,
            collective: CollectiveKind::RingAllReduce,
            bytes_per_node: 64 * 1024 * 1024,
            iterations: 3,
            jitter: JitterModel::Uniform {
                max: SimDuration::from_us(1),
            },
            preexisting: 0,
            fault: None,
            model: ModelKind::Analytical,
            threshold: 0.01,
            sim: SimConfig::default(),
            seed: 1,
            shards: None,
            shard_epoch: None,
            memo: None,
        }
    }
}

/// A control-plane phase, for telemetry labelling.
#[derive(Copy, Clone, PartialEq, Eq, Serialize, Deserialize, Debug)]
pub enum CtrlPhase {
    /// The online monitor raised a fresh alarm.
    Detect,
    /// The localizer named culprit ports.
    Localize,
    /// A scheduled remediation was applied by the engine.
    Mitigate,
    /// Detection re-armed against the post-mitigation load shape.
    Rebaseline,
}

impl CtrlPhase {
    /// Stable lowercase label for telemetry.
    pub fn name(self) -> &'static str {
        match self {
            CtrlPhase::Detect => "detect",
            CtrlPhase::Localize => "localize",
            CtrlPhase::Mitigate => "mitigate",
            CtrlPhase::Rebaseline => "rebaseline",
        }
    }
}

/// One timestamped control-plane step.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct CtrlAction {
    /// Simulated time the step happened, nanoseconds.
    pub t_ns: u64,
    /// Which phase of the loop.
    pub phase: CtrlPhase,
    /// Free-form detail for humans.
    pub detail: String,
}

/// What a controller did during a run, reported by
/// [`TrialController::summary`] after the simulation drains.
#[derive(Clone, Default, PartialEq, Serialize, Deserialize, Debug)]
pub struct CtrlSummary {
    /// Simulated time of the first fresh alarm the controller acted on.
    pub detect_ns: Option<u64>,
    /// Simulated time the first remediation was applied by the engine.
    pub mitigate_ns: Option<u64>,
    /// Iteration during which the first remediation landed.
    pub mitigate_iter: Option<u32>,
    /// `(leaf, vspine)` cables the controller admin-downed.
    pub mitigated_ports: Vec<(u32, u32)>,
    /// Times detection was re-armed (baseline relearns).
    pub rebaselines: u32,
    /// Every timestamped step, in order.
    pub actions: Vec<CtrlAction>,
}

/// End-to-end closed-loop outcome of a controller-enabled trial: the
/// controller's own record ([`CtrlSummary`]) joined with the harness's
/// ground truth (fault install time and cable identity).
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct CtrlOutcome {
    /// Fault install → first acted-on alarm, nanoseconds. Measured from
    /// run start when no fault was injected (a false detection).
    pub time_to_detect_ns: Option<u64>,
    /// Fault install → first remediation applied, nanoseconds.
    pub time_to_mitigate_ns: Option<u64>,
    /// Iteration during which the first remediation landed.
    pub mitigate_iter: Option<u32>,
    /// `(leaf, vspine)` cables the controller admin-downed.
    pub mitigated_ports: Vec<(u32, u32)>,
    /// Mitigated cables that were *not* the injected fault — healthy links
    /// taken down by a wrong verdict (every mitigation in a fault-free run
    /// counts).
    pub false_mitigations: u32,
    /// Times detection was re-armed.
    pub rebaselines: u32,
    /// Every timestamped control step, in order.
    pub actions: Vec<CtrlAction>,
}

/// An online control plane riding a trial: called at every iteration end
/// (counters for that iteration are complete, no later packets exist yet),
/// free to read the simulator's counters and schedule remediation via
/// [`Simulator::schedule_control`]. Implementations live in `fp-ctrl`;
/// the harness only needs this interface, keeping the dependency one-way.
pub trait TrialController {
    /// Iteration `iter` of the measured job has fully completed.
    fn on_iteration_end(&mut self, sim: &mut Simulator, iter: u32);
    /// The controller's record of what it did.
    fn summary(&self) -> CtrlSummary;
}

/// Everything a trial produced.
#[derive(Clone, Debug)]
pub struct TrialResult {
    /// Max |relative deviation| per evaluated iteration.
    pub iter_max_dev: Vec<(u32, f64)>,
    /// Alarms raised by the monitor.
    pub alarms: Vec<Alarm>,
    /// Injected-fault port `(dst_leaf, vspine)`, if a fault was injected.
    pub fault_port: Option<(u32, u32)>,
    /// Iteration the fault was installed at.
    pub fault_iter: Option<u32>,
    /// Iteration the fault healed at, if transient.
    pub heal_iter: Option<u32>,
    /// An alarm fired in a fault-active iteration.
    pub detected: bool,
    /// An alarm fired in a fault-free iteration.
    pub false_alarm: bool,
    /// Ring-correlation localization over post-fault alarms (rings with one
    /// host per leaf only).
    pub localization: Option<RingLocalization>,
    /// The localization names exactly the injected cable/port.
    pub localized_correctly: Option<bool>,
    /// Pre-existing admin-down cables `(leaf, vspine)`.
    pub preexisting_ports: Vec<(u32, u32)>,
    /// Learned-model verdicts (empty unless `ModelKind::Learned`).
    pub learned_events: Vec<(u32, LearnedUpdate)>,
    /// Transport/fabric statistics.
    pub stats: Stats,
    /// Retained trace-ring records (drops, fault transitions, PFC state
    /// changes, flow failures), oldest first.
    pub trace: Vec<fp_netsim::trace::TraceRecord>,
    /// Events offered to the trace ring, including any evicted ones.
    pub trace_offered: u64,
    /// The ring evicted records (`trace_offered > trace.len()`); exports
    /// must surface this — the retained window is the *most recent* slice.
    pub trace_truncated: bool,
    /// Observed per-port loads per iteration (for figure harnesses).
    pub observed: Vec<PortLoads>,
    /// The model prediction (`None` for learned until formed).
    pub predicted: Option<PortLoads>,
    /// Per-sender predicted loads (analytical/simulation models).
    pub predicted_by_src: Option<PortSrcLoads>,
    /// Per-sender observed loads per iteration.
    pub observed_by_src: Vec<PortSrcLoads>,
    /// Which event-scheduler backend ran the trial (telemetry only; result
    /// rows never serialize this, so heap/wheel runs stay byte-identical).
    pub sched_kind: fp_netsim::engine::SchedKind,
    /// Scheduler occupancy counters (telemetry only, like `sched_kind`).
    pub sched: fp_netsim::engine::SchedStats,
    /// Per-iteration goodput `(iter, bits/sec)` of the measured job, from
    /// the engine's always-on span log: schedule bytes over iteration span.
    pub iter_goodput: Vec<(u32, f64)>,
    /// Closed-loop outcome when a controller rode the trial
    /// ([`run_trial_ctl`]); `None` otherwise.
    pub ctrl: Option<CtrlOutcome>,
    /// Intra-trial shard count the fabric actually ran with (1 =
    /// unsharded, including trials that requested sharding but were
    /// ineligible).
    pub shards: u32,
    /// Events dispatched per shard, in shard order (empty for unsharded
    /// runs). Sums to more than `stats.events` because boundary
    /// re-injections are counted once per side.
    pub shard_events: Vec<u64>,
    /// Epoch cap the sharded run used (0 for unsharded runs).
    pub shard_epoch: u32,
    /// Conservative lookahead windows the sharded run advanced (0 for
    /// unsharded runs).
    pub shard_windows: u64,
    /// Coordinator synchronization round-trips the sharded run took;
    /// `shard_windows / shard_syncs` is the epoch protocol's measured
    /// amortization factor (0 for unsharded runs).
    pub shard_syncs: u64,
    /// Why a trial that *requested* sharding ran unsharded anyway
    /// (`None` when sharding was not requested or ran as asked). The same
    /// reason is printed to stderr and exported as a `shard_fallback`
    /// telemetry milestone, so the downgrade is never silent.
    pub shard_fallback: Option<String>,
    /// Per-iteration counter snapshots of the measured job in scan order —
    /// the stream a monitor service ingests ([`crate::snapshot`]). The
    /// final row has `last` set; `fabric` is empty until a feed
    /// ([`monitord_feed`]) stamps a stream id.
    pub snapshots: Vec<crate::snapshot::CounterSnapshot>,
    /// Temporal-symmetry fast-forwards performed (0 unless the trial
    /// requested memoization and steady state converged).
    pub memo_hits: u64,
    /// Collective iterations replayed instead of simulated.
    pub memo_replayed_iters: u64,
    /// Engine events the replayed spans account for (already included in
    /// `stats.events`, which stays byte-identical to a live run).
    pub memo_replayed_events: u64,
    /// Why a trial that *requested* memoization ran fully live, or the
    /// engine's first per-boundary refusal reason (`None` when memoization
    /// was not requested or every boundary was eligible). Like
    /// `shard_fallback`, the downgrade is never silent.
    pub memo_fallback: Option<String>,
}

// `fp-bench` campaigns fan trials out across worker threads; this fails to
// compile if `TrialSpec` or `TrialResult` ever grows a field that is not
// thread-safe (e.g. an `Rc` or interior-mutable cache).
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TrialSpec>();
    assert_send_sync::<TrialResult>();
};

/// Build the collective schedule for a spec.
pub fn build_schedule(spec: &TrialSpec) -> Schedule {
    let n = (spec.leaves * spec.hosts_per_leaf) as usize;
    let hosts: Vec<HostId> = (0..n as u32).map(HostId).collect();
    match spec.collective {
        CollectiveKind::RingAllReduce => ring_allreduce(&hosts, spec.bytes_per_node),
        CollectiveKind::RingReduceScatter => ring_reduce_scatter(&hosts, spec.bytes_per_node),
        CollectiveKind::AllToAll => {
            let per_pair = (spec.bytes_per_node / (n as u64 - 1)).max(1);
            alltoall_uniform(&hosts, per_pair)
        }
        CollectiveKind::HalvingDoubling => {
            let n64 = n as u64;
            let bytes = spec.bytes_per_node / n64 * n64; // divisible
            halving_doubling_allreduce(&hosts, bytes.max(n64))
        }
    }
}

/// A `(leaf, vspine)` cable endpoint pair.
type Cable = (u32, u32);

/// Deterministically choose `count` distinct pre-existing fault cables plus
/// (optionally) the injected-fault cable, all distinct, never taking a
/// leaf's last uplink.
fn choose_cables(
    spec: &TrialSpec,
    rng: &mut SmallRng,
    count: u32,
    want_fault: bool,
) -> (Vec<Cable>, Option<Cable>) {
    let nv = spec.spines * spec.parallel_links;
    let mut used: std::collections::HashSet<(u32, u32)> = Default::default();
    let mut per_leaf = vec![0u32; spec.leaves as usize];
    let mut pre = Vec::new();
    let pick = |rng: &mut SmallRng,
                used: &mut std::collections::HashSet<(u32, u32)>,
                per_leaf: &mut [u32]| {
        // Bounded rejection sampling: placements that would take a leaf's
        // last uplink are rejected; an infeasible request (more cables than
        // the fabric can lose) fails loudly instead of spinning.
        for _ in 0..100_000 {
            let leaf = rng.gen_range(0..spec.leaves);
            let v = rng.gen_range(0..nv);
            if used.contains(&(leaf, v)) || per_leaf[leaf as usize] + 1 >= nv {
                continue;
            }
            used.insert((leaf, v));
            per_leaf[leaf as usize] += 1;
            return (leaf, v);
        }
        panic!(
            "cannot place another faulty cable: {} leaves x {} vspines with {} already down",
            spec.leaves,
            nv,
            used.len()
        );
    };
    for _ in 0..count {
        let c = pick(rng, &mut used, &mut per_leaf);
        pre.push(c);
    }
    let fault = want_fault.then(|| pick(rng, &mut used, &mut per_leaf));
    (pre, fault)
}

/// Execute one trial end-to-end.
pub fn run_trial(spec: &TrialSpec) -> TrialResult {
    run_trial_with(spec, None).0
}

/// [`run_trial`] with an optional telemetry recorder riding along.
///
/// When `recorder` is `Some`, the simulator drives its periodic link
/// sampler and funnels flow-completion / RTO / PFC observations into it
/// during the run; afterwards the harness drains the trace ring, the
/// monitor's alarms and the fault/detection milestones into the same
/// recorder as structured events, then hands the recorder back so the
/// caller can [`finish`](fp_telemetry::Recorder::finish) it (write
/// artifacts). `run_trial` is exactly `run_trial_with(spec, None)`, so a
/// disabled recorder costs nothing and cannot perturb results.
pub fn run_trial_with(
    spec: &TrialSpec,
    recorder: Option<Box<dyn fp_telemetry::Recorder>>,
) -> (TrialResult, Option<Box<dyn fp_telemetry::Recorder>>) {
    run_trial_ctl(spec, recorder, None)
}

/// Everything the analysis stage of [`run_trial_ctl`] needs from a fabric
/// run, produced either by the classic single-simulator path or by the
/// intra-trial sharded coordinator ([`fp_collectives::shard::run_sharded`]).
/// The two producers fill identical artifacts (byte-identical counters,
/// stats, spans and trace), which is what keeps `FP_SHARDS > 1` trials
/// indistinguishable downstream.
struct FabricRun {
    stats: Stats,
    counters: fp_netsim::counters::CounterStore,
    spans: Vec<fp_netsim::sim::IterSpanRecord>,
    trace: Vec<fp_netsim::trace::TraceRecord>,
    trace_offered: u64,
    trace_truncated: bool,
    sched_kind: fp_netsim::engine::SchedKind,
    sched: fp_netsim::engine::SchedStats,
    /// Simulated end time, for recorder milestone stamps.
    end_ns: u64,
    /// Shard count the fabric actually ran with (1 = unsharded).
    shards: u32,
    /// Per-shard dispatched event counts (empty when unsharded).
    shard_events: Vec<u64>,
    /// Epoch cap / windows / syncs of the sharded coordinator (all 0 when
    /// unsharded).
    shard_epoch: u32,
    shard_windows: u64,
    shard_syncs: u64,
    /// The recorder handed back by the simulator (unsharded), or the
    /// caller's recorder refilled from the merged per-shard taps
    /// (sharded; see [`fp_collectives::shard::ShardTelemetry`]).
    recorder: Option<Box<dyn fp_telemetry::Recorder>>,
    /// Memoization counters (unsharded runs with memo enabled only).
    memo: Option<fp_netsim::prelude::MemoCounters>,
}

/// Why a trial that requests `shards >= 2` must run unsharded, or `None`
/// when it is eligible. Controllers need a live `&mut Simulator` at every
/// iteration end; randomized spray policies draw from the per-shard RNG so
/// packet paths would diverge from the single-simulator run; bidirectional
/// faults flip two links that may live on different shard owners.
/// Attached recorders are *not* a reason — sharded runs tap each shard and
/// merge the streams back into unsharded hook order.
pub fn shard_ineligibility(spec: &TrialSpec, has_controller: bool) -> Option<String> {
    if has_controller {
        return Some("an online controller needs a live single simulator".into());
    }
    use fp_netsim::spray::SprayPolicy;
    match spec.sim.spray {
        // Deterministic picks: classic load-based policies plus the pure
        // hash/entropy backends (ECMP is a flow hash; PRIME is a pure
        // function of `(flow, seq, epoch)` and its congestion epochs are
        // bumped at the owning shard's source leaf deterministically).
        SprayPolicy::Adaptive
        | SprayPolicy::LeastLoaded
        | SprayPolicy::RoundRobin
        | SprayPolicy::Ecmp
        | SprayPolicy::Prime => {}
        // REPS caches entropies fed by ACK arrival order *and* draws
        // fresh entropies from the per-shard RNG: both diverge from the
        // single-simulator run.
        SprayPolicy::Reps | SprayPolicy::RepsFailover => {
            return Some(format!(
                "spray policy {:?} recycles ACK-fed entropy state",
                spec.sim.spray
            ));
        }
        _ => {
            return Some(format!(
                "spray policy {:?} draws from the per-shard RNG",
                spec.sim.spray
            ));
        }
    }
    if spec.fault.is_some_and(|f| f.bidirectional) {
        return Some("bidirectional fault straddles two shard owners".into());
    }
    None
}

/// Why a trial that requests memoization (`FP_MEMO` / [`TrialSpec::memo`])
/// must run fully live, or `None` when the harness can enable it. Start
/// jitter draws from the runner's private RNG, invisible to the engine
/// fingerprint; controllers and recorders observe every live iteration;
/// sharded fabrics have no single-simulator boundary to fingerprint.
/// Spray-policy ineligibility (random draws, the adaptive policy's
/// absolute-grid deficit decay) is the engine's own gate and surfaces
/// through [`fp_netsim::prelude::MemoCounters::fallback`] instead.
pub fn memo_ineligibility(
    spec: &TrialSpec,
    has_controller: bool,
    has_recorder: bool,
    sharded: bool,
) -> Option<String> {
    if has_controller {
        return Some("an online controller observes every iteration end".into());
    }
    if has_recorder {
        return Some("telemetry recorder samples on absolute time".into());
    }
    if spec.jitter != JitterModel::None {
        return Some("per-node start jitter draws outside the fingerprint".into());
    }
    if sharded {
        return Some("sharded execution has no single-simulator boundary".into());
    }
    None
}

/// [`run_trial_with`] plus an optional online [`TrialController`].
///
/// The controller is called back at every iteration end with `&mut
/// Simulator`, so it can scan the counters incrementally and schedule
/// remediation ([`Simulator::schedule_control`]) that lands after its
/// reaction latency. The controller is shared via `Rc<RefCell<..>>` only
/// for the duration of this call (the iteration-end hook holds one clone);
/// nothing `!Send` escapes into the returned [`TrialResult`], so campaigns
/// still fan controller-enabled trials across threads by constructing one
/// controller per trial inside the worker.
pub fn run_trial_ctl(
    spec: &TrialSpec,
    recorder: Option<Box<dyn fp_telemetry::Recorder>>,
    controller: Option<Rc<RefCell<dyn TrialController>>>,
) -> (TrialResult, Option<Box<dyn fp_telemetry::Recorder>>) {
    let job = 1u32;
    let topo = Topology::fat_tree(FatTreeSpec {
        leaves: spec.leaves,
        spines: spec.spines,
        hosts_per_leaf: spec.hosts_per_leaf,
        parallel_links: spec.parallel_links,
        ..Default::default()
    });
    let mut place_rng = SmallRng::seed_from_u64(splitmix64(spec.seed ^ 0xFA_17));
    let (preexisting_ports, fault_port) =
        choose_cables(spec, &mut place_rng, spec.preexisting, spec.fault.is_some());

    // Known faults: cables are down in both directions, visible to routing.
    let mut admin_down: Vec<LinkId> = Vec::new();
    for &(leaf, v) in &preexisting_ports {
        admin_down.push(topo.uplink(leaf, v));
        admin_down.push(topo.downlink(v, leaf));
    }

    let sched = build_schedule(spec);
    let sched_total_bytes = sched.total_bytes();
    // Multi-destination collectives get the paper's §5.1 subset treatment:
    // one measured (tagged, prioritized) non-local flow per leaf; the rest
    // of the collective runs unmeasured. Demand models the subset only.
    let measured = match spec.collective {
        CollectiveKind::AllToAll => {
            let subset = fp_collectives::alltoall::single_nonlocal_subset(&sched, &topo.host_leaf);
            Some(subset)
        }
        _ => None,
    };
    let demand = match &measured {
        Some(subset) => fp_collectives::alltoall::demand_of_subset(&sched, subset, topo.n_hosts()),
        None => sched.demand(topo.n_hosts()),
    };

    // Prediction.
    let (predicted, predicted_by_src) = match spec.model {
        ModelKind::Analytical => {
            let p = AnalyticalModel::new(&topo, admin_down.iter().copied()).predict(&demand);
            (Some(p.loads), Some(p.by_src))
        }
        ModelKind::Simulation => {
            let subset = match &measured {
                Some(s) => fp_collectives::runner::MeasuredSubset::Transfers(s.clone()),
                None => fp_collectives::runner::MeasuredSubset::All,
            };
            let (l, s) = SimulationModel::new(spec.sim.clone()).predict_measured(
                &topo,
                &admin_down,
                &sched,
                job,
                subset,
            );
            (Some(l), Some(s))
        }
        ModelKind::Learned { .. } => (None, None),
    };

    let rcfg = RunnerConfig {
        job,
        iterations: spec.iterations,
        jitter: spec.jitter,
        jitter_seed: splitmix64(spec.seed ^ 0x717),
        measured: match &measured {
            Some(subset) => fp_collectives::runner::MeasuredSubset::Transfers(subset.clone()),
            None => fp_collectives::runner::MeasuredSubset::All,
        },
        ..Default::default()
    };

    // Ground-truth fault install time, for time-to-detect/-mitigate.
    let install_ns: Rc<Cell<Option<u64>>> = Rc::new(Cell::new(None));
    // The injected fault, translated once; both fabric paths need it.
    let injected = spec.fault.zip(fault_port).map(|(f, (fleaf, fv))| {
        let kind = match f.kind {
            InjectedFault::Drop { rate } => FaultKind::SilentDrop { rate },
            InjectedFault::Blackhole => FaultKind::SilentBlackhole,
            InjectedFault::DstBlackhole => FaultKind::DstBlackhole {
                dst_leaf: fleaf as u16,
            },
        };
        (f, topo.downlink(fv, fleaf), kind)
    });

    // Production fabric: sharded when the spec (or FP_SHARDS) asks for it
    // and the trial qualifies. Controllers need a live `&mut Simulator`,
    // randomized spray draws from the per-shard rng, and bidirectional
    // faults straddle two link owners — those trials keep the classic
    // single-simulator path, and the downgrade is surfaced (stderr +
    // `shard_fallback` milestone + `TrialResult::shard_fallback`) rather
    // than silent. Recorders no longer disqualify: each shard runs a
    // `TapRecorder` and the coordinator merges the taps back into
    // unsharded hook order. Either way the analysis below consumes the
    // same `FabricRun` artifact set, byte-identical between the two (see
    // `fp_collectives::shard`).
    let shards = spec
        .shards
        .unwrap_or_else(fp_netsim::shard::shards_from_env)
        .max(1);
    let shard_fallback = if shards >= 2 {
        shard_ineligibility(spec, controller.is_some())
    } else {
        None
    };
    let eligible = shards >= 2 && shard_fallback.is_none();
    if let Some(reason) = &shard_fallback {
        eprintln!(
            "fp-eval: trial seed={} requested {shards} shards but is ineligible ({reason}); running unsharded",
            spec.seed
        );
    }

    // Temporal-symmetry fast-forward: enable when requested and eligible.
    // Fault onsets and heal edges are barriers a replay never crosses, so
    // the iteration-start install/heal hook — which only acts at exactly
    // those iterations — is safe to skip in between (`memo_barrier_hooks`).
    let memo_requested = spec
        .memo
        .unwrap_or_else(fp_netsim::sim::memo::memo_from_env);
    let memo_ineligible = if memo_requested {
        memo_ineligibility(spec, controller.is_some(), recorder.is_some(), eligible)
    } else {
        None
    };
    let memo_enable = memo_requested && memo_ineligible.is_none();
    let memo_barriers: Vec<u32> = spec
        .fault
        .map(|f| {
            let mut b = vec![f.at_iter];
            if let Some(h) = f.heal_at_iter {
                b.push(h.max(f.at_iter));
            }
            b
        })
        .unwrap_or_default();

    let run = if eligible {
        let mut flips: Vec<fp_collectives::shard::ShardFault> = Vec::new();
        if let Some((f, down, kind)) = injected {
            flips.push(fp_collectives::shard::ShardFault {
                link: down,
                action: FaultAction::Set(kind),
                at_iter: f.at_iter,
            });
            if let Some(h) = f.heal_at_iter {
                // The hook heals only once installed, so a heal scheduled
                // before the install degenerates to heal-at-install.
                flips.push(fp_collectives::shard::ShardFault {
                    link: down,
                    action: FaultAction::Clear,
                    at_iter: h.max(f.at_iter),
                });
            }
        }
        let tap_interval = recorder.as_ref().map(|r| r.sample_interval_ns());
        let shard_epoch = spec
            .shard_epoch
            .unwrap_or_else(fp_netsim::shard::epoch_from_env)
            .clamp(1, fp_netsim::shard::MAX_EPOCH_WINDOWS);
        let mut out = fp_collectives::shard::run_sharded(
            &topo,
            &spec.sim,
            spec.seed,
            shards,
            fp_collectives::shard::threaded_from_env(),
            shard_epoch,
            sched,
            rcfg,
            &admin_down,
            &flips,
            tap_interval,
        );
        install_ns.set(out.install_ns);
        let span_end_ns = out
            .iter_spans
            .iter()
            .map(|s| s.end.as_ns())
            .max()
            .unwrap_or(0);
        // Replay the merged shard telemetry into the caller's recorder in
        // exactly the unsharded hook order: topology, samples tick-major,
        // then the order-insensitive payload streams. `end_ns` follows the
        // unsharded clock (last sampler tick strictly past the last event)
        // so milestone stamps stay byte-identical.
        let telemetry = out.telemetry.take();
        let end_ns = telemetry.as_ref().map(|t| t.end_ns).unwrap_or(span_end_ns);
        let recorder = recorder.map(|mut rec| {
            rec.on_topology(&fp_netsim::sim::link_metas(&topo));
            if let Some(tel) = &telemetry {
                for (t, link, s) in &tel.samples {
                    rec.on_link_sample(*t, *link, s);
                }
                for &f in &tel.fct_ns {
                    rec.on_fct_ns(f);
                }
                for &a in &tel.rto_attempts {
                    rec.on_rto_attempt(a);
                }
                for &(prio, pause) in &tel.pfc_pause_ns {
                    rec.on_pfc_pause_ns(prio, pause);
                }
            }
            for s in &out.iter_spans {
                rec.on_iteration(s.job, s.iter, s.start.as_ns(), s.end.as_ns());
            }
            rec
        });
        FabricRun {
            stats: out.stats,
            counters: out.counters,
            spans: out.iter_spans,
            trace: out.trace,
            trace_offered: out.trace_offered,
            trace_truncated: out.trace_truncated,
            sched_kind: out.sched_kind,
            sched: out.sched,
            end_ns,
            shards,
            shard_events: out.shard_events,
            shard_epoch,
            shard_windows: out.windows,
            shard_syncs: out.syncs,
            recorder,
            memo: None,
        }
    } else {
        let mut sim = Simulator::new(topo.clone(), spec.sim.clone(), spec.seed);
        if let Some(rec) = recorder {
            sim.set_recorder(rec);
        }
        let mut rcfg = rcfg;
        if memo_enable {
            sim.enable_memo(memo_barriers);
            rcfg.memo_barrier_hooks = true;
        }
        for &l in &admin_down {
            sim.apply_fault_now(l, FaultAction::Set(FaultKind::AdminDown), false);
        }
        let mut runner = CollectiveRunner::new(sched, rcfg);
        if let Some((f, down, kind)) = injected {
            let mut installed = false;
            let mut healed = false;
            let install_ns = install_ns.clone();
            runner.set_iteration_start_hook(Box::new(move |sim, iter| {
                if !installed && iter >= f.at_iter {
                    installed = true;
                    install_ns.set(Some(sim.now().as_ns()));
                    sim.apply_fault_now(down, FaultAction::Set(kind), f.bidirectional);
                }
                if let Some(h) = f.heal_at_iter {
                    if installed && !healed && iter >= h {
                        healed = true;
                        sim.apply_fault_now(down, FaultAction::Clear, f.bidirectional);
                    }
                }
            }));
        }
        if let Some(ctl) = controller.clone() {
            runner.set_iteration_end_hook(Box::new(move |sim, iter| {
                ctl.borrow_mut().on_iteration_end(sim, iter);
            }));
        }
        sim.set_app(Box::new(runner));
        sim.run();
        let end_ns = sim.now().as_ns();
        let memo = sim.memo_counters();
        FabricRun {
            stats: sim.stats.clone(),
            counters: sim.counters.clone(),
            spans: sim.iter_spans().to_vec(),
            trace: sim.trace.to_records(),
            trace_offered: sim.trace.offered,
            trace_truncated: sim.trace.truncated(),
            sched_kind: sim.sched_kind(),
            sched: sim.sched_stats(),
            end_ns,
            shards: 1,
            shard_events: Vec::new(),
            shard_epoch: 0,
            shard_windows: 0,
            shard_syncs: 0,
            recorder: sim.take_recorder(),
            memo,
        }
    };
    let memo_counters = run.memo.clone().unwrap_or_default();
    let memo_fallback = if memo_requested {
        memo_ineligible.or_else(|| memo_counters.fallback.clone())
    } else {
        None
    };

    // Monitoring.
    let detector = Detector::new(spec.threshold);
    let mut monitor = match (&spec.model, &predicted) {
        (ModelKind::Learned { warmup }, _) => Monitor::new_learned(job, detector, *warmup),
        (_, Some(p)) => Monitor::new_fixed(job, detector, p.clone()),
        _ => unreachable!("non-learned model without prediction"),
    };
    monitor.scan(&run.counters, true);

    // Collect observations for figure harnesses, and the snapshot stream a
    // monitor service would have ingested iteration by iteration.
    let mut observed = Vec::new();
    let mut observed_by_src = Vec::new();
    for i in run.counters.iters_of(job) {
        let c = run.counters.get(job, i).expect("listed iteration");
        observed.push(PortLoads::from_counters(c));
        observed_by_src.push(PortSrcLoads::from_counters(c));
    }
    let snapshots = crate::snapshot::CounterSnapshot::sequence_from(&run.counters, job);

    // Outcomes.
    let fault_iter = spec.fault.map(|f| f.at_iter);
    let heal_iter = spec.fault.and_then(|f| f.heal_at_iter);
    let faulty = |iter: u32| -> bool {
        match (fault_iter, heal_iter) {
            (Some(fi), Some(h)) => iter >= fi && iter < h,
            (Some(fi), None) => iter >= fi,
            _ => false,
        }
    };
    let detected = monitor.alarms.iter().any(|a| faulty(a.iter));
    let false_alarm = monitor.alarms.iter().any(|a| !faulty(a.iter));

    // Ring localization (single host per leaf rings only).
    let is_ring = matches!(
        spec.collective,
        CollectiveKind::RingAllReduce | CollectiveKind::RingReduceScatter
    );
    let (localization, localized_correctly) = if let (Some(fi), Some((fleaf, fv)), true, 1) =
        (fault_iter, fault_port, is_ring, spec.hosts_per_leaf)
    {
        let alarmed = monitor.shortfall_ports(fi);
        let leaves = spec.leaves;
        let loc = Localizer::default().localize_ring(&alarmed, |l| (l + 1) % leaves);
        let bidir = spec.fault.map(|f| f.bidirectional).unwrap_or(false);
        let correct = if bidir {
            loc.cables == vec![(fleaf, fv)]
        } else {
            loc.cables.is_empty() && loc.unpaired == vec![(fleaf, fv)]
        };
        (Some(loc), Some(correct))
    } else {
        (None, None)
    };

    // Per-iteration goodput of the measured job, from the engine's
    // always-on span log.
    let iter_goodput: Vec<(u32, f64)> = run
        .spans
        .iter()
        .filter(|s| s.job == job)
        .map(|s| {
            let span_ns = s.end.as_ns().saturating_sub(s.start.as_ns()).max(1);
            (
                s.iter,
                sched_total_bytes as f64 * 8.0 / (span_ns as f64 * 1e-9),
            )
        })
        .collect();

    // Closed-loop outcome: join the controller's record with ground truth.
    let ctrl = controller.map(|c| {
        let s = c.borrow().summary();
        let inst = install_ns.get();
        // Latencies are relative to the fault install when one happened;
        // absolute when the controller acted in a fault-free run (any such
        // action is a false detection/mitigation).
        let delta = |t: Option<u64>| match (t, inst) {
            (Some(t), Some(i)) => Some(t.saturating_sub(i)),
            (Some(t), None) => Some(t),
            _ => None,
        };
        let false_mitigations = s
            .mitigated_ports
            .iter()
            .filter(|&&p| Some(p) != fault_port)
            .count() as u32;
        CtrlOutcome {
            time_to_detect_ns: delta(s.detect_ns),
            time_to_mitigate_ns: delta(s.mitigate_ns),
            mitigate_iter: s.mitigate_iter,
            mitigated_ports: s.mitigated_ports,
            false_mitigations,
            rebaselines: s.rebaselines,
            actions: s.actions,
        }
    });

    // Structured-event export: drain the trace ring, the monitor's alarms
    // and the trial milestones into the recorder, then hand it back.
    let mut recorder = run.recorder;
    if let Some(rec) = recorder.as_deref_mut() {
        let end_ns = run.end_ns;
        if let Some(reason) = &shard_fallback {
            rec.on_event(
                0,
                &fp_telemetry::Event::Milestone {
                    name: "shard_fallback".into(),
                    detail: reason.clone(),
                },
            );
        }
        if let Some(reason) = &memo_fallback {
            rec.on_event(
                0,
                &fp_telemetry::Event::Milestone {
                    name: "memo_fallback".into(),
                    detail: reason.clone(),
                },
            );
        }
        for r in &run.trace {
            rec.on_event(r.t_ns, &r.event.to_telemetry());
        }
        monitor.export_alarms(end_ns, rec, |a| {
            let loc = localization.as_ref()?;
            a.deviations.iter().find_map(|d| {
                let p = (d.leaf, d.vspine);
                if loc.cables.contains(&p) {
                    Some(format!("cable({},{})", p.0, p.1))
                } else if loc.unpaired.contains(&p) {
                    Some(format!("unpaired({},{})", p.0, p.1))
                } else {
                    None
                }
            })
        });
        if let Some(c) = &ctrl {
            for a in &c.actions {
                rec.on_event(
                    a.t_ns,
                    &fp_telemetry::Event::Control {
                        phase: a.phase.name().into(),
                        detail: a.detail.clone(),
                    },
                );
            }
        }
        if let (Some(f), Some((fleaf, fv))) = (spec.fault, fault_port) {
            rec.on_event(
                end_ns,
                &fp_telemetry::Event::Milestone {
                    name: "fault_installed".into(),
                    detail: format!("iter {} port ({fleaf},{fv})", f.at_iter),
                },
            );
            if let Some(h) = f.heal_at_iter {
                rec.on_event(
                    end_ns,
                    &fp_telemetry::Event::Milestone {
                        name: "fault_healed".into(),
                        detail: format!("iter {h} port ({fleaf},{fv})"),
                    },
                );
            }
        }
        if let Some(first) = monitor.alarms.iter().map(|a| a.iter).min() {
            rec.on_event(
                end_ns,
                &fp_telemetry::Event::Milestone {
                    name: if detected {
                        "fault_detected".into()
                    } else {
                        "false_alarm".into()
                    },
                    detail: format!("first alarm at iter {first}"),
                },
            );
        }
    }

    let result = TrialResult {
        iter_max_dev: monitor.iter_max_dev.clone(),
        alarms: monitor.alarms.clone(),
        fault_port,
        fault_iter,
        heal_iter,
        detected,
        false_alarm,
        localization,
        localized_correctly,
        preexisting_ports,
        learned_events: monitor.learned_events.clone(),
        stats: run.stats,
        trace: run.trace,
        trace_offered: run.trace_offered,
        trace_truncated: run.trace_truncated,
        observed,
        predicted,
        predicted_by_src,
        observed_by_src,
        sched_kind: run.sched_kind,
        sched: run.sched,
        iter_goodput,
        ctrl,
        shards: run.shards,
        shard_events: run.shard_events,
        shard_epoch: run.shard_epoch,
        shard_windows: run.shard_windows,
        shard_syncs: run.shard_syncs,
        shard_fallback,
        snapshots,
        memo_hits: memo_counters.hits,
        memo_replayed_iters: memo_counters.replayed_iters,
        memo_replayed_events: memo_counters.replayed_events,
        memo_fallback,
    };
    (result, recorder)
}

/// Run `specs` on a pool of `threads` workers and stream every trial's
/// per-iteration [`CounterSnapshot`](crate::snapshot::CounterSnapshot)
/// sequence into `push` — the feed side of a monitor service
/// (`fp-monitord` wraps its ingest handle in exactly this closure shape).
/// Each trial becomes one stream, stamped `fabric-<index>`; snapshots
/// within a stream arrive in scan order, while concurrent trials
/// interleave arbitrarily, which is what a service keyed by
/// `(fabric, job)` must tolerate. Returns the trial results in spec
/// order, so callers can compare a service's per-stream alarms against
/// the offline monitor's ([`TrialResult::alarms`]).
pub fn monitord_feed(
    specs: &[TrialSpec],
    threads: usize,
    push: impl Fn(crate::snapshot::CounterSnapshot) + Sync,
) -> Vec<TrialResult> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let cursor = AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<TrialResult>>> =
        specs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let push = &push;
    let cursor = &cursor;
    let results_ref = &results;
    std::thread::scope(|s| {
        for _ in 0..threads.max(1).min(specs.len().max(1)) {
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                let r = run_trial(spec);
                for snap in &r.snapshots {
                    let mut snap = snap.clone();
                    snap.fabric = format!("fabric-{i:03}");
                    push(snap);
                }
                *results_ref[i].lock().unwrap() = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker finished its trial"))
        .collect()
}

/// Binary classification tallies over iterations.
#[derive(Copy, Clone, Default, PartialEq, Serialize, Deserialize, Debug)]
pub struct Rates {
    /// Faulty iterations alarmed.
    pub tp: u32,
    /// Faulty iterations missed.
    pub fn_: u32,
    /// Clean iterations alarmed.
    pub fp: u32,
    /// Clean iterations passed.
    pub tn: u32,
}

impl Rates {
    /// False-positive rate (`fp / (fp + tn)`), 0 if no clean iterations.
    pub fn fpr(&self) -> f64 {
        let d = self.fp + self.tn;
        if d == 0 {
            0.0
        } else {
            self.fp as f64 / d as f64
        }
    }

    /// False-negative rate (`fn / (fn + tp)`), 0 if no faulty iterations.
    pub fn fnr(&self) -> f64 {
        let d = self.fn_ + self.tp;
        if d == 0 {
            0.0
        } else {
            self.fn_ as f64 / d as f64
        }
    }

    /// True-positive rate.
    pub fn tpr(&self) -> f64 {
        1.0 - self.fnr()
    }

    /// Tally one trial's iterations at the trial's own threshold.
    pub fn add_trial(&mut self, r: &TrialResult) {
        let alarmed: std::collections::HashSet<u32> = r.alarms.iter().map(|a| a.iter).collect();
        for &(iter, _) in &r.iter_max_dev {
            let faulty = r.is_faulty_iter(iter);
            match (faulty, alarmed.contains(&iter)) {
                (true, true) => self.tp += 1,
                (true, false) => self.fn_ += 1,
                (false, true) => self.fp += 1,
                (false, false) => self.tn += 1,
            }
        }
    }

    /// Tally many trials.
    pub fn from_trials<'a>(trials: impl IntoIterator<Item = &'a TrialResult>) -> Rates {
        let mut r = Rates::default();
        for t in trials {
            r.add_trial(t);
        }
        r
    }
}

/// One point of a ROC curve.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct RocPoint {
    /// Detection threshold.
    pub threshold: f64,
    /// False-positive rate at that threshold.
    pub fpr: f64,
    /// True-positive rate at that threshold.
    pub tpr: f64,
}

/// Evaluate thresholds offline against recorded max-deviations: `clean` are
/// deviations of fault-free iterations, `faulty` of fault-active ones.
pub fn roc_curve(clean: &[f64], faulty: &[f64], thresholds: &[f64]) -> Vec<RocPoint> {
    thresholds
        .iter()
        .map(|&t| RocPoint {
            threshold: t,
            fpr: frac_above(clean, t),
            tpr: frac_above(faulty, t),
        })
        .collect()
}

fn frac_above(xs: &[f64], t: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&x| x > t).count() as f64 / xs.len() as f64
}

impl TrialResult {
    /// Was the injected fault active during `iter`?
    pub fn is_faulty_iter(&self, iter: u32) -> bool {
        match (self.fault_iter, self.heal_iter) {
            (Some(fi), Some(h)) => iter >= fi && iter < h,
            (Some(fi), None) => iter >= fi,
            _ => false,
        }
    }

    /// Iterations between fault installation and the first alarm
    /// (0 = caught within the very iteration it appeared — the paper's
    /// "instantaneous detection"). `None` if no fault or never detected.
    pub fn detection_latency_iters(&self) -> Option<u32> {
        let fi = self.fault_iter?;
        self.alarms
            .iter()
            .filter(|a| a.iter >= fi)
            .map(|a| a.iter - fi)
            .min()
    }
}

/// Split a trial's recorded deviations into (clean, faulty) by iteration.
pub fn split_devs(r: &TrialResult) -> (Vec<f64>, Vec<f64>) {
    let mut clean = Vec::new();
    let mut faulty = Vec::new();
    for &(iter, d) in &r.iter_max_dev {
        if r.is_faulty_iter(iter) {
            faulty.push(d);
        } else {
            clean.push(d);
        }
    }
    (clean, faulty)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small, fast spec for unit tests (full-size runs live in fp-bench and
    /// the integration suite).
    fn small_spec() -> TrialSpec {
        TrialSpec {
            leaves: 8,
            spines: 4,
            bytes_per_node: 8 * 1024 * 1024,
            iterations: 3,
            ..Default::default()
        }
    }

    /// Per-record trace `Debug` lines with flow ids scrubbed: flow ids are
    /// allocation labels, and sharded runs stride them per shard, so two
    /// byte-identical runs can still label the same dropped packet with
    /// different ids.
    fn trace_scrubbed(records: &[fp_netsim::trace::TraceRecord]) -> Vec<String> {
        records
            .iter()
            .map(|r| {
                let mut s = format!("{r:?}");
                // `FlowId` Debug-prints as a bare number, so ids appear as
                // `flow: Some(120)` (or `flow: 120` in `FlowFailed`).
                let mut from = 0;
                while let Some(i) = s[from..].find("flow: ") {
                    let start = from + i + "flow: ".len();
                    let end = start + s[start..].find([' ', '}']).unwrap_or(s.len() - start);
                    s.replace_range(start..end, "_");
                    from = start + 1;
                }
                s
            })
            .collect()
    }

    /// The headline-quick faulted ring, sharded vs unsharded.
    ///
    /// At `shards = 2` this spec is empirically free of same-instant
    /// cross-boundary event ties, so every artifact is byte-identical. At
    /// `shards = 4` one boundary does tie (an ACK and a data packet swap
    /// enqueue order on a host uplink, shifting the ACK by one 4 KB
    /// serialization quantum), which the adaptive spray then amplifies
    /// into slightly different byte *placement* across spines — so there
    /// we assert the invariants sharding guarantees unconditionally:
    /// conservation totals, drop realization, detection and localization
    /// verdicts. See `fp_collectives::shard` and DESIGN.md §9 for why
    /// simultaneous-event order is the one thing conservative sync cannot
    /// reproduce.
    #[test]
    fn sharded_trial_matches_unsharded() {
        let mut spec = small_spec();
        spec.seed = 2025;
        spec.fault = Some(FaultSpec {
            kind: InjectedFault::Drop { rate: 0.015 },
            at_iter: 1,
            heal_at_iter: None,
            bidirectional: false,
        });
        let base = run_trial(&spec);
        assert_eq!(base.shards, 1);
        assert!(base.shard_events.is_empty());
        assert!(base.detected, "fault must be visible for a meaningful test");

        // Tie-free shard count: byte-identical everything.
        let mut s2 = spec.clone();
        s2.shards = Some(2);
        let r2 = run_trial(&s2);
        assert_eq!(r2.shards, 2);
        assert_eq!(r2.shard_events.len(), 2);
        assert_eq!(r2.iter_max_dev, base.iter_max_dev);
        assert_eq!(format!("{:?}", r2.alarms), format!("{:?}", base.alarms));
        assert_eq!(
            format!("{:?}", r2.localization),
            format!("{:?}", base.localization)
        );
        assert_eq!(format!("{:?}", r2.stats), format!("{:?}", base.stats));
        assert_eq!(trace_scrubbed(&r2.trace), trace_scrubbed(&base.trace));
        assert_eq!(r2.trace_offered, base.trace_offered);
        assert_eq!(r2.iter_goodput, base.iter_goodput);
        assert_eq!(format!("{:?}", r2.observed), format!("{:?}", base.observed));

        // Tie-afflicted shard count: invariants only.
        let mut s4 = spec.clone();
        s4.shards = Some(4);
        let r4 = run_trial(&s4);
        assert_eq!(r4.shards, 4);
        assert_eq!(r4.shard_events.len(), 4);
        assert_eq!(r4.detected, base.detected);
        assert_eq!(r4.false_alarm, base.false_alarm);
        assert_eq!(r4.localized_correctly, base.localized_correctly);
        assert_eq!(r4.stats.data_pkts_sent, base.stats.data_pkts_sent);
        assert_eq!(r4.stats.data_pkts_delivered, base.stats.data_pkts_delivered);
        assert_eq!(r4.stats.bytes_delivered, base.stats.bytes_delivered);
        assert_eq!(r4.stats.flows_completed, base.stats.flows_completed);
        assert_eq!(r4.stats.flows_failed, base.stats.flows_failed);
        assert_eq!(r4.iter_max_dev.len(), base.iter_max_dev.len());
    }

    /// Ineligible trials (here: a bidirectional fault) fall back to the
    /// unsharded path instead of diverging or panicking, and the downgrade
    /// reason is surfaced on the result rather than swallowed.
    #[test]
    fn ineligible_sharded_trial_falls_back() {
        let mut spec = small_spec();
        spec.shards = Some(4);
        spec.fault = Some(FaultSpec {
            kind: InjectedFault::Blackhole,
            at_iter: 1,
            heal_at_iter: None,
            bidirectional: true,
        });
        let r = run_trial(&spec);
        assert_eq!(r.shards, 1);
        assert!(r.shard_events.is_empty());
        let reason = r.shard_fallback.expect("downgrade must carry a reason");
        assert!(reason.contains("bidirectional"), "reason: {reason}");

        // Eligible runs and non-sharded runs report no fallback.
        let clean = run_trial(&small_spec());
        assert!(clean.shard_fallback.is_none());
        let mut s2 = small_spec();
        s2.shards = Some(2);
        let r2 = run_trial(&s2);
        assert_eq!(r2.shards, 2);
        assert!(r2.shard_fallback.is_none());
    }

    /// Tap streams from one trial, unsharded (`shards = None`) vs sharded.
    type TapStreams = (
        Vec<(u64, u32, fp_telemetry::LinkSample)>,
        Vec<u64>,
        Vec<u32>,
        Vec<(u8, u64)>,
    );

    fn recorder_streams(spec: &TrialSpec, shards: Option<u32>, interval: u64) -> TapStreams {
        let mut spec = spec.clone();
        spec.shards = shards;
        let (r, rec) = run_trial_with(
            &spec,
            Some(Box::new(fp_telemetry::TapRecorder::new(interval))),
        );
        assert_eq!(r.shard_fallback, None);
        assert_eq!(r.shards, shards.unwrap_or(1), "unexpected fallback");
        let mut rec = rec.expect("recorder handed back");
        let t = rec
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<fp_telemetry::TapRecorder>())
            .expect("tap recorder");
        (
            std::mem::take(&mut t.samples),
            std::mem::take(&mut t.fct_ns),
            std::mem::take(&mut t.rto_attempts),
            std::mem::take(&mut t.pfc_pause_ns),
        )
    }

    fn drop_fault_spec(seed: u64) -> TrialSpec {
        let mut spec = small_spec();
        spec.seed = seed;
        spec.fault = Some(FaultSpec {
            kind: InjectedFault::Drop { rate: 0.015 },
            at_iter: 1,
            heal_at_iter: None,
            bidirectional: false,
        });
        spec
    }

    /// An attached recorder no longer forces the unsharded path: each
    /// shard runs a tap and the coordinator merges the streams back into
    /// unsharded hook order. On a tie-free seed every stream matches the
    /// unsharded recorder byte-for-byte (samples in order; FCT/RTO/PFC as
    /// multisets — the merge concatenates those in shard order, and they
    /// only ever feed order-insensitive histograms).
    #[test]
    fn sharded_recorder_matches_unsharded_recorder() {
        let spec = drop_fault_spec(42);
        let interval = 100_000u64;
        let base = recorder_streams(&spec, None, interval);
        assert!(!base.0.is_empty(), "sampler must have ticked");
        assert!(!base.1.is_empty(), "flows must have completed");
        let sharded = recorder_streams(&spec, Some(2), interval);

        assert_eq!(sharded.0.len(), base.0.len(), "sample stream lengths");
        for (i, (s, b)) in sharded.0.iter().zip(base.0.iter()).enumerate() {
            assert_eq!(
                format!("{s:?}"),
                format!("{b:?}"),
                "first divergent sample at index {i}"
            );
        }
        let sorted_u64 = |mut v: Vec<u64>| {
            v.sort_unstable();
            v
        };
        assert_eq!(sorted_u64(sharded.1), sorted_u64(base.1), "fct multiset");
        let mut rto = (sharded.2, base.2);
        rto.0.sort_unstable();
        rto.1.sort_unstable();
        assert_eq!(rto.0, rto.1, "rto multiset");
        let mut pfc = (sharded.3, base.3);
        pfc.0.sort_unstable();
        pfc.1.sort_unstable();
        assert_eq!(pfc.0, pfc.1, "pfc multiset");
    }

    /// The exact telemetry residual on a tie-afflicted seed (documented in
    /// DESIGN.md §9): when two cross-boundary packets arrive at the same
    /// instant on different ingress links, their injection order — not the
    /// unsharded causal order — breaks the tie, which can swap egress
    /// service order and shift a packet by one serialization quantum.
    /// That shifts `inflight_pkts` at the handful of sample ticks a
    /// shifted packet straddles; every other sample field, the FCT
    /// multiset, and all detection verdicts remain identical.
    #[test]
    fn sharded_recorder_residual_is_bounded_on_tie_seed() {
        let spec = drop_fault_spec(2025);
        let interval = 100_000u64;
        let base = recorder_streams(&spec, None, interval);
        let sharded = recorder_streams(&spec, Some(2), interval);

        assert_eq!(sharded.0.len(), base.0.len(), "sample stream lengths");
        let mut inflight_only_divergences = 0;
        for (s, b) in sharded.0.iter().zip(base.0.iter()) {
            let mut masked = *s;
            masked.2.inflight_pkts = b.2.inflight_pkts;
            assert_eq!(
                format!("{masked:?}"),
                format!("{b:?}"),
                "residual must be confined to inflight_pkts"
            );
            if s.2.inflight_pkts != b.2.inflight_pkts {
                inflight_only_divergences += 1;
            }
        }
        assert!(
            inflight_only_divergences <= 8,
            "residual grew: {inflight_only_divergences} divergent ticks"
        );
        let sorted_u64 = |mut v: Vec<u64>| {
            v.sort_unstable();
            v
        };
        assert_eq!(sorted_u64(sharded.1), sorted_u64(base.1), "fct multiset");
    }

    #[test]
    fn clean_trial_raises_no_alarm() {
        let r = run_trial(&small_spec());
        assert!(!r.false_alarm, "alarms: {:?}", r.alarms);
        assert!(!r.detected);
        assert_eq!(r.iter_max_dev.len(), 3);
        for &(_, d) in &r.iter_max_dev {
            assert!(d < 0.01, "clean deviation {d}");
        }
    }

    #[test]
    fn injected_drop_is_detected_and_localized() {
        let mut spec = small_spec();
        spec.fault = Some(FaultSpec {
            kind: InjectedFault::Drop { rate: 0.02 },
            at_iter: 1,
            heal_at_iter: None,
            bidirectional: false,
        });
        let r = run_trial(&spec);
        assert!(r.detected, "devs: {:?}", r.iter_max_dev);
        assert!(!r.false_alarm);
        assert_eq!(r.localized_correctly, Some(true), "{:?}", r.localization);
    }

    #[test]
    fn bidirectional_fault_localizes_to_cable() {
        let mut spec = small_spec();
        spec.fault = Some(FaultSpec {
            kind: InjectedFault::Drop { rate: 0.05 },
            at_iter: 1,
            heal_at_iter: None,
            bidirectional: true,
        });
        let r = run_trial(&spec);
        assert!(r.detected);
        assert_eq!(r.localized_correctly, Some(true), "{:?}", r.localization);
    }

    #[test]
    fn preexisting_faults_do_not_false_alarm() {
        let mut spec = small_spec();
        spec.preexisting = 3;
        let r = run_trial(&spec);
        assert_eq!(r.preexisting_ports.len(), 3);
        assert!(!r.false_alarm, "alarms: {:?}", r.alarms);
    }

    #[test]
    fn new_fault_detected_on_top_of_preexisting() {
        let mut spec = small_spec();
        spec.preexisting = 2;
        spec.fault = Some(FaultSpec {
            kind: InjectedFault::Drop { rate: 0.05 },
            at_iter: 1,
            heal_at_iter: None,
            bidirectional: false,
        });
        let r = run_trial(&spec);
        assert!(r.detected);
        assert!(!r.false_alarm);
    }

    #[test]
    fn learned_model_detects_too() {
        let mut spec = small_spec();
        spec.model = ModelKind::Learned { warmup: 1 };
        spec.iterations = 4;
        spec.fault = Some(FaultSpec {
            kind: InjectedFault::Drop { rate: 0.03 },
            at_iter: 2,
            heal_at_iter: None,
            bidirectional: false,
        });
        let r = run_trial(&spec);
        assert!(r.detected, "learned events: {:?}", r.learned_events);
        assert!(!r.false_alarm);
    }

    #[test]
    fn blackhole_is_a_screaming_signal() {
        let mut spec = small_spec();
        spec.fault = Some(FaultSpec {
            kind: InjectedFault::Blackhole,
            at_iter: 1,
            heal_at_iter: None,
            bidirectional: false,
        });
        let r = run_trial(&spec);
        assert!(r.detected);
        // The faulty iteration's deviation is enormous.
        let (_, faulty) = split_devs(&r);
        assert!(faulty.iter().any(|&d| d > 0.05), "{faulty:?}");
    }

    #[test]
    fn detection_is_instantaneous() {
        // §6: "precise, instantaneous detection" — the alarm fires in the
        // very iteration the fault appears.
        let mut spec = small_spec();
        spec.fault = Some(FaultSpec {
            kind: InjectedFault::Drop { rate: 0.05 },
            at_iter: 1,
            heal_at_iter: None,
            bidirectional: false,
        });
        let r = run_trial(&spec);
        assert_eq!(r.detection_latency_iters(), Some(0));
        // No fault → no latency to speak of.
        let clean = run_trial(&small_spec());
        assert_eq!(clean.detection_latency_iters(), None);
    }

    use std::cell::RefCell;
    use std::rc::Rc;

    /// Test recorder sharing its observations through an `Rc` so the test
    /// can inspect them after `run_trial_with` hands the box back.
    #[derive(Default)]
    struct Shared {
        events: Vec<(u64, fp_telemetry::Event)>,
        spans: Vec<(u32, u32, u64, u64)>,
        samples: usize,
    }
    struct Collect(Rc<RefCell<Shared>>);
    impl fp_telemetry::Recorder for Collect {
        fn sample_interval_ns(&self) -> u64 {
            100_000
        }
        fn on_link_sample(&mut self, _t_ns: u64, _link: u32, _s: &fp_telemetry::LinkSample) {
            self.0.borrow_mut().samples += 1;
        }
        fn on_event(&mut self, t_ns: u64, ev: &fp_telemetry::Event) {
            self.0.borrow_mut().events.push((t_ns, ev.clone()));
        }
        fn on_iteration(&mut self, job: u32, iter: u32, start_ns: u64, end_ns: u64) {
            self.0
                .borrow_mut()
                .spans
                .push((job, iter, start_ns, end_ns));
        }
    }

    #[test]
    fn recorder_rides_along_and_captures_the_story() {
        use fp_telemetry::Event;
        let mut spec = small_spec();
        spec.fault = Some(FaultSpec {
            kind: InjectedFault::Drop { rate: 0.05 },
            at_iter: 1,
            heal_at_iter: None,
            bidirectional: false,
        });
        let shared = Rc::new(RefCell::new(Shared::default()));
        let (r, rec) = run_trial_with(&spec, Some(Box::new(Collect(shared.clone()))));
        assert!(rec.is_some(), "the recorder comes back for finish()");
        drop(rec);
        assert!(r.detected);
        let s = shared.borrow();
        // One span per iteration, in order, well-formed.
        assert_eq!(s.spans.len(), spec.iterations as usize);
        for (i, &(job, iter, start, end)) in s.spans.iter().enumerate() {
            assert_eq!(job, 1);
            assert_eq!(iter, i as u32);
            assert!(start < end);
        }
        assert!(s.samples > 0, "link sampler ran");
        // The full story landed as structured events: the fault install from
        // the trace ring, the monitor's alarms, and both milestones.
        let has = |f: &dyn Fn(&Event) -> bool| s.events.iter().any(|(_, e)| f(e));
        assert!(has(&|e| matches!(e, Event::FaultSet { .. })));
        assert!(has(&|e| matches!(e, Event::Alarm { .. })));
        assert!(has(
            &|e| matches!(e, Event::Milestone { name, .. } if name == "fault_installed")
        ));
        assert!(has(
            &|e| matches!(e, Event::Milestone { name, .. } if name == "fault_detected")
        ));
    }

    #[test]
    fn attached_recorder_does_not_perturb_the_trial() {
        let mut spec = small_spec();
        spec.fault = Some(FaultSpec {
            kind: InjectedFault::Drop { rate: 0.02 },
            at_iter: 1,
            heal_at_iter: None,
            bidirectional: false,
        });
        let base = run_trial(&spec);
        let shared = Rc::new(RefCell::new(Shared::default()));
        let (r, _) = run_trial_with(&spec, Some(Box::new(Collect(shared))));
        assert_eq!(base.stats.events, r.stats.events);
        assert_eq!(base.iter_max_dev, r.iter_max_dev);
        assert_eq!(base.alarms, r.alarms);
        assert_eq!(base.stats.pkts_txed, r.stats.pkts_txed);
    }

    #[test]
    fn iter_goodput_is_populated_and_steady_when_clean() {
        let r = run_trial(&small_spec());
        assert_eq!(r.iter_goodput.len(), 3);
        for (i, &(iter, bps)) in r.iter_goodput.iter().enumerate() {
            assert_eq!(iter, i as u32);
            assert!(bps > 0.0);
        }
        let (_, g0) = r.iter_goodput[0];
        for &(_, g) in &r.iter_goodput {
            assert!(
                (g - g0).abs() / g0 < 0.05,
                "clean goodput varies: {g} vs {g0}"
            );
        }
        assert!(r.ctrl.is_none(), "no controller, no ctrl outcome");
    }

    #[test]
    fn dst_blackhole_is_detected_like_a_blackhole() {
        let mut spec = small_spec();
        spec.fault = Some(FaultSpec {
            kind: InjectedFault::DstBlackhole,
            at_iter: 1,
            heal_at_iter: None,
            bidirectional: false,
        });
        let r = run_trial(&spec);
        assert!(r.detected);
        assert!(!r.false_alarm);
    }

    /// Scripted controller: admin-down a fixed cable at the end of a fixed
    /// iteration — exercises the `run_trial_ctl` plumbing without the real
    /// `fp-ctrl` logic (which lives downstream of this crate).
    struct Scripted {
        at_iter: u32,
        cable: (u32, u32),
        summary: CtrlSummary,
    }
    impl TrialController for Scripted {
        fn on_iteration_end(&mut self, sim: &mut Simulator, iter: u32) {
            if iter == self.at_iter && self.summary.detect_ns.is_none() {
                let now = sim.now();
                let (leaf, v) = self.cable;
                let link = sim.topo.downlink(v, leaf);
                sim.schedule_control(
                    now + SimDuration::from_us(5),
                    fp_netsim::control::ControlAction::admin_down_cable(link),
                );
                self.summary.detect_ns = Some(now.as_ns());
            }
            for ac in sim.applied_controls() {
                if self.summary.mitigate_ns.is_none() {
                    self.summary.mitigate_ns = Some(ac.at.as_ns());
                    self.summary.mitigate_iter = Some(iter);
                    self.summary.mitigated_ports.push(self.cable);
                }
            }
        }
        fn summary(&self) -> CtrlSummary {
            self.summary.clone()
        }
    }

    #[test]
    fn scripted_controller_flows_into_ctrl_outcome() {
        let mut spec = small_spec();
        spec.iterations = 4;
        spec.fault = Some(FaultSpec {
            kind: InjectedFault::Blackhole,
            at_iter: 1,
            heal_at_iter: None,
            bidirectional: false,
        });
        // Dry-run to learn where the fault lands, then script that cable.
        let probe = run_trial(&spec);
        let cable = probe.fault_port.unwrap();
        let ctl = Rc::new(RefCell::new(Scripted {
            at_iter: 1,
            cable,
            summary: CtrlSummary::default(),
        }));
        let (r, _) = run_trial_ctl(&spec, None, Some(ctl));
        let c = r.ctrl.expect("controller ran");
        assert!(c.time_to_detect_ns.is_some());
        assert!(c.time_to_mitigate_ns.is_some());
        assert!(c.time_to_mitigate_ns >= c.time_to_detect_ns);
        assert_eq!(c.mitigated_ports, vec![cable]);
        assert_eq!(c.false_mitigations, 0, "the scripted cable IS the fault");
        // Post-mitigation goodput beats the unmitigated faulty iteration.
        let g = |i: usize| r.iter_goodput[i].1;
        assert!(g(3) > g(1), "mitigation should restore goodput");
    }

    #[test]
    fn scripted_controller_on_healthy_cable_counts_false_mitigation() {
        let mut spec = small_spec();
        spec.iterations = 3;
        let ctl = Rc::new(RefCell::new(Scripted {
            at_iter: 0,
            cable: (2, 1),
            summary: CtrlSummary::default(),
        }));
        let (r, _) = run_trial_ctl(&spec, None, Some(ctl));
        let c = r.ctrl.expect("controller ran");
        assert_eq!(c.false_mitigations, 1, "healthy cable downed in clean run");
    }

    #[test]
    fn rates_arithmetic() {
        let r = Rates {
            tp: 8,
            fn_: 2,
            fp: 1,
            tn: 9,
        };
        assert!((r.fnr() - 0.2).abs() < 1e-12);
        assert!((r.fpr() - 0.1).abs() < 1e-12);
        assert!((r.tpr() - 0.8).abs() < 1e-12);
        assert_eq!(Rates::default().fpr(), 0.0);
        assert_eq!(Rates::default().fnr(), 0.0);
    }

    #[test]
    fn roc_curve_monotonic_in_threshold() {
        let clean = [0.001, 0.002, 0.004, 0.008];
        let faulty = [0.012, 0.015, 0.02, 0.006];
        let pts = roc_curve(&clean, &faulty, &[0.0005, 0.005, 0.01, 0.05]);
        for w in pts.windows(2) {
            assert!(w[0].fpr >= w[1].fpr);
            assert!(w[0].tpr >= w[1].tpr);
        }
        // Perfect separation exists at 0.01 except the 0.006 faulty sample.
        let p01 = pts.iter().find(|p| p.threshold == 0.01).unwrap();
        assert_eq!(p01.fpr, 0.0);
        assert!((p01.tpr - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cable_placement_respects_constraints() {
        // 4 leaves x 2 vspines can lose at most one cable per leaf:
        // 3 pre-existing + 1 injected = the maximum feasible 4.
        let spec = TrialSpec {
            leaves: 4,
            spines: 2,
            preexisting: 3,
            ..small_spec()
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let (pre, fault) = choose_cables(&spec, &mut rng, 3, true);
        let mut all = pre.clone();
        all.push(fault.unwrap());
        // Distinct.
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
        // No leaf lost both uplinks.
        for leaf in 0..4u32 {
            let cnt = all.iter().filter(|(l, _)| *l == leaf).count();
            assert!(cnt < 2, "leaf {leaf} lost all uplinks");
        }
    }

    #[test]
    #[should_panic(expected = "cannot place another faulty cable")]
    fn infeasible_cable_placement_panics() {
        let spec = TrialSpec {
            leaves: 4,
            spines: 2,
            ..small_spec()
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = choose_cables(&spec, &mut rng, 5, false);
    }
}
