//! Per-iteration counter snapshots — the wire unit between a fabric and
//! the out-of-process monitor service (`fp-monitord`).
//!
//! A [`CounterSnapshot`] carries one job's closed iteration counters for
//! one fabric: the row-major `(leaf, vspine)` byte matrix the detector
//! compares, plus enough shape metadata for a consumer that has never seen
//! the fabric to rebuild a [`CounterStore`] and run the [`Monitor`]
//! incrementally. The per-source breakdown is deliberately *not* shipped:
//! the temporal-symmetry detector reads only per-port bytes
//! ([`crate::model::PortLoads::from_counters`]), and ring localization
//! correlates alarms across leaves rather than across senders, so the wire
//! format stays at `n_leaves × n_vspines` u64s per iteration (~4 KiB for
//! the paper's 32×16 fabric) instead of the ~128 KiB per-sender matrix.
//!
//! [`CounterStore`]: fp_netsim::counters::CounterStore
//! [`Monitor`]: crate::monitor::Monitor

use fp_netsim::counters::CounterStore;
use fp_netsim::packet::CollectiveTag;
use fp_netsim::time::SimTime;
use serde::{Deserialize, Serialize};

/// One job-iteration's counters from one fabric, as shipped to the
/// monitor service (in-process channel or newline-delimited JSON).
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct CounterSnapshot {
    /// Stream identity: which fabric produced this snapshot. The trial
    /// harness leaves this empty; feeds ([`crate::eval::monitord_feed`])
    /// stamp a per-stream id before pushing.
    pub fabric: String,
    /// Monitored job (collective tag sentinel).
    pub job: u32,
    /// Training iteration the counters cover.
    pub iter: u32,
    /// Leaf switch count (counter rows).
    pub n_leaves: u32,
    /// Virtual spine count (monitored ingress ports per leaf).
    pub n_vspines: u32,
    /// Simulated time the iteration's counters closed (max `last_seen`
    /// across leaves; informational — detection never reads it).
    pub t_ns: u64,
    /// Row-major `[leaf * n_vspines + vspine]` payload byte counters.
    pub bytes: Vec<u64>,
    /// Final snapshot of this `(fabric, job)` stream: the job ended, so
    /// the consumer must flush the trailing iteration and close out
    /// localization.
    pub last: bool,
}

impl CounterSnapshot {
    /// Extract the per-iteration snapshot sequence for `job` from a run's
    /// counter store, in scan order. The final snapshot has
    /// [`last`](Self::last) set; `fabric` is left empty for the feed to
    /// stamp.
    pub fn sequence_from(store: &CounterStore, job: u32) -> Vec<CounterSnapshot> {
        let (n_leaves, n_vspines) = store.dims();
        let iters = store.iters_of(job);
        let n = iters.len();
        iters
            .into_iter()
            .enumerate()
            .map(|(k, iter)| {
                let c = store.get(job, iter).expect("listed iteration");
                CounterSnapshot {
                    fabric: String::new(),
                    job,
                    iter,
                    n_leaves: n_leaves as u32,
                    n_vspines: n_vspines as u32,
                    t_ns: c.last_seen.iter().copied().max().unwrap_or(0),
                    bytes: c.bytes.clone(),
                    last: k + 1 == n,
                }
            })
            .collect()
    }

    /// Replay this snapshot into a consumer-side store so the byte matrix
    /// the [`Monitor`](crate::monitor::Monitor) reads is identical to the
    /// producer's. Only per-port bytes are reconstructed (see the module
    /// docs); packet counts and the per-source breakdown stay zero, which
    /// detection and ring localization never read.
    pub fn apply(&self, store: &mut CounterStore) {
        let tag = CollectiveTag {
            job: self.job,
            iter: self.iter,
        };
        let now = SimTime::from_ns(self.t_ns);
        for (i, &b) in self.bytes.iter().enumerate() {
            if b > 0 {
                let leaf = (i / self.n_vspines as usize) as u32;
                let vspine = (i % self.n_vspines as usize) as u32;
                store.record(leaf, vspine, tag, leaf, b, now);
            }
        }
    }

    /// An empty store with this snapshot's fabric dimensions.
    pub fn new_store(&self) -> CounterStore {
        CounterStore::new(self.n_leaves as usize, self.n_vspines as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::monitor::Monitor;

    /// Fill a store with `iters` iterations of a 2-leaf × 2-vspine byte
    /// matrix.
    fn producer_store(iters: &[[u64; 4]]) -> CounterStore {
        let mut s = CounterStore::new(2, 2);
        for (i, m) in iters.iter().enumerate() {
            for (p, &b) in m.iter().enumerate() {
                if b > 0 {
                    s.record(
                        (p / 2) as u32,
                        (p % 2) as u32,
                        CollectiveTag {
                            job: 1,
                            iter: i as u32,
                        },
                        (p / 2) as u32,
                        b,
                        SimTime::from_ns(100 * i as u64),
                    );
                }
            }
        }
        s
    }

    #[test]
    fn sequence_round_trips_through_apply() {
        let store = producer_store(&[[10, 20, 30, 40], [10, 20, 30, 40], [5, 20, 30, 40]]);
        let seq = CounterSnapshot::sequence_from(&store, 1);
        assert_eq!(seq.len(), 3);
        assert!(seq[2].last && !seq[0].last && !seq[1].last);
        assert_eq!(seq[0].bytes, vec![10, 20, 30, 40]);

        let mut rebuilt = seq[0].new_store();
        for s in &seq {
            s.apply(&mut rebuilt);
        }
        for i in 0..3u32 {
            assert_eq!(
                rebuilt.get(1, i).unwrap().bytes,
                store.get(1, i).unwrap().bytes
            );
        }
    }

    #[test]
    fn incremental_monitor_matches_offline_on_rebuilt_store() {
        let store = producer_store(&[
            [100, 100, 100, 100],
            [100, 100, 100, 100],
            [90, 100, 100, 100],
        ]);
        let mut offline = Monitor::new_learned(1, Detector::new(0.01), 1);
        offline.scan(&store, true);

        let seq = CounterSnapshot::sequence_from(&store, 1);
        let mut rebuilt = seq[0].new_store();
        let mut online = Monitor::new_learned(1, Detector::new(0.01), 1);
        for s in &seq {
            s.apply(&mut rebuilt);
            online.scan(&rebuilt, s.last);
        }
        assert_eq!(online.alarms, offline.alarms);
        assert_eq!(online.iter_max_dev, offline.iter_max_dev);
    }

    #[test]
    fn snapshot_survives_json() {
        let store = producer_store(&[[1, 2, 3, 4]]);
        let mut seq = CounterSnapshot::sequence_from(&store, 1);
        seq[0].fabric = "fabric-007".into();
        let line = serde_json::to_string(&seq[0]).unwrap();
        let back: CounterSnapshot = serde_json::from_str(&line).unwrap();
        assert_eq!(back, seq[0]);
    }
}
