//! Learning-based load prediction with healing rebaseline (paper §5.2,
//! Fig. 3).
//!
//! "It is also possible to learn the expected load on each port by simply
//! measuring the load during the first iterations of the collective. One
//! caveat is that a transient fault may exist during the first iterations,
//! but disappear thereafter. When a fault heals, the load observed on all
//! ports re-balances more evenly. When FlowPulse observes this behavior, it
//! replaces the baseline measurement with a new measurement reflecting the
//! improved network state."

use crate::model::PortLoads;
use serde::{Deserialize, Serialize};

/// What [`LearnedModel::observe`] concluded about an iteration.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub enum LearnedUpdate {
    /// Still collecting warm-up samples; no baseline yet.
    Warming,
    /// The baseline just became available.
    BaselineReady,
    /// Observation consistent with the baseline.
    Consistent,
    /// Observation deviates and looks like a *new fault* (imbalance grew or
    /// volume dropped).
    Deviating {
        /// Largest |relative deviation| across ports.
        max_rel: f64,
    },
    /// Observation deviates but looks like a *healed fault* (volume did not
    /// drop and ports re-balanced): the model rebaselined onto it.
    Rebalanced,
}

/// Baseline learned from the first iterations of a job.
#[derive(Clone, Debug)]
pub struct LearnedModel {
    /// Iterations averaged into the baseline.
    pub warmup: u32,
    /// Detection threshold used for the internal consistency check.
    pub threshold: f64,
    /// Minimum expected bytes for a port to participate in comparisons.
    pub min_expected: f64,
    /// Detect healing and rebaseline (Fig. 3). When false, a healed
    /// transient keeps alarming forever.
    pub healing_detection: bool,
    samples: Vec<PortLoads>,
    baseline: Option<PortLoads>,
    /// Times the baseline was replaced after observing a heal.
    pub rebaselines: u32,
}

impl LearnedModel {
    /// New model that averages `warmup` iterations into its baseline.
    pub fn new(warmup: u32, threshold: f64) -> Self {
        assert!(warmup >= 1);
        LearnedModel {
            warmup,
            threshold,
            min_expected: 1.0,
            healing_detection: true,
            samples: Vec::new(),
            baseline: None,
            rebaselines: 0,
        }
    }

    /// The current baseline, once learned.
    pub fn baseline(&self) -> Option<&PortLoads> {
        self.baseline.as_ref()
    }

    /// Drop the baseline and all warm-up samples, forcing the model to
    /// relearn from the next observations. Used by the control plane after
    /// a remediation lands: the post-mitigation fabric has a new
    /// `d/(s−f)` load shape, so detection must re-arm against it rather
    /// than keep comparing to the pre-fault baseline.
    pub fn force_relearn(&mut self) {
        self.baseline = None;
        self.samples.clear();
        self.rebaselines += 1;
    }

    /// Feed one iteration's observed loads, in order.
    pub fn observe(&mut self, obs: &PortLoads) -> LearnedUpdate {
        let Some(base) = self.baseline.clone() else {
            self.samples.push(obs.clone());
            if self.samples.len() as u32 >= self.warmup {
                self.baseline = Some(PortLoads::mean_of(&self.samples));
                self.samples.clear();
                return LearnedUpdate::BaselineReady;
            }
            return LearnedUpdate::Warming;
        };
        let max_rel = base.max_rel_dev(obs, self.min_expected);
        if max_rel <= self.threshold {
            return LearnedUpdate::Consistent;
        }
        if self.healing_detection && self.looks_like_heal(&base, obs) {
            // Restart learning from this healthier state.
            self.rebaselines += 1;
            self.samples.clear();
            self.samples.push(obs.clone());
            if self.warmup == 1 {
                self.baseline = Some(obs.clone());
                self.samples.clear();
            } else {
                self.baseline = None;
            }
            return LearnedUpdate::Rebalanced;
        }
        LearnedUpdate::Deviating { max_rel }
    }

    /// Heuristic from §5.2: "When a fault heals, the load observed on all
    /// ports re-balances more evenly." The discriminator is per-leaf
    /// imbalance (coefficient of variation): a heal reduces it, a new
    /// fault increases it. Total volume is only a sanity guard — with a
    /// reliable transport, retransmissions restore the totals even under
    /// drops, and duplicate deliveries can slightly inflate a
    /// fault-period baseline, so the volume check carries a
    /// threshold-sized tolerance.
    fn looks_like_heal(&self, base: &PortLoads, obs: &PortLoads) -> bool {
        let tol = self.threshold.max(1e-6);
        let vol_ok = obs.total() >= base.total() * (1.0 - tol);
        if !vol_ok {
            return false;
        }
        // Per-leaf imbalance comparison, with threshold-scaled tolerance so
        // measurement noise (jitter, retransmission timing) on unrelated
        // leaves cannot veto a genuine heal. A *new* fault makes some
        // leaf's CoV rise markedly and no leaf's fall markedly, so it can
        // never pass this gate.
        let mut improved = false;
        for leaf in 0..base.n_leaves as u32 {
            let b = base.leaf_cov(leaf);
            let o = obs.leaf_cov(leaf);
            if o > b + tol {
                return false; // some leaf got *more* imbalanced: not a heal
            }
            if o < b - tol {
                improved = true;
            }
        }
        improved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(vals: &[f64]) -> PortLoads {
        PortLoads {
            n_leaves: 1,
            n_vspines: vals.len(),
            bytes: vals.to_vec(),
        }
    }

    #[test]
    fn warmup_then_baseline() {
        let mut m = LearnedModel::new(2, 0.01);
        assert_eq!(m.observe(&loads(&[100.0, 100.0])), LearnedUpdate::Warming);
        assert_eq!(
            m.observe(&loads(&[102.0, 98.0])),
            LearnedUpdate::BaselineReady
        );
        let b = m.baseline().unwrap();
        assert_eq!(b.bytes, vec![101.0, 99.0]);
    }

    #[test]
    fn consistent_iterations_pass() {
        let mut m = LearnedModel::new(1, 0.01);
        m.observe(&loads(&[1000.0, 1000.0]));
        assert_eq!(
            m.observe(&loads(&[1001.0, 999.0])),
            LearnedUpdate::Consistent
        );
    }

    #[test]
    fn new_fault_deviates() {
        let mut m = LearnedModel::new(1, 0.01);
        m.observe(&loads(&[1000.0, 1000.0]));
        // Port 0 loses 5%: volume down, imbalance up → a fault, not a heal.
        match m.observe(&loads(&[950.0, 1000.0])) {
            LearnedUpdate::Deviating { max_rel } => assert!((max_rel - 0.05).abs() < 1e-9),
            u => panic!("expected Deviating, got {u:?}"),
        }
        assert_eq!(m.rebaselines, 0);
    }

    #[test]
    fn heal_rebaselines() {
        // Learn a baseline *during* a transient fault: port 0 suppressed.
        let mut m = LearnedModel::new(1, 0.01);
        m.observe(&loads(&[700.0, 1000.0]));
        // Fault heals: port 0 returns to parity, volume up, imbalance down.
        assert_eq!(
            m.observe(&loads(&[1000.0, 1000.0])),
            LearnedUpdate::Rebalanced
        );
        assert_eq!(m.rebaselines, 1);
        // With warmup=1 the new baseline is live immediately.
        assert_eq!(m.baseline().unwrap().bytes, vec![1000.0, 1000.0]);
        // Subsequent healthy iterations are consistent.
        assert_eq!(
            m.observe(&loads(&[1000.0, 1000.0])),
            LearnedUpdate::Consistent
        );
    }

    #[test]
    fn heal_with_multi_iteration_warmup_relearns() {
        let mut m = LearnedModel::new(2, 0.01);
        m.observe(&loads(&[700.0, 1000.0]));
        m.observe(&loads(&[700.0, 1000.0]));
        assert!(m.baseline().is_some());
        assert_eq!(
            m.observe(&loads(&[1000.0, 1000.0])),
            LearnedUpdate::Rebalanced
        );
        // One more sample completes the fresh warm-up.
        assert_eq!(
            m.observe(&loads(&[1000.0, 1000.0])),
            LearnedUpdate::BaselineReady
        );
    }

    #[test]
    fn healing_detection_can_be_disabled() {
        let mut m = LearnedModel::new(1, 0.01);
        m.healing_detection = false;
        m.observe(&loads(&[700.0, 1000.0]));
        match m.observe(&loads(&[1000.0, 1000.0])) {
            LearnedUpdate::Deviating { .. } => {}
            u => panic!("expected Deviating, got {u:?}"),
        }
    }

    #[test]
    fn volume_drop_is_never_a_heal() {
        let mut m = LearnedModel::new(1, 0.01);
        m.observe(&loads(&[1000.0, 1000.0]));
        // Re-balanced but *less* volume: e.g. a black hole that happens to
        // even things out must still alarm.
        match m.observe(&loads(&[900.0, 900.0])) {
            LearnedUpdate::Deviating { .. } => {}
            u => panic!("expected Deviating, got {u:?}"),
        }
    }
}
