//! Fault detection by per-port deviation (paper §5.3).
//!
//! "Every leaf switch counts the data volume received at each ingress port
//! from spines during each collective iteration. At the end of each
//! iteration … the switch compares the observations against the model
//! prediction. If the discrepancy exceeds a predefined threshold, the
//! switch declares a fault. … FlowPulse uses a detection threshold of 1%."

use crate::model::PortLoads;
use serde::{Deserialize, Serialize};

/// One port whose observation deviates from the prediction.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct Deviation {
    /// Leaf that observed the deviation.
    pub leaf: u32,
    /// Monitored ingress port (virtual spine index).
    pub vspine: u32,
    /// Predicted bytes.
    pub expected: f64,
    /// Observed bytes.
    pub observed: f64,
    /// Signed relative deviation `(observed − expected) / expected`.
    pub rel: f64,
}

/// Threshold comparator.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct Detector {
    /// Relative-deviation alarm threshold (paper default: 0.01).
    pub threshold: f64,
    /// Ports expected to carry fewer bytes than this are skipped (their
    /// relative deviation is meaningless); observed-but-unexpected traffic
    /// above this floor *is* flagged.
    pub min_expected: f64,
}

impl Default for Detector {
    fn default() -> Self {
        Detector {
            threshold: 0.01,
            min_expected: 1.0,
        }
    }
}

impl Detector {
    /// A detector with the paper's 1% threshold.
    pub fn new(threshold: f64) -> Self {
        Detector {
            threshold,
            ..Default::default()
        }
    }

    /// All ports (across all leaves) deviating beyond the threshold.
    pub fn compare(&self, expected: &PortLoads, observed: &PortLoads) -> Vec<Deviation> {
        assert_eq!(expected.bytes.len(), observed.bytes.len(), "shape mismatch");
        let mut out = Vec::new();
        for leaf in 0..expected.n_leaves as u32 {
            self.compare_leaf_into(expected, observed, leaf, &mut out);
        }
        out
    }

    /// Deviations visible at one leaf only — this is the per-switch,
    /// coordination-free check a real deployment runs.
    pub fn compare_leaf(
        &self,
        expected: &PortLoads,
        observed: &PortLoads,
        leaf: u32,
    ) -> Vec<Deviation> {
        let mut out = Vec::new();
        self.compare_leaf_into(expected, observed, leaf, &mut out);
        out
    }

    fn compare_leaf_into(
        &self,
        expected: &PortLoads,
        observed: &PortLoads,
        leaf: u32,
        out: &mut Vec<Deviation>,
    ) {
        for v in 0..expected.n_vspines as u32 {
            let e = expected.get(leaf, v);
            let o = observed.get(leaf, v);
            if e >= self.min_expected {
                let rel = (o - e) / e;
                if rel.abs() > self.threshold {
                    out.push(Deviation {
                        leaf,
                        vspine: v,
                        expected: e,
                        observed: o,
                        rel,
                    });
                }
            } else if o > self.min_expected {
                out.push(Deviation {
                    leaf,
                    vspine: v,
                    expected: e,
                    observed: o,
                    rel: f64::INFINITY,
                });
            }
        }
    }

    /// Largest absolute relative deviation (for ROC sweeps, which evaluate
    /// many thresholds over one run).
    pub fn max_abs_rel(&self, expected: &PortLoads, observed: &PortLoads) -> f64 {
        expected.max_rel_dev(observed, self.min_expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(vals: &[f64]) -> PortLoads {
        PortLoads {
            n_leaves: 1,
            n_vspines: vals.len(),
            bytes: vals.to_vec(),
        }
    }

    #[test]
    fn no_deviation_within_threshold() {
        let d = Detector::new(0.01);
        let e = loads(&[1000.0, 1000.0]);
        let o = loads(&[995.0, 1004.0]); // ±0.5%
        assert!(d.compare(&e, &o).is_empty());
    }

    #[test]
    fn detects_shortfall_beyond_threshold() {
        let d = Detector::new(0.01);
        let e = loads(&[1000.0, 1000.0]);
        let o = loads(&[980.0, 1000.0]); // −2%
        let devs = d.compare(&e, &o);
        assert_eq!(devs.len(), 1);
        assert_eq!(devs[0].vspine, 0);
        assert!((devs[0].rel + 0.02).abs() < 1e-12);
    }

    #[test]
    fn detects_excess_too() {
        // Excess traffic (e.g. a routing loop or mis-tagged flows) also
        // breaks symmetry.
        let d = Detector::new(0.01);
        let e = loads(&[1000.0]);
        let o = loads(&[1030.0]);
        let devs = d.compare(&e, &o);
        assert_eq!(devs.len(), 1);
        assert!(devs[0].rel > 0.0);
    }

    #[test]
    fn tiny_expected_ports_are_skipped() {
        let d = Detector::new(0.01);
        let e = loads(&[0.0]);
        let o = loads(&[0.0]);
        assert!(d.compare(&e, &o).is_empty());
    }

    #[test]
    fn unexpected_traffic_is_flagged() {
        let d = Detector::new(0.01);
        let e = loads(&[0.0]);
        let o = loads(&[800.0]);
        let devs = d.compare(&e, &o);
        assert_eq!(devs.len(), 1);
        assert!(devs[0].rel.is_infinite());
    }

    #[test]
    fn per_leaf_view_matches_global() {
        let d = Detector::new(0.01);
        let e = PortLoads {
            n_leaves: 2,
            n_vspines: 2,
            bytes: vec![100.0, 100.0, 100.0, 100.0],
        };
        let o = PortLoads {
            n_leaves: 2,
            n_vspines: 2,
            bytes: vec![100.0, 100.0, 90.0, 100.0],
        };
        let all = d.compare(&e, &o);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].leaf, 1);
        assert!(d.compare_leaf(&e, &o, 0).is_empty());
        assert_eq!(d.compare_leaf(&e, &o, 1), all);
    }

    #[test]
    fn exactly_at_threshold_is_not_an_alarm() {
        // Strict inequality: 1% threshold tolerates exactly 1%.
        let d = Detector::new(0.01);
        let e = loads(&[1000.0]);
        let o = loads(&[990.0]);
        assert!(d.compare(&e, &o).is_empty());
    }

    #[test]
    fn near_zero_prediction_with_real_traffic_is_flagged() {
        // `min_expected` floor: a prediction *below* the floor but nonzero
        // must behave like the zero case — real observed traffic on the
        // port is a symmetry break, not a skipped comparison.
        let d = Detector::new(0.01);
        let e = loads(&[0.5]); // below min_expected = 1.0
        let o = loads(&[900.0]);
        let devs = d.compare(&e, &o);
        assert_eq!(devs.len(), 1);
        assert!(devs[0].rel.is_infinite());
        assert_eq!(devs[0].observed, 900.0);
    }

    #[test]
    fn tiny_expected_and_tiny_observed_is_not_a_spurious_alarm() {
        // Divide-by-near-zero guard: 0.25 predicted vs 0.75 observed is a
        // 200% "relative deviation" but both are noise below the floor —
        // no alarm.
        let d = Detector::new(0.01);
        let e = loads(&[0.25]);
        let o = loads(&[0.75]);
        assert!(d.compare(&e, &o).is_empty());

        // Same with observed exactly at the floor (strict `>` comparison).
        let o_at_floor = loads(&[d.min_expected]);
        assert!(d.compare(&e, &o_at_floor).is_empty());
    }

    #[test]
    fn floor_boundary_uses_the_ratio_path() {
        // A prediction exactly at `min_expected` participates in the
        // normal relative comparison (`>=` floor check), so a genuine
        // shortfall there still alarms with a finite rel.
        let d = Detector::new(0.01);
        let e = loads(&[1.0]);
        let o = loads(&[0.5]);
        let devs = d.compare(&e, &o);
        assert_eq!(devs.len(), 1);
        assert!((devs[0].rel + 0.5).abs() < 1e-12);
        assert!(devs[0].rel.is_finite());
    }
}
