//! Lightweight event tracing for debugging and forensics.
//!
//! Tracing records *exceptional* events only (drops, faults, PFC state
//! changes, flow failures) into a bounded ring buffer, so it can stay
//! enabled in tests without distorting performance. The hot path (every
//! packet delivery) is never traced.

use crate::fault::FaultKind;
use crate::ids::LinkId;
use crate::packet::FlowId;
use crate::stats::DropCause;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One traced occurrence.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub enum TraceEvent {
    /// A packet was dropped.
    Drop {
        /// Link where the drop occurred (or was detected).
        link: LinkId,
        /// Why.
        cause: DropCause,
        /// Owning flow if it was a data packet.
        flow: Option<FlowId>,
    },
    /// A fault was installed on a link.
    FaultSet {
        /// Target link.
        link: LinkId,
        /// The fault.
        kind: FaultKind,
    },
    /// A fault was cleared.
    FaultCleared {
        /// Target link.
        link: LinkId,
    },
    /// PFC pause state changed at the transmitter of `link`.
    PfcState {
        /// Affected link.
        link: LinkId,
        /// Priority class.
        prio: u8,
        /// New state.
        paused: bool,
    },
    /// A flow gave up retransmitting.
    FlowFailed {
        /// The abandoned flow.
        flow: FlowId,
    },
}

/// Bounded ring buffer of `(time, event)` records.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    cap: usize,
    buf: VecDeque<(SimTime, TraceEvent)>,
    /// Total events offered (including evicted ones).
    pub offered: u64,
}

impl TraceBuffer {
    /// Buffer keeping the most recent `cap` events.
    pub fn new(cap: usize) -> Self {
        TraceBuffer {
            cap,
            buf: VecDeque::with_capacity(cap.min(1024)),
            offered: 0,
        }
    }

    /// Append, evicting the oldest record if full.
    pub fn push(&mut self, at: SimTime, ev: TraceEvent) {
        self.offered += 1;
        if self.cap == 0 {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back((at, ev));
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.buf.iter()
    }

    /// Retained record count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut t = TraceBuffer::new(2);
        for i in 0..4 {
            t.push(
                SimTime::from_ns(i),
                TraceEvent::FaultCleared { link: LinkId(0) },
            );
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.offered, 4);
        let times: Vec<u64> = t.records().map(|(at, _)| at.as_ns()).collect();
        assert_eq!(times, vec![2, 3]);
    }

    #[test]
    fn zero_capacity_discards() {
        let mut t = TraceBuffer::new(0);
        t.push(SimTime::ZERO, TraceEvent::FlowFailed { flow: 1 });
        assert!(t.is_empty());
        assert_eq!(t.offered, 1);
    }
}
