//! Lightweight event tracing for debugging and forensics.
//!
//! Tracing records *exceptional* events only (drops, faults, PFC state
//! changes, flow failures) into a bounded ring buffer, so it can stay
//! enabled in tests without distorting performance. The hot path (every
//! packet delivery) is never traced.

use crate::fault::FaultKind;
use crate::ids::LinkId;
use crate::packet::FlowId;
use crate::stats::DropCause;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One traced occurrence.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub enum TraceEvent {
    /// A packet was dropped.
    Drop {
        /// Link where the drop occurred (or was detected).
        link: LinkId,
        /// Why.
        cause: DropCause,
        /// Owning flow if it was a data packet.
        flow: Option<FlowId>,
    },
    /// A fault was installed on a link.
    FaultSet {
        /// Target link.
        link: LinkId,
        /// The fault.
        kind: FaultKind,
    },
    /// A fault was cleared.
    FaultCleared {
        /// Target link.
        link: LinkId,
    },
    /// PFC pause state changed at the transmitter of `link`.
    PfcState {
        /// Affected link.
        link: LinkId,
        /// Priority class.
        prio: u8,
        /// New state.
        paused: bool,
    },
    /// A flow gave up retransmitting.
    FlowFailed {
        /// The abandoned flow.
        flow: FlowId,
    },
    /// A control-plane action (remediation) was applied to a link.
    ControlApplied {
        /// Target link.
        link: LinkId,
    },
    /// Temporal-symmetry fast-forward replayed a steady-state span instead
    /// of simulating it (one record per replayed span, stamped at the
    /// boundary where the replay began).
    MemoFastForward {
        /// Collective iterations replayed in this span.
        iters: u32,
        /// Engine events the replayed span accounts for.
        events: u64,
    },
}

impl TraceEvent {
    /// Normalize into the telemetry crate's engine-agnostic [`Event`]
    /// (fault kinds and drop causes become their `Debug` labels).
    ///
    /// [`Event`]: fp_telemetry::Event
    pub fn to_telemetry(&self) -> fp_telemetry::Event {
        use fp_telemetry::Event;
        match *self {
            TraceEvent::Drop { link, cause, flow } => Event::Drop {
                link: link.0,
                cause: format!("{cause:?}"),
                flow: flow.map(u64::from),
            },
            TraceEvent::FaultSet { link, kind } => Event::FaultSet {
                link: link.0,
                kind: format!("{kind:?}"),
            },
            TraceEvent::FaultCleared { link } => Event::FaultCleared { link: link.0 },
            TraceEvent::PfcState { link, prio, paused } => Event::Pfc {
                link: link.0,
                prio,
                paused,
            },
            TraceEvent::FlowFailed { flow } => Event::FlowFailed {
                flow: u64::from(flow),
            },
            TraceEvent::ControlApplied { link } => Event::Control {
                phase: "apply".into(),
                detail: format!("link {}", link.0),
            },
            TraceEvent::MemoFastForward { iters, events } => {
                Event::MemoFastForward { iters, events }
            }
        }
    }
}

/// A serializable `(time, event)` trace record — what harnesses export.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct TraceRecord {
    /// Simulated time, nanoseconds.
    pub t_ns: u64,
    /// The traced event.
    pub event: TraceEvent,
}

/// Bounded ring buffer of `(time, event)` records.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    cap: usize,
    buf: VecDeque<(SimTime, TraceEvent)>,
    /// Total events offered (including evicted ones).
    pub offered: u64,
}

impl TraceBuffer {
    /// Buffer keeping the most recent `cap` events.
    pub fn new(cap: usize) -> Self {
        TraceBuffer {
            cap,
            buf: VecDeque::with_capacity(cap.min(1024)),
            offered: 0,
        }
    }

    /// Append, evicting the oldest record if full.
    pub fn push(&mut self, at: SimTime, ev: TraceEvent) {
        self.offered += 1;
        if self.cap == 0 {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back((at, ev));
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.buf.iter()
    }

    /// Retained record count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True if the ring evicted records (`offered` exceeds what is
    /// retained) — exports should surface this explicitly.
    pub fn truncated(&self) -> bool {
        self.offered > self.buf.len() as u64
    }

    /// Snapshot the retained records as serializable [`TraceRecord`]s,
    /// oldest first.
    pub fn to_records(&self) -> Vec<TraceRecord> {
        self.buf
            .iter()
            .map(|&(at, event)| TraceRecord {
                t_ns: at.as_ns(),
                event,
            })
            .collect()
    }

    /// Drain the retained records into a telemetry recorder as structured
    /// events (oldest first). The buffer itself is not modified.
    pub fn export_into(&self, rec: &mut dyn fp_telemetry::Recorder) {
        for (at, ev) in self.buf.iter() {
            rec.on_event(at.as_ns(), &ev.to_telemetry());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut t = TraceBuffer::new(2);
        for i in 0..4 {
            t.push(
                SimTime::from_ns(i),
                TraceEvent::FaultCleared { link: LinkId(0) },
            );
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.offered, 4);
        let times: Vec<u64> = t.records().map(|(at, _)| at.as_ns()).collect();
        assert_eq!(times, vec![2, 3]);
    }

    #[test]
    fn zero_capacity_discards() {
        let mut t = TraceBuffer::new(0);
        t.push(SimTime::ZERO, TraceEvent::FlowFailed { flow: 1 });
        assert!(t.is_empty());
        assert_eq!(t.offered, 1);
        assert!(t.truncated());
    }

    #[test]
    fn truncation_is_flagged_only_after_eviction() {
        let mut t = TraceBuffer::new(2);
        t.push(SimTime::from_ns(1), TraceEvent::FlowFailed { flow: 1 });
        t.push(SimTime::from_ns(2), TraceEvent::FlowFailed { flow: 2 });
        assert!(!t.truncated());
        t.push(SimTime::from_ns(3), TraceEvent::FlowFailed { flow: 3 });
        assert!(t.truncated());
    }

    #[test]
    fn records_snapshot_and_telemetry_export_agree() {
        let mut t = TraceBuffer::new(8);
        t.push(
            SimTime::from_ns(10),
            TraceEvent::FaultSet {
                link: LinkId(4),
                kind: FaultKind::SilentBlackhole,
            },
        );
        t.push(
            SimTime::from_ns(20),
            TraceEvent::PfcState {
                link: LinkId(2),
                prio: 1,
                paused: true,
            },
        );
        let recs = t.to_records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].t_ns, 10);
        assert_eq!(recs[1].event, t.records().nth(1).unwrap().1);

        struct Collect(Vec<(u64, fp_telemetry::Event)>);
        impl fp_telemetry::Recorder for Collect {
            fn on_event(&mut self, t_ns: u64, ev: &fp_telemetry::Event) {
                self.0.push((t_ns, ev.clone()));
            }
        }
        let mut c = Collect(Vec::new());
        t.export_into(&mut c);
        assert_eq!(c.0.len(), 2);
        assert_eq!(
            c.0[0].1,
            fp_telemetry::Event::FaultSet {
                link: 4,
                kind: "SilentBlackhole".into()
            }
        );
        assert_eq!(
            c.0[1].1,
            fp_telemetry::Event::Pfc {
                link: 2,
                prio: 1,
                paused: true
            }
        );
        // Export does not consume the buffer.
        assert_eq!(t.len(), 2);
    }
}
