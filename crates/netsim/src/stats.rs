//! Run-wide statistics and drop accounting.

use crate::packet::NPRIO;
use serde::{Deserialize, Serialize};

/// Why a packet was dropped.
#[derive(Copy, Clone, PartialEq, Eq, Serialize, Deserialize, Debug)]
pub enum DropCause {
    /// Sampled by a silent fault on the wire (the FlowPulse signal).
    SilentFault,
    /// Link was administratively downed while packets were queued on it.
    AdminDown,
    /// No valid route (all candidate uplinks admin-down).
    NoRoute,
}

impl DropCause {
    /// Number of causes (array sizing).
    pub const COUNT: usize = 3;

    /// Dense index.
    pub fn idx(self) -> usize {
        match self {
            DropCause::SilentFault => 0,
            DropCause::AdminDown => 1,
            DropCause::NoRoute => 2,
        }
    }
}

/// Aggregate counters for one simulation run.
#[derive(Clone, Default, Serialize, Deserialize, Debug)]
pub struct Stats {
    /// Events processed by the engine.
    pub events: u64,
    /// Of `events`, how many were head-of-pipeline deliveries dispatched
    /// straight from a link's in-flight FIFO (never pushed through the
    /// scheduler). `events - pipeline_deliveries + rto_stale_skips` is the
    /// number of scheduler pops a drained, recorder-free run performed.
    pub pipeline_deliveries: u64,
    /// Packets that completed serialization on some link.
    pub pkts_txed: u64,
    /// Data packets injected by hosts (first transmissions only).
    pub data_pkts_sent: u64,
    /// ACK packets injected.
    pub acks_sent: u64,
    /// Retransmitted data packets enqueued.
    pub retransmits: u64,
    /// RTO timer events discarded by lazy cancellation (segment already
    /// acknowledged or flow failed when the timer surfaced). Not included
    /// in `events`.
    pub rto_stale_skips: u64,
    /// Data packets delivered to their destination host (including dups).
    pub data_pkts_delivered: u64,
    /// Duplicate data packets delivered (already-received seq).
    pub dup_pkts_delivered: u64,
    /// Payload bytes delivered to destination hosts (unique segments).
    pub bytes_delivered: u64,
    /// Flows whose receiver saw every segment.
    pub flows_completed: u64,
    /// Flows abandoned after `rto_max_attempts` on some segment.
    pub flows_failed: u64,
    /// Drops by cause.
    pub drops: [u64; DropCause::COUNT],
    /// PFC pause frames sent.
    pub pfc_pauses: u64,
    /// PFC resume frames sent.
    pub pfc_resumes: u64,
    /// Nanoseconds spent paused per priority, summed over all links.
    /// Counts completed pause intervals only — a pause still open when the
    /// run ends contributes nothing.
    pub pfc_pause_ns: [u64; NPRIO],
    /// High-water mark of any single egress queue, in bytes.
    pub max_queue_bytes: u64,
    /// Spray decisions where entropy-recycle remediation
    /// (`ControlVerb::RecycleEntropy`) removed at least one quarantined
    /// uplink from the candidate set.
    pub spray_avoided_picks: u64,
}

impl Stats {
    /// Record a drop.
    pub fn drop(&mut self, cause: DropCause) {
        self.drops[cause.idx()] += 1;
    }

    /// Total drops across causes.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Drops attributed to silent faults.
    pub fn silent_drops(&self) -> u64 {
        self.drops[DropCause::SilentFault.idx()]
    }

    /// Fold another run's counters into this one (used to merge per-shard
    /// statistics of an intra-trial sharded run). Every field is a sum
    /// except `max_queue_bytes`, which is a high-water mark. Each counter
    /// has a single writing shard (transmit-side stats at the sender's
    /// shard, delivery-side at the receiver's), so the merged totals equal
    /// an unsharded run's.
    pub fn merge(&mut self, other: &Stats) {
        self.events += other.events;
        self.pipeline_deliveries += other.pipeline_deliveries;
        self.pkts_txed += other.pkts_txed;
        self.data_pkts_sent += other.data_pkts_sent;
        self.acks_sent += other.acks_sent;
        self.retransmits += other.retransmits;
        self.rto_stale_skips += other.rto_stale_skips;
        self.data_pkts_delivered += other.data_pkts_delivered;
        self.dup_pkts_delivered += other.dup_pkts_delivered;
        self.bytes_delivered += other.bytes_delivered;
        self.flows_completed += other.flows_completed;
        self.flows_failed += other.flows_failed;
        for (a, b) in self.drops.iter_mut().zip(&other.drops) {
            *a += b;
        }
        self.pfc_pauses += other.pfc_pauses;
        self.pfc_resumes += other.pfc_resumes;
        for (a, b) in self.pfc_pause_ns.iter_mut().zip(&other.pfc_pause_ns) {
            *a += b;
        }
        self.max_queue_bytes = self.max_queue_bytes.max(other.max_queue_bytes);
        self.spray_avoided_picks += other.spray_avoided_picks;
    }

    /// Counter growth from `prev` to `self` — one memo window's worth of
    /// statistics (see `crate::sim::memo`). `max_queue_bytes` is a
    /// high-water mark, not a counter: the delta carries zero and replay
    /// leaves the mark alone (a matched steady-state window sets no new
    /// one).
    pub(crate) fn memo_diff(&self, prev: &Stats) -> Stats {
        Stats {
            events: self.events - prev.events,
            pipeline_deliveries: self.pipeline_deliveries - prev.pipeline_deliveries,
            pkts_txed: self.pkts_txed - prev.pkts_txed,
            data_pkts_sent: self.data_pkts_sent - prev.data_pkts_sent,
            acks_sent: self.acks_sent - prev.acks_sent,
            retransmits: self.retransmits - prev.retransmits,
            rto_stale_skips: self.rto_stale_skips - prev.rto_stale_skips,
            data_pkts_delivered: self.data_pkts_delivered - prev.data_pkts_delivered,
            dup_pkts_delivered: self.dup_pkts_delivered - prev.dup_pkts_delivered,
            bytes_delivered: self.bytes_delivered - prev.bytes_delivered,
            flows_completed: self.flows_completed - prev.flows_completed,
            flows_failed: self.flows_failed - prev.flows_failed,
            drops: std::array::from_fn(|i| self.drops[i] - prev.drops[i]),
            pfc_pauses: self.pfc_pauses - prev.pfc_pauses,
            pfc_resumes: self.pfc_resumes - prev.pfc_resumes,
            pfc_pause_ns: std::array::from_fn(|i| self.pfc_pause_ns[i] - prev.pfc_pause_ns[i]),
            max_queue_bytes: 0,
            spray_avoided_picks: self.spray_avoided_picks - prev.spray_avoided_picks,
        }
    }

    /// Replay `reps` repetitions of one recorded window delta.
    pub(crate) fn memo_apply(&mut self, d: &Stats, reps: u64) {
        self.events += d.events * reps;
        self.pipeline_deliveries += d.pipeline_deliveries * reps;
        self.pkts_txed += d.pkts_txed * reps;
        self.data_pkts_sent += d.data_pkts_sent * reps;
        self.acks_sent += d.acks_sent * reps;
        self.retransmits += d.retransmits * reps;
        self.rto_stale_skips += d.rto_stale_skips * reps;
        self.data_pkts_delivered += d.data_pkts_delivered * reps;
        self.dup_pkts_delivered += d.dup_pkts_delivered * reps;
        self.bytes_delivered += d.bytes_delivered * reps;
        self.flows_completed += d.flows_completed * reps;
        self.flows_failed += d.flows_failed * reps;
        for (a, b) in self.drops.iter_mut().zip(&d.drops) {
            *a += b * reps;
        }
        self.pfc_pauses += d.pfc_pauses * reps;
        self.pfc_resumes += d.pfc_resumes * reps;
        for (a, b) in self.pfc_pause_ns.iter_mut().zip(&d.pfc_pause_ns) {
            *a += b * reps;
        }
        self.spray_avoided_picks += d.spray_avoided_picks * reps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_accounting() {
        let mut s = Stats::default();
        s.drop(DropCause::SilentFault);
        s.drop(DropCause::SilentFault);
        s.drop(DropCause::NoRoute);
        assert_eq!(s.silent_drops(), 2);
        assert_eq!(s.total_drops(), 3);
        assert_eq!(s.drops[DropCause::AdminDown.idx()], 0);
    }

    #[test]
    fn merge_sums_and_high_waters() {
        let mut a = Stats {
            events: 10,
            max_queue_bytes: 100,
            ..Default::default()
        };
        a.drop(DropCause::SilentFault);
        a.pfc_pause_ns[0] = 5;
        let mut b = Stats {
            events: 7,
            max_queue_bytes: 50,
            ..Default::default()
        };
        b.drop(DropCause::NoRoute);
        b.pfc_pause_ns[0] = 3;
        a.merge(&b);
        assert_eq!(a.events, 17);
        assert_eq!(a.max_queue_bytes, 100);
        assert_eq!(a.total_drops(), 2);
        assert_eq!(a.pfc_pause_ns[0], 8);
    }

    #[test]
    fn cause_indices_are_dense_and_distinct() {
        let mut seen = [false; DropCause::COUNT];
        for c in [
            DropCause::SilentFault,
            DropCause::AdminDown,
            DropCause::NoRoute,
        ] {
            assert!(!seen[c.idx()]);
            seen[c.idx()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
