//! Bandwidth and byte-size units.
//!
//! Bandwidth is stored as bits/second in a `u64` and converted to
//! serialization times with `u128` intermediate math, so a 400 Gb/s link
//! serializing a 4 KiB packet yields an exact integer-nanosecond duration
//! with no cumulative drift.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Link bandwidth, stored in bits per second.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Debug)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Construct from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Construct from gigabits per second.
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth(gbps * 1_000_000_000)
    }

    /// Bits per second.
    pub const fn bps(self) -> u64 {
        self.0
    }

    /// Time to serialize `bytes` onto this link, rounded up to the next
    /// nanosecond (a packet is never free to transmit).
    pub fn ser_time(self, bytes: u64) -> SimDuration {
        debug_assert!(self.0 > 0, "zero-bandwidth link");
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.0 as u128);
        SimDuration::from_ns(ns as u64)
    }

    /// Bytes transferred in `d` at this rate (floor).
    pub fn bytes_in(self, d: SimDuration) -> u64 {
        (d.as_ns() as u128 * self.0 as u128 / (8 * 1_000_000_000)) as u64
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 && self.0.is_multiple_of(1_000_000_000) {
            write!(f, "{}Gbps", self.0 / 1_000_000_000)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

/// Pretty-print a byte count (reporting helper for harnesses and examples).
pub fn fmt_bytes(b: u64) -> String {
    const KI: u64 = 1024;
    const MI: u64 = 1024 * 1024;
    const GI: u64 = 1024 * 1024 * 1024;
    if b >= GI {
        format!("{:.2}GiB", b as f64 / GI as f64)
    } else if b >= MI {
        format!("{:.2}MiB", b as f64 / MI as f64)
    } else if b >= KI {
        format!("{:.2}KiB", b as f64 / KI as f64)
    } else {
        format!("{}B", b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ser_time_exact_for_round_rates() {
        // 4096B at 400Gbps: 4096*8 bits / 400e9 bps = 81.92ns -> ceil 82ns
        assert_eq!(Bandwidth::from_gbps(400).ser_time(4096).as_ns(), 82);
        // 1 byte at 8 bps = 1s
        assert_eq!(Bandwidth::from_bps(8).ser_time(1).as_ns(), 1_000_000_000);
        // never zero for a nonzero payload
        assert_eq!(Bandwidth::from_gbps(400).ser_time(1).as_ns(), 1);
    }

    #[test]
    fn bytes_in_is_inverse_ish() {
        let bw = Bandwidth::from_gbps(100);
        let d = bw.ser_time(1_000_000);
        let b = bw.bytes_in(d);
        assert!((1_000_000..1_000_100).contains(&b), "b={b}");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bandwidth::from_gbps(400).to_string(), "400Gbps");
        assert_eq!(Bandwidth::from_bps(1500).to_string(), "1500bps");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00MiB");
    }
}
