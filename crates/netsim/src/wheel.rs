//! Hierarchical timing wheel: the default future-event scheduler.
//!
//! The simulator's event mix is dominated by near-future events at a few
//! fixed offsets — per-port serialization ticks, link latency, the 5 µs
//! RTO, ACK-coalescing flushes — which a binary heap pays `O(log n)` per
//! operation to order. A hashed hierarchical timing wheel files each event
//! into a slot indexed by digits of its timestamp instead, making push and
//! expire `O(1)` for the near future.
//!
//! ## Layout
//!
//! [`WHEEL_LEVELS`] levels of [`WHEEL_SLOTS`] slots each, at 1 ns base
//! resolution (timestamps are integer nanoseconds). A timestamp is viewed
//! as little-endian base-[`WHEEL_SLOTS`] digits; an event files into the
//! *most significant level whose digit differs from the cursor's* — level 0
//! if only the low byte differs, level 1 if the second byte differs, and so
//! on ([`SimTime::radix_level`]). Four 8-bit levels cover the low 32 bits:
//! a horizon of 2³² ns ≈ 4.29 s past the cursor, far beyond any RTO backoff
//! the simulator produces. Events beyond the horizon go to an *overflow
//! spill* — a min-heap ordered by `(time, seq)` — and migrate into the
//! wheel when the cursor reaches their 2³²-ns epoch.
//!
//! ## Expiry and cascade
//!
//! The cursor only ever sits at a popped event's timestamp: the wheel
//! advances *lazily*, jumping straight to the next occupied slot (found by
//! scanning per-level occupancy bitmaps, not by ticking through empty
//! slots). When the next occupied slot is at level 0 its entries are due —
//! level-0 slots are 1 ns wide, so every entry in one shares a single
//! timestamp. When it is at a higher level, its entries are *cascaded*:
//! re-filed one or more levels down after the cursor jumps to the slot's
//! start, then the scan restarts.
//!
//! ## Determinism
//!
//! Equal-timestamp events must pop in global insertion order even though
//! cascading interleaves re-filed entries behind directly-pushed ones in
//! the same slot bucket. Each entry carries the scheduler-wide sequence
//! number assigned at push; a due level-0 slot is sorted by that sequence
//! before dispatch. Because a due slot holds exactly one timestamp, this
//! sort *is* global FIFO order — no comparison against other slots is
//! needed. The overflow spill orders by `(time, seq)` and, by construction,
//! only surfaces when the wheel is empty, so wheel-vs-spill ordering can
//! never invert. The equivalence with [`EventHeap`](crate::engine::EventHeap)
//! is asserted by a shared-script property test (`tests/sched_equiv.rs`)
//! and by byte-identity tests over full trials.

use crate::engine::{EventKind, SchedKind, SchedStats, Scheduler};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of slots per level (8 → 256 slots, one timestamp byte per level).
pub const WHEEL_BITS: u32 = 8;
/// Slots per wheel level.
pub const WHEEL_SLOTS: usize = 1 << WHEEL_BITS;
/// Hierarchy depth. 4 byte-levels span 2³² ns ≈ 4.29 s past the cursor.
pub const WHEEL_LEVELS: usize = 4;
/// Words per occupancy bitmap.
const OCC_WORDS: usize = WHEEL_SLOTS / 64;

#[derive(Copy, Clone)]
struct Entry {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

/// Overflow-spill entry; reversed `(at, seq)` order makes the std max-heap
/// pop earliest-first, exactly like `HeapEntry` in the heap backend.
struct Spill(Entry);

impl PartialEq for Spill {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl Eq for Spill {}
impl PartialOrd for Spill {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Spill {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// Hierarchical timing wheel (see module docs for layout and invariants).
///
/// The cursor may run ahead of the engine's clock — peeking advances it to
/// the next pending event, and popping a lazily-cancelled RTO timer
/// consumes a *future* timestamp without advancing the clock — so a push
/// may legally land below the cursor (the caller then schedules off its
/// own, earlier, clock). Such entries are due before everything still
/// filed in the wheel, and are spliced directly into the due buffer in
/// `(at, seq)` order, exactly where the heap backend would surface them.
pub struct TimingWheel {
    /// `WHEEL_LEVELS × WHEEL_SLOTS` buckets, flattened level-major.
    slots: Box<[Vec<Entry>]>,
    /// Per-level occupancy bitmaps; bit = slot holds ≥ 1 entry.
    occ: [[u64; OCC_WORDS]; WHEEL_LEVELS],
    /// Events beyond the wheel horizon, earliest-first.
    overflow: BinaryHeap<Spill>,
    /// Current position: the timestamp of the most recent due slot. All
    /// events *filed in the wheel or overflow* are at or after this
    /// instant (entries spliced into `due` may sit below it).
    cursor: SimTime,
    /// The due buffer: the most recently drained level-0 slot, sorted by
    /// `seq`, consumed from `due_pos` forward. Reused to avoid allocation.
    due: Vec<Entry>,
    due_pos: usize,
    /// Pending events across wheel + overflow + unread due entries.
    len: usize,
    /// Next global sequence number; advanced by pushes *and* reservations,
    /// so tie-breaks line up with pipeline entries that only reserved.
    seq: u64,
    stats: SchedStats,
}

impl Default for TimingWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimingWheel {
    /// Empty wheel with the cursor at time zero.
    pub fn new() -> Self {
        TimingWheel {
            slots: (0..WHEEL_LEVELS * WHEEL_SLOTS)
                .map(|_| Vec::new())
                .collect(),
            occ: [[0; OCC_WORDS]; WHEEL_LEVELS],
            overflow: BinaryHeap::new(),
            cursor: SimTime::ZERO,
            due: Vec::new(),
            due_pos: 0,
            len: 0,
            seq: 0,
            stats: SchedStats::default(),
        }
    }

    /// Consume the next sequence number without pushing (see
    /// [`Scheduler::reserve_seq`]).
    #[inline]
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Reserve `n` consecutive sequence numbers, returning the first (see
    /// [`Scheduler::reserve_seq_range`]).
    #[inline]
    pub fn reserve_seq_range(&mut self, n: u64) -> u64 {
        let seq = self.seq;
        self.seq += n;
        seq
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.reserve_seq();
        self.stats.pushes += 1;
        if at < self.cursor {
            // The cursor overshot `at` (peek-ahead, or a popped-but-stale
            // RTO timer); everything in the wheel/overflow is at or after
            // the cursor, so this entry is due before all of it. Splice
            // into the unconsumed tail of the due buffer, keeping
            // (at, seq) order (`seq` is globally maximal, so it follows
            // any equal-timestamp entry).
            let e = Entry { at, seq, kind };
            let mut i = self.due.len();
            while i > self.due_pos && self.due[i - 1].at > e.at {
                i -= 1;
            }
            self.due.insert(i, e);
            self.stats.due_splices += 1;
        } else {
            self.file(Entry { at, seq, kind });
        }
        self.len += 1;
        self.stats.max_pending = self.stats.max_pending.max(self.len as u64);
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.ensure_due();
        let e = self.due.get(self.due_pos)?;
        self.due_pos += 1;
        self.len -= 1;
        self.stats.pops += 1;
        Some((e.at, e.kind))
    }

    /// Pop the earliest event if it is due at or before `horizon`.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, EventKind)> {
        self.ensure_due();
        let e = self.due.get(self.due_pos)?;
        if e.at > horizon {
            return None;
        }
        self.due_pos += 1;
        self.len -= 1;
        self.stats.pops += 1;
        Some((e.at, e.kind))
    }

    /// Timestamp of the next event without removing it. `&mut` because the
    /// wheel advances its cursor lazily on peek.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.ensure_due();
        self.due.get(self.due_pos).map(|e| e.at)
    }

    /// `(timestamp, sequence)` of the next event without removing it.
    pub fn peek_next(&mut self) -> Option<(SimTime, u64)> {
        self.ensure_due();
        self.due.get(self.due_pos).map(|e| (e.at, e.seq))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events ever pushed (monotonic; excludes reservations).
    pub fn scheduled(&self) -> u64 {
        self.stats.pushes
    }

    /// Lifetime occupancy counters.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Visit every pending entry (memo snapshot): filed slots, the overflow
    /// spill and the unread due-buffer tail. Order is internal, not pop
    /// order.
    pub(crate) fn memo_for_each(&self, f: &mut dyn FnMut(SimTime, u64, EventKind)) {
        for slot in self.slots.iter() {
            for e in slot {
                f(e.at, e.seq, e.kind);
            }
        }
        for s in self.overflow.iter() {
            f(s.0.at, s.0.seq, s.0.kind);
        }
        for e in &self.due[self.due_pos..] {
            f(e.at, e.seq, e.kind);
        }
    }

    /// In-place fast-forward rebase: shift every pending entry by `dt` in
    /// time, `dseq` in tie-break sequence and `dflow` in flow id, advance
    /// the cursor by `dt` and the sequence counter by `dseq`. Shifted
    /// absolute times generally change radix digits, so filed entries are
    /// drained and re-filed against the shifted cursor — without touching
    /// the occupancy stats, whose window traffic [`Self::memo_add_stats`]
    /// accounts separately. Unread due-buffer entries keep their buffer
    /// position (they may legally sit below the cursor).
    pub(crate) fn memo_rebase(&mut self, dt: crate::time::SimDuration, dseq: u64, dflow: u32) {
        let mut pending: Vec<Entry> = Vec::new();
        for slot in self.slots.iter_mut() {
            pending.append(slot);
        }
        self.occ = [[0; OCC_WORDS]; WHEEL_LEVELS];
        pending.extend(std::mem::take(&mut self.overflow).into_iter().map(|s| s.0));
        self.cursor += dt;
        for e in pending {
            self.file_inner(
                Entry {
                    at: e.at + dt,
                    seq: e.seq + dseq,
                    kind: e.kind.memo_shift_flow(dflow),
                },
                false,
            );
        }
        for e in &mut self.due[self.due_pos..] {
            e.at += dt;
            e.seq += dseq;
            e.kind = e.kind.memo_shift_flow(dflow);
        }
        self.seq += dseq;
    }

    /// Account `reps` repetitions of one recorded window's scheduler
    /// traffic. Push/pop totals are exact; the bucket-placement
    /// diagnostics (`level_pushes`, `cascades`, spills, splices) repeat the
    /// recorded window's values, which is approximate — placement depends
    /// on absolute-time radix digits and is not shift-invariant (see
    /// DESIGN.md §11). `max_pending` is a high-water mark and is left
    /// alone: a matched steady-state window sets no new one.
    pub(crate) fn memo_add_stats(&mut self, d: &SchedStats, reps: u64) {
        self.stats.pushes += d.pushes * reps;
        self.stats.pops += d.pops * reps;
        for (a, b) in self.stats.level_pushes.iter_mut().zip(d.level_pushes) {
            *a += b * reps;
        }
        self.stats.spill_pushes += d.spill_pushes * reps;
        self.stats.cascades += d.cascades * reps;
        self.stats.cascaded_entries += d.cascaded_entries * reps;
        self.stats.due_splices += d.due_splices * reps;
    }

    /// Current sequence-counter value (pushes + reservations so far).
    pub(crate) fn memo_seq(&self) -> u64 {
        self.seq
    }

    /// File an entry into the wheel or the overflow spill, relative to the
    /// current cursor. Used by both `push` and cascade re-filing; callers
    /// guarantee `e.at >= self.cursor`.
    fn file(&mut self, e: Entry) {
        self.file_inner(e, true);
    }

    /// [`Self::file`] with optional stats accounting — memo re-filing after
    /// a rebase must not recount pushes the window delta already covers.
    fn file_inner(&mut self, e: Entry, count: bool) {
        debug_assert!(e.at >= self.cursor);
        let at = e.at;
        let level = at.radix_level(self.cursor, WHEEL_BITS) as usize;
        if level >= WHEEL_LEVELS {
            if count {
                self.stats.spill_pushes += 1;
            }
            self.overflow.push(Spill(e));
            return;
        }
        if count {
            self.stats.level_pushes[level] += 1;
        }
        let slot = at.radix_digit(WHEEL_BITS, level as u32);
        self.slots[level * WHEEL_SLOTS + slot].push(e);
        self.occ[level][slot / 64] |= 1 << (slot % 64);
    }

    /// First occupied slot at `level` with index ≥ `from`, if any.
    fn next_occupied(&self, level: usize, from: usize) -> Option<usize> {
        let words = &self.occ[level];
        let mut w = from / 64;
        let mut cur = words[w] & (!0u64 << (from % 64));
        loop {
            if cur != 0 {
                return Some(w * 64 + cur.trailing_zeros() as usize);
            }
            w += 1;
            if w >= OCC_WORDS {
                return None;
            }
            cur = words[w];
        }
    }

    /// Make the due buffer nonempty if any event is pending: advance the
    /// cursor to the next occupied slot, cascading higher-level slots down
    /// until a level-0 slot can be drained, migrating overflow entries in
    /// when the wheel itself is exhausted.
    fn ensure_due(&mut self) {
        if self.due_pos < self.due.len() {
            return;
        }
        self.due.clear();
        self.due_pos = 0;
        if self.len == 0 {
            return;
        }
        'scan: loop {
            for level in 0..WHEEL_LEVELS {
                // Slots strictly below the cursor's digit at this level hold
                // nothing (they would be past events), so scan from the
                // digit onward. At the digit itself only level 0 can be
                // occupied: a higher level's current-digit slot was drained
                // when the cursor entered it.
                let from = self.cursor.radix_digit(WHEEL_BITS, level as u32);
                let Some(slot) = self.next_occupied(level, from) else {
                    continue;
                };
                let flat = level * WHEEL_SLOTS + slot;
                self.occ[level][slot / 64] &= !(1 << (slot % 64));
                if level == 0 {
                    // Due: a level-0 slot is 1 ns wide, so these entries
                    // share one timestamp; sorting by seq restores global
                    // insertion order across direct pushes and cascades.
                    std::mem::swap(&mut self.due, &mut self.slots[flat]);
                    self.due.sort_unstable_by_key(|e| e.seq);
                    self.cursor = self.due[0].at;
                    debug_assert!(self.due.iter().all(|e| e.at == self.cursor));
                    return;
                }
                // Cascade: jump the cursor to the slot's span start (zeroing
                // all lower digits), then re-file its entries, which now
                // land at least one level down.
                let span_start = SimTime::from_ns(
                    self.cursor
                        .floor_ticks(WHEEL_BITS * (level as u32 + 1))
                        .as_ns()
                        | ((slot as u64) << (WHEEL_BITS * level as u32)),
                );
                debug_assert!(span_start > self.cursor);
                self.cursor = span_start;
                let entries = std::mem::take(&mut self.slots[flat]);
                self.stats.cascades += 1;
                self.stats.cascaded_entries += entries.len() as u64;
                for e in entries {
                    self.file(e);
                }
                continue 'scan;
            }
            // Wheel empty; all remaining events sit in the overflow spill.
            // Jump to its earliest epoch and migrate every entry within
            // wheel range of the new cursor, then rescan.
            let head_at = self
                .overflow
                .peek()
                .expect("len > 0 with empty wheel implies overflow entries")
                .0
                .at;
            self.cursor = head_at;
            while let Some(s) = self.overflow.peek() {
                if (s.0.at.radix_level(self.cursor, WHEEL_BITS) as usize) >= WHEEL_LEVELS {
                    break;
                }
                let e = self.overflow.pop().expect("peeked").0;
                self.file(e);
            }
        }
    }
}

impl Scheduler for TimingWheel {
    fn push(&mut self, at: SimTime, kind: EventKind) {
        TimingWheel::push(self, at, kind);
    }
    fn reserve_seq(&mut self) -> u64 {
        TimingWheel::reserve_seq(self)
    }
    fn reserve_seq_range(&mut self, n: u64) -> u64 {
        TimingWheel::reserve_seq_range(self, n)
    }
    fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        TimingWheel::pop(self)
    }
    fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, EventKind)> {
        TimingWheel::pop_at_or_before(self, horizon)
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        TimingWheel::peek_time(self)
    }
    fn peek_next(&mut self) -> Option<(SimTime, u64)> {
        TimingWheel::peek_next(self)
    }
    fn len(&self) -> usize {
        TimingWheel::len(self)
    }
    fn is_empty(&self) -> bool {
        TimingWheel::is_empty(self)
    }
    fn scheduled(&self) -> u64 {
        TimingWheel::scheduled(self)
    }
    fn kind(&self) -> SchedKind {
        SchedKind::Wheel
    }
    fn stats(&self) -> SchedStats {
        TimingWheel::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;

    fn wake(t: u64, token: u64) -> (SimTime, EventKind) {
        (
            SimTime::from_ns(t),
            EventKind::Wake {
                host: HostId(0),
                token,
            },
        )
    }

    fn token(k: EventKind) -> u64 {
        match k {
            EventKind::Wake { token, .. } => token,
            _ => unreachable!(),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut w = TimingWheel::new();
        for (t, k) in [wake(30, 0), wake(10, 1), wake(20, 2)] {
            w.push(t, k);
        }
        let times: Vec<u64> = std::iter::from_fn(|| w.pop().map(|(t, _)| t.as_ns())).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut w = TimingWheel::new();
        for i in 0..10u64 {
            let (t, k) = wake(100, i);
            w.push(t, k);
        }
        let tokens: Vec<u64> = std::iter::from_fn(|| w.pop().map(|(_, k)| token(k))).collect();
        assert_eq!(tokens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cascaded_entries_keep_insertion_order_at_equal_times() {
        // Token 0 goes in first but at a *higher level* than token 1 will:
        // when the cursor later cascades it down into the level-0 slot where
        // token 1 was directly filed, seq order must still win.
        let mut w = TimingWheel::new();
        let (t, k) = wake(0x1_23, 0); // level 1 from cursor 0
        w.push(t, k);
        let (t, k) = wake(5, 9); // earlier event to pop first
        w.push(t, k);
        assert_eq!(w.pop().map(|(t, k)| (t.as_ns(), token(k))), Some((5, 9)));
        // Cursor now at 5; 0x123 still differs in byte 1 → still level 1.
        let (t, k) = wake(0x1_23, 1); // same timestamp, filed at level 1 too
        w.push(t, k);
        assert_eq!(
            std::iter::from_fn(|| w.pop().map(|(_, k)| token(k))).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn peek_matches_pop() {
        let mut w = TimingWheel::new();
        let (t, k) = wake(55, 0);
        w.push(t, k);
        assert_eq!(w.peek_time(), Some(SimTime::from_ns(55)));
        assert_eq!(w.len(), 1);
        w.pop();
        assert!(w.is_empty());
        assert_eq!(w.peek_time(), None);
    }

    #[test]
    fn peek_tracks_pushes_and_pops() {
        // Mirror of the heap's cached-`next_at` invariant test.
        let mut w = TimingWheel::new();
        assert_eq!(w.peek_time(), None);
        let (t, k) = wake(50, 0);
        w.push(t, k);
        let (t, k) = wake(10, 1);
        w.push(t, k);
        let (t, k) = wake(30, 2);
        w.push(t, k);
        assert_eq!(w.peek_time(), Some(SimTime::from_ns(10)));
        w.pop();
        assert_eq!(w.peek_time(), Some(SimTime::from_ns(30)));
        w.pop();
        w.pop();
        assert_eq!(w.peek_time(), None);
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        let mut w = TimingWheel::new();
        for (t, k) in [wake(10, 0), wake(20, 1), wake(30, 2)] {
            w.push(t, k);
        }
        assert!(w.pop_at_or_before(SimTime::from_ns(5)).is_none());
        let (at, _) = w.pop_at_or_before(SimTime::from_ns(20)).unwrap();
        assert_eq!(at.as_ns(), 10);
        let (at, _) = w.pop_at_or_before(SimTime::from_ns(20)).unwrap();
        assert_eq!(at.as_ns(), 20);
        assert!(w.pop_at_or_before(SimTime::from_ns(20)).is_none());
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn scheduled_counts_all_pushes() {
        let mut w = TimingWheel::new();
        for i in 0..5u64 {
            let (t, k) = wake(i, i);
            w.push(t, k);
        }
        w.pop();
        assert_eq!(w.scheduled(), 5);
    }

    #[test]
    fn far_future_events_spill_and_return() {
        let mut w = TimingWheel::new();
        let horizon = 1u64 << (WHEEL_BITS * WHEEL_LEVELS as u32); // 2^32 ns
        let (t, k) = wake(horizon + 7, 0);
        w.push(t, k); // beyond wheel range → overflow
        let (t, k) = wake(3, 1);
        w.push(t, k);
        let (t, k) = wake(horizon + 7, 2);
        w.push(t, k);
        let (t, k) = wake(horizon + 5, 3);
        w.push(t, k);
        assert!(w.stats().spill_pushes >= 3);
        let order: Vec<(u64, u64)> =
            std::iter::from_fn(|| w.pop().map(|(t, k)| (t.as_ns(), token(k)))).collect();
        assert_eq!(
            order,
            vec![(3, 1), (horizon + 5, 3), (horizon + 7, 0), (horizon + 7, 2)]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn interleaved_push_pop_across_levels() {
        // Drive the cursor forward through cascades while new near-future
        // events arrive, mimicking the simulator's steady state.
        let mut w = TimingWheel::new();
        let mut next_token = 0u64;
        let mut expected = Vec::new();
        let mut got = Vec::new();
        let mut now = 0u64;
        for round in 0..200u64 {
            // A burst at now + fixed offsets (serialization/latency/RTO-ish).
            for off in [1, 257, 5_000, 70_000] {
                let (t, k) = wake(now + off, next_token);
                w.push(t, k);
                expected.push((now + off, next_token));
                next_token += 1;
            }
            // Pop two per round; leave a backlog to exercise cascades.
            for _ in 0..2 {
                if let Some((t, k)) = w.pop() {
                    now = t.as_ns();
                    got.push((t.as_ns(), token(k)));
                }
            }
            let _ = round;
        }
        while let Some((t, k)) = w.pop() {
            got.push((t.as_ns(), token(k)));
        }
        expected.sort_by_key(|&(t, tok)| (t, tok)); // tokens are push order
        assert_eq!(got, expected);
        assert!(w.stats().cascades > 0, "test failed to exercise cascading");
        assert!(w.stats().max_pending > 0);
    }

    #[test]
    fn push_below_peeked_cursor_is_spliced_in_order() {
        // Peek advances the cursor to the next pending event; a caller may
        // then legally schedule something earlier. The spliced entries
        // must come out first, in time order.
        let mut w = TimingWheel::new();
        let (t, k) = wake(10, 0);
        w.push(t, k);
        let (t, k) = wake(1_000, 1);
        w.push(t, k);
        assert_eq!(w.pop().map(|(t, k)| (t.as_ns(), token(k))), Some((10, 0)));
        assert_eq!(w.peek_time(), Some(SimTime::from_ns(1_000))); // cursor → 1000
        let (t, k) = wake(500, 2);
        w.push(t, k);
        let (t, k) = wake(200, 3);
        w.push(t, k);
        let (t, k) = wake(500, 4);
        w.push(t, k);
        assert!(w.stats().due_splices >= 3);
        let order: Vec<(u64, u64)> =
            std::iter::from_fn(|| w.pop().map(|(t, k)| (t.as_ns(), token(k)))).collect();
        assert_eq!(order, vec![(200, 3), (500, 2), (500, 4), (1_000, 1)]);
    }

    #[test]
    fn push_below_popped_timestamp_is_legal() {
        // The lazy-RTO shape: a stale timer pops at a *future* timestamp
        // without advancing the simulator clock, then the engine schedules
        // a wire event off its own, earlier, clock. The backdated event
        // must come straight back out first — exactly what a heap does.
        let mut w = TimingWheel::new();
        let (t, k) = wake(378_076, 0); // the "stale RTO"
        w.push(t, k);
        assert_eq!(
            w.pop().map(|(t, k)| (t.as_ns(), token(k))),
            Some((378_076, 0))
        );
        let (t, k) = wake(375_124, 1); // wire event from the lagging clock
        w.push(t, k);
        let (t, k) = wake(379_000, 2);
        w.push(t, k);
        assert_eq!(
            w.pop().map(|(t, k)| (t.as_ns(), token(k))),
            Some((375_124, 1))
        );
        assert_eq!(
            w.pop().map(|(t, k)| (t.as_ns(), token(k))),
            Some((379_000, 2))
        );
        assert!(w.is_empty());
    }

    #[test]
    fn max_pending_tracks_high_water_mark() {
        let mut w = TimingWheel::new();
        for i in 0..6u64 {
            let (t, k) = wake(10 + i, i);
            w.push(t, k);
        }
        for _ in 0..4 {
            w.pop();
        }
        let (t, k) = wake(100, 99);
        w.push(t, k);
        assert_eq!(w.stats().max_pending, 6);
    }
}
