//! Link fault models and the fault-injection schedule.
//!
//! The paper distinguishes two axes of faultiness (§1, §4):
//!
//! * **Known faults** ([`FaultKind::AdminDown`]): the switch OS has detected
//!   the fault and removed the link from routing. Spraying avoids spines that
//!   cannot reach a destination leaf, which is exactly what makes the
//!   analytical `d/(s−f)` load model correct in their presence.
//! * **Silent faults** (everything else): the link keeps carrying traffic and
//!   stays in the routing tables, but drops some or all packets without any
//!   reflection in telemetry. These are what FlowPulse exists to catch.

use crate::ids::LinkId;
use crate::packet::Packet;
use crate::rng::coin;
use crate::time::SimTime;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// A fault condition on one directed link.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub enum FaultKind {
    /// Known fault: link administratively removed from routing. No packets
    /// are forwarded; spray sets are recomputed to exclude it.
    AdminDown,
    /// Silent random loss: each packet independently dropped with
    /// probability `rate` (models an elevated bit-error rate whose corrupted
    /// frames are CRC-dropped downstream — paper §6 "drop packets at a set
    /// rate").
    SilentDrop {
        /// Per-packet drop probability in `[0, 1]`.
        rate: f64,
    },
    /// Silent total black hole: every packet silently dropped (e.g. FIB
    /// memory corruption, paper §1).
    SilentBlackhole,
    /// Silent selective black hole: only packets destined to hosts under
    /// `dst_leaf` are dropped (a corrupted FIB entry for one prefix).
    DstBlackhole {
        /// Leaf index whose traffic disappears.
        dst_leaf: u16,
    },
}

impl FaultKind {
    /// True for fault kinds that are invisible to routing/telemetry.
    pub fn is_silent(&self) -> bool {
        !matches!(self, FaultKind::AdminDown)
    }

    /// Decide whether this fault drops `pkt` (whose destination host sits
    /// under `pkt_dst_leaf`). Only meaningful for silent faults; `AdminDown`
    /// is enforced by routing, not per-packet sampling. The simulator
    /// samples this at the end of serialization, as the packet would enter
    /// its link's delivery pipe — a dropped packet never goes in flight, and
    /// a fault cleared mid-flight cannot retroactively save packets already
    /// dropped at insert.
    pub fn drops(&self, pkt: &Packet, pkt_dst_leaf: u16, rng: &mut SmallRng) -> bool {
        match *self {
            FaultKind::AdminDown => true,
            FaultKind::SilentDrop { rate } => coin(rng, rate),
            FaultKind::SilentBlackhole => true,
            FaultKind::DstBlackhole { dst_leaf } => {
                let _ = pkt;
                pkt_dst_leaf == dst_leaf
            }
        }
    }
}

/// What a scheduled fault event does.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub enum FaultAction {
    /// Install (or replace) the fault on the link.
    Set(FaultKind),
    /// Heal the link: clear any fault and restore it to routing.
    Clear,
}

/// A timed fault-injection entry.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct FaultEvent {
    /// When the change takes effect.
    pub at: SimTime,
    /// Target directed link.
    pub link: LinkId,
    /// Apply to the reverse direction as well (physical-cable semantics).
    pub bidirectional: bool,
    /// Install or clear.
    pub action: FaultAction,
}

impl FaultEvent {
    /// Install `kind` on `link` (one direction) at `at`.
    pub fn set(at: SimTime, link: LinkId, kind: FaultKind) -> Self {
        FaultEvent {
            at,
            link,
            bidirectional: false,
            action: FaultAction::Set(kind),
        }
    }

    /// Install `kind` on both directions of the physical link at `at`.
    pub fn set_bidir(at: SimTime, link: LinkId, kind: FaultKind) -> Self {
        FaultEvent {
            at,
            link,
            bidirectional: true,
            action: FaultAction::Set(kind),
        }
    }

    /// Heal `link` (one direction) at `at`.
    pub fn clear(at: SimTime, link: LinkId) -> Self {
        FaultEvent {
            at,
            link,
            bidirectional: false,
            action: FaultAction::Clear,
        }
    }

    /// Heal both directions of the physical link at `at`.
    pub fn clear_bidir(at: SimTime, link: LinkId) -> Self {
        FaultEvent {
            at,
            link,
            bidirectional: true,
            action: FaultAction::Clear,
        }
    }
}

/// Generate a link-flap schedule: `kind` is installed at `start`, then the
/// link alternates faulty/healthy with the given on/off durations for
/// `cycles` cycles (link flaps are one of the §1 fault classes; a flap
/// whose "down" phases are silent looks like a bursty gray fault).
pub fn flap_schedule(
    link: LinkId,
    kind: FaultKind,
    start: SimTime,
    on: crate::time::SimDuration,
    off: crate::time::SimDuration,
    cycles: u32,
    bidirectional: bool,
) -> Vec<FaultEvent> {
    let mut out = Vec::with_capacity(2 * cycles as usize);
    let mut t = start;
    for _ in 0..cycles {
        out.push(FaultEvent {
            at: t,
            link,
            bidirectional,
            action: FaultAction::Set(kind),
        });
        t += on;
        out.push(FaultEvent {
            at: t,
            link,
            bidirectional,
            action: FaultAction::Clear,
        });
        t += off;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;
    use crate::packet::{PacketKind, Priority};
    use rand::SeedableRng;

    fn pkt(dst: u32) -> Packet {
        Packet {
            kind: PacketKind::Data { flow: 0, seq: 0 },
            src: HostId(0),
            dst: HostId(dst),
            size: 4096,
            prio: Priority::MEASURED,
            tag: None,
            src_leaf: 0,
            ingress: None,
            ce: false,
        }
    }

    #[test]
    fn silent_classification() {
        assert!(!FaultKind::AdminDown.is_silent());
        assert!(FaultKind::SilentDrop { rate: 0.1 }.is_silent());
        assert!(FaultKind::SilentBlackhole.is_silent());
        assert!(FaultKind::DstBlackhole { dst_leaf: 3 }.is_silent());
    }

    #[test]
    fn blackhole_drops_everything() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..32 {
            assert!(FaultKind::SilentBlackhole.drops(&pkt(5), 2, &mut rng));
        }
    }

    #[test]
    fn dst_blackhole_is_selective() {
        let mut rng = SmallRng::seed_from_u64(1);
        let f = FaultKind::DstBlackhole { dst_leaf: 4 };
        assert!(f.drops(&pkt(0), 4, &mut rng));
        assert!(!f.drops(&pkt(0), 5, &mut rng));
    }

    #[test]
    fn drop_rate_is_statistically_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        let f = FaultKind::SilentDrop { rate: 0.015 };
        let n = 100_000;
        let drops = (0..n).filter(|_| f.drops(&pkt(1), 0, &mut rng)).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.015).abs() < 0.002, "rate={rate}");
    }

    #[test]
    fn flap_schedule_alternates() {
        use crate::time::SimDuration;
        let s = flap_schedule(
            LinkId(3),
            FaultKind::SilentBlackhole,
            SimTime::from_us(10),
            SimDuration::from_us(5),
            SimDuration::from_us(15),
            2,
            false,
        );
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].at, SimTime::from_us(10));
        assert_eq!(s[0].action, FaultAction::Set(FaultKind::SilentBlackhole));
        assert_eq!(s[1].at, SimTime::from_us(15));
        assert_eq!(s[1].action, FaultAction::Clear);
        assert_eq!(s[2].at, SimTime::from_us(30));
        assert_eq!(s[3].at, SimTime::from_us(35));
        // Strictly increasing times.
        for w in s.windows(2) {
            assert!(w[0].at < w[1].at);
        }
    }

    #[test]
    fn zero_and_one_rates_are_exact() {
        let mut rng = SmallRng::seed_from_u64(7);
        assert!(!FaultKind::SilentDrop { rate: 0.0 }.drops(&pkt(1), 0, &mut rng));
        assert!(FaultKind::SilentDrop { rate: 1.0 }.drops(&pkt(1), 0, &mut rng));
    }
}
