//! Deterministic random-number streams.
//!
//! All randomness in a run derives from one master seed, but different
//! *purposes* (spraying decisions, fault sampling, workload jitter) get
//! independent streams. This means, e.g., that enabling jitter does not
//! perturb the sequence of spray choices — runs stay comparable across
//! configurations, which the evaluation harness relies on when pairing
//! fault/no-fault trials.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Independent RNG streams derived from a master seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RngStreams {
    /// APS spray choices (random policy, tie-breaking for least-loaded).
    pub spray: SmallRng,
    /// Silent-fault drop sampling.
    pub fault: SmallRng,
    /// Workload jitter and application-level randomness.
    pub app: SmallRng,
    /// Background-traffic generation.
    pub background: SmallRng,
}

impl RngStreams {
    /// Derive the four streams from `seed` using SplitMix64 on
    /// purpose-specific keys.
    pub fn new(seed: u64) -> Self {
        RngStreams {
            spray: SmallRng::seed_from_u64(splitmix64(seed ^ 0x5350_5241_5900_0001)),
            fault: SmallRng::seed_from_u64(splitmix64(seed ^ 0x4641_554c_5400_0002)),
            app: SmallRng::seed_from_u64(splitmix64(seed ^ 0x4150_5000_0000_0003)),
            background: SmallRng::seed_from_u64(splitmix64(seed ^ 0x4247_4e44_0000_0004)),
        }
    }
}

/// SplitMix64 finalizer — cheap, well-distributed seed derivation.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Sample a Bernoulli event with probability `p` from `rng`.
pub fn coin(rng: &mut SmallRng, p: f64) -> bool {
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = RngStreams::new(42);
        let mut b = RngStreams::new(42);
        for _ in 0..100 {
            assert_eq!(a.spray.gen::<u64>(), b.spray.gen::<u64>());
            assert_eq!(a.fault.gen::<u64>(), b.fault.gen::<u64>());
        }
    }

    #[test]
    fn streams_are_independent_across_purposes() {
        let mut s = RngStreams::new(7);
        let spray: Vec<u64> = (0..8).map(|_| s.spray.gen()).collect();
        let fault: Vec<u64> = (0..8).map(|_| s.fault.gen()).collect();
        assert_ne!(spray, fault);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngStreams::new(1);
        let mut b = RngStreams::new(2);
        assert_ne!(a.spray.gen::<u64>(), b.spray.gen::<u64>());
    }

    #[test]
    fn coin_extremes() {
        let mut r = SmallRng::seed_from_u64(0);
        assert!(!coin(&mut r, 0.0));
        assert!(coin(&mut r, 1.0));
        // p=0.5 over many trials lands near half
        let hits = (0..10_000).filter(|_| coin(&mut r, 0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits={hits}");
    }
}
