//! Adaptive per-packet spraying (APS) policies.
//!
//! In an APS fabric the leaf switch picks an uplink *per packet* among all
//! uplinks that can reach the destination leaf (paper §2). We implement the
//! policies the literature describes:
//!
//! * [`SprayPolicy::Random`] — uniform random port (Dixit et al.).
//! * [`SprayPolicy::RoundRobin`] — cyclic, perfectly smooth.
//! * [`SprayPolicy::LeastLoaded`] — adaptive: pick the uplink with the least
//!   queued + in-flight bytes, breaking ties with a rotating cursor
//!   (DRILL-style, and the paper's default: "selecting the least congested
//!   port"). Hardware breaks ties round-robin, which is what keeps per-port
//!   volumes nearly deterministic iteration over iteration — the very
//!   *temporal symmetry* FlowPulse measures.
//! * [`SprayPolicy::LeastLoadedRandomTie`] — same, but ties break uniformly
//!   at random. In an underloaded fabric queues are mostly empty, so this
//!   degenerates toward `Random`; the A1 ablation uses it to quantify how
//!   much detection accuracy depends on the spray policy's smoothness.
//!
//! The policy strongly affects FlowPulse's signal-to-noise ratio: adaptive
//! spraying yields near-deterministic per-port volumes, while random
//! spraying adds binomial noise that only large collectives average out —
//! exactly the Fig. 5(c) trade-off.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which uplink-selection policy leaf switches use.
#[derive(Copy, Clone, PartialEq, Eq, Serialize, Deserialize, Debug, Default)]
pub enum SprayPolicy {
    /// Uniform random choice among valid uplinks.
    Random,
    /// Cyclic choice (per-leaf cursor over valid uplinks).
    RoundRobin,
    /// Utilization-aware adaptive routing (the default, modelling
    /// Spectrum-X-class "least congested port" selection): the load signal
    /// is queued bytes **plus a decaying per-uplink byte counter**, so a
    /// port that recently carried fewer bytes is preferred until it catches
    /// up. This self-correction is what makes per-port volumes nearly
    /// deterministic per iteration — tight temporal symmetry — even when
    /// ACKs and jitter perturb packet interleaving.
    #[default]
    Adaptive,
    /// Queue-depth-only adaptive (DRILL-style): least queued bytes,
    /// rotating-cursor tie-break. In an underloaded fabric queues are
    /// mostly empty, so this degenerates toward round-robin with
    /// phase noise from ACK interleaving.
    LeastLoaded,
    /// Queue-depth-only with uniform random tie-break; degenerates toward
    /// `Random` in an underloaded fabric.
    LeastLoadedRandomTie,
}

/// Pick an index into `loads` (queued bytes per candidate) according to the
/// policy. `cursor` is the per-switch rotation state. `loads` must be
/// non-empty.
pub fn choose(policy: SprayPolicy, loads: &[u64], cursor: &mut u64, rng: &mut SmallRng) -> usize {
    debug_assert!(!loads.is_empty(), "spray over zero candidates");
    let n = loads.len();
    match policy {
        SprayPolicy::Random => rng.gen_range(0..n),
        SprayPolicy::RoundRobin => {
            let i = (*cursor as usize) % n;
            *cursor = cursor.wrapping_add(1);
            i
        }
        SprayPolicy::Adaptive | SprayPolicy::LeastLoaded => {
            // Scan starting at the cursor so equal-load ports are taken in
            // rotation; advance the cursor past the chosen port.
            let start = (*cursor as usize) % n;
            let mut best = start;
            let mut best_load = loads[start];
            for k in 1..n {
                let i = (start + k) % n;
                if loads[i] < best_load {
                    best = i;
                    best_load = loads[i];
                }
            }
            *cursor = (best as u64) + 1;
            best
        }
        SprayPolicy::LeastLoadedRandomTie => {
            // Single pass: track the minimum and reservoir-sample among ties
            // so the tie-break is unbiased without a second pass/allocation.
            let mut best = 0usize;
            let mut best_load = loads[0];
            let mut ties = 1u32;
            for (i, &l) in loads.iter().enumerate().skip(1) {
                if l < best_load {
                    best = i;
                    best_load = l;
                    ties = 1;
                } else if l == best_load {
                    ties += 1;
                    if rng.gen_range(0..ties) == 0 {
                        best = i;
                    }
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn round_robin_cycles() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut cursor = 0;
        let loads = [0u64; 4];
        let picks: Vec<usize> = (0..8)
            .map(|_| choose(SprayPolicy::RoundRobin, &loads, &mut cursor, &mut rng))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn least_loaded_picks_minimum() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut cursor = 0;
        let loads = [50, 10, 30, 99];
        for _ in 0..16 {
            assert_eq!(
                choose(SprayPolicy::LeastLoaded, &loads, &mut cursor, &mut rng),
                1
            );
        }
    }

    #[test]
    fn least_loaded_rotates_on_ties() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut cursor = 0;
        let loads = [0u64; 4];
        let picks: Vec<usize> = (0..8)
            .map(|_| choose(SprayPolicy::LeastLoaded, &loads, &mut cursor, &mut rng))
            .collect();
        // Rotating tie-break = round-robin when all loads are equal.
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn least_loaded_is_deterministic() {
        let run = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut cursor = 0;
            let loads = [5u64, 5, 0, 5];
            (0..16)
                .map(|_| choose(SprayPolicy::LeastLoaded, &loads, &mut cursor, &mut rng))
                .collect::<Vec<_>>()
        };
        // Independent of the RNG seed entirely.
        assert_eq!(run(1), run(999));
    }

    #[test]
    fn random_tie_break_is_unbiased() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut cursor = 0;
        let loads = [7u64, 7, 7];
        let mut hist = [0u32; 3];
        for _ in 0..30_000 {
            hist[choose(
                SprayPolicy::LeastLoadedRandomTie,
                &loads,
                &mut cursor,
                &mut rng,
            )] += 1;
        }
        for &h in &hist {
            assert!((8_000..12_000).contains(&h), "hist={hist:?}");
        }
    }

    #[test]
    fn random_covers_all_ports() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut cursor = 0;
        let loads = [0u64; 8];
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[choose(SprayPolicy::Random, &loads, &mut cursor, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_candidate_is_always_zero() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut cursor = 5;
        for p in [
            SprayPolicy::Random,
            SprayPolicy::RoundRobin,
            SprayPolicy::LeastLoaded,
            SprayPolicy::LeastLoadedRandomTie,
        ] {
            assert_eq!(choose(p, &[42], &mut cursor, &mut rng), 0);
        }
    }
}
