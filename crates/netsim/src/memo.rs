//! Temporal-symmetry fast-forward: steady-state iteration memoization.
//!
//! The paper's central observation — collective traffic is *temporally
//! symmetric*, every training iteration pushing the same bytes over the
//! same ports — is not just a detection signal, it is an execution
//! shortcut. Once the simulator reaches a steady state, iteration `i+1`
//! is an exact replay of iteration `i` shifted rigidly in time, flow ids
//! and scheduler sequence numbers. This module detects that fixed point
//! and, instead of simulating the next iteration event by event, applies
//! the recorded window's observable deltas in O(residual state) and jumps
//! the clock — producing byte-identical output (`FP_MEMO=1` vs live) at a
//! fraction of the event cost.
//!
//! ## The fingerprint theorem
//!
//! Let `B_i` be the boundary where iteration `i`'s last transfer
//! completes, at time `T_i`. At each boundary we capture a *normalized
//! residual snapshot*: every piece of simulator state that can influence
//! future behaviour, rebased so that absolute time becomes an offset from
//! `T_i`, flow ids become offsets from the flow-table length, scheduler
//! sequence numbers become offsets from the sequence counter, and
//! iteration tags become distances from the just-finished iteration.
//!
//! If the snapshots at `B_{i-k}` and `B_i` are equal for some small
//! `k ≥ 1`, then by induction the engine — a deterministic function of
//! that residual plus the workload's (identical, jitter-free) next
//! iterations — must reproduce the window `(B_{i-k}, B_i]` exactly,
//! shifted by the period `P = T_i - T_{i-k}`, by `k·F` flow ids (`k`
//! iteration blocks) and by `Sq` sequence numbers. The next matching
//! boundary lands at `T_i + P` with an equal snapshot again, so the
//! replay telescopes: `u` whole windows (`u·k` iterations) fast-forward
//! in one step. `k > 1` matters in practice: the least-loaded spray
//! cursor settles into short cycles (its phase advances by a fixed
//! stride per iteration), so consecutive boundaries differ forever while
//! every `k`-th boundary matches — the harness keeps a small ring of
//! recent boundary records and matches at the smallest available
//! distance.
//!
//! ## What a replay applies
//!
//! * scheduler / front-heap / delivery-pipe entries shift by
//!   `(u·P, u·Sq, u·k·F)` in place (uniform shifts preserve heap order);
//! * cumulative counters ([`Stats`], per-link tx/delivered counters,
//!   scheduler push/pop statistics) grow by `u ×` the recorded window
//!   delta; high-water marks are left alone — a matched steady-state
//!   window sets no new maximum;
//! * FlowPulse counter matrices gain `u` shifted copies of the window's
//!   per-iteration entries (timestamps shifted by `j·P`, iterations by
//!   `j·k`), so snapshot sequences and detector inputs are byte-identical;
//! * the flow table gains `u·k` shifted blocks, and the aged-out blocks in
//!   between are rewritten to the terminal frozen form of their phase
//!   (see `memo_replay_flows`);
//! * per-iteration span records repeat with shifted times;
//! * the clock jumps to `T_i + u·P`.
//!
//! One [`TraceEvent::MemoFastForward`] record per replayed span is the
//! *only* observable difference against a live run — harnesses that
//! require byte-identity compare traces modulo that record (and the
//! default comparisons never trace it: the memo-eligible configurations
//! trace nothing in a steady-state window, or memoization refuses).
//!
//! ## Eligibility and invalidation
//!
//! The snapshot *refuses* (falls back to live simulation, recording a
//! reason) whenever residual state is not provably periodic: a telemetry
//! recorder or shard coordinator is attached, a fault is installed on any
//! link, control/fault/wake/sampler events are pending in the scheduler,
//! the flow table does not divide evenly into per-iteration blocks, or
//! the warm-up (`next_iter < D + 3` for block-reference depth `D`) has
//! not completed. Random spray policies are refused at enable time (their
//! RNG draws would also break the fingerprint, but refusing early gives a
//! clear fallback reason). Scheduled faults and controls act as
//! *barriers*: the caller passes their iteration numbers to
//! [`Simulator::enable_memo`] and a replay never crosses one — the
//! barrier iteration runs live, where its `FaultUpdate`/`ControlUpdate`
//! events (pending in the scheduler) break the fingerprint chain anyway.

use super::{IterSpanRecord, Simulator};
use crate::bitset::BitSet;
use crate::counters::{CounterDelta, CounterStore};
use crate::engine::{EventKind, SchedStats};
use crate::packet::{AckBlock, FlowId, Packet, PacketKind, NPRIO};
use crate::rng::RngStreams;
use crate::spray::SprayPolicy;
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceEvent;
use crate::transport::{AckAccum, FlowState};

/// Memoization requested via `FP_MEMO` (default off). Accepts the same
/// spellings as the other `FP_*` toggles.
pub fn memo_from_env() -> bool {
    matches!(
        std::env::var("FP_MEMO").ok().as_deref(),
        Some("1" | "on" | "true" | "yes")
    )
}

/// A fast-forward the engine just performed, reported to the workload
/// runner so it can mirror the replay in its own per-iteration records.
#[derive(Copy, Clone, Debug)]
pub struct MemoReplay {
    /// Iterations replayed (the runner's iteration counter advances by
    /// this much). Always a multiple of [`MemoReplay::window`].
    pub iters: u32,
    /// Iterations per matched steady-state window (`k`): the boundary
    /// fingerprint repeated at this distance.
    pub window: u32,
    /// The steady-state period `P` of one whole window: every replayed
    /// window's records shift by one more multiple of it.
    pub period: SimDuration,
}

/// Memoization outcome counters for one run (surfaced in trial results,
/// campaign manifests and bench rows).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemoCounters {
    /// Fast-forwards performed.
    pub hits: u64,
    /// Collective iterations replayed instead of simulated.
    pub replayed_iters: u64,
    /// Engine events the replayed spans account for.
    pub replayed_events: u64,
    /// First reason memoization refused or fell back, if any.
    pub fallback: Option<String>,
}

/// Longest steady-state cycle the boundary ring can match (`k ≤ 8`).
/// The least-loaded spray cursor advances its phase by a fixed stride
/// per iteration, giving cycles of length `spines / gcd(stride, spines)`
/// — up to 8 covers every fabric benched here while keeping at most 8
/// boundary records alive.
const MEMO_RING: usize = 8;

/// Per-simulator memoization state (boxed off the `Simulator` hot path).
pub struct MemoState {
    /// Iterations that must run live (fault onsets, heal edges, scheduled
    /// controls). A replay never covers one.
    barriers: Vec<u32>,
    /// Set when the configuration can never memoize (e.g. random spray).
    disabled: Option<&'static str>,
    /// Records of the last [`MEMO_RING`] *consecutive* eligible
    /// boundaries, oldest first. Any refusal clears it, so entry `j`
    /// (from the back) is always exactly `j + 1` boundaries ago.
    ring: Vec<BoundaryRecord>,
    hits: u64,
    replayed_iters: u64,
    replayed_events: u64,
    fallback: Option<&'static str>,
}

impl MemoState {
    /// Push a boundary record, evicting the oldest past [`MEMO_RING`].
    fn push(&mut self, rec: BoundaryRecord) {
        if self.ring.len() == MEMO_RING {
            self.ring.remove(0);
        }
        self.ring.push(rec);
    }
}

/// Everything recorded at one eligible iteration boundary: the normalized
/// residual fingerprint plus baselines for computing the next window's
/// observable deltas.
struct BoundaryRecord {
    /// Boundary time `T_i`.
    at: SimTime,
    /// Scheduler sequence counter at the boundary.
    seq: u64,
    /// Flow-table length at the boundary.
    flows_len: u32,
    /// Cumulative run statistics (cloned baseline).
    stats: Stats,
    /// Scheduler statistics (cloned baseline).
    sched: SchedStats,
    /// Per-link `[txed_pkts, txed_bytes, delivered_pkts, delivered_bytes]`.
    link_tx: Vec<[u64; 4]>,
    /// FlowPulse leaf counters (cloned baseline).
    counters: CounterStore,
    /// FlowPulse agg counters (cloned baseline; empty on 2-level fabrics).
    agg_counters: CounterStore,
    /// Trace records offered so far — a nonzero window delta refuses the
    /// replay (traced events are not replayed).
    trace_offered: u64,
    /// Iteration-span records logged so far.
    spans_len: usize,
    /// The normalized residual fingerprint.
    snap: NormSnapshot,
}

impl BoundaryRecord {
    fn capture(sim: &Simulator, snap: NormSnapshot) -> BoundaryRecord {
        BoundaryRecord {
            at: sim.now,
            seq: sim.heap.memo_seq(),
            flows_len: sim.flows.len() as u32,
            stats: sim.stats.clone(),
            sched: sim.sched_stats(),
            link_tx: sim
                .links
                .iter()
                .map(|l| {
                    [
                        l.txed_pkts,
                        l.txed_bytes,
                        l.delivered_pkts,
                        l.delivered_bytes,
                    ]
                })
                .collect(),
            counters: sim.counters.clone(),
            agg_counters: sim.agg_counters.clone(),
            trace_offered: sim.trace.offered,
            spans_len: sim.iter_spans.len(),
            snap,
        }
    }
}

// ---------------------------------------------------------------------
// Normalized residual state
// ---------------------------------------------------------------------

/// A pending scheduler event, rebased to the boundary.
#[derive(PartialEq, Eq, PartialOrd, Ord, Debug)]
struct NormEvent {
    /// Time offset from the boundary (`at - T_i`).
    dt: u64,
    /// Sequence offset from the counter (`seq_counter - seq`).
    rseq: u64,
    kind: NormEventKind,
}

/// The eligible event kinds, with flow references rebased. `Wake`,
/// `FaultUpdate`, `ControlUpdate`, `Pfc` and `Sample` refuse the snapshot:
/// they are scheduled from aperiodic sources (fault schedules, control
/// planes, recorders) and must never be silently replayed.
#[derive(PartialEq, Eq, PartialOrd, Ord, Debug)]
enum NormEventKind {
    Rto {
        dflow: u32,
        seq: u32,
        attempt: u32,
        gen: u32,
    },
    AckFlush {
        dflow: u32,
    },
    TxDone {
        link: u32,
    },
}

/// A packet, with flow id and iteration tag rebased.
#[derive(PartialEq, Eq, Debug)]
struct NormPacket {
    kind: NormPacketKind,
    src: u32,
    dst: u32,
    size: u32,
    prio: u8,
    /// `(job, top_iter - iter)`.
    tag: Option<(u32, u32)>,
    src_leaf: u16,
    ingress: Option<u32>,
    ce: bool,
}

#[derive(PartialEq, Eq, Debug)]
enum NormPacketKind {
    Data { dflow: u32, seq: u32 },
    Ack { dflow: u32, block: AckBlock },
}

/// One in-flight packet of a delivery pipe (pipes are FIFO by
/// construction, so per-pipe order is already canonical).
#[derive(PartialEq, Eq, Debug)]
struct NormInFlight {
    dt: u64,
    rseq: u64,
    link: u32,
    pkt: NormPacket,
}

/// One armed front-heap entry (sorted for comparison — the internal heap
/// layout is history-dependent).
#[derive(PartialEq, Eq, PartialOrd, Ord, Debug)]
struct NormFront {
    dt: u64,
    rseq: u64,
    pipe: u32,
}

/// One directed link's runtime state, rebased.
#[derive(PartialEq, Eq, Debug)]
struct NormLink {
    admin_up: bool,
    spray_avoid: bool,
    txing: bool,
    current: Option<NormPacket>,
    inflight: u32,
    queued_bytes: u64,
    queues: [Vec<NormPacket>; NPRIO],
    paused: [bool; NPRIO],
    /// `T_i - paused_since` per paused priority, zero when not paused
    /// (replay shifts `paused_since` so the age is preserved).
    pause_age: [u64; NPRIO],
}

/// One switch's runtime state. `valid_up`/`valid_core` are derived from
/// admin state, which `NormLink::admin_up` already covers. `rr_cursor` is
/// compared raw: the adaptive and least-loaded policies write bounded
/// values whose short phase cycles the boundary ring matches at distance
/// `k`, while round-robin's cursor grows monotonically — no two
/// boundaries ever fingerprint equal, which is exactly the safe fallback
/// (a replayed round-robin window would resume from the wrong cursor
/// phase).
#[derive(PartialEq, Eq, Debug)]
struct NormSwitch {
    ingress_usage: Vec<[u64; NPRIO]>,
    pause_sent: Vec<[bool; NPRIO]>,
    rr_cursor: u64,
    /// Pluggable-backend residual from [`crate::spray::Sprayer::memo_residual`]:
    /// a canonical digest of any backend-private state (0 for stateless
    /// backends). A backend refusing to fingerprint fails the snapshot
    /// with its reason instead.
    sprayer_residual: u64,
    /// Canonical adaptive-spray deficit per uplink slot: `(value, phase)`
    /// after an eager decay sync (see `memo_sync_spray_decay`), where
    /// `phase = T_i - spray_deficit_at`. Never-touched slots are
    /// `(0, u64::MAX)` — their timestamp base is still the initial zero
    /// and must not be compared (or shifted) against the boundary clock.
    spray: Vec<(u64, u64)>,
}

/// One flow's transport state, rebased. Flows at block distance `> D+1`
/// are frozen (no residual state references them) and excluded.
#[derive(PartialEq, Eq, Debug)]
struct NormFlow {
    src: u32,
    dst: u32,
    bytes: u64,
    mtu: u32,
    npkts: u32,
    /// `(job, top_iter - iter)`.
    tag: Option<(u32, u32)>,
    prio: u8,
    /// `flows_len - global`.
    dglobal: u32,
    app_token: u64,
    next_seq: u32,
    acked: BitSet,
    failed: bool,
    retx: u32,
    cum_acked: u32,
    rto_gen: Vec<u32>,
    rcvd: BitSet,
    pending_ack: Option<AckAccum>,
    /// `T_i - completed_at`, if completed.
    completed_age: Option<u64>,
    /// `T_i - created_at`.
    created_age: u64,
}

/// The full normalized residual fingerprint at one boundary. Two equal
/// snapshots `k` boundaries apart prove the window between them is a
/// rigid shift of the `k`-iteration window before it.
#[derive(PartialEq, Debug)]
struct NormSnapshot {
    /// Max block distance referenced by residual state (`D`).
    dterm: u32,
    /// Flows per iteration block (`F`).
    fpb: u32,
    /// Pending scheduler events, sorted by `(dt, rseq)`.
    events: Vec<NormEvent>,
    /// Per-pipe in-flight FIFOs.
    pipes: Vec<Vec<NormInFlight>>,
    /// Armed pipe fronts, sorted.
    front: Vec<NormFront>,
    links: Vec<NormLink>,
    switches: Vec<NormSwitch>,
    /// Per-host active-flow deques (`flows_len - flow` per entry; may
    /// contain exhausted flows awaiting lazy removal — those shift too).
    hosts: Vec<Vec<u32>>,
    in_flight_pkts: usize,
    /// All four RNG streams, compared raw: equality implies the window
    /// drew nothing, so a replay correctly leaves them untouched.
    rng: RngStreams,
    /// Normalized flow blocks at distances `0..=D+1`, oldest first.
    blocks: Vec<NormFlow>,
}

/// Report which snapshot fields mismatch (dev aid, `FP_MEMO_DEBUG=1`).
fn snap_diff(a: &NormSnapshot, b: &NormSnapshot) -> String {
    let mut out = Vec::new();
    if a.dterm != b.dterm {
        out.push(format!("dterm {} vs {}", a.dterm, b.dterm));
    }
    if a.fpb != b.fpb {
        out.push(format!("fpb {} vs {}", a.fpb, b.fpb));
    }
    if a.events != b.events {
        out.push(format!("events\n  {:?}\n  {:?}", a.events, b.events));
    }
    if a.pipes != b.pipes {
        out.push(format!("pipes\n  {:?}\n  {:?}", a.pipes, b.pipes));
    }
    if a.front != b.front {
        out.push(format!("front {:?} vs {:?}", a.front, b.front));
    }
    if a.links != b.links {
        for (i, (x, y)) in a.links.iter().zip(&b.links).enumerate() {
            if x != y {
                out.push(format!("link{i}\n  {x:?}\n  {y:?}"));
            }
        }
    }
    if a.switches != b.switches {
        for (i, (x, y)) in a.switches.iter().zip(&b.switches).enumerate() {
            if x != y {
                out.push(format!("switch{i}\n  {x:?}\n  {y:?}"));
            }
        }
    }
    if a.hosts != b.hosts {
        out.push(format!("hosts {:?} vs {:?}", a.hosts, b.hosts));
    }
    if a.in_flight_pkts != b.in_flight_pkts {
        out.push(format!(
            "in_flight_pkts {} vs {}",
            a.in_flight_pkts, b.in_flight_pkts
        ));
    }
    if a.rng != b.rng {
        out.push("rng".to_string());
    }
    if a.blocks != b.blocks {
        for (i, (x, y)) in a.blocks.iter().zip(&b.blocks).enumerate() {
            if x != y {
                out.push(format!("block[{i}]\n  {x:?}\n  {y:?}"));
            }
        }
        if a.blocks.len() != b.blocks.len() {
            out.push(format!(
                "blocks len {} vs {}",
                a.blocks.len(),
                b.blocks.len()
            ));
        }
    }
    out.join("\n")
}

/// Shared normalization context: rebases ids and times, tracks the max
/// block distance referenced, and records the first refusal reason.
struct Normalizer {
    t_ns: u64,
    seqc: u64,
    flows_len: u32,
    fpb: u32,
    /// The just-finished iteration (`next_iter - 1`).
    top_iter: u32,
    maxd: u32,
    err: Option<&'static str>,
}

impl Normalizer {
    fn fail(&mut self, why: &'static str) {
        self.err.get_or_insert(why);
    }

    /// Rebase a flow reference and record its block distance.
    fn dflow(&mut self, f: FlowId) -> u32 {
        if f >= self.flows_len {
            self.fail("foreign-flow-reference");
            return 0;
        }
        let dist = self.top_iter - f / self.fpb;
        self.maxd = self.maxd.max(dist);
        self.flows_len - f
    }

    fn diter(&mut self, iter: u32) -> u32 {
        match self.top_iter.checked_sub(iter) {
            Some(d) => d,
            None => {
                self.fail("future-iteration-tag");
                0
            }
        }
    }

    fn dt(&mut self, at: SimTime) -> u64 {
        match at.as_ns().checked_sub(self.t_ns) {
            Some(d) => d,
            None => {
                self.fail("event-before-boundary");
                0
            }
        }
    }

    fn age(&mut self, at: SimTime) -> u64 {
        match self.t_ns.checked_sub(at.as_ns()) {
            Some(d) => d,
            None => {
                self.fail("timestamp-after-boundary");
                0
            }
        }
    }

    fn rseq(&mut self, seq: u64) -> u64 {
        match self.seqc.checked_sub(seq) {
            Some(d) => d,
            None => {
                self.fail("unissued-sequence");
                0
            }
        }
    }

    fn packet(&mut self, p: &Packet) -> NormPacket {
        let kind = match p.kind {
            PacketKind::Data { flow, seq } => NormPacketKind::Data {
                dflow: self.dflow(flow),
                seq,
            },
            PacketKind::Ack { flow, block } => NormPacketKind::Ack {
                dflow: self.dflow(flow),
                block,
            },
        };
        NormPacket {
            kind,
            src: p.src.0,
            dst: p.dst.0,
            size: p.size,
            prio: p.prio.0,
            tag: p.tag.map(|t| (t.job, self.diter(t.iter))),
            src_leaf: p.src_leaf,
            ingress: p.ingress.map(|l| l.0),
            ce: p.ce,
        }
    }

    fn flow(&mut self, f: &FlowState) -> NormFlow {
        let dglobal = if f.global < self.flows_len {
            self.flows_len - f.global
        } else {
            self.fail("foreign-global-id");
            0
        };
        NormFlow {
            src: f.src.0,
            dst: f.dst.0,
            bytes: f.bytes,
            mtu: f.mtu,
            npkts: f.npkts,
            tag: f.tag.map(|t| (t.job, self.diter(t.iter))),
            prio: f.prio.0,
            dglobal,
            app_token: f.app_token,
            next_seq: f.next_seq,
            acked: f.acked.clone(),
            failed: f.failed,
            retx: f.retx,
            cum_acked: f.cum_acked,
            rto_gen: f.rto_gen.clone(),
            rcvd: f.rcvd.clone(),
            pending_ack: f.pending_ack,
            completed_age: f.completed_at.map(|c| self.age(c)),
            created_age: self.age(f.created_at),
        }
    }
}

/// Scheduler-statistics growth over one window. `max_pending` is a
/// high-water mark; the delta carries zero and replay never adds to it.
/// The timing wheel's placement diagnostics (level pushes, cascades,
/// spills, splices) depend on absolute-time radix digits and are *not*
/// exactly periodic — replay applies the recorded window's counts as an
/// approximation, documented in DESIGN.md §11 (pushes and pops are
/// exact; only the per-level placement split can drift).
fn sched_window(cur: &SchedStats, prev: &SchedStats) -> SchedStats {
    SchedStats {
        pushes: cur.pushes - prev.pushes,
        pops: cur.pops - prev.pops,
        max_pending: 0,
        level_pushes: std::array::from_fn(|i| cur.level_pushes[i] - prev.level_pushes[i]),
        spill_pushes: cur.spill_pushes - prev.spill_pushes,
        cascades: cur.cascades - prev.cascades,
        cascaded_entries: cur.cascaded_entries - prev.cascaded_entries,
        due_splices: cur.due_splices - prev.due_splices,
    }
}

/// Shift a packet onto the replayed iteration's flow block.
fn shift_packet(p: &mut Packet, dflow: u32, diter: u32) {
    match &mut p.kind {
        PacketKind::Data { flow, .. } => *flow += dflow,
        PacketKind::Ack { flow, .. } => *flow += dflow,
    }
    if let Some(tag) = &mut p.tag {
        tag.iter += diter;
    }
}

impl Simulator {
    /// Arm temporal-symmetry memoization (`FP_MEMO`). `barriers` lists
    /// iteration numbers that must run live — fault onsets, heal edges
    /// and scheduled control actions; a fast-forward never covers one.
    ///
    /// Contract: the caller promises that per-iteration hooks observing
    /// simulator state (monitors, controllers) either are absent or fire
    /// only at barrier iterations, and that the run drains to completion
    /// (no mid-run horizon) — a replay jumps the clock and would
    /// overshoot `run_until` limits. The workload runner additionally
    /// refuses the boundary hook under start jitter (its private RNG is
    /// invisible to the fingerprint).
    pub fn enable_memo(&mut self, barriers: Vec<u32>) {
        let disabled = match self.cfg.spray {
            SprayPolicy::Random | SprayPolicy::LeastLoadedRandomTie => Some("random-spray"),
            // Adaptive spraying is phase-anchored: deficit halvings happen
            // on an absolute `spray_tau` grid (`spray_deficit_at` starts at
            // 0 and only ever advances by whole multiples of tau), so the
            // boundary-relative deficit state repeats only when the
            // iteration period divides tau. The fingerprint would soundly
            // auto-miss forever; refuse eagerly so the fallback reason is
            // visible instead of a silent perpetual miss.
            SprayPolicy::Adaptive => Some("adaptive-spray-decay"),
            // REPS recycles entropies fed by ACK arrival order; the cache
            // is feedback-dependent state the fingerprint cannot soundly
            // normalize, so refuse eagerly with a visible reason.
            SprayPolicy::Reps | SprayPolicy::RepsFailover => Some("reps-entropy-cache"),
            // ECMP is a pure flow hash; PRIME is a pure function of
            // (flow, seq, epoch) and its sprayer reports a dynamic
            // residual if congestion epochs ever appear (see snapshot).
            SprayPolicy::RoundRobin
            | SprayPolicy::LeastLoaded
            | SprayPolicy::Ecmp
            | SprayPolicy::Prime => None,
        };
        self.memo = Some(Box::new(MemoState {
            barriers,
            disabled,
            ring: Vec::new(),
            hits: 0,
            replayed_iters: 0,
            replayed_events: 0,
            fallback: None,
        }));
    }

    /// Memoization outcome counters, if [`Simulator::enable_memo`] was
    /// called.
    pub fn memo_counters(&self) -> Option<MemoCounters> {
        self.memo.as_ref().map(|m| MemoCounters {
            hits: m.hits,
            replayed_iters: m.replayed_iters,
            replayed_events: m.replayed_events,
            fallback: m.fallback.map(str::to_owned),
        })
    }

    /// Iteration-boundary hook, called by the workload runner right after
    /// iteration `next_iter - 1` completed with `remaining` iterations
    /// left to run. Returns a [`MemoReplay`] when the engine
    /// fast-forwarded `iters` of them; the runner then advances its own
    /// counters and records instead of scheduling the next iteration
    /// normally. Returns `None` (and simulates live) on a fingerprint
    /// miss or any eligibility refusal.
    pub fn memo_boundary(&mut self, next_iter: u32, remaining: u32) -> Option<MemoReplay> {
        let mut st = self.memo.take()?;
        let r = self.memo_boundary_inner(&mut st, next_iter, remaining);
        self.memo = Some(st);
        r
    }

    fn memo_boundary_inner(
        &mut self,
        st: &mut MemoState,
        next_iter: u32,
        remaining: u32,
    ) -> Option<MemoReplay> {
        if let Some(why) = st.disabled {
            st.fallback.get_or_insert(why);
            return None;
        }
        if remaining == 0 {
            return None;
        }
        if self.recorder.is_some() {
            st.fallback.get_or_insert("recorder-attached");
            st.ring.clear();
            return None;
        }
        if self.shard.is_some() {
            st.fallback.get_or_insert("sharded");
            st.ring.clear();
            return None;
        }
        let snap = match self.memo_snapshot(next_iter) {
            Ok(s) => s,
            Err(why) => {
                // Warm-up is a phase every memoized run passes through,
                // not a downgrade worth reporting.
                if why != "warmup" {
                    st.fallback.get_or_insert(why);
                }
                st.ring.clear();
                return None;
            }
        };
        // Cap the replay at the first upcoming barrier: that iteration
        // (and the windows around it) must simulate live.
        let mut cap = remaining;
        for &b in &st.barriers {
            if b >= next_iter {
                cap = cap.min(b - next_iter);
            }
        }
        // Match against the ring, most recent first: the entry `k`
        // boundaries back certifies a steady state of period `k`
        // iterations. Smallest `k` wins (most iterations per window
        // record, fewest live boundaries between hits).
        let Some(pos) = st.ring.iter().rposition(|p| p.snap == snap) else {
            if std::env::var_os("FP_MEMO_DEBUG").is_some() {
                if let Some(p) = st.ring.last() {
                    eprintln!(
                        "memo miss at iter {next_iter}: {}",
                        snap_diff(&p.snap, &snap)
                    );
                }
            }
            st.push(BoundaryRecord::capture(self, snap));
            return None;
        };
        let k = (st.ring.len() - pos) as u32;
        // Whole windows only: a partial window would land mid-cycle on a
        // boundary whose residual was never recorded.
        let units = cap / k;
        if units == 0 {
            st.push(BoundaryRecord::capture(self, snap));
            return None;
        }
        let p = st.ring.swap_remove(pos);
        if self.trace.offered != p.trace_offered {
            // Something exceptional was traced inside the window; traced
            // events are not replayed, so this window stays live.
            st.fallback.get_or_insert("traced-events-in-window");
            st.ring.clear();
            st.push(BoundaryRecord::capture(self, snap));
            return None;
        }
        let period_ns = self.now.as_ns() - p.at.as_ns();
        if period_ns == 0 {
            st.fallback.get_or_insert("zero-period");
            st.ring.clear();
            st.push(BoundaryRecord::capture(self, snap));
            return None;
        }
        let iters = units * k;
        let stats_delta = self.stats.memo_diff(&p.stats);
        // A live run stops at `max_events` mid-iteration; never replay
        // across the budget (the gate keeps budget-limited runs live and
        // therefore byte-identical).
        if stats_delta
            .events
            .saturating_mul(units as u64)
            .saturating_add(self.stats.events)
            > self.cfg.max_events
        {
            st.fallback.get_or_insert("event-budget");
            st.ring.clear();
            st.push(BoundaryRecord::capture(self, snap));
            return None;
        }
        debug_assert_eq!(self.flows.len() as u32 - p.flows_len, k * snap.fpb);

        // ---- recorded window deltas ----
        let sq = self.heap.memo_seq() - p.seq;
        let link_delta: Vec<[u64; 4]> = self
            .links
            .iter()
            .zip(&p.link_tx)
            .map(|(l, b)| {
                [
                    l.txed_pkts - b[0],
                    l.txed_bytes - b[1],
                    l.delivered_pkts - b[2],
                    l.delivered_bytes - b[3],
                ]
            })
            .collect();
        let counter_deltas: Vec<CounterDelta> = self.counters.memo_diff(&p.counters);
        let agg_deltas: Vec<CounterDelta> = self.agg_counters.memo_diff(&p.agg_counters);
        let sched_delta = sched_window(&self.sched_stats(), &p.sched);
        let span_delta: Vec<IterSpanRecord> = self.iter_spans[p.spans_len..].to_vec();

        // ---- in-place fast-forward of units windows (iters iterations) ----
        let boundary = self.now;
        let dt = SimDuration::from_ns(period_ns * units as u64);
        let dseq = sq * units as u64;
        let dflow = snap.fpb * iters;
        self.heap.memo_rebase(dt, dseq, dflow);
        self.front.memo_shift(dt, dseq);
        for pipe in &mut self.pipes {
            for e in pipe.iter_mut() {
                e.at += dt;
                e.seq += dseq;
                shift_packet(&mut e.pkt, dflow, iters);
            }
        }
        for (l, d) in self.links.iter_mut().zip(&link_delta) {
            l.txed_pkts += d[0] * units as u64;
            l.txed_bytes += d[1] * units as u64;
            l.delivered_pkts += d[2] * units as u64;
            l.delivered_bytes += d[3] * units as u64;
            if let Some(cur) = l.current.as_mut() {
                shift_packet(cur, dflow, iters);
            }
            for q in &mut l.queues {
                for pkt in q.iter_mut() {
                    shift_packet(pkt, dflow, iters);
                }
            }
            for pr in 0..NPRIO {
                if l.paused[pr] {
                    l.paused_since[pr] += dt;
                }
            }
        }
        if self.cfg.spray_tau.as_ns() > 0 {
            for sw in &mut self.switches {
                for v in 0..sw.spray_deficit_at.len() {
                    // Never-touched slots keep their initial zero base
                    // (it is not boundary-relative state).
                    if sw.spray_deficit[v] != 0 || sw.spray_deficit_at[v] != 0 {
                        sw.spray_deficit_at[v] += dt.as_ns();
                    }
                }
            }
        }
        for h in &mut self.hosts {
            for f in &mut h.active {
                *f += dflow;
            }
        }
        self.memo_replay_flows(snap.fpb, next_iter, units, k, snap.dterm, period_ns);
        for j in 1..=units {
            let tshift = period_ns * j as u64;
            for d in &counter_deltas {
                self.counters.memo_apply(d, j * k, tshift);
            }
            for d in &agg_deltas {
                self.agg_counters.memo_apply(d, j * k, tshift);
            }
            for sp in &span_delta {
                self.iter_spans.push(IterSpanRecord {
                    job: sp.job,
                    iter: sp.iter + j * k,
                    start: sp.start + SimDuration::from_ns(tshift),
                    end: sp.end + SimDuration::from_ns(tshift),
                });
            }
        }
        self.stats.memo_apply(&stats_delta, units as u64);
        self.heap.memo_add_stats(&sched_delta, units as u64);
        self.now = boundary + dt;
        self.last_event_ns = self.now.as_ns();
        let replayed_events = stats_delta.events * units as u64;
        self.trace.push(
            boundary,
            TraceEvent::MemoFastForward {
                iters,
                events: replayed_events,
            },
        );
        st.hits += 1;
        st.replayed_iters += iters as u64;
        st.replayed_events += replayed_events;

        // The theorem says the residual at the new boundary normalizes to
        // the same fingerprint; verify that in debug builds (this runs in
        // every debug-mode test that memoizes).
        #[cfg(debug_assertions)]
        {
            let re = self
                .memo_snapshot(next_iter + iters)
                .expect("post-replay snapshot became ineligible");
            assert!(
                re == snap,
                "fast-forward did not preserve the normalized residual"
            );
        }
        // The jump crossed `units` whole cycles, so the landing boundary
        // is in the matched record's phase — but the other ring entries
        // are no longer 1..len boundaries back. Restart the ring from the
        // landing boundary (its baselines re-captured post-replay).
        st.ring.clear();
        st.push(BoundaryRecord::capture(self, snap));
        Some(MemoReplay {
            iters,
            window: k,
            period: SimDuration::from_ns(period_ns),
        })
    }

    /// Eagerly apply the lazy exponential decay of every adaptive-spray
    /// deficit slot up to `now`. Semantically a no-op — it performs
    /// exactly the advancement `decayed_deficit` would perform at the
    /// next touch (the floor-composition identity
    /// `q + ⌊(x - q·τ)/τ⌋ = ⌊x/τ⌋` makes early advancement commute with
    /// later ones) — but it puts `spray_deficit_at` into a canonical,
    /// boundary-relative form the fingerprint can compare.
    fn memo_sync_spray_decay(&mut self) {
        let tau = self.cfg.spray_tau.as_ns();
        if tau == 0 {
            return;
        }
        let now = self.now.as_ns();
        for sw in &mut self.switches {
            for v in 0..sw.spray_deficit.len() {
                if sw.spray_deficit[v] == 0 && sw.spray_deficit_at[v] == 0 {
                    continue; // never touched
                }
                let elapsed = now.saturating_sub(sw.spray_deficit_at[v]);
                let halvings = elapsed / tau;
                if halvings > 0 {
                    sw.spray_deficit[v] >>= halvings.min(63);
                    sw.spray_deficit_at[v] += halvings * tau;
                }
            }
        }
    }

    /// Capture the normalized residual fingerprint at an iteration
    /// boundary, or refuse with a reason when residual state is not
    /// provably periodic.
    fn memo_snapshot(&mut self, next_iter: u32) -> Result<NormSnapshot, &'static str> {
        let flows_len = self.flows.len() as u32;
        if next_iter == 0 || flows_len == 0 {
            return Err("warmup");
        }
        if !flows_len.is_multiple_of(next_iter) {
            return Err("uneven-flow-blocks");
        }
        for l in &self.links {
            if l.fault.is_some() {
                return Err("link-fault-active");
            }
        }
        self.memo_sync_spray_decay();
        let mut n = Normalizer {
            t_ns: self.now.as_ns(),
            seqc: self.heap.memo_seq(),
            flows_len,
            fpb: flows_len / next_iter,
            top_iter: next_iter - 1,
            maxd: 0,
            err: None,
        };

        let mut events: Vec<NormEvent> = Vec::new();
        {
            let nn = &mut n;
            let evs = &mut events;
            self.heap.memo_for_each(&mut |at, seq, kind| {
                let dt = nn.dt(at);
                let rseq = nn.rseq(seq);
                let kind = match kind {
                    EventKind::Rto {
                        flow,
                        seq,
                        attempt,
                        gen,
                    } => NormEventKind::Rto {
                        dflow: nn.dflow(flow),
                        seq,
                        attempt,
                        gen,
                    },
                    EventKind::AckFlush { flow } => NormEventKind::AckFlush {
                        dflow: nn.dflow(flow),
                    },
                    EventKind::TxDone { link } => NormEventKind::TxDone { link: link.0 },
                    EventKind::Wake { .. }
                    | EventKind::FaultUpdate { .. }
                    | EventKind::ControlUpdate { .. }
                    | EventKind::Pfc { .. }
                    | EventKind::Sample => {
                        nn.fail("pending-control-events");
                        NormEventKind::TxDone { link: u32::MAX }
                    }
                };
                evs.push(NormEvent { dt, rseq, kind });
            });
        }
        events.sort();

        let pipes: Vec<Vec<NormInFlight>> = self
            .pipes
            .iter()
            .map(|p| {
                p.iter()
                    .map(|e| NormInFlight {
                        dt: n.dt(e.at),
                        rseq: n.rseq(e.seq),
                        link: e.link.0,
                        pkt: n.packet(&e.pkt),
                    })
                    .collect()
            })
            .collect();

        let mut front: Vec<NormFront> = self
            .front
            .memo_entries()
            .iter()
            .map(|f| NormFront {
                dt: n.dt(f.at),
                rseq: n.rseq(f.seq),
                pipe: f.pipe,
            })
            .collect();
        front.sort();

        let links: Vec<NormLink> = self
            .links
            .iter()
            .map(|l| NormLink {
                admin_up: l.admin_up,
                spray_avoid: l.spray_avoid,
                txing: l.txing,
                current: l.current.as_ref().map(|p| n.packet(p)),
                inflight: l.inflight,
                queued_bytes: l.queued_bytes,
                queues: std::array::from_fn(|q| l.queues[q].iter().map(|p| n.packet(p)).collect()),
                paused: l.paused,
                pause_age: std::array::from_fn(|q| {
                    if l.paused[q] {
                        n.age(l.paused_since[q])
                    } else {
                        0
                    }
                }),
            })
            .collect();

        let tau = self.cfg.spray_tau.as_ns();
        let switches: Vec<NormSwitch> = self
            .switches
            .iter()
            .map(|s| NormSwitch {
                ingress_usage: s.ingress_usage.clone(),
                pause_sent: s.pause_sent.clone(),
                rr_cursor: s.rr_cursor,
                sprayer_residual: match s.sprayer.memo_residual() {
                    Ok(r) => r,
                    Err(why) => {
                        n.fail(why);
                        0
                    }
                },
                spray: s
                    .spray_deficit
                    .iter()
                    .zip(&s.spray_deficit_at)
                    .map(|(&v, &at)| {
                        if tau == 0 {
                            (v, 0) // decay disabled; the timestamp base is dead state
                        } else if v == 0 && at == 0 {
                            (0, u64::MAX) // never touched
                        } else {
                            (v, n.t_ns - at)
                        }
                    })
                    .collect(),
            })
            .collect();

        let hosts: Vec<Vec<u32>> = self
            .hosts
            .iter()
            .map(|h| h.active.iter().map(|&f| n.dflow(f)).collect())
            .collect();

        let rng = self.rng.clone();

        // Every reference has been seen: D is final. The surgery needs
        // blocks at distances 0..=D+1 present at *both* compared
        // boundaries, i.e. next_iter >= D+3.
        let dterm = n.maxd;
        if next_iter < dterm + 3 {
            return Err("warmup");
        }
        let first_block = (next_iter - 1 - (dterm + 1)) as usize * n.fpb as usize;
        let blocks: Vec<NormFlow> = self.flows[first_block..]
            .iter()
            .map(|f| n.flow(f))
            .collect();

        if let Some(why) = n.err {
            return Err(why);
        }
        Ok(NormSnapshot {
            dterm,
            fpb: n.fpb,
            events,
            pipes,
            front,
            links,
            switches,
            hosts,
            in_flight_pkts: self.in_flight_pkts,
            rng,
            blocks,
        })
    }

    /// Rewrite the flow table for a fast-forward of `units` windows of
    /// `k` iterations each (`iters = units·k` in total).
    ///
    /// At the boundary `B_i` (`i = next_iter - 1`) the table holds blocks
    /// `0..=i` of `fpb` flows each. After the replay the table must equal
    /// what a live run would hold at `B_{i+iters}`:
    ///
    /// * blocks `b <= i-(D+1)` were already frozen — unchanged;
    /// * blocks `b >= i+iters-(D+1)` are still live — a copy of block
    ///   `b-iters` shifted by `units` window periods;
    /// * blocks in between aged out during the replayed span and reached
    ///   the terminal frozen form of their *phase* — a copy of the newest
    ///   frozen block congruent to `b` mod `k` (one of the `k` blocks
    ///   ending at `i-(D+1)`), shifted whole windows forward. With `k = 1`
    ///   every phase is the same and this degenerates to the single
    ///   terminal block.
    ///
    /// Shifting a flow by `s` blocks (`s` a multiple of `k`) adds
    /// `(s/k)·P` to its timestamps, `s·F` to its global id and `s` to its
    /// iteration tag; all transport state (bitmaps, generations,
    /// counters) copies verbatim — that is what the fingerprint equality
    /// certifies, block by block, for every block live at either compared
    /// boundary.
    fn memo_replay_flows(
        &mut self,
        fpb: u32,
        next_iter: u32,
        units: u32,
        k: u32,
        dterm: u32,
        period_ns: u64,
    ) {
        let iters = units * k;
        let nb_old = next_iter; // blocks before the replay
        let nb_new = next_iter + iters;
        let term = nb_old - dterm - 2; // newest frozen block, i-(D+1)
        let base = term + 1 - k; // oldest per-phase terminal block needed
        let fpb_us = fpb as usize;
        let tail: Vec<FlowState> = self.flows[base as usize * fpb_us..].to_vec();
        self.flows.truncate((term as usize + 1) * fpb_us);
        for b in (term + 1)..nb_new {
            let (src, s) = if b + dterm + 2 >= nb_new {
                (b - iters, iters) // still-live tail: shift the old block
            } else {
                // Aged out: terminal frozen form of this phase, the
                // newest frozen block a whole number of windows back.
                let w = (b - term).div_ceil(k);
                (b - w * k, w * k)
            };
            let shift = SimDuration::from_ns(period_ns * (s / k) as u64);
            let off = (src - base) as usize * fpb_us;
            for j in 0..fpb_us {
                let mut f = tail[off + j].clone();
                f.created_at += shift;
                if let Some(c) = f.completed_at {
                    f.completed_at = Some(c + shift);
                }
                f.global += s * fpb;
                if let Some(tag) = &mut f.tag {
                    tag.iter += s;
                }
                self.flows.push(f);
            }
        }
        debug_assert_eq!(self.flows.len(), nb_new as usize * fpb_us);
    }
}
