//! In-switch FlowPulse counters.
//!
//! Each *leaf* switch maintains, per spine-facing ingress port, the number of
//! payload bytes received for every `(job, iteration)` collective tag
//! (paper §5.1/§5.3). A second, per-source-leaf breakdown supports fault
//! localization (§5.3, Fig. 4). Only *valid, delivered* data packets are
//! counted — packets lost to silent faults never reach the counter, which is
//! precisely the temporal-symmetry signal.
//!
//! The store is shared across leaves in the simulator for convenience, but
//! all reads used by the detector are per-leaf: nothing here requires
//! cross-switch coordination.

use crate::packet::CollectiveTag;
use crate::time::SimTime;
use std::collections::HashMap;

/// Byte/packet counts for one collective iteration, across all monitoring
/// switches ("rows": leaves for the leaf-level store, aggs for the 3-level
/// agg-level store).
#[derive(Clone, Debug)]
pub struct IterCounters {
    n_vspines: usize,
    n_rows: usize,
    n_src: usize,
    /// Payload bytes per `(row, vspine)` ingress port; index `row * n_vspines + vspine`.
    pub bytes: Vec<u64>,
    /// Packets per `(row, vspine)`.
    pub pkts: Vec<u64>,
    /// Payload bytes per `(row, vspine, src_leaf)`;
    /// index `(row * n_vspines + vspine) * n_src + src_leaf`.
    pub by_src: Vec<u64>,
    /// Per-row time the first tagged packet of this iteration was seen
    /// (`u64::MAX` = never). This is what lets a leaf *independently* detect
    /// the start of iteration `k+1` and close its measurement of `k` (§5.1).
    pub first_seen: Vec<u64>,
    /// Per-row time of the last tagged packet.
    pub last_seen: Vec<u64>,
}

impl IterCounters {
    fn new(n_rows: usize, n_vspines: usize, n_src: usize) -> Self {
        IterCounters {
            n_vspines,
            n_rows,
            n_src,
            bytes: vec![0; n_rows * n_vspines],
            pkts: vec![0; n_rows * n_vspines],
            by_src: vec![0; n_rows * n_vspines * n_src],
            first_seen: vec![u64::MAX; n_rows],
            last_seen: vec![0; n_rows],
        }
    }

    /// Dimensions `(n_rows, n_vspines, n_src)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.n_rows, self.n_vspines, self.n_src)
    }

    /// Bytes received at `leaf` on the ingress port from `vspine`.
    pub fn port_bytes(&self, leaf: u32, vspine: u32) -> u64 {
        self.bytes[leaf as usize * self.n_vspines + vspine as usize]
    }

    /// Packets received at `leaf` on the ingress port from `vspine`.
    pub fn port_pkts(&self, leaf: u32, vspine: u32) -> u64 {
        self.pkts[leaf as usize * self.n_vspines + vspine as usize]
    }

    /// Bytes received at `leaf` from `vspine` originated by hosts under
    /// `src_leaf`.
    pub fn port_src_bytes(&self, leaf: u32, vspine: u32, src_leaf: u32) -> u64 {
        self.by_src
            [(leaf as usize * self.n_vspines + vspine as usize) * self.n_src + src_leaf as usize]
    }

    /// All per-port byte counts for one leaf (length = number of vspines).
    pub fn leaf_ports(&self, leaf: u32) -> &[u64] {
        let s = leaf as usize * self.n_vspines;
        &self.bytes[s..s + self.n_vspines]
    }

    /// Total tagged bytes this iteration across all leaves.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// When `leaf` first saw this iteration, if ever.
    pub fn first_seen_at(&self, leaf: u32) -> Option<SimTime> {
        let t = self.first_seen[leaf as usize];
        (t != u64::MAX).then(|| SimTime::from_ns(t))
    }
}

/// Counter growth for one `(job, iter)` over one recorded memo window —
/// see [`CounterStore::memo_diff`] / [`CounterStore::memo_apply`].
#[derive(Clone, Debug)]
pub struct CounterDelta {
    /// Job of the entry this delta grows.
    pub job: u32,
    /// Collective iteration of the entry; replay rebases this by the
    /// replayed-iteration offset.
    pub iter: u32,
    /// Added bytes per `(row, vspine)` cell.
    pub bytes: Vec<u64>,
    /// Added packets per `(row, vspine)` cell.
    pub pkts: Vec<u64>,
    /// Added bytes per `(row, vspine, src)` cell.
    pub by_src: Vec<u64>,
    /// Per-row `first_seen` written this window (`u64::MAX` = untouched);
    /// absolute ns, rebased by the replay time shift.
    pub first_seen: Vec<u64>,
    /// Per-row `last_seen` written this window (`0` = untouched);
    /// absolute ns, rebased by the replay time shift.
    pub last_seen: Vec<u64>,
}

/// All iteration counters of a run, keyed by `(job, iter)`.
///
/// Layout is optimized for the per-packet hot path ([`Self::record`]):
/// counters live in a dense `Vec` with a `HashMap` index on the side, and
/// the most recently touched slot is cached. Tagged packets of the same
/// collective iteration arrive in long runs, so almost every record hits
/// the cache and touches neither the hash nor the index.
#[derive(Clone, Debug)]
pub struct CounterStore {
    n_rows: usize,
    n_vspines: usize,
    n_src: usize,
    /// Dense storage in first-recorded order.
    entries: Vec<((u32, u32), IterCounters)>,
    /// `(job, iter)` → index into `entries`.
    index: HashMap<(u32, u32), u32>,
    /// Most recently recorded entry (`u32::MAX` = none yet).
    last: u32,
}

impl CounterStore {
    /// Empty store for a fabric with the given dimensions (rows = leaves,
    /// sources = leaves).
    pub fn new(n_leaves: usize, n_vspines: usize) -> Self {
        Self::new_with_src(n_leaves, n_vspines, n_leaves)
    }

    /// Empty store with an explicit source dimension — used by the 3-level
    /// agg-level store, where rows are aggregation switches but traffic
    /// sources are still leaves.
    pub fn new_with_src(n_rows: usize, n_vspines: usize, n_src: usize) -> Self {
        CounterStore {
            n_rows,
            n_vspines,
            n_src,
            entries: Vec::new(),
            index: HashMap::new(),
            last: u32::MAX,
        }
    }

    /// Record `bytes` of tagged payload arriving at `leaf` via the ingress
    /// port from `vspine`, sent by a host under `src_leaf`.
    pub fn record(
        &mut self,
        leaf: u32,
        vspine: u32,
        tag: CollectiveTag,
        src_leaf: u32,
        bytes: u64,
        now: SimTime,
    ) {
        let key = (tag.job, tag.iter);
        let i = match self.entries.get(self.last as usize) {
            // Fast path: same (job, iter) as the previous packet.
            Some((k, _)) if *k == key => self.last as usize,
            _ => {
                let i = match self.index.get(&key) {
                    Some(&i) => i as usize,
                    None => {
                        let i = self.entries.len();
                        self.entries.push((
                            key,
                            IterCounters::new(self.n_rows, self.n_vspines, self.n_src),
                        ));
                        self.index.insert(key, i as u32);
                        i
                    }
                };
                self.last = i as u32;
                i
            }
        };
        let c = &mut self.entries[i].1;
        let pi = leaf as usize * self.n_vspines + vspine as usize;
        c.bytes[pi] += bytes;
        c.pkts[pi] += 1;
        c.by_src[pi * self.n_src + src_leaf as usize] += bytes;
        let fs = &mut c.first_seen[leaf as usize];
        if *fs == u64::MAX {
            *fs = now.as_ns();
        }
        c.last_seen[leaf as usize] = c.last_seen[leaf as usize].max(now.as_ns());
    }

    /// Counters for one `(job, iter)`, if any packet was recorded.
    pub fn get(&self, job: u32, iter: u32) -> Option<&IterCounters> {
        self.index
            .get(&(job, iter))
            .map(|&i| &self.entries[i as usize].1)
    }

    /// All `(job, iter)` keys, sorted.
    pub fn keys(&self) -> Vec<(u32, u32)> {
        let mut k: Vec<_> = self.entries.iter().map(|(k, _)| *k).collect();
        k.sort_unstable();
        k
    }

    /// Iterations recorded for `job`, sorted.
    pub fn iters_of(&self, job: u32) -> Vec<u32> {
        let mut k: Vec<u32> = self
            .entries
            .iter()
            .filter(|((j, _), _)| *j == job)
            .map(|&((_, i), _)| i)
            .collect();
        k.sort_unstable();
        k
    }

    /// Fabric dimensions `(n_rows, n_vspines)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.n_rows, self.n_vspines)
    }

    /// One `(job, iter)` entry's worth of counter growth over a recorded
    /// memo window (see `crate::sim::memo`). `first_seen` uses `u64::MAX`
    /// and `last_seen` uses `0` as "row untouched this window" sentinels —
    /// the same idle values [`IterCounters::new`] starts rows at, so a
    /// sentinel never shadows a real update.
    pub fn memo_diff(&self, prev: &CounterStore) -> Vec<CounterDelta> {
        debug_assert!(self.entries.len() >= prev.entries.len());
        let mut out = Vec::new();
        for ((job, iter), c) in &self.entries {
            let base = prev.get(*job, *iter);
            let mut d = CounterDelta {
                job: *job,
                iter: *iter,
                bytes: c.bytes.clone(),
                pkts: c.pkts.clone(),
                by_src: c.by_src.clone(),
                first_seen: c.first_seen.clone(),
                last_seen: c.last_seen.clone(),
            };
            if let Some(p) = base {
                for (a, b) in d.bytes.iter_mut().zip(&p.bytes) {
                    *a -= b;
                }
                for (a, b) in d.pkts.iter_mut().zip(&p.pkts) {
                    *a -= b;
                }
                for (a, b) in d.by_src.iter_mut().zip(&p.by_src) {
                    *a -= b;
                }
                for (a, b) in d.first_seen.iter_mut().zip(&p.first_seen) {
                    if *a == *b {
                        *a = u64::MAX;
                    }
                }
                for (a, b) in d.last_seen.iter_mut().zip(&p.last_seen) {
                    if *a == *b {
                        *a = 0;
                    }
                }
            }
            let touched = d.bytes.iter().any(|&v| v != 0)
                || d.pkts.iter().any(|&v| v != 0)
                || d.first_seen.iter().any(|&v| v != u64::MAX)
                || d.last_seen.iter().any(|&v| v != 0);
            if touched {
                out.push(d);
            }
        }
        out
    }

    /// Replay one recorded window delta onto the store, rebased by
    /// `iter_shift` collective iterations and `t_shift_ns` of simulated
    /// time. Cells add; seen-times min/max-merge exactly like a live
    /// [`Self::record`] stream would have produced.
    pub fn memo_apply(&mut self, d: &CounterDelta, iter_shift: u32, t_shift_ns: u64) {
        let key = (d.job, d.iter + iter_shift);
        let i = match self.index.get(&key) {
            Some(&i) => i as usize,
            None => {
                let i = self.entries.len();
                self.entries.push((
                    key,
                    IterCounters::new(self.n_rows, self.n_vspines, self.n_src),
                ));
                self.index.insert(key, i as u32);
                i
            }
        };
        let c = &mut self.entries[i].1;
        for (a, b) in c.bytes.iter_mut().zip(&d.bytes) {
            *a += b;
        }
        for (a, b) in c.pkts.iter_mut().zip(&d.pkts) {
            *a += b;
        }
        for (a, b) in c.by_src.iter_mut().zip(&d.by_src) {
            *a += b;
        }
        for (a, b) in c.first_seen.iter_mut().zip(&d.first_seen) {
            if *b != u64::MAX {
                *a = (*a).min(b + t_shift_ns);
            }
        }
        for (a, b) in c.last_seen.iter_mut().zip(&d.last_seen) {
            if *b != 0 {
                *a = (*a).max(b + t_shift_ns);
            }
        }
    }

    /// Fold another store of identical dimensions into this one: byte,
    /// packet and per-source cells add; `first_seen` takes the minimum
    /// and `last_seen` the maximum per row. Used to merge the per-shard
    /// counter stores of an intra-trial sharded run — each row (leaf or
    /// agg) is written by exactly one shard, so merged contents equal an
    /// unsharded run's. Detector reads go through sorted [`Self::keys`],
    /// so entry insertion order does not matter.
    pub fn merge_from(&mut self, other: &CounterStore) {
        assert_eq!(
            (self.n_rows, self.n_vspines, self.n_src),
            (other.n_rows, other.n_vspines, other.n_src),
            "merging counter stores of different fabrics"
        );
        for (key, oc) in &other.entries {
            let i = match self.index.get(key) {
                Some(&i) => i as usize,
                None => {
                    let i = self.entries.len();
                    self.entries.push((
                        *key,
                        IterCounters::new(self.n_rows, self.n_vspines, self.n_src),
                    ));
                    self.index.insert(*key, i as u32);
                    i
                }
            };
            let c = &mut self.entries[i].1;
            for (a, b) in c.bytes.iter_mut().zip(&oc.bytes) {
                *a += b;
            }
            for (a, b) in c.pkts.iter_mut().zip(&oc.pkts) {
                *a += b;
            }
            for (a, b) in c.by_src.iter_mut().zip(&oc.by_src) {
                *a += b;
            }
            for (a, b) in c.first_seen.iter_mut().zip(&oc.first_seen) {
                *a = (*a).min(*b);
            }
            for (a, b) in c.last_seen.iter_mut().zip(&oc.last_seen) {
                *a = (*a).max(*b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAG: CollectiveTag = CollectiveTag { job: 1, iter: 0 };

    #[test]
    fn record_accumulates() {
        let mut s = CounterStore::new(4, 2);
        s.record(2, 1, TAG, 0, 100, SimTime::from_ns(10));
        s.record(2, 1, TAG, 3, 50, SimTime::from_ns(20));
        let c = s.get(1, 0).unwrap();
        assert_eq!(c.port_bytes(2, 1), 150);
        assert_eq!(c.port_pkts(2, 1), 2);
        assert_eq!(c.port_src_bytes(2, 1, 0), 100);
        assert_eq!(c.port_src_bytes(2, 1, 3), 50);
        assert_eq!(c.port_bytes(0, 0), 0);
        assert_eq!(c.total_bytes(), 150);
    }

    #[test]
    fn first_last_seen_per_leaf() {
        let mut s = CounterStore::new(2, 2);
        s.record(0, 0, TAG, 1, 10, SimTime::from_ns(5));
        s.record(0, 1, TAG, 1, 10, SimTime::from_ns(9));
        let c = s.get(1, 0).unwrap();
        assert_eq!(c.first_seen_at(0), Some(SimTime::from_ns(5)));
        assert_eq!(c.last_seen[0], 9);
        assert_eq!(c.first_seen_at(1), None);
    }

    #[test]
    fn iterations_are_separate() {
        let mut s = CounterStore::new(2, 2);
        s.record(
            0,
            0,
            CollectiveTag { job: 1, iter: 0 },
            1,
            10,
            SimTime::ZERO,
        );
        s.record(
            0,
            0,
            CollectiveTag { job: 1, iter: 1 },
            1,
            20,
            SimTime::ZERO,
        );
        s.record(
            0,
            0,
            CollectiveTag { job: 2, iter: 0 },
            1,
            30,
            SimTime::ZERO,
        );
        assert_eq!(s.get(1, 0).unwrap().port_bytes(0, 0), 10);
        assert_eq!(s.get(1, 1).unwrap().port_bytes(0, 0), 20);
        assert_eq!(s.get(2, 0).unwrap().port_bytes(0, 0), 30);
        assert_eq!(s.iters_of(1), vec![0, 1]);
        assert_eq!(s.keys(), vec![(1, 0), (1, 1), (2, 0)]);
    }

    #[test]
    fn merge_adds_cells_and_resolves_seen_times() {
        let mut a = CounterStore::new(2, 2);
        a.record(0, 0, TAG, 1, 10, SimTime::from_ns(5));
        let mut b = CounterStore::new(2, 2);
        b.record(0, 0, TAG, 1, 7, SimTime::from_ns(3));
        b.record(
            1,
            1,
            CollectiveTag { job: 1, iter: 1 },
            0,
            4,
            SimTime::from_ns(9),
        );
        a.merge_from(&b);
        let c = a.get(1, 0).unwrap();
        assert_eq!(c.port_bytes(0, 0), 17);
        assert_eq!(c.port_pkts(0, 0), 2);
        assert_eq!(c.port_src_bytes(0, 0, 1), 17);
        assert_eq!(c.first_seen_at(0), Some(SimTime::from_ns(3)));
        assert_eq!(c.last_seen[0], 5);
        // The (1,1) entry was created by the merge.
        assert_eq!(a.get(1, 1).unwrap().port_bytes(1, 1), 4);
        assert_eq!(a.keys(), vec![(1, 0), (1, 1)]);
    }

    #[test]
    fn leaf_ports_slice() {
        let mut s = CounterStore::new(3, 4);
        s.record(1, 2, TAG, 0, 7, SimTime::ZERO);
        let c = s.get(1, 0).unwrap();
        assert_eq!(c.leaf_ports(1), &[0, 0, 7, 0]);
        assert_eq!(c.leaf_ports(0), &[0, 0, 0, 0]);
    }
}
