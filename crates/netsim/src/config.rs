//! Simulator configuration.

use crate::engine::SchedKind;
use crate::spray::SprayPolicy;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Priority Flow Control parameters (per ingress port, per priority).
///
/// A switch tracks how many buffered bytes arrived via each ingress port at
/// each priority; crossing `xoff_bytes` sends a PAUSE to the upstream
/// transmitter for that priority, and draining below `xon_bytes` sends a
/// RESUME. This is the link-layer losslessness the paper's fabric relies on
/// (§2: "lossless queues with link-layer Priority Flow Control").
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct PfcConfig {
    /// Enable PFC. When disabled the fabric is still drop-free because
    /// queues are unbounded, but no backpressure is exerted.
    pub enabled: bool,
    /// Pause threshold in buffered bytes attributable to one ingress
    /// port+priority.
    pub xoff_bytes: u64,
    /// Resume threshold (must be < `xoff_bytes`).
    pub xon_bytes: u64,
}

impl Default for PfcConfig {
    fn default() -> Self {
        PfcConfig {
            enabled: true,
            xoff_bytes: 256 * 1024,
            xon_bytes: 192 * 1024,
        }
    }
}

/// Global simulator parameters. Defaults follow the paper's evaluation setup
/// (§6): RoCE-like reorder-tolerant transport, no congestion control,
/// retransmission timeout of 5 µs, lossless fabric.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct SimConfig {
    /// Maximum data payload per packet, bytes.
    pub mtu: u32,
    /// Per-packet wire overhead added to serialization (headers/IFG), bytes.
    pub wire_overhead: u32,
    /// ACK packet payload size, bytes.
    pub ack_size: u32,
    /// Retransmission timeout (paper §6: 5 µs).
    pub rto: SimDuration,
    /// Multiplicative RTO backoff per retransmission attempt.
    pub rto_backoff: f64,
    /// Backoff exponent cap: the timeout never exceeds
    /// `rto * rto_backoff^rto_backoff_cap`.
    pub rto_backoff_cap: u32,
    /// Give up on a segment after this many retransmissions and mark the
    /// flow failed (guards against infinite loops under total black holes).
    pub rto_max_attempts: u32,
    /// Coalesce up to this many data packets into one selective ACK.
    pub ack_coalesce: u32,
    /// Flush a partially-filled ACK after this delay (must be ≪ RTO).
    pub ack_flush_delay: SimDuration,
    /// Leaf uplink selection policy / spray backend. `Default::default`
    /// resolves from the `FP_SPRAY` environment variable (falling back to
    /// [`SprayPolicy::Adaptive`]); specs that pin the field explicitly are
    /// unaffected by the environment.
    pub spray: SprayPolicy,
    /// Half-life of the [`SprayPolicy::Adaptive`] utilization counters
    /// (lazy exponential decay). Zero disables decay (pure byte-deficit
    /// balancing).
    pub spray_tau: SimDuration,
    /// ECN marking threshold, bytes: a data packet enqueued while the
    /// egress queue already holds at least this many bytes is CE-marked,
    /// and the mark is echoed in the ACK (`AckBlock::ce_mask`). Only
    /// consulted when the spray backend asks for feedback
    /// (`SprayPolicy::wants_feedback`); classic policies never mark, so
    /// specs that predate the field (serde default) behave identically.
    #[serde(default = "default_ecn_threshold")]
    pub ecn_threshold: u64,
    /// Priority Flow Control parameters.
    pub pfc: PfcConfig,
    /// Hard safety limit on processed events (guards runaway configs).
    pub max_events: u64,
    /// Future-event scheduler backend. `None` (the default, and what specs
    /// that predate the field deserialize to) resolves from the `FP_SCHED`
    /// environment variable at simulator construction; the choice never
    /// affects results, only speed.
    pub sched: Option<SchedKind>,
}

/// Serde default for [`SimConfig::ecn_threshold`]: 16 MTU-sized packets
/// of standing queue (64 KiB at the default 4 KiB MTU).
fn default_ecn_threshold() -> u64 {
    64 * 1024
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mtu: 4096,
            wire_overhead: 64,
            ack_size: 64,
            rto: SimDuration::from_us(5),
            rto_backoff: 2.0,
            rto_backoff_cap: 8,
            rto_max_attempts: 50,
            ack_coalesce: 8,
            ack_flush_delay: SimDuration::from_ns(500),
            spray: SprayPolicy::from_env().unwrap_or(SprayPolicy::Adaptive),
            spray_tau: SimDuration::from_us(100),
            ecn_threshold: default_ecn_threshold(),
            pfc: PfcConfig::default(),
            max_events: u64::MAX,
            sched: None,
        }
    }
}

impl SimConfig {
    /// Validate invariants that would otherwise produce confusing behaviour.
    pub fn validate(&self) -> Result<(), String> {
        if self.mtu == 0 {
            return Err("mtu must be positive".into());
        }
        if self.ack_coalesce == 0 || self.ack_coalesce > 64 {
            return Err("ack_coalesce must be in 1..=64 (one AckBlock)".into());
        }
        if self.pfc.enabled && self.pfc.xon_bytes >= self.pfc.xoff_bytes {
            return Err("PFC xon must be below xoff".into());
        }
        if self.rto_backoff < 1.0 {
            return Err("rto_backoff must be >= 1.0".into());
        }
        if self.ack_flush_delay.as_ns() * 2 > self.rto.as_ns() {
            return Err("ack_flush_delay must be well below the RTO".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SimConfig::default().validate().unwrap();
    }

    #[test]
    // Some probes set a field from the default's own values, so the
    // mutate-one-field pattern is clearer than struct-update syntax here.
    #[allow(clippy::field_reassign_with_default)]
    fn rejects_bad_configs() {
        let mut c = SimConfig::default();
        c.mtu = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.ack_coalesce = 65;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.pfc.xon_bytes = c.pfc.xoff_bytes;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.rto_backoff = 0.5;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.ack_flush_delay = c.rto;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_is_cloneable_and_comparable() {
        let c = SimConfig::default();
        assert_eq!(c.clone(), c);
    }
}
