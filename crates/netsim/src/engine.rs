//! The discrete-event core: deterministic future-event schedulers.
//!
//! Two interchangeable backends implement the [`Scheduler`] trait: the
//! original binary min-heap ([`EventHeap`]) and the hierarchical timing
//! wheel ([`TimingWheel`], the default — see [`crate::wheel`]). Events at
//! equal timestamps are processed in insertion order (a per-scheduler
//! sequence number breaks ties), so runs are bit-for-bit reproducible for a
//! given seed regardless of platform *and of scheduler backend*. The
//! backend is chosen per simulator via [`SchedKind`], resolvable from the
//! `FP_SCHED` environment variable for A/B validation.

use crate::ids::{HostId, LinkId};
use crate::packet::FlowId;
use crate::time::SimTime;
use crate::wheel::TimingWheel;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Every kind of event the simulator processes.
#[derive(Copy, Clone, Debug)]
pub enum EventKind {
    /// A link finished serializing its current packet.
    TxDone {
        /// The transmitting directed link.
        link: LinkId,
    },
    /// Retransmission timer for one segment.
    ///
    /// RTO events are *lazily cancelled*: when a segment is acknowledged the
    /// sender bumps its per-segment generation counter instead of searching
    /// the heap, and a popped timer whose `gen` no longer matches is
    /// discarded without being dispatched (it never counts as a processed
    /// event and never advances the clock).
    Rto {
        /// Owning flow.
        flow: FlowId,
        /// Segment sequence.
        seq: u32,
        /// How many times this segment has been retransmitted already.
        attempt: u32,
        /// Generation of the segment's timer at arming time; compared
        /// against the flow's current generation at pop time.
        gen: u32,
    },
    /// Application wake-up (workload-scheduled).
    Wake {
        /// Host being woken.
        host: HostId,
        /// Opaque application token.
        token: u64,
    },
    /// Apply entry `idx` of the fault schedule.
    FaultUpdate {
        /// Index into the schedule.
        idx: u32,
    },
    /// Apply entry `idx` of the control-action schedule (remediation issued
    /// by a control plane, landing after its reaction latency).
    ControlUpdate {
        /// Index into the control schedule.
        idx: u32,
    },
    /// A PFC pause/resume frame takes effect at the transmitter of `link`.
    Pfc {
        /// The directed link whose transmitter is being paused/resumed.
        link: LinkId,
        /// Priority class affected.
        prio: u8,
        /// `true` = pause, `false` = resume.
        pause: bool,
    },
    /// Flush a partially-filled coalesced ACK for `flow`.
    AckFlush {
        /// Flow whose receiver has a pending ACK accumulation.
        flow: FlowId,
    },
    /// Periodic telemetry sampler tick, scheduled only while a recorder
    /// with a nonzero sampling interval is attached.
    ///
    /// Like lazily-cancelled RTO pops, sampler ticks advance the clock but
    /// are *not* charged to `stats.events` or the `max_events` guard, so an
    /// attached recorder never perturbs event accounting. The tick
    /// reschedules itself only while other events remain, so it cannot keep
    /// an otherwise-drained heap alive.
    Sample,
}

impl EventKind {
    /// Rebase the flow id this event references by `dflow` — the temporal-
    /// symmetry fast-forward shifts every residual timer onto the replayed
    /// iteration's flow block (`crate::sim::memo`). Events that reference no
    /// flow pass through unchanged. Variants that must never appear in a
    /// memoized residual (`Wake`, `FaultUpdate`, `ControlUpdate`, `Pfc`,
    /// `Sample` — the eligibility scan refuses boundaries holding them)
    /// debug-panic here.
    pub(crate) fn memo_shift_flow(self, dflow: u32) -> EventKind {
        match self {
            EventKind::Rto {
                flow,
                seq,
                attempt,
                gen,
            } => EventKind::Rto {
                flow: flow + dflow,
                seq,
                attempt,
                gen,
            },
            EventKind::AckFlush { flow } => EventKind::AckFlush { flow: flow + dflow },
            EventKind::TxDone { .. } => self,
            _ => {
                debug_assert!(false, "memo rebase over ineligible event {self:?}");
                self
            }
        }
    }
}

// Scheduler entries are moved into slot buckets and copied again on every
// timing-wheel cascade, so growing `EventKind` silently taxes the hottest
// path in the simulator. Deliveries — which used to carry the 64-byte
// `Packet` by value — no longer exist as scheduler events at all: packets
// ride per-link FIFO pipelines (`crate::pipeline`) and only tiny timer /
// control events go through the wheel or heap. The largest variant today
// is `Rto` (tag + four `u32`s, padded to the 8-byte alignment `Wake`'s
// token forces); if a variant ever needs more, box its payload instead of
// raising this.
const _: () = assert!(std::mem::size_of::<EventKind>() <= 24);

/// Which future-event scheduler backs a simulator.
#[derive(Copy, Clone, PartialEq, Eq, Serialize, Deserialize, Debug, Default)]
pub enum SchedKind {
    /// Binary min-heap (`O(log n)` push/pop) — the original backend, kept
    /// selectable as the A/B baseline.
    Heap,
    /// Hierarchical timing wheel (`O(1)` near-future push/pop) — the
    /// default.
    #[default]
    Wheel,
}

impl SchedKind {
    /// Resolve from the `FP_SCHED` environment variable: `heap` or `wheel`
    /// (unset defaults to the wheel). Any other value panics — a typo in an
    /// A/B run must not silently fall back to the default.
    pub fn from_env() -> SchedKind {
        match std::env::var("FP_SCHED") {
            Ok(v) if v == "heap" => SchedKind::Heap,
            Ok(v) if v == "wheel" || v.is_empty() => SchedKind::Wheel,
            Ok(v) => panic!("FP_SCHED={v:?} not recognized (expected \"heap\" or \"wheel\")"),
            Err(_) => SchedKind::Wheel,
        }
    }

    /// Stable lowercase name (`"heap"` / `"wheel"`), matching the
    /// `FP_SCHED` values.
    pub fn name(self) -> &'static str {
        match self {
            SchedKind::Heap => "heap",
            SchedKind::Wheel => "wheel",
        }
    }
}

/// Occupancy / traffic counters a scheduler accumulates over its lifetime.
///
/// These are *observability only*: they are reported through telemetry
/// manifests, never through trial result rows, so heap and wheel runs stay
/// byte-identical where determinism is asserted.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug, Default)]
pub struct SchedStats {
    /// Events actually pushed into the backend (excludes sequence numbers
    /// that were merely *reserved* for pipeline entries — see
    /// [`Scheduler::reserve_seq`]). This is the "scheduler traffic" number
    /// the link-pipeline change shrinks.
    pub pushes: u64,
    /// Events popped back out of the backend. Counts every pop the engine
    /// performs — including lazily-cancelled RTO timers that are then
    /// discarded *without* being dispatched — so `pushes == pops + len`
    /// holds at any quiescent point on both backends, while the engine's
    /// `stats.events` (events *executed*) stays a separate number.
    pub pops: u64,
    /// High-water mark of pending events.
    pub max_pending: u64,
    /// Slot insertions per wheel level (direct pushes *and* cascade
    /// re-files). All zero for the heap backend.
    pub level_pushes: [u64; crate::wheel::WHEEL_LEVELS],
    /// Events filed beyond the wheel horizon into the overflow spill.
    pub spill_pushes: u64,
    /// Higher-level slots drained and re-filed one level down.
    pub cascades: u64,
    /// Entries moved by those cascades.
    pub cascaded_entries: u64,
    /// Pushes that landed below a peek-advanced cursor and were spliced
    /// straight into the due buffer (rare; see [`crate::wheel`]).
    pub due_splices: u64,
}

impl SchedStats {
    /// Accumulate another scheduler's counters (campaign aggregation).
    pub fn merge(&mut self, other: &SchedStats) {
        self.pushes += other.pushes;
        self.pops += other.pops;
        self.max_pending = self.max_pending.max(other.max_pending);
        for (a, b) in self.level_pushes.iter_mut().zip(other.level_pushes) {
            *a += b;
        }
        self.spill_pushes += other.spill_pushes;
        self.cascades += other.cascades;
        self.cascaded_entries += other.cascaded_entries;
        self.due_splices += other.due_splices;
    }
}

/// Common surface of the future-event list backends.
///
/// Implementations must be deterministic: every `pop` yields the earliest
/// *currently pending* event, and events with equal timestamps come out in
/// global insertion order regardless of how they were internally filed.
/// (The popped sequence is not globally nondecreasing: popping a
/// lazily-cancelled RTO timer consumes a future timestamp without
/// advancing the simulator clock, so a later push may legally be earlier
/// than an already-popped stale timer.)
pub trait Scheduler {
    /// Schedule `kind` at absolute time `at`. Any `at` is legal, including
    /// one below previously popped timestamps (see the trait docs).
    fn push(&mut self, at: SimTime, kind: EventKind);
    /// Consume the next global sequence number *without pushing anything*.
    ///
    /// Per-link pipeline entries (`crate::pipeline`) reserve their
    /// tie-break sequence at insert time — exactly where the per-packet
    /// `Delivery` push used to consume one — so every other event's
    /// sequence number, and therefore every equal-timestamp ordering
    /// decision, is identical to the per-packet-event engine.
    fn reserve_seq(&mut self) -> u64;
    /// Reserve `n` consecutive sequence numbers, returning the first.
    /// Equivalent to `n` calls of [`Scheduler::reserve_seq`] — the batched
    /// ingress splice uses it to number a whole remote batch with one
    /// counter bump while keeping every per-packet sequence identical.
    fn reserve_seq_range(&mut self, n: u64) -> u64;
    /// Pop the earliest event.
    fn pop(&mut self) -> Option<(SimTime, EventKind)>;
    /// Pop the earliest event if it is due at or before `horizon`.
    fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, EventKind)>;
    /// Timestamp of the next event without removing it. Takes `&mut self`
    /// because the wheel advances its cursor lazily on peek.
    fn peek_time(&mut self) -> Option<SimTime>;
    /// `(timestamp, sequence)` of the next event without removing it — the
    /// pair the event loop compares against an armed link front to decide
    /// which dispatches first at equal timestamps.
    fn peek_next(&mut self) -> Option<(SimTime, u64)>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// True if nothing is scheduled.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Total events ever pushed (monotonic). Sequence numbers that were
    /// only *reserved* for pipeline entries do not count — this is real
    /// scheduler traffic, the number the link pipelines cut.
    fn scheduled(&self) -> u64;
    /// Which backend this is.
    fn kind(&self) -> SchedKind;
    /// Lifetime occupancy counters.
    fn stats(&self) -> SchedStats;
}

struct HeapEntry {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    // Reversed: BinaryHeap is a max-heap, we want earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic future-event list.
///
/// The head timestamp is mirrored into a plain field so the event loop's
/// peek-then-pop pattern reads one word instead of dereferencing the heap
/// root on every iteration.
#[derive(Default)]
pub struct EventHeap {
    heap: BinaryHeap<HeapEntry>,
    /// Next global sequence number; advanced by pushes *and* reservations.
    seq: u64,
    /// Cached copy of `heap.peek()`'s `(at, seq)`; `None` iff empty.
    next: Option<(SimTime, u64)>,
    /// Events actually pushed (`seq` minus reservations).
    pushed: u64,
    /// Events popped back out.
    popped: u64,
    /// High-water mark of pending events.
    max_pending: u64,
}

impl EventHeap {
    /// Empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the next sequence number without pushing (see
    /// [`Scheduler::reserve_seq`]).
    #[inline]
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Reserve `n` consecutive sequence numbers, returning the first (see
    /// [`Scheduler::reserve_seq_range`]).
    #[inline]
    pub fn reserve_seq_range(&mut self, n: u64) -> u64 {
        let seq = self.seq;
        self.seq += n;
        seq
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.reserve_seq();
        self.pushed += 1;
        if self.next.is_none_or(|(t, s)| (at, seq) < (t, s)) {
            self.next = Some((at, seq));
        }
        self.heap.push(HeapEntry { at, seq, kind });
        self.max_pending = self.max_pending.max(self.heap.len() as u64);
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        let popped = self.heap.pop()?;
        self.popped += 1;
        // Refresh the cached head only while the heap is nonempty; when the
        // pop emptied it, `peek()` would dereference just to store `None`.
        self.next = if self.heap.is_empty() {
            None
        } else {
            self.heap.peek().map(|e| (e.at, e.seq))
        };
        Some((popped.at, popped.kind))
    }

    /// Pop the earliest event if it is due at or before `horizon`.
    /// Single-access fast path for the main event loop: the cached head
    /// timestamp decides without touching the heap.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, EventKind)> {
        match self.next {
            Some((t, _)) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Timestamp of the next event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.next.map(|(t, _)| t)
    }

    /// `(timestamp, sequence)` of the next event without removing it.
    #[inline]
    pub fn peek_next(&self) -> Option<(SimTime, u64)> {
        self.next
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever pushed (monotonic; excludes reservations).
    pub fn scheduled(&self) -> u64 {
        self.pushed
    }

    /// Visit every pending entry, in no particular order (memo snapshot).
    pub(crate) fn memo_for_each(&self, f: &mut dyn FnMut(SimTime, u64, EventKind)) {
        for e in self.heap.iter() {
            f(e.at, e.seq, e.kind);
        }
    }

    /// Shift every pending entry by `dt` in time, `dseq` in tie-break
    /// sequence and `dflow` in flow id, and advance the sequence counter by
    /// `dseq` — the in-place state rebase the temporal-symmetry fast-forward
    /// applies at an iteration boundary. A uniform shift preserves the heap
    /// order exactly, so the rebuilt heap pops in the same relative order.
    pub(crate) fn memo_rebase(&mut self, dt: crate::time::SimDuration, dseq: u64, dflow: u32) {
        let v: Vec<HeapEntry> = std::mem::take(&mut self.heap)
            .into_vec()
            .into_iter()
            .map(|e| HeapEntry {
                at: e.at + dt,
                seq: e.seq + dseq,
                kind: e.kind.memo_shift_flow(dflow),
            })
            .collect();
        self.heap = BinaryHeap::from(v);
        self.seq += dseq;
        if let Some((t, s)) = self.next {
            self.next = Some((t + dt, s + dseq));
        }
    }

    /// Account `reps` repetitions of one recorded window's scheduler
    /// traffic without touching pending entries. `max_pending` is a
    /// high-water mark and a matched steady-state window sets no new one,
    /// so it is deliberately left alone.
    pub(crate) fn memo_add_stats(&mut self, d: &SchedStats, reps: u64) {
        self.pushed += d.pushes * reps;
        self.popped += d.pops * reps;
    }

    /// Current sequence-counter value (pushes + reservations so far).
    pub(crate) fn memo_seq(&self) -> u64 {
        self.seq
    }
}

impl Scheduler for EventHeap {
    fn push(&mut self, at: SimTime, kind: EventKind) {
        EventHeap::push(self, at, kind);
    }
    fn reserve_seq(&mut self) -> u64 {
        EventHeap::reserve_seq(self)
    }
    fn reserve_seq_range(&mut self, n: u64) -> u64 {
        EventHeap::reserve_seq_range(self, n)
    }
    fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        EventHeap::pop(self)
    }
    fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, EventKind)> {
        EventHeap::pop_at_or_before(self, horizon)
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        EventHeap::peek_time(self)
    }
    fn peek_next(&mut self) -> Option<(SimTime, u64)> {
        EventHeap::peek_next(self)
    }
    fn len(&self) -> usize {
        EventHeap::len(self)
    }
    fn is_empty(&self) -> bool {
        EventHeap::is_empty(self)
    }
    fn scheduled(&self) -> u64 {
        EventHeap::scheduled(self)
    }
    fn kind(&self) -> SchedKind {
        SchedKind::Heap
    }
    fn stats(&self) -> SchedStats {
        SchedStats {
            pushes: self.pushed,
            pops: self.popped,
            max_pending: self.max_pending,
            ..SchedStats::default()
        }
    }
}

/// Statically-dispatched scheduler selection.
///
/// The event loop is the hottest code in the workspace; an enum over the
/// two [`Scheduler`] backends keeps every call site a direct (inlinable)
/// match instead of a vtable hop through `dyn Scheduler`.
pub enum EventQueue {
    /// Binary min-heap backend.
    Heap(EventHeap),
    /// Hierarchical timing-wheel backend.
    Wheel(Box<TimingWheel>),
}

impl EventQueue {
    /// Empty queue of the requested backend.
    pub fn new(kind: SchedKind) -> EventQueue {
        match kind {
            SchedKind::Heap => EventQueue::Heap(EventHeap::new()),
            SchedKind::Wheel => EventQueue::Wheel(Box::default()),
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $q:ident => $e:expr) => {
        match $self {
            EventQueue::Heap($q) => $e,
            EventQueue::Wheel($q) => $e,
        }
    };
}

impl EventQueue {
    /// Visit every pending entry (memo snapshot; order is backend-defined).
    pub(crate) fn memo_for_each(&self, f: &mut dyn FnMut(SimTime, u64, EventKind)) {
        dispatch!(self, q => q.memo_for_each(f))
    }

    /// In-place fast-forward rebase: shift pending entries by `dt`/`dseq`/
    /// `dflow` and advance the sequence counter by `dseq`.
    pub(crate) fn memo_rebase(&mut self, dt: crate::time::SimDuration, dseq: u64, dflow: u32) {
        dispatch!(self, q => q.memo_rebase(dt, dseq, dflow))
    }

    /// Account `reps` repetitions of one recorded window's scheduler
    /// traffic.
    pub(crate) fn memo_add_stats(&mut self, d: &SchedStats, reps: u64) {
        dispatch!(self, q => q.memo_add_stats(d, reps))
    }

    /// Current sequence-counter value (pushes + reservations so far).
    pub(crate) fn memo_seq(&self) -> u64 {
        dispatch!(self, q => q.memo_seq())
    }
}

impl Scheduler for EventQueue {
    #[inline]
    fn push(&mut self, at: SimTime, kind: EventKind) {
        dispatch!(self, q => q.push(at, kind))
    }
    #[inline]
    fn reserve_seq(&mut self) -> u64 {
        dispatch!(self, q => q.reserve_seq())
    }
    #[inline]
    fn reserve_seq_range(&mut self, n: u64) -> u64 {
        dispatch!(self, q => q.reserve_seq_range(n))
    }
    #[inline]
    fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        dispatch!(self, q => q.pop())
    }
    #[inline]
    fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, EventKind)> {
        dispatch!(self, q => q.pop_at_or_before(horizon))
    }
    #[inline]
    fn peek_time(&mut self) -> Option<SimTime> {
        dispatch!(self, q => q.peek_time())
    }
    #[inline]
    fn peek_next(&mut self) -> Option<(SimTime, u64)> {
        dispatch!(self, q => q.peek_next())
    }
    #[inline]
    fn len(&self) -> usize {
        dispatch!(self, q => q.len())
    }
    #[inline]
    fn is_empty(&self) -> bool {
        dispatch!(self, q => q.is_empty())
    }
    fn scheduled(&self) -> u64 {
        dispatch!(self, q => q.scheduled())
    }
    fn kind(&self) -> SchedKind {
        match self {
            EventQueue::Heap(_) => SchedKind::Heap,
            EventQueue::Wheel(_) => SchedKind::Wheel,
        }
    }
    fn stats(&self) -> SchedStats {
        match self {
            EventQueue::Heap(q) => Scheduler::stats(q),
            EventQueue::Wheel(q) => q.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wake(t: u64, token: u64) -> (SimTime, EventKind) {
        (
            SimTime::from_ns(t),
            EventKind::Wake {
                host: HostId(0),
                token,
            },
        )
    }

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        for (t, k) in [wake(30, 0), wake(10, 1), wake(20, 2)] {
            h.push(t, k);
        }
        let times: Vec<u64> = std::iter::from_fn(|| h.pop().map(|(t, _)| t.as_ns())).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut h = EventHeap::new();
        for i in 0..10u64 {
            let (t, k) = wake(100, i);
            h.push(t, k);
        }
        let tokens: Vec<u64> = std::iter::from_fn(|| {
            h.pop().map(|(_, k)| match k {
                EventKind::Wake { token, .. } => token,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(tokens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = EventHeap::new();
        let (t, k) = wake(55, 0);
        h.push(t, k);
        assert_eq!(h.peek_time(), Some(SimTime::from_ns(55)));
        assert_eq!(h.len(), 1);
        h.pop();
        assert!(h.is_empty());
        assert_eq!(h.peek_time(), None);
    }

    #[test]
    fn cached_peek_tracks_pushes_and_pops() {
        let mut h = EventHeap::new();
        assert_eq!(h.peek_time(), None);
        let (t, k) = wake(50, 0);
        h.push(t, k);
        let (t, k) = wake(10, 1);
        h.push(t, k);
        let (t, k) = wake(30, 2);
        h.push(t, k);
        assert_eq!(h.peek_time(), Some(SimTime::from_ns(10)));
        h.pop();
        assert_eq!(h.peek_time(), Some(SimTime::from_ns(30)));
        h.pop();
        h.pop();
        assert_eq!(h.peek_time(), None);
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        let mut h = EventHeap::new();
        for (t, k) in [wake(10, 0), wake(20, 1), wake(30, 2)] {
            h.push(t, k);
        }
        assert!(h.pop_at_or_before(SimTime::from_ns(5)).is_none());
        let (at, _) = h.pop_at_or_before(SimTime::from_ns(20)).unwrap();
        assert_eq!(at.as_ns(), 10);
        let (at, _) = h.pop_at_or_before(SimTime::from_ns(20)).unwrap();
        assert_eq!(at.as_ns(), 20);
        assert!(h.pop_at_or_before(SimTime::from_ns(20)).is_none());
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn scheduled_counts_all_pushes() {
        let mut h = EventHeap::new();
        for i in 0..5u64 {
            let (t, k) = wake(i, i);
            h.push(t, k);
        }
        h.pop();
        assert_eq!(h.scheduled(), 5);
    }

    #[test]
    fn cached_peek_cleared_when_pop_empties_heap() {
        let mut h = EventHeap::new();
        let (t, k) = wake(7, 0);
        h.push(t, k);
        assert_eq!(h.pop().map(|(t, _)| t.as_ns()), Some(7));
        assert_eq!(h.peek_time(), None);
        assert!(h.pop().is_none());
        assert_eq!(h.peek_time(), None);
    }

    #[test]
    fn heap_stats_track_high_water_mark() {
        let mut h = EventHeap::new();
        for i in 0..4u64 {
            let (t, k) = wake(i, i);
            h.push(t, k);
        }
        h.pop();
        h.pop();
        let (t, k) = wake(9, 9);
        h.push(t, k);
        assert_eq!(Scheduler::stats(&h).max_pending, 4);
        assert_eq!(Scheduler::stats(&h).cascades, 0);
    }

    #[test]
    fn sched_kind_names_and_default() {
        assert_eq!(SchedKind::default(), SchedKind::Wheel);
        assert_eq!(SchedKind::Heap.name(), "heap");
        assert_eq!(SchedKind::Wheel.name(), "wheel");
    }

    #[test]
    fn sched_stats_merge_sums_and_maxes() {
        let a = SchedStats {
            pushes: 100,
            pops: 90,
            max_pending: 10,
            level_pushes: [1, 2, 3, 4],
            spill_pushes: 5,
            cascades: 6,
            cascaded_entries: 7,
            due_splices: 1,
        };
        let mut m = SchedStats {
            pushes: 20,
            pops: 20,
            max_pending: 3,
            level_pushes: [10, 0, 0, 0],
            spill_pushes: 1,
            cascades: 1,
            cascaded_entries: 1,
            due_splices: 0,
        };
        m.merge(&a);
        assert_eq!(m.pushes, 120);
        assert_eq!(m.pops, 110);
        assert_eq!(m.max_pending, 10);
        assert_eq!(m.level_pushes, [11, 2, 3, 4]);
        assert_eq!(m.spill_pushes, 6);
        assert_eq!(m.cascades, 7);
        assert_eq!(m.cascaded_entries, 8);
        assert_eq!(m.due_splices, 1);
    }

    #[test]
    fn reserved_seqs_gap_the_tie_break_but_not_the_push_count() {
        // A reservation consumes a sequence number (so a later push ties
        // *after* the reserved slot) without counting as scheduler traffic.
        for kind in [SchedKind::Heap, SchedKind::Wheel] {
            let mut q = EventQueue::new(kind);
            let (t, k) = wake(10, 0);
            q.push(t, k);
            let reserved = q.reserve_seq();
            assert_eq!(reserved, 1, "kind={kind:?}");
            let (t, k) = wake(10, 2);
            q.push(t, k);
            assert_eq!(q.scheduled(), 2, "reservation must not count as a push");
            assert_eq!(Scheduler::stats(&q).pushes, 2);
            assert_eq!(q.peek_next(), Some((SimTime::from_ns(10), 0)));
            q.pop();
            assert_eq!(q.peek_next().map(|(_, s)| s), Some(2));
            q.pop();
            assert_eq!(Scheduler::stats(&q).pops, 2);
            assert_eq!(q.peek_next(), None);
        }
    }

    #[test]
    fn pushes_equal_pops_plus_len_at_any_point() {
        for kind in [SchedKind::Heap, SchedKind::Wheel] {
            let mut q = EventQueue::new(kind);
            for i in 0..6u64 {
                let (t, k) = wake(10 * i, i);
                q.push(t, k);
            }
            q.pop();
            q.pop();
            let s = Scheduler::stats(&q);
            assert_eq!(s.pushes, s.pops + q.len() as u64, "kind={kind:?}");
        }
    }

    #[test]
    fn event_queue_dispatches_to_both_backends() {
        for kind in [SchedKind::Heap, SchedKind::Wheel] {
            let mut q = EventQueue::new(kind);
            assert_eq!(Scheduler::kind(&q), kind);
            assert!(q.is_empty());
            for (t, tok) in [(30u64, 0u64), (10, 1), (30, 2)] {
                let (at, k) = wake(t, tok);
                q.push(at, k);
            }
            assert_eq!(q.len(), 3);
            assert_eq!(q.scheduled(), 3);
            assert_eq!(q.peek_time(), Some(SimTime::from_ns(10)));
            let order: Vec<(u64, u64)> = std::iter::from_fn(|| {
                q.pop().map(|(t, k)| match k {
                    EventKind::Wake { token, .. } => (t.as_ns(), token),
                    _ => unreachable!(),
                })
            })
            .collect();
            assert_eq!(order, vec![(10, 1), (30, 0), (30, 2)], "kind={kind:?}");
            assert_eq!(Scheduler::stats(&q).max_pending, 3);
        }
    }
}
