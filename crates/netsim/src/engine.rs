//! The discrete-event core: a deterministic min-heap of timed events.
//!
//! Events at equal timestamps are processed in insertion order (a per-heap
//! sequence number breaks ties), so runs are bit-for-bit reproducible for a
//! given seed regardless of platform.

use crate::ids::{HostId, LinkId};
use crate::packet::{FlowId, Packet};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Every kind of event the simulator processes.
#[derive(Copy, Clone, Debug)]
pub enum EventKind {
    /// A link finished serializing its current packet.
    TxDone {
        /// The transmitting directed link.
        link: LinkId,
    },
    /// A packet arrives at the far end of a link (serialization + latency
    /// have elapsed and the packet survived any silent fault).
    Delivery {
        /// The link the packet traversed.
        link: LinkId,
        /// The packet itself.
        pkt: Packet,
    },
    /// Retransmission timer for one segment.
    ///
    /// RTO events are *lazily cancelled*: when a segment is acknowledged the
    /// sender bumps its per-segment generation counter instead of searching
    /// the heap, and a popped timer whose `gen` no longer matches is
    /// discarded without being dispatched (it never counts as a processed
    /// event and never advances the clock).
    Rto {
        /// Owning flow.
        flow: FlowId,
        /// Segment sequence.
        seq: u32,
        /// How many times this segment has been retransmitted already.
        attempt: u32,
        /// Generation of the segment's timer at arming time; compared
        /// against the flow's current generation at pop time.
        gen: u32,
    },
    /// Application wake-up (workload-scheduled).
    Wake {
        /// Host being woken.
        host: HostId,
        /// Opaque application token.
        token: u64,
    },
    /// Apply entry `idx` of the fault schedule.
    FaultUpdate {
        /// Index into the schedule.
        idx: u32,
    },
    /// A PFC pause/resume frame takes effect at the transmitter of `link`.
    Pfc {
        /// The directed link whose transmitter is being paused/resumed.
        link: LinkId,
        /// Priority class affected.
        prio: u8,
        /// `true` = pause, `false` = resume.
        pause: bool,
    },
    /// Flush a partially-filled coalesced ACK for `flow`.
    AckFlush {
        /// Flow whose receiver has a pending ACK accumulation.
        flow: FlowId,
    },
    /// Periodic telemetry sampler tick, scheduled only while a recorder
    /// with a nonzero sampling interval is attached.
    ///
    /// Like lazily-cancelled RTO pops, sampler ticks advance the clock but
    /// are *not* charged to `stats.events` or the `max_events` guard, so an
    /// attached recorder never perturbs event accounting. The tick
    /// reschedules itself only while other events remain, so it cannot keep
    /// an otherwise-drained heap alive.
    Sample,
}

struct HeapEntry {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    // Reversed: BinaryHeap is a max-heap, we want earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic future-event list.
///
/// The head timestamp is mirrored into a plain field so the event loop's
/// peek-then-pop pattern reads one word instead of dereferencing the heap
/// root on every iteration.
#[derive(Default)]
pub struct EventHeap {
    heap: BinaryHeap<HeapEntry>,
    seq: u64,
    /// Cached copy of `heap.peek().at`; `None` iff the heap is empty.
    next_at: Option<SimTime>,
}

impl EventHeap {
    /// Empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        if self.next_at.is_none_or(|t| at < t) {
            self.next_at = Some(at);
        }
        self.heap.push(HeapEntry { at, seq, kind });
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        let popped = self.heap.pop().map(|e| (e.at, e.kind));
        self.next_at = self.heap.peek().map(|e| e.at);
        popped
    }

    /// Pop the earliest event if it is due at or before `horizon`.
    /// Single-access fast path for the main event loop: the cached head
    /// timestamp decides without touching the heap.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, EventKind)> {
        match self.next_at {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Timestamp of the next event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.next_at
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (monotonic).
    pub fn scheduled(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wake(t: u64, token: u64) -> (SimTime, EventKind) {
        (
            SimTime::from_ns(t),
            EventKind::Wake {
                host: HostId(0),
                token,
            },
        )
    }

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        for (t, k) in [wake(30, 0), wake(10, 1), wake(20, 2)] {
            h.push(t, k);
        }
        let times: Vec<u64> = std::iter::from_fn(|| h.pop().map(|(t, _)| t.as_ns())).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut h = EventHeap::new();
        for i in 0..10u64 {
            let (t, k) = wake(100, i);
            h.push(t, k);
        }
        let tokens: Vec<u64> = std::iter::from_fn(|| {
            h.pop().map(|(_, k)| match k {
                EventKind::Wake { token, .. } => token,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(tokens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = EventHeap::new();
        let (t, k) = wake(55, 0);
        h.push(t, k);
        assert_eq!(h.peek_time(), Some(SimTime::from_ns(55)));
        assert_eq!(h.len(), 1);
        h.pop();
        assert!(h.is_empty());
        assert_eq!(h.peek_time(), None);
    }

    #[test]
    fn cached_peek_tracks_pushes_and_pops() {
        let mut h = EventHeap::new();
        assert_eq!(h.peek_time(), None);
        let (t, k) = wake(50, 0);
        h.push(t, k);
        let (t, k) = wake(10, 1);
        h.push(t, k);
        let (t, k) = wake(30, 2);
        h.push(t, k);
        assert_eq!(h.peek_time(), Some(SimTime::from_ns(10)));
        h.pop();
        assert_eq!(h.peek_time(), Some(SimTime::from_ns(30)));
        h.pop();
        h.pop();
        assert_eq!(h.peek_time(), None);
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        let mut h = EventHeap::new();
        for (t, k) in [wake(10, 0), wake(20, 1), wake(30, 2)] {
            h.push(t, k);
        }
        assert!(h.pop_at_or_before(SimTime::from_ns(5)).is_none());
        let (at, _) = h.pop_at_or_before(SimTime::from_ns(20)).unwrap();
        assert_eq!(at.as_ns(), 10);
        let (at, _) = h.pop_at_or_before(SimTime::from_ns(20)).unwrap();
        assert_eq!(at.as_ns(), 20);
        assert!(h.pop_at_or_before(SimTime::from_ns(20)).is_none());
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn scheduled_counts_all_pushes() {
        let mut h = EventHeap::new();
        for i in 0..5u64 {
            let (t, k) = wake(i, i);
            h.push(t, k);
        }
        h.pop();
        assert_eq!(h.scheduled(), 5);
    }
}
