//! The application (workload) hook.
//!
//! A workload — e.g. the Ring-AllReduce driver in `fp-collectives` — plugs
//! into the simulator by implementing [`Application`]. The simulator calls
//! back on transport events; the application reacts by posting messages and
//! scheduling wake-ups. All callbacks receive `&mut Simulator`, so the
//! workload can drive the fabric directly (the simulator temporarily takes
//! the application out of itself while calling, avoiding aliasing).

use crate::ids::HostId;
use crate::packet::FlowId;
use crate::sim::Simulator;

/// Workload callbacks. All methods have no-op defaults.
pub trait Application {
    /// Called once, when the simulation starts running.
    fn on_start(&mut self, sim: &mut Simulator) {
        let _ = sim;
    }

    /// A wake-up previously scheduled with [`Simulator::schedule_wake`].
    fn on_wake(&mut self, sim: &mut Simulator, host: HostId, token: u64) {
        let _ = (sim, host, token);
    }

    /// Every segment of `flow` has been received at its destination host.
    fn on_message_complete(&mut self, sim: &mut Simulator, flow: FlowId) {
        let _ = (sim, flow);
    }

    /// Every segment of `flow` has been acknowledged back at the sender.
    fn on_flow_acked(&mut self, sim: &mut Simulator, flow: FlowId) {
        let _ = (sim, flow);
    }

    /// The sender gave up retransmitting some segment of `flow`.
    fn on_flow_failed(&mut self, sim: &mut Simulator, flow: FlowId) {
        let _ = (sim, flow);
    }
}

/// An application that does nothing (for harness-driven simulations).
#[derive(Default, Debug, Clone, Copy)]
pub struct NullApp;

impl Application for NullApp {}

/// Runs several applications side by side on one fabric (e.g. a measured
/// collective plus background traffic, or two parallel training jobs —
/// paper §7 "Parallel Jobs").
///
/// Every callback is forwarded to every child; children must ignore flows
/// and wake tokens they do not own. The conventional token layout is
/// `job_id << 32 | payload`, which the `fp-collectives` runners follow.
#[derive(Default)]
pub struct MultiApp {
    apps: Vec<Box<dyn Application>>,
}

impl MultiApp {
    /// Combine `apps` into one.
    pub fn new(apps: Vec<Box<dyn Application>>) -> Self {
        MultiApp { apps }
    }

    /// Add another child application.
    pub fn push(&mut self, app: Box<dyn Application>) {
        self.apps.push(app);
    }
}

impl Application for MultiApp {
    fn on_start(&mut self, sim: &mut Simulator) {
        for a in &mut self.apps {
            a.on_start(sim);
        }
    }
    fn on_wake(&mut self, sim: &mut Simulator, host: HostId, token: u64) {
        for a in &mut self.apps {
            a.on_wake(sim, host, token);
        }
    }
    fn on_message_complete(&mut self, sim: &mut Simulator, flow: FlowId) {
        for a in &mut self.apps {
            a.on_message_complete(sim, flow);
        }
    }
    fn on_flow_acked(&mut self, sim: &mut Simulator, flow: FlowId) {
        for a in &mut self.apps {
            a.on_flow_acked(sim, flow);
        }
    }
    fn on_flow_failed(&mut self, sim: &mut Simulator, flow: FlowId) {
        for a in &mut self.apps {
            a.on_flow_failed(sim, flow);
        }
    }
}
