//! Packets and the collective tag.
//!
//! A [`Packet`] is a small `Copy` struct — the simulator never materializes
//! payload bytes. Packets in flight live in the engine's delivery pipes
//! (`crate::pipeline`), not inside scheduler events, so `Packet`'s size is
//! off the scheduler's hot path (`EventKind` carries only IDs and fits in
//! 24 bytes). Data packets belong to a transport flow ([`FlowId`]) and may
//! carry a [`CollectiveTag`] identifying the collective job and training
//! iteration they belong to; this is the paper's NCCL `flow_id` tagging
//! (§5.1): it is the only piece of information switches need in order to know
//! which bytes to count, and when one iteration ends and the next begins.

use crate::ids::{HostId, LinkId};
use serde::{Deserialize, Serialize};

/// Transport flow index (dense, allocated by the simulator).
pub type FlowId = u32;

/// Number of priority classes. Strict priority scheduling, 0 is highest.
pub const NPRIO: usize = 3;

/// Priority class of a packet or flow.
///
/// The measured collective runs at [`Priority::MEASURED`], above background
/// traffic — the paper's §5.1 prioritization that isolates the measured
/// collective's spraying pattern from other jobs.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Debug)]
pub struct Priority(pub u8);

impl Priority {
    /// Transport control (ACKs): highest.
    pub const CONTROL: Priority = Priority(0);
    /// The measured collective (§5.1: prioritized above background).
    pub const MEASURED: Priority = Priority(1);
    /// Background / best-effort traffic.
    pub const BACKGROUND: Priority = Priority(2);

    /// Queue index for this priority.
    pub fn idx(self) -> usize {
        debug_assert!((self.0 as usize) < NPRIO);
        self.0 as usize
    }
}

/// Identifies which collective job + training iteration a data packet belongs
/// to. Stamped by the workload (stand-in for the paper's NCCL modification).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Debug)]
pub struct CollectiveTag {
    /// Collective job id (sentinel value in the paper's encoding).
    pub job: u32,
    /// Training iteration number.
    pub iter: u32,
}

/// A block of selective acknowledgements plus a cumulative watermark
/// (RoCE-style): every sequence below `cum` is acknowledged, and so is
/// `base + i` for every set bit `i` of `mask`. The cumulative field makes a
/// lost ACK harmless — the next ACK re-covers everything below the
/// watermark — which keeps duplicate retransmissions from polluting the
/// temporal-symmetry counters. Keeping ACKs `Copy` (rather than a
/// `Vec<u32>`) keeps the hot path allocation-free while one ACK packet
/// still covers up to 64 out-of-order packets.
#[derive(Copy, Clone, PartialEq, Eq, Serialize, Deserialize, Debug)]
pub struct AckBlock {
    /// All sequences `< cum` are acknowledged (cumulative watermark).
    pub cum: u32,
    /// Lowest selectively-acknowledged sequence number.
    pub base: u32,
    /// Bit `i` set ⇒ sequence `base + i` is acknowledged (bit 0 is `base`).
    pub mask: u64,
    /// Bit `i` set ⇒ the packet acknowledged by bit `i` of `mask` arrived
    /// CE-marked (congestion experienced). Subset of `mask`; echoed back to
    /// the sender for feedback-driven spray backends (`FP_SPRAY`).
    pub ce_mask: u64,
}

impl AckBlock {
    /// Iterate the *selectively* acknowledged sequence numbers (the
    /// cumulative watermark is handled separately by the sender).
    pub fn seqs(self) -> impl Iterator<Item = u32> {
        let AckBlock { base, mask, .. } = self;
        (0..64u32).filter_map(move |i| {
            if mask & (1u64 << i) != 0 {
                Some(base + i)
            } else {
                None
            }
        })
    }

    /// Number of selectively acknowledged sequences.
    pub fn count(self) -> u32 {
        self.mask.count_ones()
    }

    /// True if the selectively acknowledged sequence `seq` arrived
    /// CE-marked.
    pub fn ce(self, seq: u32) -> bool {
        let off = seq.wrapping_sub(self.base);
        off < 64 && self.ce_mask & (1u64 << off) != 0
    }
}

/// What a packet is.
#[derive(Copy, Clone, PartialEq, Eq, Serialize, Deserialize, Debug)]
pub enum PacketKind {
    /// A data segment of a flow.
    Data {
        /// Owning flow.
        flow: FlowId,
        /// Segment index within the flow (0-based).
        seq: u32,
    },
    /// A (possibly coalesced) selective acknowledgement for a flow.
    Ack {
        /// Flow being acknowledged.
        flow: FlowId,
        /// Acknowledged sequence block.
        block: AckBlock,
    },
}

/// A packet on the wire. `size` is *payload* bytes; per-packet wire overhead
/// (headers, preamble) is added by the link when computing serialization time,
/// so counters and load models work in clean payload bytes.
#[derive(Copy, Clone, Serialize, Deserialize, Debug)]
pub struct Packet {
    /// Payload type.
    pub kind: PacketKind,
    /// Originating host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Payload size in bytes.
    pub size: u32,
    /// Priority class.
    pub prio: Priority,
    /// Collective tag, if this packet belongs to a measured collective.
    pub tag: Option<CollectiveTag>,
    /// Leaf switch index of the source host (stamped at creation; used by the
    /// per-sender localization counters, paper §5.3).
    pub src_leaf: u16,
    /// While buffered inside a switch: the directed link this packet arrived
    /// on (for PFC ingress accounting). `None` for host-originated packets
    /// sitting in the host NIC queue.
    pub ingress: Option<LinkId>,
    /// Congestion-experienced mark (ECN CE): set by a switch when this data
    /// packet is enqueued into a queue past `SimConfig::ecn_threshold`, and
    /// echoed back via [`AckBlock::ce_mask`]. Only feedback-driven spray
    /// backends (`SimConfig::spray.wants_feedback()`) mark packets, so the
    /// classic policies' behaviour is untouched byte-for-byte.
    pub ce: bool,
}

impl Packet {
    /// True if this is a data packet (counts toward FlowPulse port counters).
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_block_iterates_set_bits() {
        let b = AckBlock {
            cum: 10,
            base: 10,
            mask: 0b1011,
            ce_mask: 0b0010,
        };
        let seqs: Vec<u32> = b.seqs().collect();
        assert_eq!(seqs, vec![10, 11, 13]);
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn ack_block_full_mask() {
        let b = AckBlock {
            cum: 0,
            base: 0,
            mask: u64::MAX,
            ce_mask: 0,
        };
        assert_eq!(b.count(), 64);
        assert_eq!(b.seqs().count(), 64);
        assert_eq!(b.seqs().last(), Some(63));
    }

    #[test]
    fn priorities_are_ordered() {
        assert!(Priority::CONTROL < Priority::MEASURED);
        assert!(Priority::MEASURED < Priority::BACKGROUND);
        assert_eq!(Priority::BACKGROUND.idx(), 2);
    }

    #[test]
    fn packet_is_small() {
        // The hot path copies packets by value; keep them cache-friendly.
        // One cache line plus the ECN echo word (`AckBlock::ce_mask` grew
        // the Ack variant by 8 bytes when the spray feedback channel
        // landed).
        assert!(std::mem::size_of::<Packet>() <= 72);
    }
}
