//! RoCE-like reorder-tolerant transport (paper §6).
//!
//! "We implement a simple transport tolerant to reordering, mimicking the
//! current RoCE NICs, without congestion control. The network is lossless,
//! but packet losses due to injected faults are detected via a
//! retransmission timeout of 5 µs."
//!
//! Each message is one *flow*: a fixed number of MTU-sized segments. The
//! sender blasts segments at line rate (no congestion window — the fabric is
//! lossless and non-blocking), arms a per-segment retransmission timer, and
//! retransmits on timeout with exponential backoff. The receiver accepts
//! segments in any order, deduplicates, and returns coalesced selective
//! ACKs. Message completion fires when the receiver holds every segment.

use crate::bitset::BitSet;
use crate::ids::HostId;
use crate::packet::{AckBlock, CollectiveTag, Priority};
use crate::time::SimTime;

/// Sender+receiver state for one message flow. The simulator holds the
/// global table; in a real deployment the two halves live on different NICs.
#[derive(Clone, Debug)]
pub struct FlowState {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Total payload bytes.
    pub bytes: u64,
    /// Segment payload size (last segment may be smaller).
    pub mtu: u32,
    /// Number of segments.
    pub npkts: u32,
    /// Collective tag stamped on every data packet.
    pub tag: Option<CollectiveTag>,
    /// Priority class for data packets.
    pub prio: Priority,
    /// Trial-global flow id stamped into wire packets. Equal to the local
    /// table index on an unsharded simulator; under intra-trial sharding
    /// ([`crate::shard`]) the sending shard allocates it from a strided
    /// global namespace so both endpoint shards can name the same flow.
    pub global: crate::packet::FlowId,
    /// Opaque application token attached at post time (`u64::MAX` =
    /// none). Sharded workload drivers use it to map a completion back to
    /// the workload-level transfer without a shared table.
    pub app_token: u64,

    // --- sender side ---
    /// Next fresh (never-transmitted) segment.
    pub next_seq: u32,
    /// Segments acknowledged so far.
    pub acked: BitSet,
    /// True once the sender has given up on some segment.
    pub failed: bool,
    /// Retransmissions issued for this flow (loss signal for probing
    /// baselines).
    pub retx: u32,
    /// Highest cumulative-ACK watermark processed (sender side; avoids
    /// re-scanning the bitmap on every cumulative ACK).
    pub cum_acked: u32,
    /// Per-segment retransmission-timer generation. Armed RTO events carry
    /// the generation current at arming time; acknowledging a segment bumps
    /// its generation, lazily cancelling any timer still in the heap
    /// (checked at pop time, see [`crate::engine::EventKind::Rto`]).
    pub rto_gen: Vec<u32>,

    // --- receiver side ---
    /// Segments received so far.
    pub rcvd: BitSet,
    /// Pending coalesced-ACK accumulator.
    pub pending_ack: Option<AckAccum>,
    /// Set when every segment has been received.
    pub completed_at: Option<SimTime>,
    /// When the flow was posted.
    pub created_at: SimTime,
}

impl FlowState {
    /// Create a flow of `bytes` split into `mtu`-sized segments.
    pub fn new(
        src: HostId,
        dst: HostId,
        bytes: u64,
        mtu: u32,
        tag: Option<CollectiveTag>,
        prio: Priority,
        now: SimTime,
    ) -> Self {
        assert!(bytes > 0, "zero-byte flow");
        assert!(mtu > 0);
        let npkts = bytes.div_ceil(mtu as u64) as u32;
        FlowState {
            src,
            dst,
            bytes,
            mtu,
            npkts,
            tag,
            prio,
            global: 0,
            app_token: u64::MAX,
            next_seq: 0,
            acked: BitSet::new(npkts),
            failed: false,
            retx: 0,
            cum_acked: 0,
            rto_gen: vec![0; npkts as usize],
            rcvd: BitSet::new(npkts),
            pending_ack: None,
            completed_at: None,
            created_at: now,
        }
    }

    /// Payload size of segment `seq`.
    pub fn seg_size(&self, seq: u32) -> u32 {
        debug_assert!(seq < self.npkts);
        if seq + 1 == self.npkts {
            let rem = self.bytes - (self.npkts as u64 - 1) * self.mtu as u64;
            rem as u32
        } else {
            self.mtu
        }
    }

    /// True once the receiver holds all segments.
    pub fn is_complete(&self) -> bool {
        self.rcvd.full()
    }

    /// True once every segment is acknowledged at the sender.
    pub fn fully_acked(&self) -> bool {
        self.acked.full()
    }

    /// True while the sender still has fresh segments to inject.
    pub fn has_fresh(&self) -> bool {
        self.next_seq < self.npkts && !self.failed
    }
}

/// Receiver-side accumulator that coalesces ACKs for up to 64 consecutive
/// sequence numbers into one [`AckBlock`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AckAccum {
    /// Base sequence of the block.
    pub base: u32,
    /// Bitmap relative to `base`.
    pub mask: u64,
    /// CE (congestion-experienced) echoes, bit-parallel to `mask`: bit `i`
    /// set ⇒ the segment acknowledged by bit `i` arrived CE-marked.
    pub ce_mask: u64,
    /// A flush timer is already scheduled.
    pub flush_scheduled: bool,
}

impl AckAccum {
    /// Start accumulating with `seq` (whose packet carried CE mark `ce`).
    pub fn new(seq: u32, ce: bool) -> Self {
        AckAccum {
            base: seq,
            mask: 1,
            ce_mask: ce as u64,
            flush_scheduled: false,
        }
    }

    /// Try to add `seq` (CE-marked if `ce`); returns `false` if it falls
    /// outside the 64-wide window (caller should flush and restart).
    pub fn add(&mut self, seq: u32, ce: bool) -> bool {
        if seq < self.base {
            // Out-of-order below base: representable only by restarting.
            return false;
        }
        let off = seq - self.base;
        if off >= 64 {
            return false;
        }
        self.mask |= 1u64 << off;
        if ce {
            self.ce_mask |= 1u64 << off;
        }
        true
    }

    /// Number of sequences accumulated.
    pub fn count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Convert to the wire representation, stamping the receiver's current
    /// cumulative watermark (`cum` = lowest sequence not yet received).
    pub fn block(&self, cum: u32) -> AckBlock {
        AckBlock {
            cum,
            base: self.base,
            mask: self.mask,
            ce_mask: self.ce_mask,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(bytes: u64, mtu: u32) -> FlowState {
        FlowState::new(
            HostId(0),
            HostId(1),
            bytes,
            mtu,
            None,
            Priority::MEASURED,
            SimTime::ZERO,
        )
    }

    #[test]
    fn segmentation_with_remainder() {
        let f = flow(10_000, 4096);
        assert_eq!(f.npkts, 3);
        assert_eq!(f.seg_size(0), 4096);
        assert_eq!(f.seg_size(1), 4096);
        assert_eq!(f.seg_size(2), 10_000 - 8192);
    }

    #[test]
    fn exact_multiple_has_full_last_segment() {
        let f = flow(8192, 4096);
        assert_eq!(f.npkts, 2);
        assert_eq!(f.seg_size(1), 4096);
    }

    #[test]
    fn single_small_message() {
        let f = flow(100, 4096);
        assert_eq!(f.npkts, 1);
        assert_eq!(f.seg_size(0), 100);
    }

    #[test]
    fn completion_tracking() {
        let mut f = flow(8192, 4096);
        assert!(!f.is_complete());
        f.rcvd.set(1);
        f.rcvd.set(0);
        assert!(f.is_complete());
        assert!(!f.fully_acked());
        f.acked.set(0);
        f.acked.set(1);
        assert!(f.fully_acked());
    }

    #[test]
    fn ack_accum_window() {
        let mut a = AckAccum::new(100, false);
        assert!(a.add(100, false));
        assert!(a.add(163, true));
        assert!(!a.add(164, false)); // outside 64-window
        assert!(!a.add(99, false)); // below base
        assert_eq!(a.count(), 2);
        let b = a.block(42);
        let seqs: Vec<u32> = b.seqs().collect();
        assert_eq!(seqs, vec![100, 163]);
        assert_eq!(b.cum, 42);
        // CE echoes ride bit-parallel to the ack mask.
        assert!(!b.ce(100));
        assert!(b.ce(163));
    }

    #[test]
    fn fresh_segments_drain() {
        let mut f = flow(3 * 4096, 4096);
        assert!(f.has_fresh());
        f.next_seq = 3;
        assert!(!f.has_fresh());
        f.next_seq = 1;
        f.failed = true;
        assert!(!f.has_fresh());
    }
}
