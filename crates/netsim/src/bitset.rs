//! A minimal fixed-capacity bitset used by the transport to track
//! received/acknowledged segments without per-flow `HashSet` overhead.

/// Fixed-capacity bitset over `u64` words.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: u32,
    ones: u32,
}

impl BitSet {
    /// A bitset with `len` bits, all clear.
    pub fn new(len: u32) -> Self {
        BitSet {
            words: vec![0; (len as usize).div_ceil(64)],
            len,
            ones: 0,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True if capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits (O(1), maintained incrementally).
    pub fn count(&self) -> u32 {
        self.ones
    }

    /// True if every bit is set.
    pub fn full(&self) -> bool {
        self.ones == self.len
    }

    /// Get bit `i`. Panics if out of range in debug builds.
    pub fn get(&self, i: u32) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }

    /// Set bit `i`; returns `true` if it was newly set.
    pub fn set(&mut self, i: u32) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        let w = &mut self.words[(i / 64) as usize];
        let m = 1u64 << (i % 64);
        if *w & m == 0 {
            *w |= m;
            self.ones += 1;
            true
        } else {
            false
        }
    }

    /// Index of the first clear bit, if any.
    pub fn first_clear(&self) -> Option<u32> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != u64::MAX {
                let bit = wi as u32 * 64 + w.trailing_ones();
                if bit < self.len {
                    return Some(bit);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = BitSet::new(130);
        assert_eq!(b.count(), 0);
        assert!(b.set(0));
        assert!(b.set(64));
        assert!(b.set(129));
        assert!(!b.set(64)); // idempotent
        assert_eq!(b.count(), 3);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert!(!b.full());
    }

    #[test]
    fn full_detection() {
        let mut b = BitSet::new(65);
        for i in 0..65 {
            b.set(i);
        }
        assert!(b.full());
        assert_eq!(b.first_clear(), None);
    }

    #[test]
    fn first_clear_skips_full_words() {
        let mut b = BitSet::new(130);
        for i in 0..64 {
            b.set(i);
        }
        assert_eq!(b.first_clear(), Some(64));
        b.set(64);
        assert_eq!(b.first_clear(), Some(65));
    }

    #[test]
    fn zero_len() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert!(b.full()); // vacuously
        assert_eq!(b.first_clear(), None);
    }
}
