//! Delivery pipes: in-flight packet FIFOs that bypass the scheduler.
//!
//! Every directed link has a fixed propagation latency and serializes
//! packets in order, so arrivals on one link are FIFO behind each other:
//! the packet that finished serializing first lands first. That makes a
//! per-packet scheduler event redundant — the engine only ever needs to
//! know *the earliest head-of-pipe arrival*. Packets on the wire live in
//! [`InFlight`] FIFOs ("pipes"), and a single armed [`PipeFront`] per
//! nonempty pipe lives in a small [`FrontHeap`] instead of the general
//! future-event scheduler. The event loop dispatches whichever of
//! (scheduler head, front head) orders first by `(time, seq)`.
//!
//! ## Pipe granularity
//!
//! The FIFO argument holds per *link*, but the simulator coalesces links
//! that share a latency value into one pipe per **latency class**: an
//! insert files at `now + latency`, the engine clock `now` is monotone
//! across dispatches, and the latency is the same constant for the whole
//! class — so one class's arrivals are globally FIFO, not just per-link.
//! A fat tree has two classes (host↔leaf, leaf↔spine), which keeps the
//! front heap at two entries and every insert/delivery an O(1) push/pop on
//! a contiguous ring buffer — the cache behaviour that lets this beat the
//! timing wheel's bucketed hot path. Per-link order is a subsequence of
//! its class pipe, so the per-link FIFO invariant is preserved by
//! construction (and property-tested in `tests/pipeline_fifo.rs`).
//!
//! ## Determinism
//!
//! Pre-pipeline, every delivery was a scheduler push that consumed one
//! global sequence number, and equal-timestamp events popped in sequence
//! order. To keep runs byte-identical, a pipe insert *reserves* a sequence
//! number from the scheduler at exactly the old push site
//! ([`Scheduler::reserve_seq`](crate::engine::Scheduler::reserve_seq)) and
//! stores it in the [`InFlight`] entry. Each pipe is sorted by `(at, seq)`
//! by construction, the front heap orders pipe heads by the same pair, and
//! the event loop compares that pair against the scheduler's head — so the
//! global dispatch order, and therefore every RNG draw and every output
//! byte, is identical to the per-packet-event engine on both scheduler
//! backends.

use crate::ids::LinkId;
use crate::packet::Packet;
use crate::time::SimTime;

/// One packet on the wire.
#[derive(Copy, Clone, Debug)]
pub struct InFlight {
    /// Arrival time at the far end (serialization end + link latency).
    pub at: SimTime,
    /// Global scheduler sequence number reserved at pipe insert; breaks
    /// equal-timestamp ties exactly like a scheduler push would.
    pub seq: u64,
    /// The link whose wire the packet is on.
    pub link: LinkId,
    /// The packet itself.
    pub pkt: Packet,
}

/// The armed head-of-pipe arrival of one delivery pipe.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PipeFront {
    /// Head arrival time.
    pub at: SimTime,
    /// Reserved sequence number of the head entry.
    pub seq: u64,
    /// Dense index of the pipe this is the front of.
    pub pipe: u32,
}

/// Binary min-heap over each nonempty pipe's [`PipeFront`], ordered by
/// `(at, seq)`.
///
/// Holds at most one entry per pipe, so its size is bounded by the number
/// of *busy pipes* (latency classes in the simulator: two for a fat tree),
/// not by the number of packets in flight — the pipes absorb the depth.
/// Sequence numbers are globally unique, so the order is total and
/// deterministic.
#[derive(Default, Debug)]
pub struct FrontHeap {
    heap: Vec<PipeFront>,
    /// High-water mark of armed pipes.
    max_armed: u64,
}

#[inline]
fn before(a: &PipeFront, b: &PipeFront) -> bool {
    (a.at, a.seq) < (b.at, b.seq)
}

impl FrontHeap {
    /// Empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// The earliest armed front, if any pipe is busy.
    #[inline]
    pub fn peek(&self) -> Option<PipeFront> {
        self.heap.first().copied()
    }

    /// Number of armed pipes (pipes with a packet in flight).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no pipe has packets in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of simultaneously armed pipes.
    pub fn max_armed(&self) -> u64 {
        self.max_armed
    }

    /// Arm a pipe that just went empty → nonempty.
    pub fn arm(&mut self, f: PipeFront) {
        self.heap.push(f);
        self.sift_up(self.heap.len() - 1);
        self.max_armed = self.max_armed.max(self.heap.len() as u64);
    }

    /// Replace the just-delivered top with the same pipe's next head.
    /// The replacement never sorts before the old top (a pipe's arrivals
    /// strictly increase), so one sift-down restores the heap — the
    /// steady-state delivery costs a single sift instead of pop + push.
    pub fn replace_top(&mut self, f: PipeFront) {
        debug_assert!(!self.heap.is_empty(), "replace_top on empty front heap");
        debug_assert!(!before(&f, &self.heap[0]), "pipe arrivals regressed");
        self.heap[0] = f;
        self.sift_down(0);
    }

    /// All armed fronts in internal heap order (memo fingerprinting sorts
    /// a copy itself).
    pub(crate) fn memo_entries(&self) -> &[PipeFront] {
        &self.heap
    }

    /// Temporal-symmetry fast-forward: shift every armed front by `dt` in
    /// time and `dseq` in sequence. A uniform shift preserves the `(at,
    /// seq)` order, so the heap invariant survives untouched. `max_armed`
    /// is a high-water mark — a matched steady-state window arms no new
    /// maximum.
    pub(crate) fn memo_shift(&mut self, dt: crate::time::SimDuration, dseq: u64) {
        for f in &mut self.heap {
            f.at += dt;
            f.seq += dseq;
        }
    }

    /// Remove the top after delivering the last packet of its pipe.
    pub fn pop_top(&mut self) -> Option<PipeFront> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if before(&self.heap[i], &self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let c = if r < self.heap.len() && before(&self.heap[r], &self.heap[l]) {
                r
            } else {
                l
            };
            if before(&self.heap[c], &self.heap[i]) {
                self.heap.swap(i, c);
                i = c;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn front(at: u64, seq: u64, pipe: u32) -> PipeFront {
        PipeFront {
            at: SimTime::from_ns(at),
            seq,
            pipe,
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut h = FrontHeap::new();
        h.arm(front(30, 5, 0));
        h.arm(front(10, 9, 1));
        h.arm(front(10, 2, 2));
        h.arm(front(20, 1, 3));
        let order: Vec<u64> = std::iter::from_fn(|| h.pop_top().map(|f| f.seq)).collect();
        assert_eq!(order, vec![2, 9, 1, 5]);
        assert!(h.is_empty());
        assert_eq!(h.max_armed(), 4);
    }

    #[test]
    fn replace_top_is_a_single_resort() {
        let mut h = FrontHeap::new();
        h.arm(front(10, 0, 0));
        h.arm(front(15, 1, 1));
        // Pipe 0 delivers its head at t=10; its next head arrives at t=20.
        assert_eq!(h.peek().unwrap().pipe, 0);
        h.replace_top(front(20, 2, 0));
        assert_eq!(h.peek().unwrap(), front(15, 1, 1));
        h.pop_top();
        assert_eq!(h.peek().unwrap(), front(20, 2, 0));
    }

    #[test]
    fn equal_times_break_by_reserved_seq() {
        let mut h = FrontHeap::new();
        for (seq, pipe) in [(7u64, 0u32), (3, 1), (5, 2)] {
            h.arm(front(100, seq, pipe));
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop_top().map(|f| f.pipe)).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    proptest! {
        /// The front heap agrees with a sort over arbitrary interleavings
        /// of arm / replace-top / pop-top, with per-pipe monotone arrivals
        /// — the exact contract the simulator relies on.
        #[test]
        fn front_heap_matches_reference_model(script in proptest::collection::vec(0u64..u64::MAX, 1..200)) {
            let mut h = FrontHeap::new();
            // Per-pipe next arrival time; None = idle (not armed).
            let mut armed: [Option<(u64, u64)>; 8] = [None; 8];
            let mut next_seq = 0u64;
            let mut clock = 0u64;
            for raw in script {
                // Decode one raw word into (pipe, dt); the vendored
                // proptest has no tuple-of-ranges strategy.
                let pipe = (raw % 8) as u32;
                let dt = (raw >> 3) % 50;
                // Advance: deliver every front due before arming more.
                // Half the steps deliver instead of arm.
                if dt % 2 == 0 {
                    if let Some(f) = h.peek() {
                        // Model: the armed minimum over (at, seq).
                        let (mpipe, &m) = armed
                            .iter()
                            .enumerate()
                            .filter_map(|(l, a)| a.as_ref().map(|v| (l, v)))
                            .min_by_key(|&(_, &(at, seq))| (at, seq))
                            .unwrap();
                        prop_assert_eq!(f.pipe as usize, mpipe);
                        prop_assert_eq!((f.at.as_ns(), f.seq), m);
                        clock = clock.max(f.at.as_ns());
                        // Re-arm with a later arrival or go idle.
                        if dt % 4 == 0 {
                            let at = clock + 1 + dt;
                            h.replace_top(front(at, next_seq, f.pipe));
                            armed[f.pipe as usize] = Some((at, next_seq));
                            next_seq += 1;
                        } else {
                            h.pop_top();
                            armed[f.pipe as usize] = None;
                        }
                    }
                } else if armed[pipe as usize].is_none() {
                    let at = clock + dt;
                    h.arm(front(at, next_seq, pipe));
                    armed[pipe as usize] = Some((at, next_seq));
                    next_seq += 1;
                }
            }
            // Drain: global (at, seq) order, each pipe at most once.
            let mut last = (SimTime::ZERO, 0u64);
            let mut seen = [false; 8];
            while let Some(f) = h.pop_top() {
                prop_assert!((f.at, f.seq) >= last);
                prop_assert!(!seen[f.pipe as usize], "pipe armed twice");
                seen[f.pipe as usize] = true;
                last = (f.at, f.seq);
            }
        }
    }
}
