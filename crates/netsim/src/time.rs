//! Integer-nanosecond simulated time.
//!
//! All timestamps in the simulator are [`SimTime`] values: nanoseconds since
//! the start of the simulation, stored as `u64`. Durations are [`SimDuration`]
//! values. Integer time makes event ordering exact and runs reproducible —
//! there is no floating-point drift in serialization or latency arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An absolute simulated timestamp, in nanoseconds since simulation start.
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize, Debug,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize, Debug,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The latest representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// The raw nanosecond value.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// The raw nanosecond value.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// The duration as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scale by a floating factor, rounding to the nearest nanosecond.
    /// Used for retransmission backoff; saturates on overflow.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "negative duration scale");
        let ns = (self.0 as f64 * k).round();
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// Durations cannot be negative, so subtraction saturates at zero.
    /// Underflow is a logic error upstream; debug builds assert on it
    /// instead of silently wrapping into a ~585-year duration.
    fn sub(self, other: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= other.0, "duration underflow: {self} - {other}");
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_ns(1_000) + SimDuration::from_us(2);
        assert_eq!(t.as_ns(), 3_000);
        assert_eq!(t.since(SimTime::from_ns(500)).as_ns(), 2_500);
        // saturating: asking for time before an instant yields zero
        assert_eq!(SimTime::from_ns(5).since(SimTime::from_ns(9)).as_ns(), 0);
    }

    #[test]
    fn duration_sub_works_when_in_range() {
        let d = SimDuration::from_us(3) - SimDuration::from_us(1);
        assert_eq!(d.as_ns(), 2_000);
        assert_eq!(
            SimDuration::from_ns(7) - SimDuration::from_ns(7),
            SimDuration::ZERO
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "duration underflow")]
    fn duration_sub_underflow_panics_in_debug() {
        let _ = SimDuration::from_ns(1) - SimDuration::from_ns(2);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn duration_sub_saturates_in_release() {
        let d = SimDuration::from_ns(1) - SimDuration::from_ns(2);
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_us(1).as_ns(), 1_000);
        assert_eq!(SimDuration::from_ms(1).as_ns(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_ns(), 1_000_000_000);
    }

    #[test]
    fn mul_f64_rounds_and_saturates() {
        assert_eq!(SimDuration::from_ns(10).mul_f64(1.5).as_ns(), 15);
        assert_eq!(SimDuration::from_ns(3).mul_f64(0.5).as_ns(), 2); // 1.5 rounds to 2
        assert_eq!(
            SimDuration::from_secs(u64::MAX / 2_000_000_000).mul_f64(1e30),
            SimDuration::from_ns(u64::MAX)
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_ns(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_ns(1_500).to_string(), "1.500us");
        assert_eq!(SimDuration::from_ms(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }
}
