//! Integer-nanosecond simulated time.
//!
//! All timestamps in the simulator are [`SimTime`] values: nanoseconds since
//! the start of the simulation, stored as `u64`. Durations are [`SimDuration`]
//! values. Integer time makes event ordering exact and runs reproducible —
//! there is no floating-point drift in serialization or latency arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An absolute simulated timestamp, in nanoseconds since simulation start.
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize, Debug,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize, Debug,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The latest representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// The raw nanosecond value.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Digit `level` of the timestamp in base `2^bits_per_level`.
    ///
    /// The timing-wheel scheduler views a timestamp as a little-endian
    /// sequence of radix digits; digit `l` selects the slot index at wheel
    /// level `l`. Levels beyond the top of the `u64` yield zero.
    pub const fn radix_digit(self, bits_per_level: u32, level: u32) -> usize {
        let shift = bits_per_level * level;
        if shift >= u64::BITS {
            0
        } else {
            ((self.0 >> shift) & ((1u64 << bits_per_level) - 1)) as usize
        }
    }

    /// Index of the most significant base-`2^bits_per_level` digit in which
    /// `self` and `other` differ, or 0 when they are equal.
    ///
    /// This is the wheel level an event at `self` files into when the
    /// cursor sits at `other`: all digits above the returned level agree,
    /// so the event becomes due only after the cursor sweeps up to that
    /// digit boundary.
    pub const fn radix_level(self, other: SimTime, bits_per_level: u32) -> u32 {
        let diff = self.0 ^ other.0;
        if diff == 0 {
            0
        } else {
            (u64::BITS - 1 - diff.leading_zeros()) / bits_per_level
        }
    }

    /// Truncate to the start of the enclosing `2^log2_ns`-nanosecond tick.
    pub const fn floor_ticks(self, log2_ns: u32) -> SimTime {
        if log2_ns >= u64::BITS {
            SimTime(0)
        } else {
            SimTime(self.0 >> log2_ns << log2_ns)
        }
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// The raw nanosecond value.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// The duration as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scale by a floating factor, rounding to the nearest nanosecond.
    /// Used for retransmission backoff; saturates on overflow.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "negative duration scale");
        let ns = (self.0 as f64 * k).round();
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// Durations cannot be negative, so subtraction saturates at zero.
    /// Underflow is a logic error upstream; debug builds assert on it
    /// instead of silently wrapping into a ~585-year duration.
    fn sub(self, other: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= other.0, "duration underflow: {self} - {other}");
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_ns(1_000) + SimDuration::from_us(2);
        assert_eq!(t.as_ns(), 3_000);
        assert_eq!(t.since(SimTime::from_ns(500)).as_ns(), 2_500);
        // saturating: asking for time before an instant yields zero
        assert_eq!(SimTime::from_ns(5).since(SimTime::from_ns(9)).as_ns(), 0);
    }

    #[test]
    fn duration_sub_works_when_in_range() {
        let d = SimDuration::from_us(3) - SimDuration::from_us(1);
        assert_eq!(d.as_ns(), 2_000);
        assert_eq!(
            SimDuration::from_ns(7) - SimDuration::from_ns(7),
            SimDuration::ZERO
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "duration underflow")]
    fn duration_sub_underflow_panics_in_debug() {
        let _ = SimDuration::from_ns(1) - SimDuration::from_ns(2);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn duration_sub_saturates_in_release() {
        let d = SimDuration::from_ns(1) - SimDuration::from_ns(2);
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_us(1).as_ns(), 1_000);
        assert_eq!(SimDuration::from_ms(1).as_ns(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_ns(), 1_000_000_000);
    }

    #[test]
    fn mul_f64_rounds_and_saturates() {
        assert_eq!(SimDuration::from_ns(10).mul_f64(1.5).as_ns(), 15);
        assert_eq!(SimDuration::from_ns(3).mul_f64(0.5).as_ns(), 2); // 1.5 rounds to 2
        assert_eq!(
            SimDuration::from_secs(u64::MAX / 2_000_000_000).mul_f64(1e30),
            SimDuration::from_ns(u64::MAX)
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_ns(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_ns(1_500).to_string(), "1.500us");
        assert_eq!(SimDuration::from_ms(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn radix_digit_extracts_bytes() {
        let t = SimTime::from_ns(0x1122_3344_5566_7788);
        assert_eq!(t.radix_digit(8, 0), 0x88);
        assert_eq!(t.radix_digit(8, 1), 0x77);
        assert_eq!(t.radix_digit(8, 3), 0x55);
        assert_eq!(t.radix_digit(8, 7), 0x11);
        assert_eq!(t.radix_digit(8, 8), 0); // beyond the top of u64
        assert_eq!(t.radix_digit(16, 1), 0x5566);
    }

    #[test]
    fn radix_level_finds_most_significant_differing_digit() {
        let base = SimTime::from_ns(0x0000_0000_0001_2300);
        assert_eq!(base.radix_level(base, 8), 0);
        assert_eq!(SimTime::from_ns(0x0001_2301).radix_level(base, 8), 0);
        assert_eq!(SimTime::from_ns(0x0001_2400).radix_level(base, 8), 1);
        assert_eq!(SimTime::from_ns(0x0002_0000).radix_level(base, 8), 2);
        assert_eq!(SimTime::from_ns(0x1_0000_0000).radix_level(base, 8), 4);
        assert_eq!(SimTime::MAX.radix_level(SimTime::ZERO, 8), 7);
    }

    #[test]
    fn floor_ticks_truncates() {
        assert_eq!(SimTime::from_ns(0x1234).floor_ticks(8).as_ns(), 0x1200);
        assert_eq!(SimTime::from_ns(0x1234).floor_ticks(0).as_ns(), 0x1234);
        assert_eq!(SimTime::from_ns(7).floor_ticks(64).as_ns(), 0);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }
}
