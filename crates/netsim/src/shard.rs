//! Intra-trial fabric sharding: topology partition, lookahead derivation,
//! cross-shard record types, and the lock-free SPSC mailbox used by the
//! threaded execution backend.
//!
//! One trial's fabric is partitioned by leaf (by pod on a 3-level Clos)
//! into `FP_SHARDS` shards, each owning a disjoint set of hosts and
//! switches and running its own [`crate::sim::Simulator`] over the *full*
//! topology (only owned nodes ever have activity). Shards advance in
//! conservative lockstep windows: with `T = min` over shards of the next
//! pending event time and `L` the minimum propagation latency of any
//! cross-shard link, every shard may safely run all events strictly below
//! `T + L` — any packet a neighbour emits during the window arrives no
//! earlier than `T + L` (classic conservative PDES lookahead). Packets,
//! PFC frames and flow-open records crossing a boundary are collected in a
//! [`ShardOutbox`] and injected into the destination shard's inbound
//! delivery pipe, stamped with their precomputed arrival time, before the
//! next window starts.
//!
//! The coordination itself lives in `fp-collectives` (it must replicate
//! the collective runner); this module holds everything `fp-netsim` needs
//! to expose.

use crate::ids::{HostId, LinkId, NodeId};
use crate::packet::{CollectiveTag, FlowId, Packet, Priority};
use crate::time::{SimDuration, SimTime};
use crate::topology::{SwitchKind, Topology};

/// Shard count requested via `FP_SHARDS` (default 1 = unsharded).
pub fn shards_from_env() -> u32 {
    std::env::var("FP_SHARDS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Upper bound on windows per epoch: keeps the per-epoch batch volume (and
/// the batch-ring slot count sized for it) bounded.
pub const MAX_EPOCH_WINDOWS: u32 = 64;

/// Epoch cap requested via `FP_SHARD_EPOCH`: how many conservative windows
/// a sharded run may advance per coordinator synchronization (default 32;
/// `1` forces the legacy per-window protocol).
pub fn epoch_from_env() -> u32 {
    std::env::var("FP_SHARD_EPOCH")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(32)
        .min(MAX_EPOCH_WINDOWS)
}

/// A static partition of one topology into shards, plus the conservative
/// lookahead window derived from cross-shard link latencies.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Number of shards (clamped to the partitionable unit count).
    pub n_shards: u32,
    /// Owning shard of each host.
    pub host_owner: Vec<u32>,
    /// Owning shard of each switch (dense switch index).
    pub switch_owner: Vec<u32>,
    /// Minimum one-way latency over links whose endpoints live in
    /// different shards — the safe lookahead window.
    pub lookahead: SimDuration,
}

impl ShardPlan {
    /// Partition `topo` into (up to) `shards` shards.
    ///
    /// Two-level fabrics partition by leaf (`leaf % k`), with hosts
    /// following their leaf and spines distributed `spine % k`; 3-level
    /// Clos partitions by pod (leaves and aggs follow their pod, cores
    /// are distributed round-robin). Host↔leaf links are therefore never
    /// cross-shard, so the lookahead is the fabric-tier latency.
    pub fn new(topo: &Topology, shards: u32) -> ShardPlan {
        Self::build(topo, shards, None)
    }

    /// Partition `topo` into (up to) `shards` shards, balancing the given
    /// per-unit event loads (one weight per leaf, or per pod on a 3-level
    /// Clos) across shards instead of assigning units round-robin.
    ///
    /// Assignment is longest-processing-time greedy: units in descending
    /// weight order (ties keep unit order) each go to the least-loaded
    /// shard (ties to the lowest shard id). Uniform weights therefore
    /// reproduce the round-robin `unit % k` partition exactly — symmetric
    /// collectives keep the committed partitions and the documented §9 tie
    /// residuals bit-for-bit.
    pub fn with_loads(topo: &Topology, shards: u32, unit_loads: &[u64]) -> ShardPlan {
        Self::build(topo, shards, Some(unit_loads))
    }

    fn build(topo: &Topology, shards: u32, loads: Option<&[u64]>) -> ShardPlan {
        let three = topo.is_three_level();
        let units = if three {
            topo.pods
        } else {
            topo.n_leaves() as u32
        };
        let k = shards.clamp(1, units.max(1));
        let unit_shard: Vec<u32> = match loads {
            None => (0..units).map(|u| u % k).collect(),
            Some(w) => lpt_assign(units, k, w),
        };
        let leaf_owner = |leaf: u32| -> u32 {
            if three {
                unit_shard[topo.pod_of_leaf(leaf) as usize]
            } else {
                unit_shard[leaf as usize]
            }
        };
        let switch_owner: Vec<u32> = topo
            .switch_kind
            .iter()
            .map(|&kind| match kind {
                SwitchKind::Leaf(l) => leaf_owner(l),
                SwitchKind::Spine(s) => {
                    if three {
                        // Aggs are pod-local: follow the pod.
                        unit_shard[(s / topo.spec.spines) as usize]
                    } else {
                        s % k
                    }
                }
                SwitchKind::Core(c) => c % k,
            })
            .collect();
        let host_owner: Vec<u32> = topo
            .host_leaf
            .iter()
            .map(|&leaf| leaf_owner(leaf))
            .collect();
        let owner_node = |n: NodeId| -> u32 {
            match n {
                NodeId::Host(h) => host_owner[h.idx()],
                NodeId::Switch(s) => switch_owner[s.idx()],
            }
        };
        let lookahead = topo
            .links
            .iter()
            .filter(|l| owner_node(l.src) != owner_node(l.dst))
            .map(|l| l.latency)
            .min()
            .unwrap_or_else(|| {
                topo.links
                    .iter()
                    .map(|l| l.latency)
                    .min()
                    .unwrap_or(SimDuration::from_ns(1))
            });
        ShardPlan {
            n_shards: k,
            host_owner,
            switch_owner,
            lookahead,
        }
    }

    /// Owning shard of a node.
    pub fn owner(&self, n: NodeId) -> u32 {
        match n {
            NodeId::Host(h) => self.host_owner[h.idx()],
            NodeId::Switch(s) => self.switch_owner[s.idx()],
        }
    }

    /// Owning shard of a directed link: the shard of its *transmitting*
    /// node (which runs the serialization and the fault sampling).
    pub fn link_owner(&self, topo: &Topology, link: LinkId) -> u32 {
        self.owner(topo.links[link.idx()].src)
    }

    /// Owning shard of a link's *receiving* node — where a packet that
    /// survived the wire must be delivered.
    pub fn link_dst_owner(&self, topo: &Topology, link: LinkId) -> u32 {
        self.owner(topo.links[link.idx()].dst)
    }
}

/// Longest-processing-time greedy assignment of `units` weighted units to
/// `k` shards. Zero weights count as 1 so idle units still spread
/// round-robin (every shard keeps at least one unit when `units >= k`).
fn lpt_assign(units: u32, k: u32, weights: &[u64]) -> Vec<u32> {
    debug_assert_eq!(weights.len(), units as usize);
    let mut order: Vec<u32> = (0..units).collect();
    // Stable sort: equal weights keep ascending unit order, which is what
    // makes the uniform case degenerate to `unit % k`.
    order.sort_by_key(|&u| std::cmp::Reverse(weights[u as usize]));
    let mut load = vec![0u64; k as usize];
    let mut owner = vec![0u32; units as usize];
    for &u in &order {
        // `min_by_key` returns the first minimum: lowest shard id on ties.
        let s = (0..k as usize).min_by_key(|&s| load[s]).unwrap_or(0);
        owner[u as usize] = s as u32;
        load[s] += weights[u as usize].max(1);
    }
    owner
}

// ---------------------------------------------------------------------
// Cross-shard records
// ---------------------------------------------------------------------

/// A packet that finished serialization on a boundary link: it must be
/// delivered by the shard owning the link's receiving node at `at`
/// (TxDone time + link latency, computed by the sender).
#[derive(Copy, Clone, Debug)]
pub struct RemotePkt {
    /// Precomputed arrival time at the far end.
    pub at: SimTime,
    /// The boundary link the packet travelled.
    pub link: LinkId,
    /// The packet itself.
    pub pkt: Packet,
}

/// A PFC pause/resume frame crossing a shard boundary (the receiving
/// switch's ingress accounting lives in one shard, the paused transmitter
/// in another).
#[derive(Copy, Clone, Debug)]
pub struct RemotePfc {
    /// When the frame takes effect at the transmitter.
    pub at: SimTime,
    /// The link whose egress is paused/resumed.
    pub link: LinkId,
    /// Priority class.
    pub prio: u8,
    /// `true` = pause, `false` = resume.
    pub pause: bool,
}

/// A flow whose destination host lives in another shard: the receiving
/// shard must create a passive mirror (receiver state + ACK generation)
/// before any of the flow's data packets arrive.
#[derive(Copy, Clone, Debug)]
pub struct RemoteOpen {
    /// Trial-global flow id (stamped in every wire packet).
    pub global: FlowId,
    /// Sending host.
    pub src: HostId,
    /// Receiving host (owned by the shard this record is sent to).
    pub dst: HostId,
    /// Payload bytes.
    pub bytes: u64,
    /// Collective tag.
    pub tag: Option<CollectiveTag>,
    /// Priority class.
    pub prio: Priority,
    /// Opaque application token (the workload's transfer id).
    pub token: u64,
    /// When the flow was posted at the sender.
    pub at: SimTime,
}

/// Everything one shard emitted across its boundary during a window,
/// drained by the coordinator at the window barrier.
#[derive(Default, Debug)]
pub struct ShardOutbox {
    /// Boundary-crossing packets.
    pub pkts: Vec<RemotePkt>,
    /// Boundary-crossing PFC frames.
    pub pfcs: Vec<RemotePfc>,
    /// Remote flow opens.
    pub opens: Vec<RemoteOpen>,
}

impl ShardOutbox {
    /// True when nothing crossed the boundary this window.
    pub fn is_empty(&self) -> bool {
        self.pkts.is_empty() && self.pfcs.is_empty() && self.opens.is_empty()
    }
}

// ---------------------------------------------------------------------
// Lock-free SPSC mailbox (threaded backend)
// ---------------------------------------------------------------------

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;

struct Ring<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Consumer position (monotone).
    head: AtomicUsize,
    /// Producer position (monotone).
    tail: AtomicUsize,
    closed: AtomicBool,
    /// Parked consumer, woken by the producer after a push. The mutex is
    /// touched only when (un)registering a parked thread, never on the
    /// push/pop fast path.
    waiter: Mutex<Option<Thread>>,
}

unsafe impl<T: Send> Sync for Ring<T> {}
unsafe impl<T: Send> Send for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            unsafe {
                (*self.buf[i & self.mask].get()).assume_init_drop();
            }
        }
    }
}

/// Producer half of a single-producer/single-consumer mailbox.
pub struct SpscSender<T> {
    ring: Arc<Ring<T>>,
}

/// Consumer half of a single-producer/single-consumer mailbox.
pub struct SpscReceiver<T> {
    ring: Arc<Ring<T>>,
}

/// Build an SPSC mailbox with capacity rounded up to a power of two.
pub fn spsc<T: Send>(capacity: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        buf,
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
        waiter: Mutex::new(None),
    });
    (SpscSender { ring: ring.clone() }, SpscReceiver { ring })
}

impl<T: Send> SpscSender<T> {
    /// Push a value, spinning (yield) while the ring is full. Returns
    /// `false` if the consumer is gone.
    pub fn send(&self, value: T) -> bool {
        let r = &*self.ring;
        let tail = r.tail.load(Ordering::Relaxed);
        loop {
            if r.closed.load(Ordering::Acquire) {
                return false;
            }
            let head = r.head.load(Ordering::Acquire);
            if tail - head < r.buf.len() {
                break;
            }
            std::thread::yield_now();
        }
        unsafe {
            (*r.buf[tail & r.mask].get()).write(value);
        }
        r.tail.store(tail + 1, Ordering::Release);
        if let Some(t) = r.waiter.lock().unwrap().as_ref() {
            t.unpark();
        }
        true
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
        if let Some(t) = self.ring.waiter.lock().unwrap().as_ref() {
            t.unpark();
        }
    }
}

impl<T: Send> SpscReceiver<T> {
    /// Pop the next value if one is ready.
    pub fn try_recv(&self) -> Option<T> {
        let r = &*self.ring;
        let head = r.head.load(Ordering::Relaxed);
        if head == r.tail.load(Ordering::Acquire) {
            return None;
        }
        let v = unsafe { (*r.buf[head & r.mask].get()).assume_init_read() };
        r.head.store(head + 1, Ordering::Release);
        Some(v)
    }

    /// Block until a value arrives; `None` once the producer hung up and
    /// the ring is drained. Spins briefly, then parks with a timeout (the
    /// timeout makes a lost wake-up race merely slow, never a deadlock).
    pub fn recv(&self) -> Option<T> {
        for _ in 0..128 {
            if let Some(v) = self.try_recv() {
                return Some(v);
            }
            std::hint::spin_loop();
        }
        *self.ring.waiter.lock().unwrap() = Some(std::thread::current());
        let v = loop {
            if let Some(v) = self.try_recv() {
                break Some(v);
            }
            if self.ring.closed.load(Ordering::Acquire) {
                // One final drain: the producer may have pushed then closed.
                break self.try_recv();
            }
            std::thread::park_timeout(std::time::Duration::from_micros(50));
        };
        *self.ring.waiter.lock().unwrap() = None;
        v
    }
}

impl<T> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

// ---------------------------------------------------------------------
// Batched SPSC mailbox (epoch protocol)
// ---------------------------------------------------------------------

/// Pad an atomic out to its own cache line: the producer-side `tail` and
/// consumer-side `head` of a [`BatchRing`] must not false-share, or every
/// publish invalidates the consumer's line (and vice versa). The element
/// SPSC [`Ring`] above keeps them adjacent — fine for its command channel
/// role, measurably hostile at per-window flush rates.
#[repr(align(64))]
struct PaddedAtomic(AtomicUsize);

/// SPSC ring of *batches*: each slot holds one boxed slice published with
/// a single release store of `tail`. The producer accumulates records in
/// an ordinary `Vec` (no atomics while staging) and [`publish`]es the
/// whole window's worth at once; the consumer takes whole batches with
/// plain acquire loads and no waiter handshake at all — epoch barriers
/// already order the two sides, so unlike [`Ring`] there is no mutex, no
/// park, and no per-record atomic traffic.
///
/// [`publish`]: BatchSender::publish
/// One [`BatchRingInner`] slot: a batch written by the producer before
/// the tail store and read by the consumer after the head load.
type BatchSlot<T> = UnsafeCell<MaybeUninit<Box<[T]>>>;

struct BatchRingInner<T> {
    slots: Box<[BatchSlot<T>]>,
    mask: usize,
    head: PaddedAtomic,
    tail: PaddedAtomic,
}

unsafe impl<T: Send> Sync for BatchRingInner<T> {}
unsafe impl<T: Send> Send for BatchRingInner<T> {}

impl<T> Drop for BatchRingInner<T> {
    fn drop(&mut self) {
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        for i in head..tail {
            unsafe {
                (*self.slots[i & self.mask].get()).assume_init_drop();
            }
        }
    }
}

/// Producer half of a batched SPSC mailbox.
pub struct BatchSender<T> {
    ring: Arc<BatchRingInner<T>>,
}

/// Consumer half of a batched SPSC mailbox.
pub struct BatchReceiver<T> {
    ring: Arc<BatchRingInner<T>>,
}

/// Build a batched mailbox holding up to `capacity` in-flight batches
/// (rounded up to a power of two).
pub fn batch_ring<T: Send>(capacity: usize) -> (BatchSender<T>, BatchReceiver<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(BatchRingInner {
        slots,
        mask: cap - 1,
        head: PaddedAtomic(AtomicUsize::new(0)),
        tail: PaddedAtomic(AtomicUsize::new(0)),
    });
    (BatchSender { ring: ring.clone() }, BatchReceiver { ring })
}

impl<T: Send> BatchSender<T> {
    /// Publish the staged batch: drains `staging` into one boxed slice and
    /// makes it visible with a single release store. Returns `false`
    /// (leaving `staging` untouched) if all slots are in flight — under
    /// the epoch protocol at most one batch per ring is ever outstanding,
    /// so the coordinator treats a full ring as a protocol violation.
    #[must_use]
    pub fn publish(&self, staging: &mut Vec<T>) -> bool {
        let r = &*self.ring;
        let tail = r.tail.0.load(Ordering::Relaxed);
        let head = r.head.0.load(Ordering::Acquire);
        if tail - head == r.slots.len() {
            return false;
        }
        let batch: Box<[T]> = std::mem::take(staging).into_boxed_slice();
        unsafe {
            (*r.slots[tail & r.mask].get()).write(batch);
        }
        r.tail.0.store(tail + 1, Ordering::Release);
        true
    }
}

impl<T: Send> BatchReceiver<T> {
    /// Take the next batch if one is published.
    pub fn try_pop(&self) -> Option<Box<[T]>> {
        let r = &*self.ring;
        let head = r.head.0.load(Ordering::Relaxed);
        if head == r.tail.0.load(Ordering::Acquire) {
            return None;
        }
        let batch = unsafe { (*r.slots[head & r.mask].get()).assume_init_read() };
        r.head.0.store(head + 1, Ordering::Release);
        Some(batch)
    }

    /// Append every published batch, in publish order, to `out`.
    pub fn drain_into(&self, out: &mut Vec<T>) {
        while let Some(batch) = self.try_pop() {
            out.extend(batch.into_vec());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FatTreeSpec;

    fn fabric(leaves: u32, spines: u32) -> Topology {
        Topology::fat_tree(FatTreeSpec {
            leaves,
            spines,
            hosts_per_leaf: 2,
            ..Default::default()
        })
    }

    #[test]
    fn partition_covers_every_node_and_clamps() {
        let topo = fabric(8, 4);
        for shards in [1, 2, 3, 4, 8, 64] {
            let plan = ShardPlan::new(&topo, shards);
            assert!(plan.n_shards <= 8);
            assert_eq!(plan.host_owner.len(), topo.n_hosts());
            assert_eq!(plan.switch_owner.len(), topo.n_switches());
            assert!(plan.host_owner.iter().all(|&o| o < plan.n_shards));
            assert!(plan.switch_owner.iter().all(|&o| o < plan.n_shards));
            // Every shard owns at least one leaf.
            for s in 0..plan.n_shards {
                assert!(
                    (0..topo.n_leaves() as u32).any(|l| plan.switch_owner[l as usize] == s),
                    "shard {s} owns no leaf"
                );
            }
        }
    }

    #[test]
    fn hosts_follow_their_leaf() {
        let topo = fabric(8, 4);
        let plan = ShardPlan::new(&topo, 4);
        for h in 0..topo.n_hosts() {
            let leaf = topo.host_leaf[h];
            assert_eq!(plan.host_owner[h], plan.switch_owner[leaf as usize]);
        }
    }

    #[test]
    fn lookahead_is_fabric_latency() {
        let topo = fabric(8, 4);
        let plan = ShardPlan::new(&topo, 4);
        // Host links are never cross-shard, so the lookahead equals the
        // (uniform) fabric-tier latency.
        let fabric_lat = topo.spec.fabric_link.latency;
        assert_eq!(plan.lookahead, fabric_lat);
    }

    #[test]
    fn single_shard_plan_degenerates() {
        let topo = fabric(4, 2);
        let plan = ShardPlan::new(&topo, 1);
        assert_eq!(plan.n_shards, 1);
        assert!(plan.host_owner.iter().all(|&o| o == 0));
        assert!(plan.switch_owner.iter().all(|&o| o == 0));
    }

    #[test]
    fn env_parse_defaults_to_one() {
        // Never set FP_SHARDS here (process-global env); just check the
        // parse helper's default path via the raw var being absent or
        // whatever the harness set — the value must always be >= 1.
        assert!(shards_from_env() >= 1);
    }

    #[test]
    fn spsc_roundtrip_in_order() {
        let (tx, rx) = spsc::<u64>(4);
        for i in 0..3 {
            assert!(tx.send(i));
        }
        for i in 0..3 {
            assert_eq!(rx.try_recv(), Some(i));
        }
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn spsc_blocking_recv_across_threads() {
        let (tx, rx) = spsc::<u64>(8);
        let producer = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                assert!(tx.send(i));
            }
        });
        for i in 0..10_000u64 {
            assert_eq!(rx.recv(), Some(i));
        }
        producer.join().unwrap();
        assert_eq!(rx.recv(), None, "hung-up ring reports end of stream");
    }

    #[test]
    fn uniform_loads_degenerate_to_round_robin() {
        let topo = fabric(8, 4);
        for shards in [2, 3, 4, 8] {
            let rr = ShardPlan::new(&topo, shards);
            for w in [0u64, 1, 7] {
                let plan = ShardPlan::with_loads(&topo, shards, &[w; 8]);
                assert_eq!(plan.host_owner, rr.host_owner, "w={w} k={shards}");
                assert_eq!(plan.switch_owner, rr.switch_owner, "w={w} k={shards}");
            }
        }
    }

    #[test]
    fn skewed_loads_balance_across_shards() {
        let topo = fabric(8, 4);
        // One hot leaf: LPT must not stack another loaded leaf on top of it.
        let loads = [100u64, 10, 10, 10, 10, 10, 10, 10];
        let plan = ShardPlan::with_loads(&topo, 2, &loads);
        let shard_load = |s: u32| -> u64 {
            (0..8)
                .filter(|&l| plan.switch_owner[l as usize] == s)
                .map(|l| loads[l as usize])
                .sum()
        };
        // Optimal split is 100 vs 70; round-robin would give 130 vs 40.
        assert_eq!(shard_load(0).max(shard_load(1)), 100);
        // Hosts still follow their leaf.
        for h in 0..topo.n_hosts() {
            let leaf = topo.host_leaf[h];
            assert_eq!(plan.host_owner[h], plan.switch_owner[leaf as usize]);
        }
    }

    #[test]
    fn epoch_env_parse_is_clamped() {
        // Process-global env: only check the invariant range.
        let e = epoch_from_env();
        assert!((1..=MAX_EPOCH_WINDOWS).contains(&e));
    }

    #[test]
    fn batch_ring_roundtrip_in_publish_order() {
        let (tx, rx) = batch_ring::<u64>(4);
        let mut staging = vec![1, 2, 3];
        assert!(tx.publish(&mut staging));
        assert!(staging.is_empty(), "publish drains the staging vec");
        staging.extend([4, 5]);
        assert!(tx.publish(&mut staging));
        let mut out = Vec::new();
        rx.drain_into(&mut out);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert!(rx.try_pop().is_none());
    }

    #[test]
    fn batch_ring_reports_full() {
        let (tx, rx) = batch_ring::<u64>(2);
        let mut staging = vec![0];
        assert!(tx.publish(&mut staging));
        staging.push(1);
        assert!(tx.publish(&mut staging));
        staging.push(2);
        assert!(!tx.publish(&mut staging), "full ring refuses the batch");
        assert_eq!(staging, vec![2], "refused batch stays staged");
        assert_eq!(rx.try_pop().unwrap().as_ref(), &[0]);
        assert!(tx.publish(&mut staging), "freed slot accepts again");
    }

    #[test]
    fn batch_ring_drops_unconsumed_batches() {
        let (tx, rx) = batch_ring::<String>(4);
        let mut staging = vec!["a".to_string(), "b".to_string()];
        assert!(tx.publish(&mut staging));
        drop(rx);
        drop(tx);
    }

    #[test]
    fn batch_ring_across_threads() {
        let (tx, rx) = batch_ring::<u64>(64);
        let producer = std::thread::spawn(move || {
            let mut staging = Vec::new();
            for batch in 0..100u64 {
                staging.extend((0..32).map(|i| batch * 32 + i));
                while !tx.publish(&mut staging) {
                    std::thread::yield_now();
                }
            }
        });
        let mut out = Vec::new();
        while out.len() < 3200 {
            rx.drain_into(&mut out);
            std::hint::spin_loop();
        }
        producer.join().unwrap();
        assert_eq!(out, (0..3200u64).collect::<Vec<_>>());
    }

    #[test]
    fn spsc_drops_undelivered_values() {
        // Drop with items still queued: must not leak (checked by Miri/
        // sanitizers; here it just must not crash).
        let (tx, rx) = spsc::<String>(8);
        tx.send("a".to_string());
        tx.send("b".to_string());
        drop(rx);
        assert!(!tx.send("c".to_string()), "closed ring rejects sends");
    }
}
