//! The control-plane action API: scheduled remediation, deterministically.
//!
//! Faults ([`crate::fault`]) model what the *network* does to the job; this
//! module models what an *operator* (or an automated control loop, see
//! `fp-ctrl`) does back. A [`ControlAction`] is a remediation primitive —
//! today: administratively removing a suspect link from routing, or
//! restoring it — that a controller schedules into the simulation with
//! [`crate::sim::Simulator::schedule_control`]. Actions ride the same
//! future-event scheduler as everything else (a tiny index-carrying event,
//! applied in `(time, seq)` order), so a controller-enabled run stays
//! byte-identical across `FP_SCHED` backends and thread counts.
//!
//! Applied actions reuse the existing fault machinery: `AdminDown` goes
//! through the same spray-set recompute path as a known
//! [`FaultKind::AdminDown`](crate::fault::FaultKind), which is exactly the
//! paper's remediation story — once the fault is *known*, adaptive spraying
//! routes around it and the analytical `d/(s−f)` load shape applies again.

use crate::ids::LinkId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// What a control action does to its target link.
#[derive(Copy, Clone, PartialEq, Eq, Serialize, Deserialize, Debug)]
pub enum ControlVerb {
    /// Administratively remove the link from routing (both the silent fault
    /// and healthy traffic stop using it; spray sets are recomputed).
    AdminDown,
    /// Restore the link to routing, clearing any fault state (models a
    /// repaired cable being re-admitted). Also lifts any entropy-recycle
    /// quarantine ([`ControlVerb::RecycleEntropy`]) on the link.
    Restore,
    /// Entropy-recycle remediation: keep the link admin-up but quarantine
    /// it for spray decisions — sprayers stop recycling (or freshly
    /// drawing) entropies that cross it whenever an alternative uplink
    /// exists. The REPS-style soft mitigation: no drain, no capacity
    /// cliff, reversible by [`ControlVerb::Restore`].
    RecycleEntropy,
}

impl ControlVerb {
    /// Stable lowercase label for telemetry.
    pub fn name(self) -> &'static str {
        match self {
            ControlVerb::AdminDown => "admin_down",
            ControlVerb::Restore => "restore",
            ControlVerb::RecycleEntropy => "recycle_entropy",
        }
    }
}

/// One remediation primitive aimed at a directed link (optionally both
/// directions of the physical cable).
#[derive(Copy, Clone, PartialEq, Eq, Serialize, Deserialize, Debug)]
pub struct ControlAction {
    /// Target directed link.
    pub link: LinkId,
    /// Apply to the reverse direction as well (physical-cable semantics —
    /// an operator pulls the cable, not one lane of it).
    pub bidirectional: bool,
    /// What to do.
    pub verb: ControlVerb,
}

impl ControlAction {
    /// Admin-down both directions of `link`'s physical cable.
    pub fn admin_down_cable(link: LinkId) -> Self {
        ControlAction {
            link,
            bidirectional: true,
            verb: ControlVerb::AdminDown,
        }
    }

    /// Restore both directions of `link`'s physical cable.
    pub fn restore_cable(link: LinkId) -> Self {
        ControlAction {
            link,
            bidirectional: true,
            verb: ControlVerb::Restore,
        }
    }

    /// Quarantine both directions of `link`'s physical cable for spray
    /// decisions (entropy-recycle remediation) without taking it down.
    pub fn recycle_entropy_cable(link: LinkId) -> Self {
        ControlAction {
            link,
            bidirectional: true,
            verb: ControlVerb::RecycleEntropy,
        }
    }
}

/// A scheduled control action (the control-plane analogue of
/// [`crate::fault::FaultEvent`]).
#[derive(Copy, Clone, PartialEq, Eq, Serialize, Deserialize, Debug)]
pub struct ControlEvent {
    /// When the action lands (controller decision time + reaction latency).
    pub at: SimTime,
    /// The action.
    pub action: ControlAction,
}

/// An applied control action, as logged by the engine: what landed, when,
/// and which schedule entry it came from. Controllers poll this log (it is
/// append-only and indexed by application order) to learn that their
/// scheduled remediation actually took effect.
#[derive(Copy, Clone, PartialEq, Eq, Serialize, Deserialize, Debug)]
pub struct AppliedControl {
    /// Simulated time the action was applied.
    pub at: SimTime,
    /// Index into the control schedule (return value of `schedule_control`).
    pub idx: u32,
    /// The action that was applied.
    pub action: ControlAction,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_names_are_stable() {
        assert_eq!(ControlVerb::AdminDown.name(), "admin_down");
        assert_eq!(ControlVerb::Restore.name(), "restore");
        assert_eq!(ControlVerb::RecycleEntropy.name(), "recycle_entropy");
    }

    #[test]
    fn cable_constructors_are_bidirectional() {
        let a = ControlAction::admin_down_cable(LinkId(7));
        assert!(a.bidirectional);
        assert_eq!(a.verb, ControlVerb::AdminDown);
        let r = ControlAction::restore_cable(LinkId(7));
        assert!(r.bidirectional);
        assert_eq!(r.verb, ControlVerb::Restore);
        let q = ControlAction::recycle_entropy_cable(LinkId(7));
        assert!(q.bidirectional);
        assert_eq!(q.verb, ControlVerb::RecycleEntropy);
    }
}
