//! Strongly-typed identifiers for simulation entities.
//!
//! Hosts, switches and (directed) links live in dense vectors inside the
//! simulator; these newtypes prevent accidentally indexing one table with
//! another table's id.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A host (GPU/NIC endpoint). One host drives one NIC, as in the paper's
/// workload model (§2: "Each NIC is associated with a single GPU").
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Debug)]
pub struct HostId(pub u32);

/// A switch (leaf or spine).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Debug)]
pub struct SwitchId(pub u32);

/// A *directed* link. Physical cables are represented as a pair of directed
/// links; [`crate::topology::Topology::peer`] maps one direction to the other.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Debug)]
pub struct LinkId(pub u32);

/// Any node that can source or sink packets.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Debug)]
pub enum NodeId {
    /// An end host.
    Host(HostId),
    /// A leaf or spine switch.
    Switch(SwitchId),
}

impl HostId {
    /// Index into host tables.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl SwitchId {
    /// Index into switch tables.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// Index into link tables.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Host(h) => write!(f, "{h}"),
            NodeId::Switch(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        assert_eq!(HostId(3).to_string(), "h3");
        assert_eq!(SwitchId(7).to_string(), "sw7");
        assert_eq!(LinkId(42).to_string(), "l42");
        assert_eq!(NodeId::Host(HostId(1)).to_string(), "h1");
    }

    #[test]
    fn idx_matches_inner() {
        assert_eq!(HostId(9).idx(), 9);
        assert_eq!(SwitchId(9).idx(), 9);
        assert_eq!(LinkId(9).idx(), 9);
    }
}
