//! PRIME-style multi-part pseudo-random entropy spraying.
//!
//! PRIME (Sobhani et al.) composes a packet's path entropy from multiple
//! parts: a *deterministic per-flow base* (so a flow's packets stay
//! spread over a stable, reproducible port set) and a *pseudo-random
//! per-packet part* (so consecutive packets of one flow still spray).
//! When a flow observes a congestion signal, the whole entropy is
//! recomputed — modelled here as an `epoch` counter mixed into both
//! parts and bumped on every ECN echo or timeout, which re-randomizes
//! the path mapping away from the congested region.
//!
//! The flow identity is the `(src, dst)` host pair, not the trial-global
//! flow id: collective workloads repeat the same pair transfers every
//! iteration while flow ids only grow, so pair-keyed hashing makes the
//! healthy-state port volumes identical iteration over iteration —
//! temporal symmetry by construction. Epochs are likewise per pair, so a
//! congestion-triggered remap persists across the pair's future flows.
//!
//! Both parts are pure hashes of `(src, dst, seq, epoch)`, so with no
//! congestion signal the backend is a deterministic function of the
//! packet alone: no RNG draws, no cursor movement, and a clean memo
//! residual. Once an epoch has been bumped the sprayer carries
//! feedback-fed state; [`Sprayer::memo_residual`] then refuses with an
//! explicit reason so the temporal-symmetry memo falls back to live
//! simulation instead of fingerprinting unsoundly.

use super::{SprayCtx, SprayEcho, Sprayer};
use crate::packet::FlowId;
use crate::rng::splitmix64;
use rand::rngs::SmallRng;
use std::collections::HashMap;

/// Per-pair base-entropy salt.
const PRIME_FLOW_SALT: u64 = 0x5052_494d_4500_0001;
/// Per-packet part salt.
const PRIME_PKT_SALT: u64 = 0x5052_494d_4500_0002;

/// Pack a `(src, dst)` host pair into the hash key.
fn pair_key(src: u32, dst: u32) -> u64 {
    (src as u64) << 32 | dst as u64
}

/// Multi-part entropy backend. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct PrimeSprayer {
    /// Per-pair entropy epoch, present only for pairs that saw a
    /// congestion signal. Lookup-only on the pick path (iteration order
    /// never observed), so the std `HashMap`'s randomized ordering cannot
    /// leak into results.
    epochs: HashMap<u64, u32>,
}

impl PrimeSprayer {
    /// Build the backend (no congestion epochs yet).
    pub fn new() -> Self {
        PrimeSprayer::default()
    }

    /// Current entropy epoch of the `(src, dst)` pair (0 until a
    /// congestion signal).
    pub fn epoch(&self, src: u32, dst: u32) -> u32 {
        self.epochs.get(&pair_key(src, dst)).copied().unwrap_or(0)
    }
}

impl Sprayer for PrimeSprayer {
    fn pick(&mut self, ctx: &SprayCtx<'_>, _cursor: &mut u64, _rng: &mut SmallRng) -> usize {
        let pair = pair_key(ctx.src, ctx.dst);
        let epoch = self.epochs.get(&pair).copied().unwrap_or(0) as u64;
        // Base part: stable per (pair, epoch).
        let base = splitmix64(splitmix64(pair ^ PRIME_FLOW_SALT) ^ epoch);
        // Per-packet part: varies with the segment index.
        let pkt = splitmix64(base ^ ctx.seq as u64 ^ PRIME_PKT_SALT);
        // Integrated multi-part entropy → candidate index.
        ((base ^ pkt.rotate_left(17)) % ctx.cands.len() as u64) as usize
    }

    fn on_feedback(&mut self, _flow: FlowId, pair: (u32, u32), _seq: u32, echo: SprayEcho) {
        // Congestion signal ⇒ recompute the pair's entropy (bump epoch).
        if matches!(echo, SprayEcho::Ecn | SprayEcho::Timeout) {
            *self.epochs.entry(pair_key(pair.0, pair.1)).or_insert(0) += 1;
        }
    }

    fn memo_residual(&self) -> Result<u64, &'static str> {
        if self.epochs.is_empty() {
            Ok(0)
        } else {
            Err("prime-congestion-epochs")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LinkId;
    use rand::SeedableRng;

    fn ctx(src: u32, dst: u32, seq: u32, cands: &[LinkId]) -> SprayCtx<'_> {
        SprayCtx {
            flow: 1,
            src,
            dst,
            seq,
            data: true,
            cands,
            loads: &[],
            slots: &[],
        }
    }

    #[test]
    fn per_packet_part_sprays_within_a_flow() {
        let cands: Vec<LinkId> = (0..8).map(LinkId).collect();
        let mut s = PrimeSprayer::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut cur = 0;
        let mut seen = [false; 8];
        for seq in 0..256 {
            seen[s.pick(&ctx(0, 3, seq, &cands), &mut cur, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&x| x), "one flow must still spray");
        assert_eq!(cur, 0, "PRIME must not consume the rotation cursor");
    }

    #[test]
    fn picks_are_a_pure_function_of_pair_seq_epoch() {
        let cands: Vec<LinkId> = (0..4).map(LinkId).collect();
        let mut a = PrimeSprayer::new();
        let mut b = PrimeSprayer::new();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut cur = 0;
        for seq in 0..64 {
            assert_eq!(
                a.pick(&ctx(2, 5, seq, &cands), &mut cur, &mut rng),
                b.pick(&ctx(2, 5, seq, &cands), &mut cur, &mut rng)
            );
        }
    }

    #[test]
    fn picks_ignore_the_growing_flow_id() {
        // Iteration-stability hinge: the same host pair maps identically
        // no matter which trial-global flow carries the transfer.
        let cands: Vec<LinkId> = (0..4).map(LinkId).collect();
        let mut s = PrimeSprayer::new();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut cur = 0;
        let mut a = ctx(2, 5, 7, &cands);
        let first = s.pick(&a, &mut cur, &mut rng);
        for flow in 1..32 {
            a.flow = flow * 1000;
            assert_eq!(s.pick(&a, &mut cur, &mut rng), first);
        }
    }

    #[test]
    fn congestion_signal_recomputes_the_mapping() {
        let cands: Vec<LinkId> = (0..8).map(LinkId).collect();
        let mut s = PrimeSprayer::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut cur = 0;
        let before: Vec<usize> = (0..32)
            .map(|seq| s.pick(&ctx(0, 1, seq, &cands), &mut cur, &mut rng))
            .collect();
        assert_eq!(s.memo_residual(), Ok(0));
        s.on_feedback(1, (0, 1), 0, SprayEcho::Ecn);
        assert_eq!(s.epoch(0, 1), 1);
        let after: Vec<usize> = (0..32)
            .map(|seq| s.pick(&ctx(0, 1, seq, &cands), &mut cur, &mut rng))
            .collect();
        assert_ne!(before, after, "epoch bump must re-randomize the path set");
        // Other pairs are untouched.
        assert_eq!(s.epoch(0, 2), 0);
        // Feedback-fed state refuses the memo fingerprint with a reason.
        assert_eq!(s.memo_residual(), Err("prime-congestion-epochs"));
    }

    #[test]
    fn clean_acks_do_not_bump_epochs() {
        let mut s = PrimeSprayer::new();
        s.on_feedback(1, (0, 1), 0, SprayEcho::Ack);
        assert_eq!(s.epoch(0, 1), 0);
        assert_eq!(s.memo_residual(), Ok(0));
        s.on_feedback(1, (0, 1), 1, SprayEcho::Timeout);
        assert_eq!(s.epoch(0, 1), 1);
    }
}
