//! REPS: recycled entropy packet spraying, with an optional failover mode.
//!
//! REPS (Bonato et al.) observes that a packet's path entropy is a probe:
//! if the packet came back ACKed and unmarked, the path it hashed to is
//! currently good. The sender therefore *recycles* entropies of cleanly
//! ACKed packets and prefers them for new packets; entropies whose
//! packets were CE-marked or timed out are evicted. Under a silent fault
//! the faulty path's entropies never come back clean, so the pool
//! self-purges — load drains away from the broken cable without any
//! control-plane action.
//!
//! In this fabric an entropy pins exactly one uplink slot (one path per
//! slot in the two-level Clos, one next-hop choice per stage in the
//! three-level), so the implementation keeps the recycled pool *per
//! slot*: a rotation cursor visits candidate slots round-robin and each
//! visit either reuses a proven entropy from that slot's bucket or mints
//! a fresh one. The rotation keeps the healthy-state load stratified —
//! per-iteration port counts stay flat enough for the 1% temporal-
//! symmetry detector, where a flat FIFO over random entropies would
//! freeze its initial sampling skew into a permanent imbalance.
//!
//! Self-purge emerges from the bucket policy: a slot whose packets time
//! out accumulates *suspicion* and its bucket stays empty, so rotation
//! visits probe it freshly only on an exponential backoff schedule
//! (1-in-2^suspicion visits). A clean ACK resets the slot. The failover
//! mode sharpens this into a hard quarantine: once a slot crosses the
//! suspicion threshold it is skipped outright and its remaining cached
//! entropies are purged.
//!
//! All state is per-leaf and fed by the deterministic echo stream, so the
//! backend is byte-deterministic in a single-simulator run. The pool is
//! fed by ACK arrival order, though, so the backend refuses the
//! temporal-symmetry memo ([`Sprayer::memo_residual`]) and the harness's
//! shard gate keeps it off the sharded fast path.

use super::{SprayCtx, SprayEcho, Sprayer};
use crate::packet::FlowId;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::{HashMap, VecDeque};

/// Proven-entropy bucket capacity per uplink slot.
const BUCKET_CAP: usize = 256;
/// In-flight table safety cap: entries for packets that never produce an
/// echo (e.g. flows that fail outright) would otherwise accumulate.
/// Clearing wholesale is deterministic and only forgets recycling hints.
const INFLIGHT_CAP: usize = 1 << 16;
/// Consecutive timeouts on one slot before failover quarantines it.
const QUARANTINE_AFTER: u32 = 3;
/// Cap on the probe-backoff exponent: a suspect slot is probed at worst
/// once per `2^PROBE_BACKOFF_CAP` rotation visits.
const PROBE_BACKOFF_CAP: u32 = 6;

/// Recycled-entropy backend. See the module docs.
#[derive(Clone, Debug)]
pub struct RepsSprayer {
    failover: bool,
    /// Per-slot FIFOs of entropies whose packets were ACKed clean.
    buckets: Vec<VecDeque<u64>>,
    /// Entropy + uplink slot of each data packet awaiting its echo.
    /// Lookup/remove only — iteration order is never observed.
    inflight: HashMap<(FlowId, u32), (u64, u32)>,
    /// Per-uplink-slot suspicion score: consecutive timeouts, reset by a
    /// clean ACK.
    suspicion: Vec<u32>,
    /// Rotation visits skipped per slot since its last fresh probe.
    skipped: Vec<u32>,
    /// Data-path rotation cursor.
    cursor: u64,
    /// Reverse-path (ACK) rotation cursor, separate so ACK bursts do not
    /// skew the data stratification.
    ack_cursor: u64,
    /// Data picks served from a recycled entropy.
    pub recycled: u64,
    /// Data picks served by a fresh draw.
    pub fresh: u64,
    /// Entropies evicted (ECN/timeout echoes + quarantine purges).
    pub evicted: u64,
}

impl RepsSprayer {
    /// Build the backend for a switch with `n_slots` uplink slots;
    /// `failover` enables the hard-quarantine layer.
    pub fn new(n_slots: usize, failover: bool) -> Self {
        RepsSprayer {
            failover,
            buckets: vec![VecDeque::new(); n_slots],
            inflight: HashMap::new(),
            suspicion: vec![0; n_slots],
            skipped: vec![0; n_slots],
            cursor: 0,
            ack_cursor: 0,
            recycled: 0,
            fresh: 0,
            evicted: 0,
        }
    }

    /// Cached (recyclable) entropies across all slots.
    pub fn cache_len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// Data packets awaiting an echo.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// True when `slot` has crossed the suspicion threshold.
    fn suspect(&self, slot: u32) -> bool {
        self.suspicion
            .get(slot as usize)
            .is_some_and(|&s| s >= QUARANTINE_AFTER)
    }

    /// True when failover mode has quarantined `slot`.
    pub fn quarantined(&self, slot: u32) -> bool {
        self.failover && self.suspect(slot)
    }

    /// The stable slot of candidate `idx` (identity fallback when the
    /// caller did not provide slots, e.g. unit tests).
    fn slot_of(ctx: &SprayCtx<'_>, idx: usize) -> u32 {
        ctx.slots.get(idx).copied().unwrap_or(idx as u32)
    }
}

impl Sprayer for RepsSprayer {
    fn pick(&mut self, ctx: &SprayCtx<'_>, _cursor: &mut u64, rng: &mut SmallRng) -> usize {
        let n = ctx.cands.len();
        if !ctx.data {
            // ACKs carry no echo identity, so they cannot feed the pool;
            // rotate them across slots, skipping suspects (a lost ACK
            // costs the *peer* an RTO on a path it cannot see).
            for _ in 0..n {
                let idx = (self.ack_cursor % n as u64) as usize;
                self.ack_cursor += 1;
                if !self.suspect(Self::slot_of(ctx, idx)) {
                    return idx;
                }
            }
            let idx = (self.ack_cursor % n as u64) as usize;
            self.ack_cursor += 1;
            return idx;
        }

        let mut chosen = None;
        for _ in 0..n {
            let idx = (self.cursor % n as u64) as usize;
            self.cursor += 1;
            let slot = Self::slot_of(ctx, idx) as usize;
            if self.quarantined(slot as u32) {
                // Hard quarantine: purge whatever the slot still caches.
                if let Some(b) = self.buckets.get_mut(slot) {
                    self.evicted += b.len() as u64;
                    b.clear();
                }
                continue;
            }
            if let Some(e) = self.buckets.get_mut(slot).and_then(|b| b.pop_front()) {
                self.recycled += 1;
                chosen = Some((e, idx, slot as u32));
                break;
            }
            let s = self.suspicion.get(slot).copied().unwrap_or(0);
            if s > 0 {
                // Unproven *and* suspect: probe on exponential backoff.
                let skip = &mut self.skipped[slot];
                *skip += 1;
                if *skip < (1u32 << s.min(PROBE_BACKOFF_CAP)) {
                    continue;
                }
                *skip = 0;
            }
            self.fresh += 1;
            chosen = Some((rng.gen::<u64>(), idx, slot as u32));
            break;
        }
        let (e, idx, slot) = chosen.unwrap_or_else(|| {
            // Every slot quarantined or throttled — the pick must stay
            // total, so the rotation proceeds regardless.
            let idx = (self.cursor % n as u64) as usize;
            self.cursor += 1;
            self.fresh += 1;
            (rng.gen::<u64>(), idx, Self::slot_of(ctx, idx))
        });
        if self.inflight.len() >= INFLIGHT_CAP {
            self.inflight.clear();
        }
        self.inflight.insert((ctx.flow, ctx.seq), (e, slot));
        idx
    }

    fn on_feedback(&mut self, flow: FlowId, _pair: (u32, u32), seq: u32, echo: SprayEcho) {
        let Some((entropy, slot)) = self.inflight.remove(&(flow, seq)) else {
            return; // single-candidate pick, cap purge, or stale echo
        };
        let slot = slot as usize;
        match echo {
            SprayEcho::Ack => {
                if let Some(s) = self.suspicion.get_mut(slot) {
                    *s = 0;
                }
                if let Some(k) = self.skipped.get_mut(slot) {
                    *k = 0;
                }
                if let Some(b) = self.buckets.get_mut(slot) {
                    if b.len() < BUCKET_CAP {
                        b.push_back(entropy);
                    }
                }
            }
            SprayEcho::Ecn => {
                // Congested path: drop the entropy but keep the slot in
                // good standing (congestion is not failure).
                self.evicted += 1;
            }
            SprayEcho::Timeout => {
                self.evicted += 1;
                if let Some(s) = self.suspicion.get_mut(slot) {
                    *s = s.saturating_add(1);
                }
            }
        }
    }

    fn memo_residual(&self) -> Result<u64, &'static str> {
        Err("reps-entropy-cache")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LinkId;
    use rand::SeedableRng;

    fn ctx<'a>(flow: u32, seq: u32, cands: &'a [LinkId], slots: &'a [u32]) -> SprayCtx<'a> {
        SprayCtx {
            flow,
            src: 0,
            dst: 1,
            seq,
            data: true,
            cands,
            loads: &[],
            slots,
        }
    }

    fn cands(n: u32) -> (Vec<LinkId>, Vec<u32>) {
        ((0..n).map(LinkId).collect(), (0..n).collect())
    }

    #[test]
    fn ack_recycles_the_entropy() {
        let (c, sl) = cands(1);
        let mut s = RepsSprayer::new(1, false);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut cur = 0;
        let idx = s.pick(&ctx(1, 0, &c, &sl), &mut cur, &mut rng);
        assert_eq!(s.inflight_len(), 1);
        assert_eq!(s.fresh, 1);
        s.on_feedback(1, (0, 0), 0, SprayEcho::Ack);
        assert_eq!(s.cache_len(), 1, "clean ACK must recycle the entropy");
        assert_eq!(s.inflight_len(), 0);
        // The recycled entropy reproduces the same pick.
        let idx2 = s.pick(&ctx(1, 1, &c, &sl), &mut cur, &mut rng);
        assert_eq!(idx, idx2, "recycled entropy must replay the proven path");
        assert_eq!(s.recycled, 1);
        assert_eq!(s.cache_len(), 0);
    }

    #[test]
    fn fresh_picks_are_stratified_round_robin() {
        let (c, sl) = cands(4);
        let mut s = RepsSprayer::new(4, false);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut cur = 0;
        let mut counts = [0u32; 4];
        for seq in 0..32u32 {
            counts[s.pick(&ctx(1, seq, &c, &sl), &mut cur, &mut rng)] += 1;
        }
        assert_eq!(
            counts,
            [8, 8, 8, 8],
            "healthy-state picks must stay stratified (the 1% detector \
             depends on it)"
        );
    }

    #[test]
    fn ecn_evicts_instead_of_recycling() {
        let (c, sl) = cands(4);
        let mut s = RepsSprayer::new(4, false);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut cur = 0;
        s.pick(&ctx(1, 0, &c, &sl), &mut cur, &mut rng);
        s.on_feedback(1, (0, 0), 0, SprayEcho::Ecn);
        assert_eq!(s.cache_len(), 0, "CE-marked entropy must not be recycled");
        assert_eq!(s.evicted, 1);
        assert_eq!(s.inflight_len(), 0);
    }

    #[test]
    fn timeout_evicts_and_scores_suspicion() {
        let (c, sl) = cands(4);
        let mut s = RepsSprayer::new(4, true);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut cur = 0;
        // Drive timeouts until some slot crosses the quarantine threshold.
        let mut quarantined = None;
        for seq in 0..64u32 {
            let idx = s.pick(&ctx(1, seq, &c, &sl), &mut cur, &mut rng);
            s.on_feedback(1, (0, 0), seq, SprayEcho::Timeout);
            if s.quarantined(idx as u32) {
                quarantined = Some(idx as u32);
                break;
            }
        }
        let bad = quarantined.expect("repeated timeouts must quarantine a slot");
        assert!(s.evicted > 0);
        // Quarantined slots are avoided by subsequent picks.
        for seq in 100..200u32 {
            let idx = s.pick(&ctx(2, seq, &c, &sl), &mut cur, &mut rng);
            assert_ne!(idx as u32, bad, "failover must steer off the bad slot");
            s.on_feedback(2, (0, 0), seq, SprayEcho::Ack);
        }
        // A clean ACK on the slot resets its suspicion. Build one by
        // hand: feed the echo directly through an inflight entry.
        s.inflight.insert((9, 0), (42, bad));
        s.on_feedback(9, (0, 0), 0, SprayEcho::Ack);
        assert!(!s.quarantined(bad), "ACK must lift the quarantine");
    }

    #[test]
    fn quarantined_cached_entropies_are_purged_not_recycled() {
        let (c, sl) = cands(2);
        let mut s = RepsSprayer::new(2, true);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut cur = 0;
        // Recycle a batch of entropies landing on both slots.
        for seq in 0..32u32 {
            s.pick(&ctx(1, seq, &c, &sl), &mut cur, &mut rng);
            s.on_feedback(1, (0, 0), seq, SprayEcho::Ack);
        }
        assert!(s.cache_len() > 0);
        // Quarantine slot 0 by force.
        s.suspicion[0] = QUARANTINE_AFTER;
        let evicted_before = s.evicted;
        for seq in 32..96u32 {
            let idx = s.pick(&ctx(1, seq, &c, &sl), &mut cur, &mut rng);
            assert_eq!(
                idx, 1,
                "recycled entropies crossing slot 0 must not be used"
            );
            s.on_feedback(1, (0, 0), seq, SprayEcho::Ack);
        }
        assert!(
            s.evicted > evicted_before,
            "slot-0 entropies must have been purged"
        );
        assert!(s.buckets[0].is_empty());
    }

    #[test]
    fn suspect_slot_probes_back_off_exponentially() {
        let (c, sl) = cands(2);
        // Plain mode: no hard quarantine, only probe throttling.
        let mut s = RepsSprayer::new(2, false);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut cur = 0;
        let mut seq = 0u32;
        let mut pick = |s: &mut RepsSprayer, rng: &mut SmallRng| {
            let idx = s.pick(&ctx(1, seq, &c, &sl), &mut cur, rng);
            let echo = if idx == 0 {
                SprayEcho::Timeout // slot 0 is black-holed
            } else {
                SprayEcho::Ack
            };
            s.on_feedback(1, (0, 1), seq, echo);
            seq += 1;
            idx
        };
        for _ in 0..64 {
            pick(&mut s, &mut rng);
        }
        // Once suspicion has built up, the dead slot's share collapses
        // far below its 50% rotation parity.
        let bad_share = (0..200).filter(|_| pick(&mut s, &mut rng) == 0).count();
        assert!(
            bad_share < 20,
            "self-purge failed: {bad_share}/200 picks still hit the dead slot"
        );
        assert!(!s.quarantined(0), "plain mode never hard-quarantines");
    }

    #[test]
    fn ack_picks_rotate_and_skip_suspect_slots() {
        let (c, sl) = cands(4);
        let mut s = RepsSprayer::new(4, false);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut cur = 0;
        let ack_ctx = |seq: u32| SprayCtx {
            flow: 1,
            src: 0,
            dst: 1,
            seq,
            data: false,
            cands: &c,
            loads: &[],
            slots: &sl,
        };
        let mut counts = [0u32; 4];
        for seq in 0..8u32 {
            counts[s.pick(&ack_ctx(seq), &mut cur, &mut rng)] += 1;
        }
        assert_eq!(counts, [2, 2, 2, 2], "reverse path must rotate too");
        assert_eq!(s.inflight_len(), 0, "ACK picks must not enter the pool");
        s.suspicion[2] = QUARANTINE_AFTER;
        for seq in 8..32u32 {
            assert_ne!(
                s.pick(&ack_ctx(seq), &mut cur, &mut rng),
                2,
                "ACKs must avoid suspect slots"
            );
        }
    }

    #[test]
    fn cache_and_inflight_stay_bounded() {
        let (c, sl) = cands(4);
        let mut s = RepsSprayer::new(4, false);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut cur = 0;
        for seq in 0..(BUCKET_CAP as u32 * 8) {
            s.pick(&ctx(1, seq, &c, &sl), &mut cur, &mut rng);
            s.on_feedback(1, (0, 0), seq, SprayEcho::Ack);
            // Immediately re-pick so the pool refills.
            s.pick(&ctx(2, seq, &c, &sl), &mut cur, &mut rng);
        }
        assert!(s.cache_len() <= 4 * BUCKET_CAP);
        assert!(s.buckets.iter().all(|b| b.len() <= BUCKET_CAP));
        assert!(s.inflight_len() <= INFLIGHT_CAP);
    }

    #[test]
    fn memo_residual_refuses() {
        let s = RepsSprayer::new(4, false);
        assert_eq!(s.memo_residual(), Err("reps-entropy-cache"));
    }
}
