//! Pluggable per-packet spray engine (APS policies and beyond).
//!
//! In an APS fabric the leaf switch picks an uplink *per packet* among all
//! uplinks that can reach the destination leaf (paper §2). Historically
//! this module was a closed enum of stateless policies; it is now a
//! pluggable subsystem: every switch that sprays carries a boxed
//! [`Sprayer`] instance built by [`make_sprayer`], and the simulator's
//! uplink choice is `sprayer.pick(ctx, cursor, rng)` with an explicit
//! per-packet feedback channel ([`Sprayer::on_feedback`]) threading
//! ACK/ECN/timeout echoes from the transport back to the sprayer that
//! placed the packet.
//!
//! Classic policies (the paper's repertoire, byte-identical to the
//! pre-trait implementation via [`ClassicSprayer`]):
//!
//! * [`SprayPolicy::Random`] — uniform random port (Dixit et al.).
//! * [`SprayPolicy::RoundRobin`] — cyclic, perfectly smooth.
//! * [`SprayPolicy::Adaptive`] — utilization-aware least-loaded (default).
//! * [`SprayPolicy::LeastLoaded`] — queue-depth-only, rotating tie-break.
//! * [`SprayPolicy::LeastLoadedRandomTie`] — queue-depth-only, random ties.
//!
//! Literature backends (the mitigation-zoo extension):
//!
//! * [`SprayPolicy::Ecmp`] — static per-flow hash ([`ecmp`]): the
//!   no-spraying baseline every APS design measures against.
//! * [`SprayPolicy::Prime`] — multi-part pseudo-random entropy
//!   ([`prime`]): a deterministic per-flow base entropy combined with a
//!   per-packet part, recomputed when the flow sees a congestion signal.
//! * [`SprayPolicy::Reps`] — recycled entropy spraying ([`reps`]): cache
//!   the entropy of ACKed packets, re-use it, evict on ECN or timeout.
//! * [`SprayPolicy::RepsFailover`] — REPS plus per-uplink suspicion
//!   scores that quarantine a path after repeated timeouts, so entropies
//!   crossing a faulty cable stop being recycled — a mitigation in its
//!   own right.
//!
//! The policy strongly affects FlowPulse's signal-to-noise ratio: adaptive
//! spraying yields near-deterministic per-port volumes, while random or
//! hash-based spraying adds noise that only large collectives average out —
//! exactly the Fig. 5(c) trade-off.

use crate::ids::LinkId;
use crate::packet::FlowId;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

pub mod ecmp;
pub mod prime;
pub mod reps;

pub use ecmp::EcmpSprayer;
pub use prime::PrimeSprayer;
pub use reps::RepsSprayer;

/// Which uplink-selection policy spraying switches use.
#[derive(Copy, Clone, PartialEq, Eq, Serialize, Deserialize, Debug, Default)]
pub enum SprayPolicy {
    /// Uniform random choice among valid uplinks.
    Random,
    /// Cyclic choice (per-leaf cursor over valid uplinks).
    RoundRobin,
    /// Utilization-aware adaptive routing (the default, modelling
    /// Spectrum-X-class "least congested port" selection): the load signal
    /// is queued bytes **plus a decaying per-uplink byte counter**, so a
    /// port that recently carried fewer bytes is preferred until it catches
    /// up. This self-correction is what makes per-port volumes nearly
    /// deterministic per iteration — tight temporal symmetry — even when
    /// ACKs and jitter perturb packet interleaving.
    #[default]
    Adaptive,
    /// Queue-depth-only adaptive (DRILL-style): least queued bytes,
    /// rotating-cursor tie-break. In an underloaded fabric queues are
    /// mostly empty, so this degenerates toward round-robin with
    /// phase noise from ACK interleaving.
    LeastLoaded,
    /// Queue-depth-only with uniform random tie-break; degenerates toward
    /// `Random` in an underloaded fabric.
    LeastLoadedRandomTie,
    /// Static flow hashing (no spraying): every packet between one host
    /// pair takes the same uplink — the 5-tuple hash of classic ECMP,
    /// which our collective workloads make a pure `(src, dst)` function.
    /// The baseline APS designs measure against; stateless and trivially
    /// deterministic.
    Ecmp,
    /// PRIME-style multi-part entropy: a deterministic per-flow base part
    /// combined with a pseudo-random per-packet part, both pure hashes of
    /// `(src, dst, seq)` plus a per-pair epoch that is bumped when the
    /// flow sees a congestion signal (ECN echo or timeout) —
    /// re-randomizing the pair's path set away from the congested region.
    Prime,
    /// REPS-style recycled entropy: entropies whose packets were ACKed
    /// clean are cached per leaf and re-used (they proved out a good
    /// path); ECN-marked or timed-out entropies are evicted.
    Reps,
    /// REPS with failover: additionally tracks per-uplink-slot suspicion
    /// (timeouts score, ACKs clear) and quarantines repeatedly-suspect
    /// slots, refusing to recycle — or freshly draw — entropies that cross
    /// them.
    RepsFailover,
}

impl SprayPolicy {
    /// True for the original closed-enum policies whose decisions flow
    /// through [`choose`] (and whose RNG/cursor usage is pinned by the
    /// byte-identity contract).
    pub fn is_classic(self) -> bool {
        matches!(
            self,
            SprayPolicy::Random
                | SprayPolicy::RoundRobin
                | SprayPolicy::Adaptive
                | SprayPolicy::LeastLoaded
                | SprayPolicy::LeastLoadedRandomTie
        )
    }

    /// True when the backend consumes transport echoes
    /// ([`Sprayer::on_feedback`]). The simulator only pays for feedback
    /// plumbing (CE marking, ACK echo collection) when this is set, so
    /// classic policies keep their exact pre-feedback byte behaviour.
    pub fn wants_feedback(self) -> bool {
        matches!(
            self,
            SprayPolicy::Prime | SprayPolicy::Reps | SprayPolicy::RepsFailover
        )
    }

    /// Parse a policy name as used by the `FP_SPRAY` environment knob.
    pub fn parse(name: &str) -> Option<SprayPolicy> {
        match name.to_ascii_lowercase().as_str() {
            "random" => Some(SprayPolicy::Random),
            "rr" | "round_robin" | "roundrobin" => Some(SprayPolicy::RoundRobin),
            "adaptive" => Some(SprayPolicy::Adaptive),
            "least_loaded" | "leastloaded" => Some(SprayPolicy::LeastLoaded),
            "least_loaded_random_tie" | "leastloadedrandomtie" => {
                Some(SprayPolicy::LeastLoadedRandomTie)
            }
            "ecmp" => Some(SprayPolicy::Ecmp),
            "prime" => Some(SprayPolicy::Prime),
            "reps" => Some(SprayPolicy::Reps),
            "reps_failover" | "repsfailover" => Some(SprayPolicy::RepsFailover),
            _ => None,
        }
    }

    /// Read the `FP_SPRAY` environment knob; `None` when unset or
    /// unparsable (callers fall back to [`SprayPolicy::Adaptive`]).
    pub fn from_env() -> Option<SprayPolicy> {
        let raw = std::env::var("FP_SPRAY").ok()?;
        match SprayPolicy::parse(&raw) {
            some @ Some(_) => some,
            None => {
                eprintln!("FP_SPRAY: unknown policy {raw:?}; using the default");
                None
            }
        }
    }
}

/// Transport echo delivered to the sprayer that placed a packet
/// ([`Sprayer::on_feedback`]). Echoes arrive at the *source* leaf — the
/// switch that made the spray decision — when the sender learns the
/// packet's fate.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SprayEcho {
    /// The packet was acknowledged without a congestion mark: its path
    /// proved out clean.
    Ack,
    /// The packet was acknowledged but CE-marked (it crossed a congested
    /// queue).
    Ecn,
    /// The packet's retransmission timer fired (lost, or stuck behind a
    /// fault).
    Timeout,
}

/// Per-packet context for one spray decision. Candidates are the
/// routing-valid uplinks for the packet's destination; `loads` carries the
/// classic policies' load signal (queued bytes, plus the decayed byte
/// deficit under [`SprayPolicy::Adaptive`]) and is empty for backends that
/// do not consume it; `slots` gives each candidate's stable uplink slot
/// (virtual-spine index on leaves, core slot on 3-level aggs) and is filled
/// only for feedback-driven backends.
#[derive(Debug)]
pub struct SprayCtx<'a> {
    /// Flow the packet belongs to (trial-global id).
    pub flow: FlowId,
    /// Source host of the packet. Together with `dst` this is the
    /// iteration-stable flow identity: collective workloads repeat the
    /// same host pairs every iteration while trial-global flow ids only
    /// grow, so hash backends key on the pair (the 5-tuple stand-in) to
    /// keep per-port volumes temporally symmetric.
    pub src: u32,
    /// Destination host of the packet.
    pub dst: u32,
    /// Segment index for data packets; 0 for ACKs.
    pub seq: u32,
    /// True for data packets (the only ones transport echoes come back
    /// for — ACK packets are not themselves acknowledged).
    pub data: bool,
    /// Candidate uplinks (non-empty; the pick indexes into this).
    pub cands: &'a [LinkId],
    /// Load signal per candidate (classic policies only, else empty).
    pub loads: &'a [u64],
    /// Stable uplink slot per candidate (feedback backends only, else
    /// empty).
    pub slots: &'a [u32],
}

/// A pluggable uplink-selection engine with per-switch state.
///
/// Determinism contract: `pick` may consult only its own state, the
/// context, the shared rotation `cursor` and the purpose-split spray RNG —
/// never ambient randomness or map iteration order — so a trial replays
/// byte-identically at any `FP_THREADS`/`FP_SCHED` setting. Backends whose
/// state is fed by transport echoes ([`Sprayer::on_feedback`]) are still
/// deterministic in a single-simulator run but refuse the memo and shard
/// fast paths (see [`Sprayer::memo_residual`] and the harness eligibility
/// gates).
pub trait Sprayer: std::fmt::Debug + Send {
    /// Choose a candidate index for the packet described by `ctx`.
    /// `cursor` is the switch's rotation state (shared with the classic
    /// policies); `rng` is the purpose-split spray stream.
    fn pick(&mut self, ctx: &SprayCtx<'_>, cursor: &mut u64, rng: &mut SmallRng) -> usize;

    /// Deliver a transport echo for a previously-picked data packet.
    /// `pair` is the packet's `(src, dst)` host pair — the same stable
    /// identity [`SprayCtx`] carried at pick time. Default: ignore
    /// (stateless backends).
    fn on_feedback(&mut self, _flow: FlowId, _pair: (u32, u32), _seq: u32, _echo: SprayEcho) {}

    /// Canonical residual state for the temporal-symmetry memo
    /// fingerprint: `Ok(token)` when the backend's state is captured by
    /// `token` (0 = stateless/empty), `Err(reason)` when it holds
    /// feedback-fed state no fingerprint can soundly cover.
    fn memo_residual(&self) -> Result<u64, &'static str> {
        Ok(0)
    }
}

/// The classic closed-enum policies behind the [`Sprayer`] trait.
/// Delegates to [`choose`], so RNG draws, cursor updates and therefore
/// output bytes are identical to the pre-trait implementation.
#[derive(Copy, Clone, Debug)]
pub struct ClassicSprayer {
    policy: SprayPolicy,
}

impl ClassicSprayer {
    /// Wrap a classic policy (callers must pass one; see
    /// [`SprayPolicy::is_classic`]).
    pub fn new(policy: SprayPolicy) -> Self {
        debug_assert!(policy.is_classic(), "not a classic policy: {policy:?}");
        ClassicSprayer { policy }
    }
}

impl Sprayer for ClassicSprayer {
    fn pick(&mut self, ctx: &SprayCtx<'_>, cursor: &mut u64, rng: &mut SmallRng) -> usize {
        choose(self.policy, ctx.loads, cursor, rng)
    }
}

/// Build the per-switch sprayer instance for `policy`. `n_slots` is the
/// switch's uplink-slot count (virtual spines on a leaf, core slots on a
/// 3-level agg); feedback-driven backends size their per-slot state from
/// it.
pub fn make_sprayer(policy: SprayPolicy, n_slots: usize) -> Box<dyn Sprayer> {
    match policy {
        p if p.is_classic() => Box::new(ClassicSprayer::new(p)),
        SprayPolicy::Ecmp => Box::new(EcmpSprayer::new()),
        SprayPolicy::Prime => Box::new(PrimeSprayer::new()),
        SprayPolicy::Reps => Box::new(RepsSprayer::new(n_slots, false)),
        SprayPolicy::RepsFailover => Box::new(RepsSprayer::new(n_slots, true)),
        _ => unreachable!("policy {policy:?} not mapped to a backend"),
    }
}

/// Pick an index into `loads` (queued bytes per candidate) according to the
/// policy. `cursor` is the per-switch rotation state. `loads` must be
/// non-empty. Classic policies only — the pluggable backends implement
/// [`Sprayer`] directly.
pub fn choose(policy: SprayPolicy, loads: &[u64], cursor: &mut u64, rng: &mut SmallRng) -> usize {
    debug_assert!(!loads.is_empty(), "spray over zero candidates");
    let n = loads.len();
    match policy {
        SprayPolicy::Random => rng.gen_range(0..n),
        SprayPolicy::RoundRobin => {
            let i = (*cursor as usize) % n;
            *cursor = cursor.wrapping_add(1);
            i
        }
        SprayPolicy::Adaptive | SprayPolicy::LeastLoaded => {
            // Scan starting at the cursor so equal-load ports are taken in
            // rotation; advance the cursor past the chosen port.
            let start = (*cursor as usize) % n;
            let mut best = start;
            let mut best_load = loads[start];
            for k in 1..n {
                let i = (start + k) % n;
                if loads[i] < best_load {
                    best = i;
                    best_load = loads[i];
                }
            }
            *cursor = (best as u64) + 1;
            best
        }
        SprayPolicy::LeastLoadedRandomTie => {
            // Single pass: track the minimum and reservoir-sample among ties
            // so the tie-break is unbiased without a second pass/allocation.
            let mut best = 0usize;
            let mut best_load = loads[0];
            let mut ties = 1u32;
            for (i, &l) in loads.iter().enumerate().skip(1) {
                if l < best_load {
                    best = i;
                    best_load = l;
                    ties = 1;
                } else if l == best_load {
                    ties += 1;
                    if rng.gen_range(0..ties) == 0 {
                        best = i;
                    }
                }
            }
            best
        }
        _ => unreachable!("choose() is classic-only; {policy:?} has its own backend"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn round_robin_cycles() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut cursor = 0;
        let loads = [0u64; 4];
        let picks: Vec<usize> = (0..8)
            .map(|_| choose(SprayPolicy::RoundRobin, &loads, &mut cursor, &mut rng))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn least_loaded_picks_minimum() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut cursor = 0;
        let loads = [50, 10, 30, 99];
        for _ in 0..16 {
            assert_eq!(
                choose(SprayPolicy::LeastLoaded, &loads, &mut cursor, &mut rng),
                1
            );
        }
    }

    #[test]
    fn least_loaded_rotates_on_ties() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut cursor = 0;
        let loads = [0u64; 4];
        let picks: Vec<usize> = (0..8)
            .map(|_| choose(SprayPolicy::LeastLoaded, &loads, &mut cursor, &mut rng))
            .collect();
        // Rotating tie-break = round-robin when all loads are equal.
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn least_loaded_is_deterministic() {
        let run = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut cursor = 0;
            let loads = [5u64, 5, 0, 5];
            (0..16)
                .map(|_| choose(SprayPolicy::LeastLoaded, &loads, &mut cursor, &mut rng))
                .collect::<Vec<_>>()
        };
        // Independent of the RNG seed entirely.
        assert_eq!(run(1), run(999));
    }

    #[test]
    fn random_tie_break_is_unbiased() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut cursor = 0;
        let loads = [7u64, 7, 7];
        let mut hist = [0u32; 3];
        for _ in 0..30_000 {
            hist[choose(
                SprayPolicy::LeastLoadedRandomTie,
                &loads,
                &mut cursor,
                &mut rng,
            )] += 1;
        }
        for &h in &hist {
            assert!((8_000..12_000).contains(&h), "hist={hist:?}");
        }
    }

    #[test]
    fn random_covers_all_ports() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut cursor = 0;
        let loads = [0u64; 8];
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[choose(SprayPolicy::Random, &loads, &mut cursor, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_candidate_is_always_zero() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut cursor = 5;
        for p in [
            SprayPolicy::Random,
            SprayPolicy::RoundRobin,
            SprayPolicy::LeastLoaded,
            SprayPolicy::LeastLoadedRandomTie,
        ] {
            assert_eq!(choose(p, &[42], &mut cursor, &mut rng), 0);
        }
    }

    #[test]
    fn classic_sprayer_matches_choose_exactly() {
        // The trait wrapper must replay the exact pick sequence (and RNG
        // consumption) of the bare function — the byte-identity hinge of
        // the refactor.
        for policy in [
            SprayPolicy::Random,
            SprayPolicy::RoundRobin,
            SprayPolicy::Adaptive,
            SprayPolicy::LeastLoaded,
            SprayPolicy::LeastLoadedRandomTie,
        ] {
            let loads_seq: Vec<Vec<u64>> = (0..32u64)
                .map(|i| (0..4).map(|j| (i * 7 + j * 13) % 5).collect())
                .collect();
            let cands = [LinkId(0), LinkId(1), LinkId(2), LinkId(3)];
            let mut rng_a = SmallRng::seed_from_u64(11);
            let mut rng_b = SmallRng::seed_from_u64(11);
            let mut cur_a = 0u64;
            let mut cur_b = 0u64;
            let mut s = ClassicSprayer::new(policy);
            for loads in &loads_seq {
                let direct = choose(policy, loads, &mut cur_a, &mut rng_a);
                let ctx = SprayCtx {
                    flow: 1,
                    src: 0,
                    dst: 1,
                    seq: 0,
                    data: true,
                    cands: &cands,
                    loads,
                    slots: &[],
                };
                let via_trait = s.pick(&ctx, &mut cur_b, &mut rng_b);
                assert_eq!(direct, via_trait, "{policy:?} diverged");
            }
            assert_eq!(cur_a, cur_b);
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "RNG desynced");
        }
    }

    #[test]
    fn policy_parse_round_trips_env_names() {
        for (name, policy) in [
            ("ecmp", SprayPolicy::Ecmp),
            ("prime", SprayPolicy::Prime),
            ("reps", SprayPolicy::Reps),
            ("reps_failover", SprayPolicy::RepsFailover),
            ("adaptive", SprayPolicy::Adaptive),
            ("least_loaded", SprayPolicy::LeastLoaded),
            ("rr", SprayPolicy::RoundRobin),
            ("random", SprayPolicy::Random),
        ] {
            assert_eq!(SprayPolicy::parse(name), Some(policy));
        }
        assert_eq!(SprayPolicy::parse("ECMP"), Some(SprayPolicy::Ecmp));
        assert_eq!(SprayPolicy::parse("bogus"), None);
    }

    #[test]
    fn feedback_flag_matches_backend_statefulness() {
        for p in [
            SprayPolicy::Prime,
            SprayPolicy::Reps,
            SprayPolicy::RepsFailover,
        ] {
            assert!(p.wants_feedback());
            assert!(!p.is_classic());
        }
        assert!(!SprayPolicy::Ecmp.wants_feedback());
        for p in [
            SprayPolicy::Adaptive,
            SprayPolicy::LeastLoaded,
            SprayPolicy::RoundRobin,
            SprayPolicy::Random,
            SprayPolicy::LeastLoadedRandomTie,
        ] {
            assert!(p.is_classic());
            assert!(!p.wants_feedback());
        }
    }

    #[test]
    fn factory_builds_every_backend() {
        for p in [
            SprayPolicy::Adaptive,
            SprayPolicy::Ecmp,
            SprayPolicy::Prime,
            SprayPolicy::Reps,
            SprayPolicy::RepsFailover,
        ] {
            let s = make_sprayer(p, 4);
            // Stateless/empty backends report a clean memo residual; REPS
            // refuses outright.
            match p {
                SprayPolicy::Reps | SprayPolicy::RepsFailover => {
                    assert!(s.memo_residual().is_err())
                }
                _ => assert_eq!(s.memo_residual(), Ok(0)),
            }
        }
    }
}
