//! ECMP: static flow hashing (the no-spray baseline).
//!
//! Every packet between one `(src, dst)` host pair hashes to the same
//! candidate index, so a pair pins one path — the classic equal-cost
//! multi-path behaviour APS designs measure against. Real ECMP hashes
//! the 5-tuple; our collective workloads run one transfer at a time
//! between any two hosts, so the pair *is* the 5-tuple, and — unlike the
//! trial-global flow id, which only grows — it recurs identically every
//! iteration. That keeps per-port volumes temporally symmetric on a
//! healthy fabric, which is what lets FlowPulse's detector run over an
//! ECMP fabric at all.
//!
//! Stateless and purely functional in `(src, dst, n_candidates)`; it
//! never touches the RNG or the rotation cursor, so it is trivially
//! byte-identical across thread counts, scheduler backends and shard
//! partitions, and its memo residual is always clean.

use super::{SprayCtx, Sprayer};
use crate::rng::splitmix64;
use rand::rngs::SmallRng;

/// Pair-hash salt (arbitrary constant; fixed so picks are reproducible).
const ECMP_SALT: u64 = 0x4543_4d50_0000_0001;

/// Static flow-hash backend. See the module docs.
#[derive(Copy, Clone, Debug, Default)]
pub struct EcmpSprayer;

impl EcmpSprayer {
    /// Build the (stateless) backend.
    pub fn new() -> Self {
        EcmpSprayer
    }
}

impl Sprayer for EcmpSprayer {
    fn pick(&mut self, ctx: &SprayCtx<'_>, _cursor: &mut u64, _rng: &mut SmallRng) -> usize {
        let pair = (ctx.src as u64) << 32 | ctx.dst as u64;
        (splitmix64(pair ^ ECMP_SALT) % ctx.cands.len() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LinkId;
    use rand::SeedableRng;

    fn ctx(src: u32, dst: u32, seq: u32, cands: &[LinkId]) -> SprayCtx<'_> {
        SprayCtx {
            flow: 1,
            src,
            dst,
            seq,
            data: true,
            cands,
            loads: &[],
            slots: &[],
        }
    }

    #[test]
    fn same_pair_always_same_port() {
        let cands: Vec<LinkId> = (0..8).map(LinkId).collect();
        let mut s = EcmpSprayer::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut cur = 0;
        let first = s.pick(&ctx(7, 3, 0, &cands), &mut cur, &mut rng);
        for seq in 1..100 {
            assert_eq!(s.pick(&ctx(7, 3, seq, &cands), &mut cur, &mut rng), first);
        }
        assert_eq!(cur, 0, "ECMP must not consume the rotation cursor");
    }

    #[test]
    fn pick_ignores_the_growing_flow_id() {
        // Iteration-stability hinge: the same host pair maps identically
        // no matter which trial-global flow carries the transfer.
        let cands: Vec<LinkId> = (0..8).map(LinkId).collect();
        let mut s = EcmpSprayer::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut cur = 0;
        let mut c = ctx(2, 5, 0, &cands);
        let first = s.pick(&c, &mut cur, &mut rng);
        for flow in 1..64 {
            c.flow = flow * 1000;
            assert_eq!(s.pick(&c, &mut cur, &mut rng), first);
        }
    }

    #[test]
    fn different_pairs_spread_over_ports() {
        let cands: Vec<LinkId> = (0..8).map(LinkId).collect();
        let mut s = EcmpSprayer::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut cur = 0;
        let mut seen = [false; 8];
        for src in 0..16 {
            for dst in 0..16 {
                seen[s.pick(&ctx(src, dst, 0, &cands), &mut cur, &mut rng)] = true;
            }
        }
        assert!(seen.iter().all(|&x| x), "256 pairs must cover 8 ports");
    }

    #[test]
    fn pick_is_valid_for_any_candidate_count() {
        let mut s = EcmpSprayer::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut cur = 0;
        for n in 1..=16usize {
            let cands: Vec<LinkId> = (0..n as u32).map(LinkId).collect();
            for src in 0..64 {
                assert!(s.pick(&ctx(src, src + 1, 0, &cands), &mut cur, &mut rng) < n);
            }
        }
    }
}
