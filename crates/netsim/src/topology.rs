//! Fat-tree (2-level Clos) topology construction.
//!
//! The paper's fabric (§2, §6): a non-blocking two-level fat tree. Leaves
//! connect down to hosts and up to every spine; spraying happens on the way
//! up, downstream paths are deterministic. Parallel leaf–spine links are
//! supported and treated as independent *virtual spines* (paper §7 "Parallel
//! Links"): a packet that goes up on plane `p` comes down on plane `p`, so
//! each plane behaves as its own spine for both load-balancing and
//! monitoring purposes.
//!
//! Port numbering (used by PFC accounting and FlowPulse counters):
//! * host: single port `0`;
//! * leaf `l`: ports `0..H` are hosts, ports `H..H+V` are virtual spines
//!   (`V = spines × parallel`);
//! * spine `s` plane `p`: port per leaf = `leaf`.

use crate::ids::{HostId, LinkId, NodeId, SwitchId};
use crate::time::SimDuration;
use crate::units::Bandwidth;
use serde::{Deserialize, Serialize};

/// Physical parameters of one class of link.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct LinkSpec {
    /// Line rate.
    pub bandwidth: Bandwidth,
    /// One-way propagation + fixed pipeline latency.
    pub latency: SimDuration,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            bandwidth: Bandwidth::from_gbps(400),
            latency: SimDuration::from_ns(150),
        }
    }
}

/// Parameters of a 2-level fat tree.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct FatTreeSpec {
    /// Number of leaf switches.
    pub leaves: u32,
    /// Number of physical spine switches.
    pub spines: u32,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: u32,
    /// Parallel links between each leaf–spine pair (≥ 1).
    pub parallel_links: u32,
    /// Leaf–spine link parameters.
    pub fabric_link: LinkSpec,
    /// Host–leaf link parameters.
    pub host_link: LinkSpec,
}

impl Default for FatTreeSpec {
    /// The paper's default evaluation fabric: 32 leaves × 16 spines, one
    /// host per leaf (§6 "each leaf is connected to a single end-host").
    fn default() -> Self {
        FatTreeSpec {
            leaves: 32,
            spines: 16,
            hosts_per_leaf: 1,
            parallel_links: 1,
            fabric_link: LinkSpec::default(),
            host_link: LinkSpec::default(),
        }
    }
}

impl FatTreeSpec {
    /// A full non-blocking fat tree built from switches of the given radix:
    /// `radix` leaves, `radix/2` spines (paper §6 "varying switch radix").
    pub fn from_radix(radix: u32) -> Self {
        assert!(
            radix >= 2 && radix.is_multiple_of(2),
            "radix must be even, ≥ 2"
        );
        FatTreeSpec {
            leaves: radix,
            spines: radix / 2,
            ..Default::default()
        }
    }

    /// Total hosts.
    pub fn n_hosts(&self) -> u32 {
        self.leaves * self.hosts_per_leaf
    }

    /// Virtual spines (= uplink count per leaf).
    pub fn n_vspines(&self) -> u32 {
        self.spines * self.parallel_links
    }

    /// True if the fabric is non-blocking for its hosts (uplink capacity per
    /// leaf ≥ host capacity per leaf, assuming equal line rates).
    pub fn is_non_blocking(&self) -> bool {
        self.n_vspines() >= self.hosts_per_leaf
    }

    /// Basic sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        if self.leaves == 0 || self.spines == 0 || self.hosts_per_leaf == 0 {
            return Err("leaves, spines and hosts_per_leaf must be positive".into());
        }
        if self.parallel_links == 0 {
            return Err("parallel_links must be ≥ 1".into());
        }
        if self.leaves > u16::MAX as u32 {
            return Err("too many leaves (u16 leaf indices)".into());
        }
        Ok(())
    }
}

/// Role of a directed link within the topology.
#[derive(Copy, Clone, PartialEq, Eq, Serialize, Deserialize, Debug)]
pub enum LinkClass {
    /// Host → leaf (the host NIC egress).
    HostUp {
        /// Source host.
        host: u32,
        /// Destination leaf.
        leaf: u32,
    },
    /// Leaf → host.
    HostDown {
        /// Source leaf.
        leaf: u32,
        /// Destination host.
        host: u32,
    },
    /// Leaf → spine plane (upstream, sprayed). In a 3-level Clos the
    /// "spine" is the pod-local aggregation switch.
    LeafUp {
        /// Source leaf (global index).
        leaf: u32,
        /// Destination virtual spine (`spine * parallel + plane`; in a
        /// 3-level Clos the within-pod aggregation index).
        vspine: u32,
    },
    /// Spine plane → leaf (downstream; these are the ports FlowPulse
    /// monitors at the receiving leaf).
    SpineDown {
        /// Source virtual spine (within-pod index for 3-level).
        vspine: u32,
        /// Destination leaf (global index).
        leaf: u32,
    },
    /// Aggregation → core (3-level only; upstream, sprayed by the agg
    /// over its core group).
    AggUp {
        /// Source aggregation switch (global index).
        agg: u32,
        /// Core index *within the agg's group* (`0..cores_per_group`).
        core_k: u32,
    },
    /// Core → aggregation (3-level only; downstream, deterministic; these
    /// are the ports FlowPulse monitors at the receiving aggregation
    /// switch — paper §7 "deploying FlowPulse at both leaf and spine
    /// levels").
    CoreDown {
        /// Source core (global index).
        core: u32,
        /// Destination aggregation switch (global index).
        agg: u32,
    },
}

/// A directed link.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct LinkDef {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Port index at `src`.
    pub src_port: u16,
    /// Port index at `dst`.
    pub dst_port: u16,
    /// Line rate.
    pub bandwidth: Bandwidth,
    /// One-way latency.
    pub latency: SimDuration,
    /// Topological role.
    pub class: LinkClass,
}

/// Which role a switch plays.
#[derive(Copy, Clone, PartialEq, Eq, Serialize, Deserialize, Debug)]
pub enum SwitchKind {
    /// Leaf `idx` (global).
    Leaf(u32),
    /// Physical spine `idx` (2-level), or aggregation switch `idx`
    /// (3-level, global: `pod * aggs_per_pod + within_pod_idx`).
    Spine(u32),
    /// Core switch `idx` (3-level only, global: `group * cores_per_group
    /// + within_group_idx`).
    Core(u32),
}

/// Parameters of a 3-level folded Clos (fat tree with pods — paper §7
/// "Network Topology": FlowPulse deployed at both leaf and spine levels).
///
/// Structure: `pods` pods, each with `leaves_per_pod` leaves fully meshed
/// to `aggs_per_pod` aggregation switches. Aggregation switch index `a` of
/// every pod connects to core group `a`, which holds `cores_per_group`
/// cores; each core in group `a` connects to agg `a` of every pod. Upward
/// paths spray twice (leaf→agg, agg→core); downward paths are
/// deterministic (core→agg→leaf), preserving the property FlowPulse's
/// monitoring relies on.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct Clos3Spec {
    /// Number of pods.
    pub pods: u32,
    /// Leaves per pod.
    pub leaves_per_pod: u32,
    /// Aggregation switches per pod (= leaf uplinks = monitored leaf
    /// ports).
    pub aggs_per_pod: u32,
    /// Cores per aggregation group (= agg uplinks = monitored agg ports).
    pub cores_per_group: u32,
    /// Hosts per leaf.
    pub hosts_per_leaf: u32,
    /// Fabric link parameters (leaf–agg and agg–core).
    pub fabric_link: LinkSpec,
    /// Host link parameters.
    pub host_link: LinkSpec,
}

impl Default for Clos3Spec {
    fn default() -> Self {
        Clos3Spec {
            pods: 4,
            leaves_per_pod: 4,
            aggs_per_pod: 4,
            cores_per_group: 2,
            hosts_per_leaf: 1,
            fabric_link: LinkSpec::default(),
            host_link: LinkSpec::default(),
        }
    }
}

impl Clos3Spec {
    /// Basic sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        if self.pods == 0
            || self.leaves_per_pod == 0
            || self.aggs_per_pod == 0
            || self.cores_per_group == 0
            || self.hosts_per_leaf == 0
        {
            return Err("all Clos3 dimensions must be positive".into());
        }
        if self.pods * self.leaves_per_pod > u16::MAX as u32 {
            return Err("too many leaves (u16 leaf indices)".into());
        }
        Ok(())
    }

    /// Total hosts.
    pub fn n_hosts(&self) -> u32 {
        self.pods * self.leaves_per_pod * self.hosts_per_leaf
    }
}

/// A fully-built topology: dense link tables plus lookup indices.
///
/// Switch ids: leaves are `0..n_leaves`, spines/aggs follow, then (3-level
/// only) cores.
#[derive(Clone, Debug)]
pub struct Topology {
    /// The generating spec (for 3-level topologies this is a synthesized
    /// summary: `leaves` = total leaves, `spines` = aggs per pod).
    pub spec: FatTreeSpec,
    /// Number of pods (1 for a 2-level fat tree).
    pub pods: u32,
    /// Cores per aggregation group (0 for a 2-level fat tree).
    pub cores_per_group: u32,
    /// All directed links.
    pub links: Vec<LinkDef>,
    /// Reverse direction of each directed link (same physical cable).
    pub peer: Vec<LinkId>,
    /// Leaf index of each host.
    pub host_leaf: Vec<u32>,
    /// Host → its uplink (host→leaf) directed link.
    pub host_up: Vec<LinkId>,
    /// Host → the leaf→host downlink.
    pub host_down: Vec<LinkId>,
    /// `leaf_up[leaf][vspine]` = leaf→spine-plane (or pod-agg) uplink.
    pub leaf_up: Vec<Vec<LinkId>>,
    /// `spine_down[vspine][leaf]` = spine-plane (or pod-agg)→leaf downlink.
    pub spine_down: Vec<Vec<LinkId>>,
    /// 3-level only: `agg_up[global_agg][k]` = agg→core uplink.
    pub agg_up: Vec<Vec<LinkId>>,
    /// 3-level only: `core_down[global_core][pod]` = core→agg downlink.
    pub core_down: Vec<Vec<LinkId>>,
    /// Role of each switch id.
    pub switch_kind: Vec<SwitchKind>,
    /// Ports per switch id (for PFC tables).
    pub switch_ports: Vec<u32>,
}

impl Topology {
    /// Build a 2-level fat tree from `spec`. Panics on invalid specs (use
    /// [`FatTreeSpec::validate`] to pre-check untrusted input).
    pub fn fat_tree(spec: FatTreeSpec) -> Topology {
        spec.validate().expect("invalid FatTreeSpec");
        let nl = spec.leaves as usize;
        let ns = spec.spines as usize;
        let np = spec.parallel_links as usize;
        let nh = spec.hosts_per_leaf as usize;
        let nv = ns * np;

        let mut links: Vec<LinkDef> = Vec::with_capacity(2 * (nl * nh + nl * nv));
        let mut peer_pairs: Vec<(LinkId, LinkId)> = Vec::new();

        let mut host_leaf = vec![0u32; nl * nh];
        let mut host_up = vec![LinkId(0); nl * nh];
        let mut host_down = vec![LinkId(0); nl * nh];
        let mut leaf_up = vec![vec![LinkId(0); nv]; nl];
        let mut spine_down = vec![vec![LinkId(0); nl]; nv];

        let leaf_sw = |l: usize| NodeId::Switch(SwitchId(l as u32));
        let spine_sw = |s: usize| NodeId::Switch(SwitchId((nl + s) as u32));

        // Host links.
        for l in 0..nl {
            for h in 0..nh {
                let host = l * nh + h;
                host_leaf[host] = l as u32;
                let up = LinkId(links.len() as u32);
                links.push(LinkDef {
                    src: NodeId::Host(HostId(host as u32)),
                    dst: leaf_sw(l),
                    src_port: 0,
                    dst_port: h as u16,
                    bandwidth: spec.host_link.bandwidth,
                    latency: spec.host_link.latency,
                    class: LinkClass::HostUp {
                        host: host as u32,
                        leaf: l as u32,
                    },
                });
                let down = LinkId(links.len() as u32);
                links.push(LinkDef {
                    src: leaf_sw(l),
                    dst: NodeId::Host(HostId(host as u32)),
                    src_port: h as u16,
                    dst_port: 0,
                    bandwidth: spec.host_link.bandwidth,
                    latency: spec.host_link.latency,
                    class: LinkClass::HostDown {
                        leaf: l as u32,
                        host: host as u32,
                    },
                });
                host_up[host] = up;
                host_down[host] = down;
                peer_pairs.push((up, down));
            }
        }

        // Fabric links: one pair per (leaf, spine, plane).
        for l in 0..nl {
            for s in 0..ns {
                for p in 0..np {
                    let v = s * np + p;
                    let leaf_port = (nh + v) as u16;
                    // Spine port numbering: plane-local, one port per leaf.
                    let spine_port = l as u16;
                    let up = LinkId(links.len() as u32);
                    links.push(LinkDef {
                        src: leaf_sw(l),
                        dst: spine_sw(s),
                        src_port: leaf_port,
                        dst_port: spine_port,
                        bandwidth: spec.fabric_link.bandwidth,
                        latency: spec.fabric_link.latency,
                        class: LinkClass::LeafUp {
                            leaf: l as u32,
                            vspine: v as u32,
                        },
                    });
                    let down = LinkId(links.len() as u32);
                    links.push(LinkDef {
                        src: spine_sw(s),
                        dst: leaf_sw(l),
                        src_port: spine_port,
                        dst_port: leaf_port,
                        bandwidth: spec.fabric_link.bandwidth,
                        latency: spec.fabric_link.latency,
                        class: LinkClass::SpineDown {
                            vspine: v as u32,
                            leaf: l as u32,
                        },
                    });
                    leaf_up[l][v] = up;
                    spine_down[v][l] = down;
                    peer_pairs.push((up, down));
                }
            }
        }

        let mut peer = vec![LinkId(0); links.len()];
        for (a, b) in peer_pairs {
            peer[a.idx()] = b;
            peer[b.idx()] = a;
        }

        let mut switch_kind = Vec::with_capacity(nl + ns);
        let mut switch_ports = Vec::with_capacity(nl + ns);
        for l in 0..nl {
            switch_kind.push(SwitchKind::Leaf(l as u32));
            switch_ports.push((nh + nv) as u32);
        }
        for s in 0..ns {
            switch_kind.push(SwitchKind::Spine(s as u32));
            // Spine ports: per plane we numbered ports 0..nl, but a physical
            // spine owns `np` planes; give it the max port index it uses.
            // Plane-local numbering means different planes reuse port
            // numbers; PFC accounting is per directed ingress link anyway,
            // keyed by `dst_port` *within the plane's port space*, so we
            // reserve nl ports per plane: port = plane * nl + leaf.
            switch_ports.push((np * nl) as u32);
        }

        // Fix spine dst_port to be plane-global so PFC tables don't collide
        // across planes of the same physical spine.
        for link in links.iter_mut() {
            if let LinkClass::LeafUp { leaf, vspine } = link.class {
                let plane = vspine as usize % np;
                link.dst_port = (plane * nl + leaf as usize) as u16;
            }
            if let LinkClass::SpineDown { vspine, leaf } = link.class {
                let plane = vspine as usize % np;
                link.src_port = (plane * nl + leaf as usize) as u16;
            }
        }

        Topology {
            spec,
            pods: 1,
            cores_per_group: 0,
            links,
            peer,
            host_leaf,
            host_up,
            host_down,
            leaf_up,
            spine_down,
            agg_up: Vec::new(),
            core_down: Vec::new(),
            switch_kind,
            switch_ports,
        }
    }

    /// Build a 3-level folded Clos from `spec`. Panics on invalid specs.
    pub fn clos3(spec: Clos3Spec) -> Topology {
        spec.validate().expect("invalid Clos3Spec");
        let pods = spec.pods as usize;
        let lp = spec.leaves_per_pod as usize;
        let na = spec.aggs_per_pod as usize; // per pod
        let k = spec.cores_per_group as usize;
        let nh = spec.hosts_per_leaf as usize;
        let n_leaves = pods * lp;
        let n_aggs = pods * na;
        let n_cores = na * k;

        let mut links: Vec<LinkDef> = Vec::new();
        let mut peer_pairs: Vec<(LinkId, LinkId)> = Vec::new();
        let mut host_leaf = vec![0u32; n_leaves * nh];
        let mut host_up = vec![LinkId(0); n_leaves * nh];
        let mut host_down = vec![LinkId(0); n_leaves * nh];
        let mut leaf_up = vec![vec![LinkId(0); na]; n_leaves];
        let mut spine_down = vec![vec![LinkId(0); n_leaves]; na];
        let mut agg_up = vec![vec![LinkId(0); k]; n_aggs];
        let mut core_down = vec![vec![LinkId(0); pods]; n_cores];

        let leaf_sw = |l: usize| NodeId::Switch(SwitchId(l as u32));
        let agg_sw = |g: usize| NodeId::Switch(SwitchId((n_leaves + g) as u32));
        let core_sw = |c: usize| NodeId::Switch(SwitchId((n_leaves + n_aggs + c) as u32));

        // Host links (identical scheme to the 2-level builder).
        for l in 0..n_leaves {
            for h in 0..nh {
                let host = l * nh + h;
                host_leaf[host] = l as u32;
                let up = LinkId(links.len() as u32);
                links.push(LinkDef {
                    src: NodeId::Host(HostId(host as u32)),
                    dst: leaf_sw(l),
                    src_port: 0,
                    dst_port: h as u16,
                    bandwidth: spec.host_link.bandwidth,
                    latency: spec.host_link.latency,
                    class: LinkClass::HostUp {
                        host: host as u32,
                        leaf: l as u32,
                    },
                });
                let down = LinkId(links.len() as u32);
                links.push(LinkDef {
                    src: leaf_sw(l),
                    dst: NodeId::Host(HostId(host as u32)),
                    src_port: h as u16,
                    dst_port: 0,
                    bandwidth: spec.host_link.bandwidth,
                    latency: spec.host_link.latency,
                    class: LinkClass::HostDown {
                        leaf: l as u32,
                        host: host as u32,
                    },
                });
                host_up[host] = up;
                host_down[host] = down;
                peer_pairs.push((up, down));
            }
        }

        // Leaf–agg links (within pods). Agg ports: 0..lp local leaves.
        for p in 0..pods {
            for ll in 0..lp {
                let leaf = p * lp + ll;
                for a in 0..na {
                    let g = p * na + a; // global agg
                    let up = LinkId(links.len() as u32);
                    links.push(LinkDef {
                        src: leaf_sw(leaf),
                        dst: agg_sw(g),
                        src_port: (nh + a) as u16,
                        dst_port: ll as u16,
                        bandwidth: spec.fabric_link.bandwidth,
                        latency: spec.fabric_link.latency,
                        class: LinkClass::LeafUp {
                            leaf: leaf as u32,
                            vspine: a as u32,
                        },
                    });
                    let down = LinkId(links.len() as u32);
                    links.push(LinkDef {
                        src: agg_sw(g),
                        dst: leaf_sw(leaf),
                        src_port: ll as u16,
                        dst_port: (nh + a) as u16,
                        bandwidth: spec.fabric_link.bandwidth,
                        latency: spec.fabric_link.latency,
                        class: LinkClass::SpineDown {
                            vspine: a as u32,
                            leaf: leaf as u32,
                        },
                    });
                    leaf_up[leaf][a] = up;
                    spine_down[a][leaf] = down;
                    peer_pairs.push((up, down));
                }
            }
        }

        // Agg–core links. Agg ports lp..lp+k; core ports 0..pods.
        // `p`/`kk` double as port numbers and table indices, so a range loop
        // reads better than iter_mut().enumerate() here.
        #[allow(clippy::needless_range_loop)]
        for p in 0..pods {
            for a in 0..na {
                let g = p * na + a;
                for kk in 0..k {
                    let c = a * k + kk; // global core (group a)
                    let up = LinkId(links.len() as u32);
                    links.push(LinkDef {
                        src: agg_sw(g),
                        dst: core_sw(c),
                        src_port: (lp + kk) as u16,
                        dst_port: p as u16,
                        bandwidth: spec.fabric_link.bandwidth,
                        latency: spec.fabric_link.latency,
                        class: LinkClass::AggUp {
                            agg: g as u32,
                            core_k: kk as u32,
                        },
                    });
                    let down = LinkId(links.len() as u32);
                    links.push(LinkDef {
                        src: core_sw(c),
                        dst: agg_sw(g),
                        src_port: p as u16,
                        dst_port: (lp + kk) as u16,
                        bandwidth: spec.fabric_link.bandwidth,
                        latency: spec.fabric_link.latency,
                        class: LinkClass::CoreDown {
                            core: c as u32,
                            agg: g as u32,
                        },
                    });
                    agg_up[g][kk] = up;
                    core_down[c][p] = down;
                    peer_pairs.push((up, down));
                }
            }
        }

        let mut peer = vec![LinkId(0); links.len()];
        for (a, b) in peer_pairs {
            peer[a.idx()] = b;
            peer[b.idx()] = a;
        }

        let mut switch_kind = Vec::with_capacity(n_leaves + n_aggs + n_cores);
        let mut switch_ports = Vec::with_capacity(switch_kind.capacity());
        for l in 0..n_leaves {
            switch_kind.push(SwitchKind::Leaf(l as u32));
            switch_ports.push((nh + na) as u32);
        }
        for g in 0..n_aggs {
            switch_kind.push(SwitchKind::Spine(g as u32));
            switch_ports.push((lp + k) as u32);
        }
        for c in 0..n_cores {
            switch_kind.push(SwitchKind::Core(c as u32));
            switch_ports.push(pods as u32);
        }

        Topology {
            // Synthesized 2-level-compatible summary: `spines` = aggs per
            // pod so `n_vspines()` counts the monitored leaf ports.
            spec: FatTreeSpec {
                leaves: n_leaves as u32,
                spines: na as u32,
                hosts_per_leaf: nh as u32,
                parallel_links: 1,
                fabric_link: spec.fabric_link,
                host_link: spec.host_link,
            },
            pods: pods as u32,
            cores_per_group: k as u32,
            links,
            peer,
            host_leaf,
            host_up,
            host_down,
            leaf_up,
            spine_down,
            agg_up,
            core_down,
            switch_kind,
            switch_ports,
        }
    }

    /// True for 3-level Clos topologies.
    pub fn is_three_level(&self) -> bool {
        self.pods > 1 || self.cores_per_group > 0
    }

    /// Number of aggregation switches (3-level; equals spine count in
    /// 2-level terms it is 0).
    pub fn n_aggs(&self) -> usize {
        self.agg_up.len()
    }

    /// Number of core switches.
    pub fn n_cores(&self) -> usize {
        self.core_down.len()
    }

    /// Leaves per pod.
    pub fn leaves_per_pod(&self) -> u32 {
        self.spec.leaves / self.pods
    }

    /// Pod of a (global) leaf index.
    pub fn pod_of_leaf(&self, leaf: u32) -> u32 {
        leaf / self.leaves_per_pod()
    }

    /// Global aggregation index for `(pod, within-pod index)`.
    pub fn agg_global(&self, pod: u32, a: u32) -> u32 {
        pod * self.spec.spines + a
    }

    /// The agg→core uplink for global agg `g`, core slot `k`.
    pub fn agg_uplink(&self, g: u32, k: u32) -> LinkId {
        self.agg_up[g as usize][k as usize]
    }

    /// The core→agg downlink from global core `c` toward `pod`.
    pub fn core_downlink(&self, c: u32, pod: u32) -> LinkId {
        self.core_down[c as usize][pod as usize]
    }

    /// Global core index for group `a`, slot `k`.
    pub fn core_global(&self, a: u32, k: u32) -> u32 {
        a * self.cores_per_group + k
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.host_leaf.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.spec.leaves as usize
    }

    /// Number of physical spines.
    pub fn n_spines(&self) -> usize {
        self.spec.spines as usize
    }

    /// Number of virtual spines (spine planes).
    pub fn n_vspines(&self) -> usize {
        self.spec.n_vspines() as usize
    }

    /// Number of switches (leaves + spines).
    pub fn n_switches(&self) -> usize {
        self.switch_kind.len()
    }

    /// Leaf index of a host.
    pub fn leaf_of(&self, h: HostId) -> u32 {
        self.host_leaf[h.idx()]
    }

    /// Hosts attached to `leaf`.
    pub fn hosts_of_leaf(&self, leaf: u32) -> impl Iterator<Item = HostId> + '_ {
        let nh = self.spec.hosts_per_leaf;
        (leaf * nh..(leaf + 1) * nh).map(HostId)
    }

    /// The directed leaf→spine uplink for (leaf, vspine).
    pub fn uplink(&self, leaf: u32, vspine: u32) -> LinkId {
        self.leaf_up[leaf as usize][vspine as usize]
    }

    /// The directed spine→leaf downlink for (vspine, leaf).
    pub fn downlink(&self, vspine: u32, leaf: u32) -> LinkId {
        self.spine_down[vspine as usize][leaf as usize]
    }

    /// SwitchId of leaf `l`.
    pub fn leaf_switch(&self, l: u32) -> SwitchId {
        SwitchId(l)
    }

    /// SwitchId of physical spine `s`.
    pub fn spine_switch(&self, s: u32) -> SwitchId {
        SwitchId(self.spec.leaves + s)
    }

    /// Total directed links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let t = Topology::fat_tree(FatTreeSpec::default());
        assert_eq!(t.n_leaves(), 32);
        assert_eq!(t.n_spines(), 16);
        assert_eq!(t.n_hosts(), 32);
        assert_eq!(t.n_vspines(), 16);
        // 32 host pairs + 32*16 fabric pairs, two directed links each
        assert_eq!(t.n_links(), 2 * (32 + 32 * 16));
    }

    #[test]
    fn radix_constructor() {
        let s = FatTreeSpec::from_radix(64);
        assert_eq!(s.leaves, 64);
        assert_eq!(s.spines, 32);
        assert!(s.is_non_blocking());
    }

    #[test]
    fn peers_are_involutive() {
        let t = Topology::fat_tree(FatTreeSpec::default());
        for i in 0..t.n_links() {
            let p = t.peer[i];
            assert_eq!(t.peer[p.idx()].idx(), i);
            // peer reverses direction
            assert_eq!(t.links[i].src, t.links[p.idx()].dst);
            assert_eq!(t.links[i].dst, t.links[p.idx()].src);
        }
    }

    #[test]
    fn uplinks_and_downlinks_consistent() {
        let t = Topology::fat_tree(FatTreeSpec::default());
        for l in 0..t.n_leaves() as u32 {
            for v in 0..t.n_vspines() as u32 {
                let up = t.uplink(l, v);
                let down = t.downlink(v, l);
                assert_eq!(t.peer[up.idx()], down);
                match t.links[up.idx()].class {
                    LinkClass::LeafUp { leaf, vspine } => {
                        assert_eq!((leaf, vspine), (l, v));
                    }
                    c => panic!("wrong class {c:?}"),
                }
            }
        }
    }

    #[test]
    fn parallel_links_create_virtual_spines() {
        let spec = FatTreeSpec {
            leaves: 4,
            spines: 2,
            parallel_links: 2,
            ..Default::default()
        };
        let t = Topology::fat_tree(spec);
        assert_eq!(t.n_vspines(), 4);
        // Each leaf has 4 uplinks: 2 planes to each of 2 spines.
        assert_eq!(t.leaf_up[0].len(), 4);
        // Planes of the same spine land on the same physical SwitchId.
        let up0 = t.links[t.uplink(0, 0).idx()];
        let up1 = t.links[t.uplink(0, 1).idx()];
        assert_eq!(up0.dst, up1.dst);
        // ...but on distinct spine ports.
        assert_ne!(up0.dst_port, up1.dst_port);
    }

    #[test]
    fn leaf_port_numbering() {
        let spec = FatTreeSpec {
            leaves: 2,
            spines: 2,
            hosts_per_leaf: 3,
            ..Default::default()
        };
        let t = Topology::fat_tree(spec);
        // Host ports 0..3, vspine ports 3..5 at each leaf.
        let down = t.links[t.downlink(1, 0).idx()];
        assert_eq!(down.dst_port, 3 + 1);
        let hup = t.links[t.host_up[1].idx()];
        assert_eq!(hup.dst_port, 1);
    }

    #[test]
    fn validate_rejects_nonsense() {
        assert!(FatTreeSpec {
            leaves: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(FatTreeSpec {
            parallel_links: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn hosts_of_leaf_enumerates_correctly() {
        let spec = FatTreeSpec {
            leaves: 3,
            spines: 2,
            hosts_per_leaf: 2,
            ..Default::default()
        };
        let t = Topology::fat_tree(spec);
        let hs: Vec<u32> = t.hosts_of_leaf(1).map(|h| h.0).collect();
        assert_eq!(hs, vec![2, 3]);
        assert_eq!(t.leaf_of(HostId(3)), 1);
    }
}
