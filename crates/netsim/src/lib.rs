//! # fp-netsim — packet-level fat-tree simulator for APS fabrics
//!
//! This crate is the network substrate for the FlowPulse reproduction
//! (HotNets '25, "FlowPulse: Catching Network Failures in ML Clusters").
//! The paper evaluates entirely in ns-3; this is the equivalent simulator
//! built from scratch in Rust, modelling the fabric the paper describes:
//!
//! * **Topology** — non-blocking 2-level fat tree ([`topology`]), default
//!   32 leaves × 16 spines with one host per leaf, parallel leaf–spine
//!   links as independent "virtual spines".
//! * **Load balancing** — adaptive per-packet spraying ([`spray`]): every
//!   upstream packet independently picks among all uplinks that can reach
//!   the destination leaf; downstream paths are deterministic.
//! * **Link layer** — lossless Ethernet with Priority Flow Control
//!   (XOFF/XON backpressure per ingress port and priority) and strict
//!   priority scheduling, so a measured collective can be isolated from
//!   background traffic (paper §5.1).
//! * **Transport** — RoCE-like, reorder-tolerant, no congestion control,
//!   per-segment retransmission timeout of 5 µs ([`transport`]).
//! * **Faults** — known (admin-down, removed from routing) versus silent
//!   (random drop / black-hole, invisible to routing) ([`fault`]), with a
//!   time-based injection schedule.
//! * **Counters** — per-leaf, per-spine-ingress-port byte counts keyed by
//!   collective tag, with per-source-leaf breakdown ([`counters`]) — the
//!   in-switch state FlowPulse reads.
//!
//! The simulator is a deterministic discrete-event engine: integer
//! nanosecond timestamps, FIFO tie-breaking, and purpose-split RNG streams
//! derived from one seed, so every run is exactly reproducible.
//!
//! ## Quick example
//!
//! ```
//! use fp_netsim::prelude::*;
//!
//! let topo = Topology::fat_tree(FatTreeSpec { leaves: 4, spines: 2, ..Default::default() });
//! let mut sim = Simulator::new(topo, SimConfig::default(), 42);
//! sim.post_message(HostId(0), HostId(3), 1_000_000, None, Priority::MEASURED);
//! let summary = sim.run();
//! assert!(sim.all_flows_complete());
//! assert_eq!(summary.reason, fp_netsim::sim::RunReason::Drained);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod app;
pub mod bitset;
pub mod config;
pub mod control;
pub mod counters;
pub mod engine;
pub mod fault;
pub mod ids;
pub mod packet;
pub mod pipeline;
pub mod rng;
pub mod shard;
pub mod sim;
pub mod spray;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;
pub mod transport;
pub mod units;
pub mod wheel;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::app::{Application, MultiApp, NullApp};
    pub use crate::config::{PfcConfig, SimConfig};
    pub use crate::control::{AppliedControl, ControlAction, ControlEvent, ControlVerb};
    pub use crate::counters::{CounterStore, IterCounters};
    pub use crate::engine::{SchedKind, SchedStats};
    pub use crate::fault::{FaultAction, FaultEvent, FaultKind};
    pub use crate::ids::{HostId, LinkId, NodeId, SwitchId};
    pub use crate::packet::{CollectiveTag, FlowId, Packet, Priority};
    pub use crate::shard::{shards_from_env, ShardPlan};
    pub use crate::sim::memo::{memo_from_env, MemoCounters, MemoReplay};
    pub use crate::sim::{IterSpanRecord, RunReason, RunSummary, Simulator};
    pub use crate::spray::SprayPolicy;
    pub use crate::stats::{DropCause, Stats};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{FatTreeSpec, LinkClass, LinkSpec, Topology};
    pub use crate::units::Bandwidth;
}
