//! The simulator: event loop, switching, spraying, PFC, transport.
//!
//! [`Simulator`] owns the whole world — topology, per-link queues, per-switch
//! PFC state, the transport flow table, FlowPulse counters — and processes a
//! deterministic event heap. See the crate docs for the model; the short
//! version:
//!
//! * Output-queued switches with strict-priority egress queues per directed
//!   link. A packet arriving at a switch is routed and enqueued instantly;
//!   time passes in link serialization and propagation.
//! * Leaf switches spray packets over all uplinks that (per the routing
//!   tables, i.e. *known* faults only) can reach the destination leaf.
//! * Spine planes forward down the same plane the packet went up on.
//! * Silent faults sample drops at the end of serialization — the packet
//!   burned wire time but never arrives, exactly like a CRC-failed frame.
//! * PFC: per ingress-port/priority buffered-byte accounting with XOFF/XON
//!   thresholds; PAUSE frames take one link latency to take effect.
//! * Transport: per-segment RTO with exponential backoff, coalesced
//!   selective ACKs, reorder-tolerant receivers.

use crate::app::Application;
use crate::config::SimConfig;
use crate::control::{AppliedControl, ControlAction, ControlEvent, ControlVerb};
use crate::counters::CounterStore;
use crate::engine::{EventKind, EventQueue, SchedKind, SchedStats, Scheduler};
use crate::fault::{FaultAction, FaultEvent, FaultKind};
use crate::ids::{HostId, LinkId, NodeId, SwitchId};
use crate::packet::{AckBlock, CollectiveTag, FlowId, Packet, PacketKind, Priority, NPRIO};
use crate::pipeline::{FrontHeap, InFlight, PipeFront};
use crate::rng::RngStreams;
use crate::shard::{RemoteOpen, RemotePfc, RemotePkt, ShardOutbox, ShardPlan};
use crate::spray;
use crate::stats::{DropCause, Stats};
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkClass, SwitchKind, Topology};
use crate::trace::{TraceBuffer, TraceEvent};
use crate::transport::{AckAccum, FlowState};
use fp_telemetry::{LinkMeta, LinkSample, Recorder};
use std::collections::{HashMap, VecDeque};

// A child module (rather than a sibling) so the fast-forward machinery can
// reach the simulator's private runtime state without widening its API.
#[path = "memo.rs"]
pub mod memo;

/// Runtime state of one directed link (its egress queue lives at the
/// transmitting node).
#[derive(Debug)]
pub struct LinkState {
    /// Administratively up (known faults take links out of routing).
    pub admin_up: bool,
    /// Entropy-recycle remediation flag (`ControlVerb::RecycleEntropy`):
    /// the link stays admin-up and keeps forwarding, but spray decisions
    /// steer away from it whenever an alternative candidate exists. Far
    /// gentler than admin-down — in-flight and queued packets survive.
    pub spray_avoid: bool,
    /// Installed silent fault, if any.
    pub fault: Option<FaultKind>,
    /// Currently serializing a packet.
    pub txing: bool,
    current: Option<Packet>,
    /// Packets on the wire: fully serialized, propagating toward the far
    /// end. The packets themselves live in the simulator's per-latency-class
    /// delivery pipes (see `crate::pipeline`); this is the link's share.
    inflight: u32,
    queues: [VecDeque<Packet>; NPRIO],
    /// Queued **plus in-flight** wire bytes across priorities — the APS load
    /// signal. Including the packet currently serializing is what lets
    /// least-loaded spraying rotate away from the port it just used (as
    /// DRILL-style hardware does) instead of seeing all-empty queues.
    pub queued_bytes: u64,
    /// PFC pause state per priority (set by the downstream receiver).
    pub paused: [bool; NPRIO],
    /// When the current pause interval started, per priority (valid only
    /// while `paused[p]`; feeds `Stats::pfc_pause_ns`).
    paused_since: [SimTime; NPRIO],
    /// Packets fully serialized onto this link.
    pub txed_pkts: u64,
    /// Wire bytes fully serialized onto this link.
    pub txed_bytes: u64,
    /// Packets delivered at the far end (survived faults).
    pub delivered_pkts: u64,
    /// Payload bytes delivered at the far end.
    pub delivered_bytes: u64,
}

impl LinkState {
    fn new() -> Self {
        LinkState {
            admin_up: true,
            spray_avoid: false,
            fault: None,
            txing: false,
            current: None,
            inflight: 0,
            queues: Default::default(),
            queued_bytes: 0,
            paused: [false; NPRIO],
            paused_since: [SimTime::ZERO; NPRIO],
            txed_pkts: 0,
            txed_bytes: 0,
            delivered_pkts: 0,
            delivered_bytes: 0,
        }
    }

    /// Packets waiting in all priority queues.
    pub fn queued_pkts(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Packets on the wire (serialized, not yet delivered) — the per-link
    /// pipeline depth sampled by telemetry.
    pub fn inflight_pkts(&self) -> usize {
        self.inflight as usize
    }
}

/// Runtime state of one switch.
#[derive(Debug)]
struct SwitchState {
    /// Buffered bytes per (ingress port, priority) — PFC accounting.
    ingress_usage: Vec<[u64; NPRIO]>,
    /// Whether a PAUSE is outstanding per (ingress port, priority).
    pause_sent: Vec<[bool; NPRIO]>,
    /// Round-robin spray cursor.
    rr_cursor: u64,
    /// Pluggable spray backend ([`spray::Sprayer`]) built from
    /// `cfg.spray`. Classic policies wrap [`spray::choose`] verbatim, so
    /// the default `Adaptive` path is byte-identical to the pre-trait
    /// engine; stateful backends (REPS) keep their per-switch state here.
    sprayer: Box<dyn spray::Sprayer>,
    /// Leaf only: valid uplinks per destination leaf (admin state only —
    /// silent faults are *not* reflected here, that's the point).
    valid_up: Vec<Vec<LinkId>>,
    /// 3-level aggs only: valid agg→core uplinks per destination pod.
    valid_core: Vec<Vec<LinkId>>,
    /// [`SprayPolicy::Adaptive`]: decaying per-upstream-port byte counters
    /// (the utilization half of the load signal). Sized `n_vspines` on
    /// leaves, `cores_per_group` on 3-level aggs.
    spray_deficit: Vec<u64>,
    /// Timestamp base for the lazy exponential decay of `spray_deficit`.
    spray_deficit_at: Vec<u64>,
}

/// Runtime state of one host NIC.
#[derive(Debug)]
struct HostState {
    leaf: u32,
    /// Flows with fresh segments left, drained round-robin.
    active: VecDeque<FlowId>,
}

/// Which upstream table a spray decision consults.
#[derive(Copy, Clone)]
enum SprayTable {
    /// Leaf uplinks valid toward this destination leaf.
    Up(u32),
    /// Agg→core uplinks valid toward this destination pod (3-level).
    Core(u32),
}

/// Why [`Simulator::run`] returned.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RunReason {
    /// The event heap drained: nothing left to do.
    Drained,
    /// `max_events` was hit (safety stop).
    EventLimit,
    /// The time horizon passed.
    TimeLimit,
}

/// Result of a run.
#[derive(Copy, Clone, Debug)]
pub struct RunSummary {
    /// Events processed in this call.
    pub events: u64,
    /// Simulated clock at return.
    pub end: SimTime,
    /// Why the run stopped.
    pub reason: RunReason,
}

/// One completed collective iteration, as reported by a workload runner.
/// Always logged by the engine (no recorder needed) so goodput and
/// control-plane latencies can be measured on any run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct IterSpanRecord {
    /// Job identifier.
    pub job: u32,
    /// Iteration number within the job.
    pub iter: u32,
    /// When the iteration's first transfer was posted.
    pub start: SimTime,
    /// When the iteration's last transfer completed.
    pub end: SimTime,
}

/// Per-shard state of a simulator participating in an intra-trial
/// sharded run (see [`crate::shard`]). `None` on ordinary simulators —
/// every sharding hook then reduces to one `Option` branch, keeping the
/// unsharded fast path and its output bytes untouched.
struct ShardCtx {
    /// This simulator's shard id.
    shard: u32,
    /// The partition (node owners + lookahead).
    plan: ShardPlan,
    /// First delivery-pipe index reserved for coordinator-injected remote
    /// arrivals (one extra pipe per latency class).
    remote_pipe_base: u32,
    /// Trial-global flow id → local `flows` index, for own flows and
    /// mirrors of remotely-posted flows alike.
    fid_map: HashMap<FlowId, FlowId>,
    /// Next global flow id to allocate (strided by `plan.n_shards` so
    /// shards never collide without coordination).
    next_global: FlowId,
    /// Boundary-crossing traffic emitted this window.
    outbox: ShardOutbox,
    /// Wire-transit log of boundary-crossing packets this shard sent:
    /// `(link, send_ns, arrive_ns)`. Boundary links never touch the
    /// sender's `LinkState::inflight` (delivery happens at the receiving
    /// shard), so the telemetry merge recomputes their in-flight depth
    /// from this log. Only populated while a recorder is attached.
    wire_log: Vec<(u32, u64, u64)>,
}

/// The packet-level fat-tree simulator.
pub struct Simulator {
    /// Configuration (immutable after construction).
    pub cfg: SimConfig,
    /// The fabric.
    pub topo: Topology,
    now: SimTime,
    /// Future-event list; backend chosen by `cfg.sched` / `FP_SCHED`.
    heap: EventQueue,
    /// Armed head-of-pipe arrivals, one per nonempty delivery pipe. The
    /// event loop dispatches min(front, scheduler) by `(time, seq)` — see
    /// `crate::pipeline`.
    front: FrontHeap,
    /// Delivery pipes, one per latency class: contiguous FIFOs of packets
    /// on the wire, sorted by `(at, seq)` by construction (monotone clock +
    /// constant per-class latency).
    pipes: Vec<VecDeque<InFlight>>,
    /// Latency class of each link (index into `pipes`).
    link_pipe: Vec<u32>,
    /// Total packets on the wire across all delivery pipes.
    in_flight_pkts: usize,
    links: Vec<LinkState>,
    switches: Vec<SwitchState>,
    hosts: Vec<HostState>,
    /// Transport flow table (public for inspection by harnesses).
    pub flows: Vec<FlowState>,
    rng: RngStreams,
    /// Aggregate run statistics.
    pub stats: Stats,
    /// FlowPulse in-switch counters at the leaf level (spine→leaf ingress).
    pub counters: CounterStore,
    /// 3-level only: FlowPulse counters at the aggregation level
    /// (core→agg ingress); dimensions are `(n_aggs, cores_per_group)`.
    /// Empty (0×0) on 2-level fabrics.
    pub agg_counters: CounterStore,
    /// Exceptional-event trace.
    pub trace: TraceBuffer,
    app: Option<Box<dyn Application>>,
    app_started: bool,
    fault_events: Vec<FaultEvent>,
    control_events: Vec<ControlEvent>,
    applied_controls: Vec<AppliedControl>,
    iter_spans: Vec<IterSpanRecord>,
    recorder: Option<Box<dyn Recorder>>,
    /// Absolute time of the next sampler tick (0 = no periodic sampler).
    /// Unsharded sims drive the sampler through a self-rescheduling heap
    /// event; sharded sims sample lazily at grid points inside
    /// [`Simulator::run_window`] so the sampler never occupies the heap,
    /// never consumes a sequence number, and never widens
    /// [`Simulator::next_event_time`] — the window schedule (and therefore
    /// every tie-break) is byte-identical to a recorder-free run.
    next_sample_ns: u64,
    /// Time of the last dispatched non-sampler event (sharded telemetry
    /// uses the cross-shard max to place the final sampler tick exactly
    /// where an unsharded run would).
    last_event_ns: u64,
    scratch_cands: Vec<LinkId>,
    scratch_loads: Vec<u64>,
    /// Scratch uplink-slot ids handed to feedback-driven sprayers.
    scratch_slots: Vec<u32>,
    /// Scratch `(seq, ce)` echoes collected while the flow table is
    /// borrowed in [`Simulator::receive_ack`].
    scratch_echoes: Vec<(u32, bool)>,
    /// `cfg.spray.wants_feedback()`, cached: gates every per-packet
    /// feedback hook (CE marking, ACK echoes) so classic policies pay one
    /// predictable branch and stay byte-identical to the pre-trait engine.
    spray_feedback: bool,
    /// Number of links currently carrying [`LinkState::spray_avoid`];
    /// zero keeps the avoidance filter entirely off the spray hot path.
    spray_avoided: u32,
    /// Sharded-run state; `None` (the default) on ordinary simulators.
    shard: Option<Box<ShardCtx>>,
    /// Temporal-symmetry memoization state (`FP_MEMO`, see [`memo`]);
    /// `None` (the default) falls back to fully live simulation.
    memo: Option<Box<memo::MemoState>>,
}

impl Simulator {
    /// Build a simulator over `topo` with `cfg`, seeded with `seed`.
    pub fn new(topo: Topology, cfg: SimConfig, seed: u64) -> Simulator {
        cfg.validate().expect("invalid SimConfig");
        let n_links = topo.n_links();
        let n_switches = topo.n_switches();
        let links = (0..n_links).map(|_| LinkState::new()).collect();
        let three_level = topo.is_three_level();
        let switches = (0..n_switches)
            .map(|i| {
                let (n_valid_up, n_valid_core, n_deficit) = match topo.switch_kind[i] {
                    SwitchKind::Leaf(_) => (topo.n_leaves(), 0, topo.n_vspines()),
                    SwitchKind::Spine(_) if three_level => {
                        (0, topo.pods as usize, topo.cores_per_group as usize)
                    }
                    SwitchKind::Spine(_) | SwitchKind::Core(_) => (0, 0, 0),
                };
                SwitchState {
                    ingress_usage: vec![[0; NPRIO]; topo.switch_ports[i] as usize],
                    pause_sent: vec![[false; NPRIO]; topo.switch_ports[i] as usize],
                    rr_cursor: 0,
                    sprayer: spray::make_sprayer(cfg.spray, n_deficit),
                    valid_up: vec![Vec::new(); n_valid_up],
                    valid_core: vec![Vec::new(); n_valid_core],
                    spray_deficit: vec![0; n_deficit],
                    spray_deficit_at: vec![0; n_deficit],
                }
            })
            .collect();
        let hosts = (0..topo.n_hosts())
            .map(|h| HostState {
                leaf: topo.host_leaf[h],
                active: VecDeque::new(),
            })
            .collect();
        let counters = CounterStore::new(topo.n_leaves(), topo.n_vspines());
        let agg_counters = CounterStore::new_with_src(
            topo.n_aggs(),
            topo.cores_per_group as usize,
            topo.n_leaves(),
        );
        let sched = cfg.sched.unwrap_or_else(SchedKind::from_env);
        // One delivery pipe per distinct link latency (two in a fat tree:
        // host↔leaf and leaf↔spine). Class order follows first appearance
        // in the link table, which is deterministic.
        let mut latencies: Vec<SimDuration> = Vec::new();
        let link_pipe = topo
            .links
            .iter()
            .map(|l| match latencies.iter().position(|&d| d == l.latency) {
                Some(i) => i as u32,
                None => {
                    latencies.push(l.latency);
                    (latencies.len() - 1) as u32
                }
            })
            .collect();
        let pipes = vec![VecDeque::new(); latencies.len()];
        let spray_feedback = cfg.spray.wants_feedback();
        let mut sim = Simulator {
            cfg,
            topo,
            now: SimTime::ZERO,
            heap: EventQueue::new(sched),
            front: FrontHeap::new(),
            pipes,
            link_pipe,
            in_flight_pkts: 0,
            links,
            switches,
            hosts,
            flows: Vec::new(),
            rng: RngStreams::new(seed),
            stats: Stats::default(),
            counters,
            agg_counters,
            trace: TraceBuffer::new(4096),
            app: None,
            app_started: false,
            fault_events: Vec::new(),
            control_events: Vec::new(),
            applied_controls: Vec::new(),
            iter_spans: Vec::new(),
            recorder: None,
            next_sample_ns: 0,
            last_event_ns: 0,
            scratch_cands: Vec::new(),
            scratch_loads: Vec::new(),
            scratch_slots: Vec::new(),
            scratch_echoes: Vec::new(),
            spray_feedback,
            spray_avoided: 0,
            shard: None,
            memo: None,
        };
        sim.recompute_routing();
        sim
    }

    /// Install the workload. Its `on_start` fires when `run*` is first
    /// called.
    pub fn set_app(&mut self, app: Box<dyn Application>) {
        self.app = Some(app);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read-only view of a link's runtime state.
    pub fn link(&self, id: LinkId) -> &LinkState {
        &self.links[id.idx()]
    }

    /// The leaf a host hangs off.
    pub fn host_leaf(&self, h: HostId) -> u32 {
        self.hosts[h.idx()].leaf
    }

    /// Valid (admin-known) uplinks from `leaf` toward `dst_leaf` — the spray
    /// candidate set. Exposed for load models.
    pub fn valid_uplinks(&self, leaf: u32, dst_leaf: u32) -> &[LinkId] {
        &self.switches[leaf as usize].valid_up[dst_leaf as usize]
    }

    // ------------------------------------------------------------------
    // Telemetry
    // ------------------------------------------------------------------

    /// Attach a telemetry recorder. The recorder immediately receives the
    /// topology description; if it asks for a nonzero sampling interval the
    /// periodic link sampler is scheduled. With no recorder attached (the
    /// default) every telemetry call site reduces to one `Option` branch
    /// and no sampler events exist, so runs are byte-identical to a build
    /// without telemetry.
    pub fn set_recorder(&mut self, mut rec: Box<dyn Recorder>) {
        rec.on_topology(&link_metas(&self.topo));
        let interval = rec.sample_interval_ns();
        self.recorder = Some(rec);
        if interval > 0 {
            let at = self.now + SimDuration::from_ns(interval);
            self.next_sample_ns = at.as_ns();
            // Sharded sims sample lazily in `run_window` instead — a heap
            // entry would consume sequence numbers and stretch
            // `next_event_time`, perturbing the coordinator's window
            // schedule away from the recorder-free run.
            if self.shard.is_none() {
                self.heap.push(at, EventKind::Sample);
            }
        }
    }

    /// Emit sampler rows for every grid point at or before `t` (the next
    /// event due in this window). Sampling at `g == t` *before* the event
    /// dispatches mirrors the unsharded tie order, where the sampler's heap
    /// entry — pushed a full interval earlier — carries the lower sequence
    /// number. Only meaningful on sharded sims; unsharded sampling rides
    /// the self-rescheduling `Sample` heap event.
    fn sample_up_to(&mut self, t: SimTime) {
        if self.recorder.is_none() || self.next_sample_ns == 0 {
            return;
        }
        let interval = self
            .recorder
            .as_ref()
            .map(|r| r.sample_interval_ns())
            .unwrap_or(0);
        if interval == 0 {
            return;
        }
        while self.next_sample_ns <= t.as_ns() {
            let at = SimTime::from_ns(self.next_sample_ns);
            debug_assert!(at >= self.now, "sampler grid fell behind the clock");
            self.now = at;
            self.sample_links();
            self.next_sample_ns += interval;
        }
    }

    /// Emit the sharded sampler's final row set: one tick at the first
    /// grid point strictly past the shard's last local event, capturing
    /// its drained state. Lazy window sampling only fires ahead of a due
    /// event, so without this flush the post-drain state (empty queues,
    /// final `txed_bytes`) would never be observed — while the unsharded
    /// sampler's trailing tick observes exactly that. Ticks beyond this
    /// one are reconstructed by carry-forward in the telemetry merge (the
    /// shard's links can no longer change). Called by the shard executor
    /// at `Finish`, after the last window has run.
    pub fn sampler_flush_final(&mut self) {
        if self.recorder.is_none() || self.next_sample_ns == 0 {
            return;
        }
        let at = SimTime::from_ns(self.next_sample_ns);
        debug_assert!(at >= self.now, "sampler grid fell behind the clock");
        self.now = at;
        self.sample_links();
        self.next_sample_ns += self
            .recorder
            .as_ref()
            .map(|r| r.sample_interval_ns())
            .unwrap_or(0);
    }

    /// Detach and return the recorder (for post-run export and flushing).
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.recorder.take()
    }

    /// True if a telemetry recorder is attached.
    pub fn has_recorder(&self) -> bool {
        self.recorder.is_some()
    }

    /// Time of the last dispatched non-sampler event, nanoseconds (0 if
    /// nothing ran yet). Sampler ticks are excluded, so this is the time
    /// an unsharded run's final trailing tick is derived from.
    pub fn last_event_ns(&self) -> u64 {
        self.last_event_ns
    }

    /// Report a completed collective iteration span. Always appended to the
    /// in-sim span log (see [`Simulator::iter_spans`]) so goodput and
    /// control-plane timing can be computed without a recorder; additionally
    /// forwarded to the telemetry recorder when one is attached. Called by
    /// workload runners.
    pub fn record_iteration_span(&mut self, job: u32, iter: u32, start: SimTime, end: SimTime) {
        self.iter_spans.push(IterSpanRecord {
            job,
            iter,
            start,
            end,
        });
        if let Some(rec) = self.recorder.as_mut() {
            rec.on_iteration(job, iter, start.as_ns(), end.as_ns());
        }
    }

    /// Completed collective iteration spans, in completion order.
    pub fn iter_spans(&self) -> &[IterSpanRecord] {
        &self.iter_spans
    }

    /// Sampler tick: hand every link's egress state to the recorder.
    fn sample_links(&mut self) {
        // Move the recorder out so the link table can be borrowed freely.
        let Some(mut rec) = self.recorder.take() else {
            return;
        };
        let t = self.now.as_ns();
        for (i, l) in self.links.iter().enumerate() {
            let mut mask = 0u8;
            for (p, &paused) in l.paused.iter().enumerate() {
                if paused {
                    mask |= 1 << p;
                }
            }
            rec.on_link_sample(
                t,
                i as u32,
                &LinkSample {
                    queued_bytes: l.queued_bytes,
                    queued_pkts: l.queued_pkts() as u32,
                    inflight_pkts: l.inflight,
                    txed_bytes: l.txed_bytes,
                    paused_mask: mask,
                },
            );
        }
        self.recorder = Some(rec);
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Schedule a fault event for later application.
    pub fn schedule_fault(&mut self, ev: FaultEvent) {
        let idx = self.fault_events.len() as u32;
        self.fault_events.push(ev);
        self.heap.push(ev.at, EventKind::FaultUpdate { idx });
    }

    // ------------------------------------------------------------------
    // Control plane
    // ------------------------------------------------------------------

    /// Schedule a control-plane action (remediation) to land at `at`.
    ///
    /// The action rides the same future-event scheduler as every other
    /// event, so a controller-enabled run stays byte-identical across
    /// scheduler backends and thread counts. Returns the schedule index,
    /// which reappears in [`Simulator::applied_controls`] once the action
    /// has taken effect.
    pub fn schedule_control(&mut self, at: SimTime, action: ControlAction) -> u32 {
        let idx = self.control_events.len() as u32;
        self.control_events.push(ControlEvent { at, action });
        self.heap.push(at, EventKind::ControlUpdate { idx });
        idx
    }

    /// The full control-action schedule so far (applied or pending).
    pub fn control_events(&self) -> &[ControlEvent] {
        &self.control_events
    }

    /// Append-only log of control actions that have been applied.
    pub fn applied_controls(&self) -> &[AppliedControl] {
        &self.applied_controls
    }

    /// Apply a control action immediately, logging it with schedule index
    /// `idx`.
    fn apply_control(&mut self, idx: u32, action: ControlAction) {
        self.trace
            .push(self.now, TraceEvent::ControlApplied { link: action.link });
        match action.verb {
            ControlVerb::AdminDown => {
                self.apply_fault_now(
                    action.link,
                    FaultAction::Set(FaultKind::AdminDown),
                    action.bidirectional,
                );
            }
            ControlVerb::Restore => {
                self.apply_fault_now(action.link, FaultAction::Clear, action.bidirectional);
            }
            // Soft mitigation: quarantine the cable for spray decisions
            // only. No admin state change, no queue drain, no routing
            // recompute — queued and in-flight packets finish normally.
            ControlVerb::RecycleEntropy => {
                self.set_spray_avoid(action.link, true);
                if action.bidirectional {
                    let peer = self.topo.peer[action.link.idx()];
                    self.set_spray_avoid(peer, true);
                }
            }
        }
        self.applied_controls.push(AppliedControl {
            at: self.now,
            idx,
            action,
        });
    }

    /// Flip a link's entropy-recycle quarantine flag, maintaining the
    /// global count that keeps the avoidance filter off the spray hot
    /// path while no link is quarantined.
    fn set_spray_avoid(&mut self, link: LinkId, on: bool) {
        let l = &mut self.links[link.idx()];
        if l.spray_avoid != on {
            l.spray_avoid = on;
            if on {
                self.spray_avoided += 1;
            } else {
                self.spray_avoided -= 1;
            }
        }
    }

    /// Apply a fault action right now.
    pub fn apply_fault_now(&mut self, link: LinkId, action: FaultAction, bidirectional: bool) {
        self.apply_fault_action(link, action, true);
        if bidirectional {
            let peer = self.topo.peer[link.idx()];
            self.apply_fault_action(peer, action, true);
        }
    }

    /// Apply a fault action right now without a trace record. Used by
    /// sharded runs to replicate *known* (routing-visible) faults onto
    /// shards that do not own the link: the state flip must happen
    /// everywhere, but only the owning shard's trace may record it, or the
    /// merged trace would show one install per shard.
    pub fn apply_fault_untraced(&mut self, link: LinkId, action: FaultAction, bidirectional: bool) {
        self.apply_fault_action(link, action, false);
        if bidirectional {
            let peer = self.topo.peer[link.idx()];
            self.apply_fault_action(peer, action, false);
        }
    }

    fn apply_fault_action(&mut self, link: LinkId, action: FaultAction, traced: bool) {
        match action {
            FaultAction::Set(kind) => {
                if traced {
                    self.trace
                        .push(self.now, TraceEvent::FaultSet { link, kind });
                }
                if kind == FaultKind::AdminDown {
                    self.links[link.idx()].admin_up = false;
                    self.links[link.idx()].fault = None;
                    self.drain_link_queues(link);
                    self.recompute_routing();
                } else {
                    self.links[link.idx()].fault = Some(kind);
                }
            }
            FaultAction::Clear => {
                if traced {
                    self.trace.push(self.now, TraceEvent::FaultCleared { link });
                }
                let was_down = !self.links[link.idx()].admin_up;
                self.links[link.idx()].fault = None;
                self.links[link.idx()].admin_up = true;
                // A healed/restored link also sheds any entropy-recycle
                // quarantine — it is trustworthy again.
                self.set_spray_avoid(link, false);
                if was_down {
                    self.recompute_routing();
                }
                self.try_start_tx(link);
            }
        }
    }

    /// Drop everything queued on a link that just went admin-down,
    /// releasing PFC accounting for each dropped packet.
    fn drain_link_queues(&mut self, link: LinkId) {
        for q in 0..NPRIO {
            while let Some(pkt) = self.links[link.idx()].queues[q].pop_front() {
                let wire = self.wire_size(&pkt);
                self.links[link.idx()].queued_bytes -= wire;
                self.stats.drop(DropCause::AdminDown);
                self.trace.push(
                    self.now,
                    TraceEvent::Drop {
                        link,
                        cause: DropCause::AdminDown,
                        flow: match pkt.kind {
                            PacketKind::Data { flow, .. } => Some(flow),
                            _ => None,
                        },
                    },
                );
                self.pfc_release(link, &pkt, wire);
            }
        }
    }

    /// Rebuild all valid-uplink sets (leaf→agg and, for 3-level, agg→core)
    /// from link admin state.
    fn recompute_routing(&mut self) {
        let nl = self.topo.n_leaves();
        let nv = self.topo.n_vspines();
        let three = self.topo.is_three_level();
        let pods = self.topo.pods;
        let k = self.topo.cores_per_group;

        // Agg→core validity first (leaf validity depends on it).
        if three {
            for g in 0..self.topo.n_aggs() as u32 {
                let sw = nl + g as usize; // agg switch id
                let a = g % nv as u32; // within-pod agg index = core group
                for dst_pod in 0..pods {
                    let mut set =
                        std::mem::take(&mut self.switches[sw].valid_core[dst_pod as usize]);
                    set.clear();
                    for kk in 0..k {
                        let up = self.topo.agg_uplink(g, kk);
                        let c = self.topo.core_global(a, kk);
                        let down = self.topo.core_downlink(c, dst_pod);
                        if self.links[up.idx()].admin_up && self.links[down.idx()].admin_up {
                            set.push(up);
                        }
                    }
                    self.switches[sw].valid_core[dst_pod as usize] = set;
                }
            }
        }

        for leaf in 0..nl {
            let src_pod = self.topo.pod_of_leaf(leaf as u32);
            for dst in 0..nl {
                let mut set = std::mem::take(&mut self.switches[leaf].valid_up[dst]);
                set.clear();
                if dst != leaf {
                    let dst_pod = self.topo.pod_of_leaf(dst as u32);
                    for v in 0..nv {
                        let up = self.topo.uplink(leaf as u32, v as u32);
                        let down = self.topo.downlink(v as u32, dst as u32);
                        if !(self.links[up.idx()].admin_up && self.links[down.idx()].admin_up) {
                            continue;
                        }
                        if three && dst_pod != src_pod {
                            // Cross-pod: the source-pod agg must still
                            // reach the destination pod via some core.
                            let g = self.topo.agg_global(src_pod, v as u32);
                            let agg_sw = nl + g as usize;
                            if self.switches[agg_sw].valid_core[dst_pod as usize].is_empty() {
                                continue;
                            }
                        }
                        set.push(up);
                    }
                }
                self.switches[leaf].valid_up[dst] = set;
            }
        }
    }

    // ------------------------------------------------------------------
    // Workload API
    // ------------------------------------------------------------------

    /// Post a message of `bytes` from `src` to `dst`. Segments are injected
    /// at line rate as the NIC drains. Returns the flow id.
    pub fn post_message(
        &mut self,
        src: HostId,
        dst: HostId,
        bytes: u64,
        tag: Option<CollectiveTag>,
        prio: Priority,
    ) -> FlowId {
        self.post_message_tok(src, dst, bytes, tag, prio, u64::MAX)
    }

    /// [`Simulator::post_message`] with an opaque application token
    /// attached to the flow (readable back via `flows[id].app_token`).
    /// Sharded workload drivers use the token to map completions at the
    /// receiving shard back to workload transfers.
    pub fn post_message_tok(
        &mut self,
        src: HostId,
        dst: HostId,
        bytes: u64,
        tag: Option<CollectiveTag>,
        prio: Priority,
        token: u64,
    ) -> FlowId {
        assert!(src != dst, "self-addressed message");
        let id = self.flows.len() as FlowId;
        let mut f = FlowState::new(src, dst, bytes, self.cfg.mtu, tag, prio, self.now);
        f.app_token = token;
        f.global = match self.shard.as_mut() {
            Some(c) => {
                debug_assert_eq!(
                    c.plan.owner(NodeId::Host(src)),
                    c.shard,
                    "posting at a non-owned host"
                );
                let g = c.next_global;
                c.next_global += c.plan.n_shards;
                c.fid_map.insert(g, id);
                g
            }
            None => id,
        };
        let global = f.global;
        self.flows.push(f);
        self.hosts[src.idx()].active.push_back(id);
        if let Some(c) = self.shard.as_mut() {
            // The receiver lives in another shard: ship an open record so
            // its mirror exists before any data packet crosses over.
            if c.plan.owner(NodeId::Host(dst)) != c.shard {
                c.outbox.opens.push(RemoteOpen {
                    global,
                    src,
                    dst,
                    bytes,
                    tag,
                    prio,
                    token,
                    at: self.now,
                });
            }
        }
        self.try_start_tx(self.topo.host_up[src.idx()]);
        id
    }

    /// Schedule an application wake-up at absolute time `at`.
    pub fn schedule_wake(&mut self, at: SimTime, host: HostId, token: u64) {
        debug_assert!(at >= self.now);
        self.heap.push(at, EventKind::Wake { host, token });
    }

    // ------------------------------------------------------------------
    // Intra-trial sharding (see `crate::shard` and DESIGN.md)
    // ------------------------------------------------------------------

    /// Turn this simulator into shard `shard` of `plan`. Must be called
    /// before any traffic is posted. Appends one delivery pipe per
    /// latency class for coordinator-injected remote arrivals.
    pub fn attach_shard(&mut self, shard: u32, plan: ShardPlan) {
        assert!(
            self.flows.is_empty() && self.now == SimTime::ZERO,
            "attach_shard must precede all traffic"
        );
        assert!(shard < plan.n_shards, "shard id out of range");
        let base = self.pipes.len() as u32;
        for _ in 0..base {
            self.pipes.push(VecDeque::new());
        }
        self.shard = Some(Box::new(ShardCtx {
            shard,
            plan,
            remote_pipe_base: base,
            fid_map: HashMap::new(),
            next_global: shard,
            outbox: ShardOutbox::default(),
            wire_log: Vec::new(),
        }));
    }

    /// Earliest pending event or head-of-pipe arrival time, if any — the
    /// shard's contribution to the coordinator's conservative window.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.next_due().map(|(t, _)| t)
    }

    /// Run every event strictly before `end` (the conservative window
    /// bound). The clock is *not* advanced to `end` on drain, so a
    /// quiescent shard never races ahead of injected future arrivals.
    /// Returns events processed.
    pub fn run_window(&mut self, end: SimTime) -> u64 {
        self.start_app_if_needed();
        let start_events = self.stats.events;
        loop {
            let (t, from_front) = match self.next_due() {
                None => break,
                Some((t, _)) if t >= end => break,
                Some(due) => due,
            };
            // Emit sampler rows for grid points passed by this event (and
            // for a grid point *at* it, before it dispatches) — sharded
            // sims keep the sampler out of the heap so the window schedule
            // matches a recorder-free run; see `sample_up_to`.
            self.sample_up_to(t);
            if from_front {
                self.deliver_front();
            } else {
                let (k_at, kind) = self.heap.pop().expect("peeked");
                self.dispatch(k_at, kind);
            }
        }
        self.stats.events - start_events
    }

    /// Inject a packet that crossed the shard boundary: append it to the
    /// remote delivery pipe of `link`'s latency class, stamped with the
    /// sender-computed arrival time. Arrivals per pipe must be injected
    /// in nondecreasing time order (the coordinator sorts each window).
    pub fn shard_inject_pkt(&mut self, at: SimTime, link: LinkId, pkt: Packet) {
        let c = self
            .shard
            .as_ref()
            .expect("shard_inject_pkt on unsharded sim");
        let class = c.remote_pipe_base + self.link_pipe[link.idx()];
        let seq = self.heap.reserve_seq();
        let pipe = &mut self.pipes[class as usize];
        debug_assert!(
            pipe.back().is_none_or(|b| (b.at, b.seq) < (at, seq)),
            "remote pipe arrivals must be FIFO"
        );
        if pipe.is_empty() {
            self.front.arm(PipeFront {
                at,
                seq,
                pipe: class,
            });
        }
        pipe.push_back(InFlight { at, seq, link, pkt });
        self.links[link.idx()].inflight += 1;
        self.in_flight_pkts += 1;
    }

    /// Batched ingress splice: inject a whole pre-sorted remote batch in
    /// one pass. The batch's sequence numbers come from a single counter
    /// bump ([`Scheduler::reserve_seq_range`]) with `seq0 + i` for packet
    /// `i` — exactly the numbers `n` separate [`Self::shard_inject_pkt`]
    /// calls would have drawn — and each pipe that went empty→nonempty is
    /// armed once at the end. No event dispatches mid-splice, so the
    /// deferred arms leave the identical end state without per-packet
    /// front-heap probes.
    pub fn shard_inject_pkts(&mut self, batch: &[RemotePkt]) {
        if batch.is_empty() {
            return;
        }
        let base = self
            .shard
            .as_ref()
            .expect("shard_inject_pkts on unsharded sim")
            .remote_pipe_base;
        let seq0 = self.heap.reserve_seq_range(batch.len() as u64);
        let mut to_arm: Vec<PipeFront> = Vec::with_capacity(4);
        for (i, r) in batch.iter().enumerate() {
            let seq = seq0 + i as u64;
            let class = base + self.link_pipe[r.link.idx()];
            let pipe = &mut self.pipes[class as usize];
            debug_assert!(
                pipe.back().is_none_or(|b| (b.at, b.seq) < (r.at, seq)),
                "remote pipe arrivals must be FIFO"
            );
            if pipe.is_empty() {
                to_arm.push(PipeFront {
                    at: r.at,
                    seq,
                    pipe: class,
                });
            }
            pipe.push_back(InFlight {
                at: r.at,
                seq,
                link: r.link,
                pkt: r.pkt,
            });
            self.links[r.link.idx()].inflight += 1;
            self.in_flight_pkts += 1;
        }
        for f in to_arm {
            self.front.arm(f);
        }
    }

    /// Inject a PFC frame that crossed the shard boundary (the paused
    /// transmitter lives here, the switch that sent the frame does not).
    pub fn shard_inject_pfc(&mut self, at: SimTime, link: LinkId, prio: u8, pause: bool) {
        debug_assert!(at >= self.now, "PFC injected into the past");
        self.heap.push(at, EventKind::Pfc { link, prio, pause });
    }

    /// Create a passive receiver mirror for a flow posted in another
    /// shard. The mirror holds receiver state (reassembly, ACK
    /// generation) and never transmits.
    pub fn shard_open_flow(&mut self, open: &RemoteOpen) {
        let id = self.flows.len() as FlowId;
        let mut f = FlowState::new(
            open.src,
            open.dst,
            open.bytes,
            self.cfg.mtu,
            open.tag,
            open.prio,
            open.at,
        );
        f.global = open.global;
        f.app_token = open.token;
        self.flows.push(f);
        let c = self
            .shard
            .as_mut()
            .expect("shard_open_flow on unsharded sim");
        debug_assert_eq!(
            c.plan.owner(NodeId::Host(open.dst)),
            c.shard,
            "mirror at a non-owned host"
        );
        c.fid_map.insert(open.global, id);
    }

    /// Drain the wire-transit log of boundary-crossing packets this shard
    /// sent: `(link, send_ns, arrive_ns)` in send order. Empty unless a
    /// recorder was attached (see `ShardCtx::wire_log`).
    pub fn shard_take_wire_log(&mut self) -> Vec<(u32, u64, u64)> {
        std::mem::take(
            &mut self
                .shard
                .as_mut()
                .expect("unsharded sim has no wire log")
                .wire_log,
        )
    }

    /// Drain the boundary-crossing traffic emitted since the last drain.
    pub fn shard_take_outbox(&mut self) -> ShardOutbox {
        std::mem::take(
            &mut self
                .shard
                .as_mut()
                .expect("unsharded sim has no outbox")
                .outbox,
        )
    }

    /// Local `flows` index of a wire-level (trial-global) flow id.
    fn local_fid(&self, global: FlowId) -> FlowId {
        match self.shard.as_ref() {
            Some(c) => *c
                .fid_map
                .get(&global)
                .expect("packet for a flow this shard never saw opened"),
            None => global,
        }
    }

    // ------------------------------------------------------------------
    // Run loop
    // ------------------------------------------------------------------

    fn start_app_if_needed(&mut self) {
        if !self.app_started {
            self.app_started = true;
            self.with_app(|app, sim| app.on_start(sim));
        }
    }

    /// Run until the event heap drains (the workload stops posting work).
    pub fn run(&mut self) -> RunSummary {
        self.run_inner(SimTime::MAX)
    }

    /// Run until simulated time `horizon` (events at exactly `horizon` are
    /// processed). The clock is left at `horizon` if the heap drained early.
    pub fn run_until(&mut self, horizon: SimTime) -> RunSummary {
        let s = self.run_inner(horizon);
        if self.now < horizon {
            self.now = horizon;
        }
        s
    }

    /// Which of (scheduler head, link-front head) dispatches next, by
    /// global `(time, seq)` order. `None` when both are idle.
    #[inline]
    fn next_due(&mut self) -> Option<(SimTime, bool)> {
        let front = self.front.peek();
        match (self.heap.peek_next(), front) {
            (None, None) => None,
            (Some((t, _)), None) => Some((t, false)),
            (None, Some(f)) => Some((f.at, true)),
            (Some((t, s)), Some(f)) => {
                if (f.at, f.seq) < (t, s) {
                    Some((f.at, true))
                } else {
                    Some((t, false))
                }
            }
        }
    }

    fn run_inner(&mut self, horizon: SimTime) -> RunSummary {
        self.start_app_if_needed();
        let start_events = self.stats.events;
        let reason = loop {
            let (at, from_front) = match self.next_due() {
                None => break RunReason::Drained,
                Some((t, _)) if t > horizon => break RunReason::TimeLimit,
                Some(due) => due,
            };
            if self.stats.events >= self.cfg.max_events {
                break RunReason::EventLimit;
            }
            if from_front {
                self.deliver_front();
            } else {
                let (k_at, kind) = self.heap.pop().expect("peeked");
                debug_assert_eq!(k_at, at);
                self.dispatch(k_at, kind);
            }
        };
        RunSummary {
            events: self.stats.events - start_events,
            end: self.now,
            reason,
        }
    }

    /// Process a single event (test/debug hook). Returns false if idle.
    pub fn step(&mut self) -> bool {
        self.start_app_if_needed();
        match self.next_due() {
            Some((_, true)) => {
                self.deliver_front();
                true
            }
            Some((_, false)) => {
                let (at, kind) = self.heap.pop().expect("peeked");
                self.dispatch(at, kind);
                true
            }
            None => false,
        }
    }

    /// Dispatch the earliest head-of-pipe arrival: pop the head packet off
    /// its delivery pipe, re-arm the front for the next entry (or disarm if
    /// the pipe went empty), and deliver. Counts toward `stats.events`
    /// exactly like the per-packet `Delivery` event it replaces, so event
    /// accounting and `max_events` behave identically.
    fn deliver_front(&mut self) {
        let f = self.front.peek().expect("front nonempty");
        let pipe = &mut self.pipes[f.pipe as usize];
        let head = pipe.pop_front().expect("armed pipe has packets in it");
        debug_assert_eq!((head.at, head.seq), (f.at, f.seq), "front out of sync");
        match pipe.front() {
            Some(next) => self.front.replace_top(PipeFront {
                at: next.at,
                seq: next.seq,
                pipe: f.pipe,
            }),
            None => {
                self.front.pop_top();
            }
        }
        self.links[head.link.idx()].inflight -= 1;
        self.in_flight_pkts -= 1;
        debug_assert!(f.at >= self.now, "time went backwards");
        self.now = f.at;
        self.last_event_ns = f.at.as_ns();
        self.stats.events += 1;
        self.stats.pipeline_deliveries += 1;
        self.handle_delivery(head.link, head.pkt);
    }

    fn dispatch(&mut self, at: SimTime, kind: EventKind) {
        // Lazy RTO cancellation: a timer whose segment was acknowledged (or
        // whose flow failed) since arming is discarded here, before any
        // event accounting — it does not advance the clock and does not
        // count toward `stats.events` or the `max_events` guard. The heap
        // strictly shrinks on a skip, so this cannot loop.
        if let EventKind::Rto { flow, seq, gen, .. } = kind {
            if self.rto_is_stale(flow, seq, gen) {
                self.stats.rto_stale_skips += 1;
                return;
            }
        }
        // Sampler ticks advance the clock but, like stale-RTO skips, are
        // not charged to `stats.events` or the `max_events` guard —
        // telemetry must not perturb event accounting. The tick reschedules
        // itself only while other events remain, so a drained workload
        // cannot be kept alive by its own sampler.
        if matches!(kind, EventKind::Sample) {
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.sample_links();
            if let Some(interval) = self
                .recorder
                .as_ref()
                .map(|r| r.sample_interval_ns())
                .filter(|&i| i > 0)
            {
                let next = at + SimDuration::from_ns(interval);
                self.next_sample_ns = next.as_ns();
                if !self.heap.is_empty() || !self.front.is_empty() {
                    self.heap.push(next, EventKind::Sample);
                }
            }
            return;
        }
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.last_event_ns = at.as_ns();
        self.stats.events += 1;
        match kind {
            EventKind::TxDone { link } => self.handle_tx_done(link),
            EventKind::Rto {
                flow, seq, attempt, ..
            } => self.handle_rto(flow, seq, attempt),
            EventKind::Wake { host, token } => {
                self.with_app(|app, sim| app.on_wake(sim, host, token))
            }
            EventKind::FaultUpdate { idx } => {
                let ev = self.fault_events[idx as usize];
                self.apply_fault_now(ev.link, ev.action, ev.bidirectional);
            }
            EventKind::ControlUpdate { idx } => {
                let ev = self.control_events[idx as usize];
                self.apply_control(idx, ev.action);
            }
            EventKind::Pfc { link, prio, pause } => self.handle_pfc(link, prio, pause),
            EventKind::AckFlush { flow } => self.handle_ack_flush(flow),
            EventKind::Sample => unreachable!("handled before event accounting"),
        }
    }

    fn with_app<F: FnOnce(&mut dyn Application, &mut Simulator)>(&mut self, f: F) {
        if let Some(mut app) = self.app.take() {
            f(app.as_mut(), self);
            self.app = Some(app);
        }
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    fn wire_size(&self, pkt: &Packet) -> u64 {
        pkt.size as u64 + self.cfg.wire_overhead as u64
    }

    /// Deficit-table slot of an upstream (sprayed) link: the vspine index
    /// for leaf uplinks, the core slot for agg uplinks.
    fn deficit_idx(&self, up: LinkId) -> u32 {
        match self.topo.links[up.idx()].class {
            LinkClass::LeafUp { vspine, .. } => vspine,
            LinkClass::AggUp { core_k, .. } => core_k,
            c => unreachable!("not a sprayed uplink: {c:?}"),
        }
    }

    /// One APS decision: pick among the switch's valid upstream links for
    /// the given table (leaf→spine per destination leaf, or 3-level
    /// agg→core per destination pod), honouring the configured policy and
    /// charging the adaptive byte deficit.
    fn spray_among(&mut self, sw: SwitchId, table: SprayTable, pkt: &Packet) -> Option<LinkId> {
        let mut cands = std::mem::take(&mut self.scratch_cands);
        cands.clear();
        {
            let s = &self.switches[sw.idx()];
            let set = match table {
                SprayTable::Up(dst_leaf) => &s.valid_up[dst_leaf as usize],
                SprayTable::Core(dst_pod) => &s.valid_core[dst_pod as usize],
            };
            cands.extend_from_slice(set);
        }
        if cands.is_empty() {
            self.scratch_cands = cands;
            return None;
        }
        // Entropy-recycle remediation (`ControlVerb::RecycleEntropy`):
        // drop quarantined uplinks from the candidate set, mirroring the
        // admin-down pairing (the uplink itself, or — when steering
        // around a spine — the paired spine→destination downlink). The
        // filter never empties the set: with no clean alternative the
        // original candidates stand, because the pick must stay total.
        if self.spray_avoided > 0 && cands.len() > 1 {
            let n_before = cands.len();
            cands.retain(|&up| {
                if self.links[up.idx()].spray_avoid {
                    return false;
                }
                if let SprayTable::Up(dst_leaf) = table {
                    let down = self.topo.downlink(self.deficit_idx(up), dst_leaf);
                    if self.links[down.idx()].spray_avoid {
                        return false;
                    }
                }
                true
            });
            if cands.is_empty() {
                let s = &self.switches[sw.idx()];
                let set = match table {
                    SprayTable::Up(dst_leaf) => &s.valid_up[dst_leaf as usize],
                    SprayTable::Core(dst_pod) => &s.valid_core[dst_pod as usize],
                };
                cands.extend_from_slice(set);
            } else if cands.len() < n_before {
                self.stats.spray_avoided_picks += 1;
            }
        }
        let adaptive = self.cfg.spray == spray::SprayPolicy::Adaptive;
        let chosen = if cands.len() == 1 {
            cands[0]
        } else {
            let mut loads = std::mem::take(&mut self.scratch_loads);
            loads.clear();
            // Load signals feed only the classic policies; skipping the
            // gather for hash/entropy backends keeps their pick O(1).
            if self.cfg.spray.is_classic() {
                for &id in &cands {
                    let mut load = self.links[id.idx()].queued_bytes;
                    if adaptive {
                        load += self.decayed_deficit(sw, self.deficit_idx(id));
                    }
                    loads.push(load);
                }
            }
            let mut slots = std::mem::take(&mut self.scratch_slots);
            slots.clear();
            if self.spray_feedback {
                for &id in &cands {
                    slots.push(self.deficit_idx(id));
                }
            }
            let (flow, seq, data) = match pkt.kind {
                PacketKind::Data { flow, seq } => (flow, seq, true),
                PacketKind::Ack { flow, .. } => (flow, 0, false),
            };
            let ctx = spray::SprayCtx {
                flow,
                src: pkt.src.0,
                dst: pkt.dst.0,
                seq,
                data,
                cands: &cands,
                loads: &loads,
                slots: &slots,
            };
            let sw_state = &mut self.switches[sw.idx()];
            let i = sw_state
                .sprayer
                .pick(&ctx, &mut sw_state.rr_cursor, &mut self.rng.spray);
            debug_assert!(i < cands.len(), "sprayer picked out of range");
            let c = cands[i];
            self.scratch_loads = loads;
            self.scratch_slots = slots;
            c
        };
        self.scratch_cands = cands;
        if adaptive {
            let v = self.deficit_idx(chosen) as usize;
            let wire = self.wire_size(pkt);
            self.switches[sw.idx()].spray_deficit[v] += wire;
        }
        Some(chosen)
    }

    /// Read leaf `sw`'s spray deficit for `vspine`, applying lazy
    /// exponential decay: the counter halves every `spray_tau`. This is the
    /// EWMA-like utilization signal of [`spray::SprayPolicy::Adaptive`].
    fn decayed_deficit(&mut self, sw: SwitchId, vspine: u32) -> u64 {
        let tau = self.cfg.spray_tau.as_ns();
        let s = &mut self.switches[sw.idx()];
        let v = vspine as usize;
        let elapsed = self.now.as_ns().saturating_sub(s.spray_deficit_at[v]);
        let halvings = elapsed.checked_div(tau).unwrap_or(0);
        if halvings > 0 {
            s.spray_deficit[v] >>= halvings.min(63);
            s.spray_deficit_at[v] += halvings * tau;
        }
        s.spray_deficit[v]
    }

    /// Start transmitting on `link` if it is idle and something is eligible.
    fn try_start_tx(&mut self, link: LinkId) {
        {
            let l = &self.links[link.idx()];
            if l.txing || !l.admin_up {
                return;
            }
        }
        let src = self.topo.links[link.idx()].src;
        let mut chosen: Option<Packet> = None;
        for q in 0..NPRIO {
            if self.links[link.idx()].paused[q] {
                continue;
            }
            // queued_bytes is *not* decremented here: it tracks queued plus
            // in-flight bytes and is released at TxDone.
            if let Some(pkt) = self.links[link.idx()].queues[q].pop_front() {
                chosen = Some(pkt);
                break;
            }
            if let NodeId::Host(h) = src {
                if let Some(pkt) = self.next_fresh(h, q) {
                    // Fresh segments bypass the queue; charge them so the
                    // in-flight accounting stays symmetric.
                    let wire = self.wire_size(&pkt);
                    self.links[link.idx()].queued_bytes += wire;
                    chosen = Some(pkt);
                    break;
                }
            }
        }
        let Some(pkt) = chosen else { return };
        let wire = self.wire_size(&pkt);
        let ser = self.topo.links[link.idx()].bandwidth.ser_time(wire);
        let l = &mut self.links[link.idx()];
        l.txing = true;
        l.current = Some(pkt);
        self.heap.push(self.now + ser, EventKind::TxDone { link });
    }

    /// Pull the next fresh (never-sent) segment at priority class `q` from
    /// host `h`'s active flows, round-robin. Arms the first RTO.
    fn next_fresh(&mut self, h: HostId, q: usize) -> Option<Packet> {
        let n = self.hosts[h.idx()].active.len();
        for _ in 0..n {
            let fid = self.hosts[h.idx()].active.pop_front().expect("len checked");
            let f = &self.flows[fid as usize];
            if !f.has_fresh() {
                // Exhausted (or failed): drop from the active set.
                continue;
            }
            if f.prio.idx() != q {
                self.hosts[h.idx()].active.push_back(fid);
                continue;
            }
            let f = &mut self.flows[fid as usize];
            let seq = f.next_seq;
            f.next_seq += 1;
            let pkt = Packet {
                kind: PacketKind::Data {
                    flow: f.global,
                    seq,
                },
                src: f.src,
                dst: f.dst,
                size: f.seg_size(seq),
                prio: f.prio,
                tag: f.tag,
                src_leaf: self.hosts[h.idx()].leaf as u16,
                ingress: None,
                ce: false,
            };
            let still_fresh = self.flows[fid as usize].has_fresh();
            if still_fresh {
                self.hosts[h.idx()].active.push_back(fid);
            }
            self.stats.data_pkts_sent += 1;
            let gen = self.flows[fid as usize].rto_gen[seq as usize];
            self.heap.push(
                self.now + self.cfg.rto,
                EventKind::Rto {
                    flow: fid,
                    seq,
                    attempt: 0,
                    gen,
                },
            );
            return Some(pkt);
        }
        None
    }

    fn handle_tx_done(&mut self, link: LinkId) {
        let pkt = self.links[link.idx()]
            .current
            .take()
            .expect("TxDone without current packet");
        let wire = self.wire_size(&pkt);
        {
            let l = &mut self.links[link.idx()];
            l.txing = false;
            l.txed_pkts += 1;
            l.txed_bytes += wire;
            debug_assert!(l.queued_bytes >= wire, "in-flight accounting underflow");
            l.queued_bytes -= wire;
        }
        self.stats.pkts_txed += 1;
        // Release PFC budget the packet held at this node.
        self.pfc_release(link, &pkt, wire);
        // Silent-fault sampling: the packet burned wire time; does it arrive?
        let dropped = match self.links[link.idx()].fault {
            Some(fault) if fault.is_silent() => {
                let dst_leaf = self.topo.leaf_of(pkt.dst) as u16;
                fault.drops(&pkt, dst_leaf, &mut self.rng.fault)
            }
            _ => false,
        };
        if dropped {
            self.stats.drop(DropCause::SilentFault);
            self.trace.push(
                self.now,
                TraceEvent::Drop {
                    link,
                    cause: DropCause::SilentFault,
                    flow: match pkt.kind {
                        PacketKind::Data { flow, .. } => Some(flow),
                        _ => None,
                    },
                },
            );
        } else if self
            .shard
            .as_ref()
            .is_some_and(|c| c.plan.link_dst_owner(&self.topo, link) != c.shard)
        {
            // The far end belongs to another shard: hand the packet to
            // the coordinator with its precomputed arrival time instead
            // of the local pipes. Cross-shard links have latency >= the
            // plan's lookahead, so the arrival always lands in a later
            // window.
            let at = self.now + self.topo.links[link.idx()].latency;
            let now_ns = self.now.as_ns();
            let has_rec = self.recorder.is_some();
            let c = self.shard.as_mut().expect("checked above");
            if has_rec {
                c.wire_log.push((link.idx() as u32, now_ns, at.as_ns()));
            }
            c.outbox.pkts.push(RemotePkt { at, link, pkt });
        } else {
            // Pipe insert — the surviving packet goes on the wire. A
            // sequence number is reserved here, exactly where the old
            // per-packet `Delivery` push consumed one, so every other
            // event's tie-break is unchanged. Only an *empty* pipe arms
            // the front; otherwise the FIFO absorbs the packet and the
            // scheduler sees no traffic at all.
            let latency = self.topo.links[link.idx()].latency;
            let at = self.now + latency;
            let seq = self.heap.reserve_seq();
            let class = self.link_pipe[link.idx()];
            let pipe = &mut self.pipes[class as usize];
            debug_assert!(
                pipe.back().is_none_or(|b| (b.at, b.seq) < (at, seq)),
                "pipe arrivals must be FIFO"
            );
            if pipe.is_empty() {
                self.front.arm(PipeFront {
                    at,
                    seq,
                    pipe: class,
                });
            }
            pipe.push_back(InFlight { at, seq, link, pkt });
            self.links[link.idx()].inflight += 1;
            self.in_flight_pkts += 1;
        }
        self.try_start_tx(link);
    }

    /// Decrement PFC ingress accounting for a packet leaving (or being
    /// dropped from) the buffer of the node that transmits `out_link`;
    /// send RESUME upstream if we fall below XON.
    fn pfc_release(&mut self, out_link: LinkId, pkt: &Packet, wire: u64) {
        if !self.cfg.pfc.enabled {
            return;
        }
        let Some(in_link) = pkt.ingress else { return };
        let NodeId::Switch(sw) = self.topo.links[out_link.idx()].src else {
            return;
        };
        let port = self.topo.links[in_link.idx()].dst_port as usize;
        let q = pkt.prio.idx();
        let s = &mut self.switches[sw.idx()];
        debug_assert!(s.ingress_usage[port][q] >= wire, "pfc accounting underflow");
        s.ingress_usage[port][q] -= wire;
        if s.pause_sent[port][q] && s.ingress_usage[port][q] <= self.cfg.pfc.xon_bytes {
            s.pause_sent[port][q] = false;
            self.stats.pfc_resumes += 1;
            self.push_pfc(in_link, q as u8, false);
        }
    }

    /// Schedule a PFC pause/resume frame taking effect at `in_link`'s
    /// transmitter one reverse-link latency from now. If that transmitter
    /// lives in another shard the frame crosses via the outbox.
    fn push_pfc(&mut self, in_link: LinkId, prio: u8, pause: bool) {
        let delay = self.topo.links[self.topo.peer[in_link.idx()].idx()].latency;
        let at = self.now + delay;
        if self
            .shard
            .as_ref()
            .is_some_and(|c| c.plan.link_owner(&self.topo, in_link) != c.shard)
        {
            self.shard
                .as_mut()
                .expect("checked above")
                .outbox
                .pfcs
                .push(RemotePfc {
                    at,
                    link: in_link,
                    prio,
                    pause,
                });
        } else {
            self.heap.push(
                at,
                EventKind::Pfc {
                    link: in_link,
                    prio,
                    pause,
                },
            );
        }
    }

    fn handle_pfc(&mut self, link: LinkId, prio: u8, pause: bool) {
        let q = prio as usize;
        let was = self.links[link.idx()].paused[q];
        // Pause/resume frames strictly alternate per (link, priority): the
        // downstream switch's `pause_sent` bookkeeping sends a resume only
        // while a pause is outstanding and vice versa.
        debug_assert_ne!(was, pause, "unpaired PFC frame on {link:?} prio {prio}");
        if pause {
            self.links[link.idx()].paused_since[q] = self.now;
        } else if was {
            let pause_ns = self
                .now
                .as_ns()
                .saturating_sub(self.links[link.idx()].paused_since[q].as_ns());
            self.stats.pfc_pause_ns[q] += pause_ns;
            if let Some(rec) = self.recorder.as_mut() {
                rec.on_pfc_pause_ns(prio, pause_ns);
            }
        }
        self.links[link.idx()].paused[q] = pause;
        self.trace.push(
            self.now,
            TraceEvent::PfcState {
                link,
                prio,
                paused: pause,
            },
        );
        if !pause {
            self.try_start_tx(link);
        }
    }

    fn handle_delivery(&mut self, link: LinkId, pkt: Packet) {
        {
            let l = &mut self.links[link.idx()];
            l.delivered_pkts += 1;
            l.delivered_bytes += pkt.size as u64;
        }
        match self.topo.links[link.idx()].dst {
            NodeId::Switch(sw) => self.switch_receive(sw, link, pkt),
            NodeId::Host(h) => self.host_receive(h, pkt),
        }
    }

    fn switch_receive(&mut self, sw: SwitchId, in_link: LinkId, mut pkt: Packet) {
        // FlowPulse counters: tagged data arriving at a monitored ingress —
        // spine→leaf ports at leaves, core→agg ports at 3-level aggs.
        match self.topo.links[in_link.idx()].class {
            LinkClass::SpineDown { vspine, leaf } if pkt.is_data() => {
                if let Some(tag) = pkt.tag {
                    self.counters.record(
                        leaf,
                        vspine,
                        tag,
                        pkt.src_leaf as u32,
                        pkt.size as u64,
                        self.now,
                    );
                }
            }
            LinkClass::CoreDown { core, agg } if pkt.is_data() => {
                if let Some(tag) = pkt.tag {
                    let k = core % self.topo.cores_per_group.max(1);
                    self.agg_counters.record(
                        agg,
                        k,
                        tag,
                        pkt.src_leaf as u32,
                        pkt.size as u64,
                        self.now,
                    );
                }
            }
            _ => {}
        }
        match self.route(sw, &pkt, in_link) {
            Some(out_link) => {
                pkt.ingress = Some(in_link);
                self.enqueue(out_link, pkt);
            }
            None => {
                self.stats.drop(DropCause::NoRoute);
                self.trace.push(
                    self.now,
                    TraceEvent::Drop {
                        link: in_link,
                        cause: DropCause::NoRoute,
                        flow: match pkt.kind {
                            PacketKind::Data { flow, .. } => Some(flow),
                            _ => None,
                        },
                    },
                );
            }
        }
    }

    /// Pick the egress link for `pkt` at switch `sw`.
    fn route(&mut self, sw: SwitchId, pkt: &Packet, in_link: LinkId) -> Option<LinkId> {
        match self.topo.switch_kind[sw.idx()] {
            SwitchKind::Leaf(l) => {
                let dst_leaf = self.topo.leaf_of(pkt.dst);
                if dst_leaf == l {
                    let down = self.topo.host_down[pkt.dst.idx()];
                    return self.links[down.idx()].admin_up.then_some(down);
                }
                // Upstream: adaptive per-packet spray over valid uplinks.
                self.spray_among(sw, SprayTable::Up(dst_leaf), pkt)
            }
            SwitchKind::Spine(g) => {
                let dst_leaf = self.topo.leaf_of(pkt.dst);
                match self.topo.links[in_link.idx()].class {
                    LinkClass::LeafUp { vspine, .. } => {
                        if !self.topo.is_three_level() {
                            // 2-level: down the same plane, deterministic.
                            let down = self.topo.downlink(vspine, dst_leaf);
                            return self.links[down.idx()].admin_up.then_some(down);
                        }
                        let my_pod = g / self.topo.spec.spines;
                        let dst_pod = self.topo.pod_of_leaf(dst_leaf);
                        if dst_pod == my_pod {
                            // Intra-pod: straight down to the leaf.
                            let down = self.topo.downlink(vspine, dst_leaf);
                            self.links[down.idx()].admin_up.then_some(down)
                        } else {
                            // Cross-pod: second spray stage over the core
                            // group, mirroring the leaf's logic.
                            self.spray_among(sw, SprayTable::Core(dst_pod), pkt)
                        }
                    }
                    LinkClass::CoreDown { .. } => {
                        // Final descent: agg g (within-pod index) → leaf.
                        let a = g % self.topo.spec.spines;
                        let down = self.topo.downlink(a, dst_leaf);
                        self.links[down.idx()].admin_up.then_some(down)
                    }
                    c => unreachable!("agg ingress must be LeafUp/CoreDown, got {c:?}"),
                }
            }
            SwitchKind::Core(c) => {
                // Deterministic: one downlink per pod.
                let dst_pod = self.topo.pod_of_leaf(self.topo.leaf_of(pkt.dst));
                let down = self.topo.core_downlink(c, dst_pod);
                self.links[down.idx()].admin_up.then_some(down)
            }
        }
    }

    /// Enqueue `pkt` on `out_link`'s egress queue, charge PFC budget, and
    /// kick the transmitter.
    fn enqueue(&mut self, out_link: LinkId, mut pkt: Packet) {
        if !self.links[out_link.idx()].admin_up {
            self.stats.drop(DropCause::AdminDown);
            return;
        }
        // ECN: CE-mark data packets entering a standing queue. Gated on
        // the backend actually consuming the echo so classic policies run
        // the pre-feedback byte path unchanged.
        if self.spray_feedback
            && !pkt.ce
            && pkt.is_data()
            && self.links[out_link.idx()].queued_bytes >= self.cfg.ecn_threshold
        {
            pkt.ce = true;
        }
        let wire = self.wire_size(&pkt);
        let q = pkt.prio.idx();
        {
            let l = &mut self.links[out_link.idx()];
            l.queues[q].push_back(pkt);
            l.queued_bytes += wire;
            if l.queued_bytes > self.stats.max_queue_bytes {
                self.stats.max_queue_bytes = l.queued_bytes;
            }
        }
        // PFC charge at the owning switch.
        if self.cfg.pfc.enabled {
            if let Some(in_link) = pkt.ingress {
                if let NodeId::Switch(sw) = self.topo.links[out_link.idx()].src {
                    let port = self.topo.links[in_link.idx()].dst_port as usize;
                    let s = &mut self.switches[sw.idx()];
                    s.ingress_usage[port][q] += wire;
                    if s.ingress_usage[port][q] >= self.cfg.pfc.xoff_bytes && !s.pause_sent[port][q]
                    {
                        s.pause_sent[port][q] = true;
                        self.stats.pfc_pauses += 1;
                        self.push_pfc(in_link, q as u8, true);
                    }
                }
            }
        }
        self.try_start_tx(out_link);
    }

    // ------------------------------------------------------------------
    // Host / transport
    // ------------------------------------------------------------------

    fn host_receive(&mut self, h: HostId, pkt: Packet) {
        // Wire packets carry trial-global flow ids; translate to the
        // local table (identity on unsharded simulators).
        match pkt.kind {
            PacketKind::Data { flow, seq } => {
                let flow = self.local_fid(flow);
                self.receive_data(h, flow, seq, pkt.size, pkt.ce)
            }
            PacketKind::Ack { flow, block } => {
                let flow = self.local_fid(flow);
                self.receive_ack(h, flow, block)
            }
        }
    }

    fn receive_data(&mut self, h: HostId, flow: FlowId, seq: u32, size: u32, ce: bool) {
        debug_assert_eq!(self.flows[flow as usize].dst, h, "data at wrong host");
        self.stats.data_pkts_delivered += 1;
        let (newly, completed) = {
            let f = &mut self.flows[flow as usize];
            let newly = f.rcvd.set(seq);
            let completed = newly && f.rcvd.full();
            if completed {
                f.completed_at = Some(self.now);
            }
            (newly, completed)
        };
        if newly {
            self.stats.bytes_delivered += size as u64;
        } else {
            self.stats.dup_pkts_delivered += 1;
        }
        if completed {
            self.stats.flows_completed += 1;
            if let Some(rec) = self.recorder.as_mut() {
                let created = self.flows[flow as usize].created_at;
                rec.on_fct_ns(self.now.as_ns().saturating_sub(created.as_ns()));
            }
        }
        // Always (re-)acknowledge, even duplicates — the sender may be
        // retransmitting because our earlier ACK was lost.
        self.accumulate_ack(flow, seq, ce);
        if completed {
            self.with_app(|app, sim| app.on_message_complete(sim, flow));
        }
    }

    fn accumulate_ack(&mut self, flow: FlowId, seq: u32, ce: bool) {
        let coalesce = self.cfg.ack_coalesce;
        let mut flush_block: Option<AckBlock> = None;
        let mut schedule_flush = false;
        {
            let f = &mut self.flows[flow as usize];
            // Cumulative watermark: lowest sequence not yet received.
            let cum = f.rcvd.first_clear().unwrap_or(f.npkts);
            match &mut f.pending_ack {
                None => {
                    let mut a = AckAccum::new(seq, ce);
                    if coalesce <= 1 {
                        flush_block = Some(a.block(cum));
                        f.pending_ack = None;
                    } else {
                        a.flush_scheduled = true;
                        f.pending_ack = Some(a);
                        schedule_flush = true;
                    }
                }
                Some(a) => {
                    if !a.add(seq, ce) {
                        // Window overflow: emit the old block, restart.
                        flush_block = Some(a.block(cum));
                        let had_timer = a.flush_scheduled;
                        let mut na = AckAccum::new(seq, ce);
                        na.flush_scheduled = had_timer;
                        *a = na;
                    } else if a.count() >= coalesce {
                        flush_block = Some(a.block(cum));
                        f.pending_ack = None;
                    }
                }
            }
        }
        if let Some(block) = flush_block {
            self.send_ack(flow, block);
        }
        if schedule_flush {
            self.heap.push(
                self.now + self.cfg.ack_flush_delay,
                EventKind::AckFlush { flow },
            );
        }
    }

    fn handle_ack_flush(&mut self, flow: FlowId) {
        let block = {
            let f = &mut self.flows[flow as usize];
            let cum = f.rcvd.first_clear().unwrap_or(f.npkts);
            f.pending_ack.take().map(|a| a.block(cum))
        };
        if let Some(b) = block {
            self.send_ack(flow, b);
        }
    }

    fn send_ack(&mut self, flow: FlowId, block: AckBlock) {
        let f = &self.flows[flow as usize];
        let pkt = Packet {
            kind: PacketKind::Ack {
                flow: f.global,
                block,
            },
            src: f.dst,
            dst: f.src,
            size: self.cfg.ack_size,
            prio: Priority::CONTROL,
            tag: None,
            src_leaf: self.hosts[f.dst.idx()].leaf as u16,
            ingress: None,
            ce: false,
        };
        self.stats.acks_sent += 1;
        let up = self.topo.host_up[f.dst.idx()];
        self.enqueue(up, pkt);
    }

    fn receive_ack(&mut self, h: HostId, flow: FlowId, block: AckBlock) {
        debug_assert_eq!(self.flows[flow as usize].src, h, "ack at wrong host");
        let feedback = self.spray_feedback;
        let mut echoes = std::mem::take(&mut self.scratch_echoes);
        echoes.clear();
        let (global, pair, newly_done) = {
            let f = &mut self.flows[flow as usize];
            let was_done = f.fully_acked();
            // Cumulative watermark first (heals any previously lost ACKs)…
            let cum = block.cum.min(f.npkts);
            while f.cum_acked < cum {
                if f.acked.set(f.cum_acked) {
                    // Newly acknowledged: lazily cancel the pending timer.
                    f.rto_gen[f.cum_acked as usize] += 1;
                    if feedback {
                        // Watermark-healed segments carry no CE echo (a
                        // lost ACK loses its marks; clean is the safe
                        // reading — REPS just recycles one more entropy).
                        echoes.push((f.cum_acked, false));
                    }
                }
                f.cum_acked += 1;
            }
            // …then the selective block.
            for seq in block.seqs() {
                if seq < f.npkts && f.acked.set(seq) {
                    f.rto_gen[seq as usize] += 1;
                    if feedback {
                        echoes.push((seq, block.ce(seq)));
                    }
                }
            }
            (f.global, (f.src.0, f.dst.0), !was_done && f.fully_acked())
        };
        // Echo each newly acknowledged segment to the source leaf's
        // sprayer: a clean ACK proves the path, a CE-marked one flags it.
        if !echoes.is_empty() {
            let leaf = self.hosts[h.idx()].leaf as usize;
            let sprayer = &mut self.switches[leaf].sprayer;
            for &(seq, ce) in echoes.iter() {
                let echo = if ce {
                    spray::SprayEcho::Ecn
                } else {
                    spray::SprayEcho::Ack
                };
                sprayer.on_feedback(global, pair, seq, echo);
            }
        }
        self.scratch_echoes = echoes;
        if newly_done {
            self.with_app(|app, sim| app.on_flow_acked(sim, flow));
        }
    }

    /// True if a popped RTO timer no longer matters: the flow already gave
    /// up, the segment was acknowledged, or its generation was bumped
    /// (which [`Self::receive_ack`] does on every fresh acknowledgement).
    fn rto_is_stale(&self, flow: FlowId, seq: u32, gen: u32) -> bool {
        let f = &self.flows[flow as usize];
        f.failed || f.acked.get(seq) || f.rto_gen[seq as usize] != gen
    }

    fn handle_rto(&mut self, flow: FlowId, seq: u32, attempt: u32) {
        {
            // Defense in depth: `dispatch` already discards stale timers.
            let f = &self.flows[flow as usize];
            if f.failed || f.acked.get(seq) {
                return;
            }
        }
        if attempt >= self.cfg.rto_max_attempts {
            self.flows[flow as usize].failed = true;
            self.stats.flows_failed += 1;
            self.trace.push(self.now, TraceEvent::FlowFailed { flow });
            self.with_app(|app, sim| app.on_flow_failed(sim, flow));
            return;
        }
        let (src, pkt) = {
            let f = &self.flows[flow as usize];
            let pkt = Packet {
                kind: PacketKind::Data {
                    flow: f.global,
                    seq,
                },
                src: f.src,
                dst: f.dst,
                size: f.seg_size(seq),
                prio: f.prio,
                tag: f.tag,
                src_leaf: self.hosts[f.src.idx()].leaf as u16,
                ingress: None,
                ce: false,
            };
            (f.src, pkt)
        };
        self.stats.retransmits += 1;
        self.flows[flow as usize].retx += 1;
        if let Some(rec) = self.recorder.as_mut() {
            rec.on_rto_attempt(attempt);
        }
        // Loss echo to the source leaf's sprayer *before* the retransmit
        // is enqueued, so the fresh spray decision re-records the segment
        // under its new entropy.
        if self.spray_feedback {
            let f = &self.flows[flow as usize];
            let (global, pair) = (f.global, (f.src.0, f.dst.0));
            let leaf = self.hosts[src.idx()].leaf as usize;
            self.switches[leaf]
                .sprayer
                .on_feedback(global, pair, seq, spray::SprayEcho::Timeout);
        }
        self.enqueue(self.topo.host_up[src.idx()], pkt);
        let exp = (attempt + 1).min(self.cfg.rto_backoff_cap);
        let backoff = self.cfg.rto.mul_f64(self.cfg.rto_backoff.powi(exp as i32));
        let gen = self.flows[flow as usize].rto_gen[seq as usize];
        self.heap.push(
            self.now + backoff,
            EventKind::Rto {
                flow,
                seq,
                attempt: attempt + 1,
                gen,
            },
        );
    }

    // ------------------------------------------------------------------
    // Inspection helpers
    // ------------------------------------------------------------------

    /// True if every posted flow has been fully received.
    pub fn all_flows_complete(&self) -> bool {
        self.flows.iter().all(|f| f.is_complete())
    }

    /// Pending work count: scheduled events plus packets on the wire
    /// (0 = idle).
    pub fn pending_events(&self) -> usize {
        self.heap.len() + self.in_flight_pkts
    }

    /// Which scheduler backend this simulator runs on.
    pub fn sched_kind(&self) -> SchedKind {
        self.heap.kind()
    }

    /// Scheduler occupancy counters accumulated so far (telemetry only —
    /// never part of trial results, which are backend-independent).
    pub fn sched_stats(&self) -> SchedStats {
        self.heap.stats()
    }
}

/// Compact endpoint label for telemetry track names.
fn node_label(n: NodeId) -> String {
    match n {
        NodeId::Host(h) => format!("host{}", h.0),
        NodeId::Switch(s) => format!("sw{}", s.0),
    }
}

/// The telemetry link descriptions for a topology — what
/// [`Simulator::set_recorder`] hands to [`Recorder::on_topology`]. Public
/// so the sharded-telemetry replay path can describe the fabric to the
/// user's recorder without building a simulator.
pub fn link_metas(topo: &Topology) -> Vec<LinkMeta> {
    topo.links
        .iter()
        .enumerate()
        .map(|(i, l)| LinkMeta {
            id: i as u32,
            name: format!("{}->{}", node_label(l.src), node_label(l.dst)),
            bytes_per_sec: l.bandwidth.bps() / 8,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FatTreeSpec;

    fn small_topo() -> Topology {
        Topology::fat_tree(FatTreeSpec {
            leaves: 4,
            spines: 2,
            hosts_per_leaf: 1,
            ..Default::default()
        })
    }

    fn sim(seed: u64) -> Simulator {
        Simulator::new(small_topo(), SimConfig::default(), seed)
    }

    #[test]
    fn single_message_delivers() {
        let mut s = sim(1);
        let f = s.post_message(HostId(0), HostId(2), 100_000, None, Priority::MEASURED);
        let r = s.run();
        assert_eq!(r.reason, RunReason::Drained);
        assert!(s.flows[f as usize].is_complete());
        assert!(s.flows[f as usize].fully_acked());
        assert_eq!(s.stats.bytes_delivered, 100_000);
        assert_eq!(s.stats.flows_completed, 1);
        assert_eq!(s.stats.flows_failed, 0);
        assert_eq!(s.stats.total_drops(), 0);
    }

    #[test]
    fn pipeline_deliveries_dominate_and_account_exactly() {
        // Recorder-free drained run: every scheduler pop is either an
        // engine event that was not a pipeline delivery, or a stale RTO
        // discarded by lazy cancellation. Deliveries themselves never
        // round-trip the scheduler — that is the point of the pipelines.
        let mut s = sim(17);
        s.post_message(HostId(0), HostId(2), 500_000, None, Priority::MEASURED);
        let r = s.run();
        assert_eq!(r.reason, RunReason::Drained);
        assert_eq!(s.pending_events(), 0);
        let ss = s.sched_stats();
        assert_eq!(ss.pushes, ss.pops, "drained run: pushes == pops");
        assert_eq!(
            ss.pops,
            s.stats.events - s.stats.pipeline_deliveries + s.stats.rto_stale_skips
        );
        // Roughly one delivery per tx'd packet; in any case a large share
        // of all engine events bypassed the scheduler.
        assert_eq!(s.stats.pipeline_deliveries, s.stats.pkts_txed);
        assert!(s.stats.pipeline_deliveries * 3 > s.stats.events);
    }

    #[test]
    fn local_traffic_stays_under_leaf() {
        // Two hosts under the same leaf: no spine link should carry data.
        let topo = Topology::fat_tree(FatTreeSpec {
            leaves: 2,
            spines: 2,
            hosts_per_leaf: 2,
            ..Default::default()
        });
        let mut s = Simulator::new(topo, SimConfig::default(), 3);
        s.post_message(HostId(0), HostId(1), 50_000, None, Priority::MEASURED);
        s.run();
        assert!(s.all_flows_complete());
        for v in 0..s.topo.n_vspines() as u32 {
            for l in 0..s.topo.n_leaves() as u32 {
                assert_eq!(s.link(s.topo.downlink(v, l)).txed_pkts, 0);
                assert_eq!(s.link(s.topo.uplink(l, v)).txed_pkts, 0);
            }
        }
    }

    #[test]
    fn remote_traffic_sprays_across_all_spines() {
        let mut s = sim(7);
        s.post_message(HostId(0), HostId(3), 4_000_000, None, Priority::MEASURED);
        s.run();
        assert!(s.all_flows_complete());
        // ~977 packets over 2 vspines: both should carry a solid share.
        for v in 0..2u32 {
            let up = s.link(s.topo.uplink(0, v)).txed_pkts;
            assert!(up > 300, "vspine {v} carried only {up}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed| {
            let mut s = sim(seed);
            s.post_message(HostId(1), HostId(2), 1_000_000, None, Priority::MEASURED);
            s.run();
            (
                s.now().as_ns(),
                s.stats.events,
                s.link(s.topo.uplink(1, 0)).txed_pkts,
            )
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).2, 0);
    }

    #[test]
    fn silent_drop_recovers_via_retransmit() {
        let mut s = sim(11);
        // 10% drop on one spine->leaf downlink toward leaf 3.
        let bad = s.topo.downlink(0, 3);
        s.apply_fault_now(
            bad,
            FaultAction::Set(FaultKind::SilentDrop { rate: 0.10 }),
            false,
        );
        let f = s.post_message(HostId(0), HostId(3), 2_000_000, None, Priority::MEASURED);
        let r = s.run();
        assert_eq!(r.reason, RunReason::Drained);
        assert!(s.flows[f as usize].is_complete(), "flow must recover");
        assert!(s.stats.silent_drops() > 0, "fault must have bitten");
        assert!(s.stats.retransmits >= s.stats.silent_drops() / 2);
    }

    #[test]
    fn total_blackhole_still_completes_by_respraying() {
        let mut s = sim(13);
        let bad = s.topo.downlink(1, 2);
        s.apply_fault_now(bad, FaultAction::Set(FaultKind::SilentBlackhole), false);
        let f = s.post_message(HostId(0), HostId(2), 500_000, None, Priority::MEASURED);
        s.run();
        assert!(s.flows[f as usize].is_complete());
        assert!(s.stats.silent_drops() > 0);
    }

    #[test]
    fn admin_down_removes_from_spraying() {
        let mut s = sim(17);
        let up = s.topo.uplink(0, 0);
        s.apply_fault_now(up, FaultAction::Set(FaultKind::AdminDown), true);
        assert_eq!(s.valid_uplinks(0, 3).len(), 1);
        s.post_message(HostId(0), HostId(3), 1_000_000, None, Priority::MEASURED);
        s.run();
        assert!(s.all_flows_complete());
        assert_eq!(s.link(s.topo.uplink(0, 0)).txed_pkts, 0);
        // Everything went over vspine 1.
        assert!(s.link(s.topo.uplink(0, 1)).txed_pkts > 200);
    }

    #[test]
    fn remote_admin_down_excludes_spine_for_that_dst_only() {
        let mut s = sim(19);
        // Down the spine0 -> leaf3 downlink (both directions of that cable).
        let down = s.topo.downlink(0, 3);
        s.apply_fault_now(down, FaultAction::Set(FaultKind::AdminDown), true);
        // leaf0 -> leaf3 must avoid vspine 0...
        assert_eq!(s.valid_uplinks(0, 3), &[s.topo.uplink(0, 1)]);
        // ...but leaf0 -> leaf2 still uses both.
        assert_eq!(s.valid_uplinks(0, 2).len(), 2);
    }

    #[test]
    fn fault_heals_and_routing_returns() {
        let mut s = sim(23);
        let up = s.topo.uplink(2, 1);
        s.apply_fault_now(up, FaultAction::Set(FaultKind::AdminDown), true);
        assert_eq!(s.valid_uplinks(2, 0).len(), 1);
        s.apply_fault_now(up, FaultAction::Clear, true);
        assert_eq!(s.valid_uplinks(2, 0).len(), 2);
    }

    #[test]
    fn scheduled_control_applies_on_the_engine_clock() {
        use crate::control::{ControlAction, ControlVerb};
        let mut s = sim(37);
        let cable = s.topo.uplink(0, 0);
        let down_at = SimTime::from_ns(50_000);
        let up_at = SimTime::from_ns(150_000);
        s.schedule_control(down_at, ControlAction::admin_down_cable(cable));
        s.schedule_control(up_at, ControlAction::restore_cable(cable));
        s.post_message(HostId(0), HostId(3), 2_000_000, None, Priority::MEASURED);
        s.run();
        assert!(s.all_flows_complete());
        // Applied exactly at their scheduled times, in order.
        let applied = s.applied_controls();
        assert_eq!(applied.len(), 2);
        assert_eq!(applied[0].at, down_at);
        assert_eq!(applied[0].action.verb, ControlVerb::AdminDown);
        assert_eq!(applied[1].at, up_at);
        assert_eq!(applied[1].action.verb, ControlVerb::Restore);
        // The restore returned the cable to routing.
        assert_eq!(s.valid_uplinks(0, 3).len(), 2);
        // Both transitions landed in the trace ring.
        let controls = s
            .trace
            .to_records()
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::ControlApplied { link } if link == cable))
            .count();
        assert_eq!(controls, 2);
    }

    #[test]
    fn dst_blackhole_only_affects_target_leaf() {
        let mut s = sim(29);
        // Blackhole packets to leaf 3 on leaf0's uplink to vspine 0.
        let up = s.topo.uplink(0, 0);
        s.apply_fault_now(
            up,
            FaultAction::Set(FaultKind::DstBlackhole { dst_leaf: 3 }),
            false,
        );
        let fa = s.post_message(HostId(0), HostId(3), 400_000, None, Priority::MEASURED);
        let fb = s.post_message(HostId(0), HostId(2), 400_000, None, Priority::MEASURED);
        s.run();
        assert!(s.flows[fa as usize].is_complete());
        assert!(s.flows[fb as usize].is_complete());
        // Flow to leaf 3 suffered; flow to leaf 2 did not lose anything.
        assert!(s.stats.silent_drops() > 0);
    }

    #[test]
    fn counters_only_count_tagged_data() {
        let mut s = sim(31);
        let tag = CollectiveTag { job: 9, iter: 0 };
        s.post_message(HostId(0), HostId(3), 300_000, Some(tag), Priority::MEASURED);
        s.post_message(HostId(1), HostId(2), 300_000, None, Priority::BACKGROUND);
        s.run();
        let c = s.counters.get(9, 0).expect("tagged iteration recorded");
        // All tagged bytes landed at leaf 3 (the destination's leaf).
        let leaf3: u64 = c.leaf_ports(3).iter().sum();
        assert_eq!(leaf3, 300_000);
        // No other leaf counted tagged traffic.
        for l in [0u32, 1, 2] {
            assert_eq!(c.leaf_ports(l).iter().sum::<u64>(), 0, "leaf {l}");
        }
        // Untagged background flow produced no counter entries at all.
        assert_eq!(s.counters.keys(), vec![(9, 0)]);
        // Per-source attribution: everything from leaf 0.
        assert_eq!(
            c.port_src_bytes(3, 0, 0) + c.port_src_bytes(3, 1, 0),
            300_000
        );
    }

    #[test]
    fn wake_events_reach_app() {
        use std::cell::Cell;
        use std::rc::Rc;
        struct Waker {
            hits: Rc<Cell<u32>>,
        }
        impl Application for Waker {
            fn on_start(&mut self, sim: &mut Simulator) {
                sim.schedule_wake(SimTime::from_ns(100), HostId(0), 7);
                sim.schedule_wake(SimTime::from_ns(200), HostId(1), 8);
            }
            fn on_wake(&mut self, _sim: &mut Simulator, _host: HostId, token: u64) {
                self.hits.set(self.hits.get() + token as u32);
            }
        }
        let hits = Rc::new(Cell::new(0));
        let mut s = sim(37);
        s.set_app(Box::new(Waker { hits: hits.clone() }));
        s.run();
        assert_eq!(hits.get(), 15);
        assert_eq!(s.now().as_ns(), 200);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut s = sim(41);
        s.post_message(HostId(0), HostId(3), 10_000_000, None, Priority::MEASURED);
        let r = s.run_until(SimTime::from_us(5));
        assert_eq!(r.reason, RunReason::TimeLimit);
        assert_eq!(s.now(), SimTime::from_us(5));
        assert!(!s.all_flows_complete());
        let r2 = s.run();
        assert_eq!(r2.reason, RunReason::Drained);
        assert!(s.all_flows_complete());
    }

    #[test]
    fn event_limit_stops_runaway() {
        let mut s = sim(43);
        s.cfg.max_events = 50;
        s.post_message(HostId(0), HostId(3), 10_000_000, None, Priority::MEASURED);
        let r = s.run();
        assert_eq!(r.reason, RunReason::EventLimit);
    }

    #[test]
    fn scheduled_fault_fires_at_time() {
        let mut s = sim(47);
        let bad = s.topo.downlink(0, 3);
        s.schedule_fault(FaultEvent::set(
            SimTime::from_us(10),
            bad,
            FaultKind::SilentBlackhole,
        ));
        s.schedule_fault(FaultEvent::clear(SimTime::from_us(20), bad));
        s.run();
        assert!(s.link(bad).fault.is_none());
        assert!(s.link(bad).admin_up);
        // Trace captured both transitions.
        let n = s
            .trace
            .records()
            .filter(|(_, e)| {
                matches!(
                    e,
                    TraceEvent::FaultSet { .. } | TraceEvent::FaultCleared { .. }
                )
            })
            .count();
        assert_eq!(n, 2);
    }

    #[test]
    fn stale_rto_does_not_retransmit_or_advance_clock() {
        // One tiny segment: its ACK lands long before the 5 µs RTO, so the
        // armed timer must surface as a stale skip — no retransmission, no
        // clock advance to the timer's expiry, no event counted for it.
        let mut s = sim(59);
        s.post_message(HostId(0), HostId(1), 1_000, None, Priority::MEASURED);
        let r = s.run();
        assert_eq!(r.reason, RunReason::Drained);
        assert_eq!(s.stats.retransmits, 0);
        assert_eq!(s.stats.rto_stale_skips, 1, "one armed timer, one skip");
        assert!(
            s.now() < SimTime::ZERO + s.cfg.rto,
            "dead timer advanced the clock to {}",
            s.now()
        );
    }

    #[test]
    fn clean_run_lazily_cancels_every_timer() {
        let mut s = sim(61);
        s.post_message(HostId(0), HostId(3), 1_000_000, None, Priority::MEASURED);
        s.run();
        let npkts = s.flows[0].npkts as u64;
        assert_eq!(s.stats.retransmits, 0);
        // Every segment armed exactly one timer and every one died stale.
        assert_eq!(s.stats.rto_stale_skips, npkts);
    }

    #[test]
    fn stale_skips_do_not_count_toward_event_budget() {
        // Same drop-recovery scenario twice: the second run's event budget
        // is exactly what the first consumed (+1 headroom for the >= guard).
        // If stale RTO timers were charged as events — dead backoff chains
        // growing `stats.events` — the rerun would hit the limit instead of
        // draining.
        let run = |max_events: u64| {
            let mut s = sim(11);
            s.cfg.max_events = max_events;
            let bad = s.topo.downlink(0, 3);
            s.apply_fault_now(
                bad,
                FaultAction::Set(FaultKind::SilentDrop { rate: 0.10 }),
                false,
            );
            s.post_message(HostId(0), HostId(3), 500_000, None, Priority::MEASURED);
            let r = s.run();
            (r, s.stats.rto_stale_skips, s.stats.retransmits)
        };
        let (r1, skips, retx) = run(u64::MAX);
        assert_eq!(r1.reason, RunReason::Drained);
        assert!(retx > 0, "fault must have forced retransmissions");
        assert!(skips > 0, "acked segments must leave stale timers behind");
        let (r2, skips2, _) = run(r1.events + 1);
        assert_eq!(r2.reason, RunReason::Drained);
        assert_eq!(r2.events, r1.events, "runs must be identical");
        assert_eq!(skips2, skips);
    }

    /// Shared-counter test recorder (hooks tallied through `Rc<Cell>` so
    /// the test keeps a handle after boxing it into the simulator).
    #[derive(Clone, Default)]
    struct CountingRec {
        interval: u64,
        ticks: std::rc::Rc<std::cell::Cell<u64>>,
        samples: std::rc::Rc<std::cell::Cell<u64>>,
        last_t: std::rc::Rc<std::cell::Cell<u64>>,
        fcts: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
        rtos: std::rc::Rc<std::cell::Cell<u64>>,
        pauses: std::rc::Rc<std::cell::Cell<u64>>,
        pause_ns: std::rc::Rc<std::cell::Cell<u64>>,
    }

    impl Recorder for CountingRec {
        fn sample_interval_ns(&self) -> u64 {
            self.interval
        }
        fn on_link_sample(&mut self, t_ns: u64, _link: u32, _s: &LinkSample) {
            self.samples.set(self.samples.get() + 1);
            if self.last_t.get() != t_ns {
                self.last_t.set(t_ns);
                self.ticks.set(self.ticks.get() + 1);
            }
        }
        fn on_fct_ns(&mut self, fct_ns: u64) {
            self.fcts.borrow_mut().push(fct_ns);
        }
        fn on_rto_attempt(&mut self, _attempt: u32) {
            self.rtos.set(self.rtos.get() + 1);
        }
        fn on_pfc_pause_ns(&mut self, _prio: u8, pause_ns: u64) {
            self.pauses.set(self.pauses.get() + 1);
            self.pause_ns.set(self.pause_ns.get() + pause_ns);
        }
    }

    #[test]
    fn sampler_ticks_match_duration_over_interval() {
        const INTERVAL: u64 = 1_000;
        let base_events = {
            let mut s = sim(67);
            s.post_message(HostId(0), HostId(3), 1_000_000, None, Priority::MEASURED);
            s.run();
            s.stats.events
        };
        let mut s = sim(67);
        let rec = CountingRec {
            interval: INTERVAL,
            ..Default::default()
        };
        s.set_recorder(Box::new(rec.clone()));
        s.post_message(HostId(0), HostId(3), 1_000_000, None, Priority::MEASURED);
        let r = s.run();
        assert_eq!(r.reason, RunReason::Drained);
        // Samples land exactly at k*INTERVAL and the final event of the run
        // is the last sampler tick, so tick count == duration / interval.
        assert_eq!(s.now().as_ns() % INTERVAL, 0);
        assert_eq!(rec.ticks.get(), s.now().as_ns() / INTERVAL);
        // Every link is observed on every tick.
        assert_eq!(rec.samples.get(), rec.ticks.get() * s.topo.n_links() as u64);
        // Sampler ticks are not charged as engine events: accounting is
        // identical to the recorder-free run.
        assert_eq!(s.stats.events, base_events);
    }

    #[test]
    fn recorder_sees_flow_completion_times() {
        let mut s = sim(71);
        let rec = CountingRec::default();
        s.set_recorder(Box::new(rec.clone()));
        let f = s.post_message(HostId(0), HostId(2), 100_000, None, Priority::MEASURED);
        s.run();
        let fcts = rec.fcts.borrow();
        assert_eq!(fcts.len(), 1);
        let flow = &s.flows[f as usize];
        let want = flow.completed_at.unwrap().as_ns() - flow.created_at.as_ns();
        assert_eq!(fcts[0], want);
    }

    #[test]
    fn recorder_sees_rto_attempts() {
        let mut s = sim(73);
        let rec = CountingRec::default();
        s.set_recorder(Box::new(rec.clone()));
        let bad = s.topo.downlink(0, 3);
        s.apply_fault_now(
            bad,
            FaultAction::Set(FaultKind::SilentDrop { rate: 0.10 }),
            false,
        );
        s.post_message(HostId(0), HostId(3), 2_000_000, None, Priority::MEASURED);
        s.run();
        assert!(s.stats.retransmits > 0);
        assert_eq!(rec.rtos.get(), s.stats.retransmits);
    }

    #[test]
    fn pfc_pause_durations_accumulate_per_priority() {
        // 4-to-1 incast through a 2-leaf fabric: ingress accounting at the
        // destination leaf must cross XOFF and pause the spine downlinks.
        let topo = Topology::fat_tree(FatTreeSpec {
            leaves: 2,
            spines: 2,
            hosts_per_leaf: 4,
            ..Default::default()
        });
        let mut s = Simulator::new(topo, SimConfig::default(), 83);
        let rec = CountingRec::default();
        s.set_recorder(Box::new(rec.clone()));
        for h in 4..8 {
            s.post_message(HostId(h), HostId(0), 4_000_000, None, Priority::MEASURED);
        }
        s.run();
        assert!(s.all_flows_complete());
        assert!(s.stats.pfc_pauses > 0, "incast must trigger PFC");
        // A drained run resumes every pause, so durations cover every
        // interval and land on the traffic's priority only.
        assert_eq!(s.stats.pfc_resumes, s.stats.pfc_pauses);
        let q = Priority::MEASURED.idx();
        assert!(s.stats.pfc_pause_ns[q] > 0);
        for (p, &ns) in s.stats.pfc_pause_ns.iter().enumerate() {
            if p != q {
                assert_eq!(ns, 0, "no pauses expected at priority {p}");
            }
        }
        // The recorder's histogram feed saw exactly the completed intervals.
        assert_eq!(rec.pauses.get(), s.stats.pfc_resumes);
        assert_eq!(rec.pause_ns.get(), s.stats.pfc_pause_ns[q]);
    }

    #[test]
    fn acks_are_coalesced() {
        let mut s = sim(53);
        s.post_message(HostId(0), HostId(1), 4_000_000, None, Priority::MEASURED);
        s.run();
        // ~977 data packets; with 8-way coalescing ACK count should sit well
        // below data count.
        assert!(
            s.stats.acks_sent * 4 < s.stats.data_pkts_sent,
            "acks={} data={}",
            s.stats.acks_sent,
            s.stats.data_pkts_sent
        );
    }
}
