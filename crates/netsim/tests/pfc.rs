//! PFC backpressure and priority-scheduling integration tests.
//!
//! The fabric is lossless (paper §2): congestion must produce *pauses*,
//! never drops. These tests build a deliberate incast to exercise the
//! XOFF/XON machinery, and verify strict-priority isolation of the
//! measured traffic class.

use fp_netsim::prelude::*;

fn incast_fabric() -> Topology {
    Topology::fat_tree(FatTreeSpec {
        leaves: 4,
        spines: 2,
        hosts_per_leaf: 4,
        ..Default::default()
    })
}

#[test]
fn incast_triggers_pfc_not_drops() {
    let topo = incast_fabric();
    let mut cfg = SimConfig::default();
    // Small thresholds so the incast trips XOFF quickly.
    cfg.pfc.xoff_bytes = 32 * 1024;
    cfg.pfc.xon_bytes = 16 * 1024;
    let mut sim = Simulator::new(topo, cfg, 17);
    // 12 remote hosts all blast host 0: the leaf0→host0 downlink is a 12:1
    // bottleneck, its egress queue must push back on the spine ingress.
    let n = sim.topo.n_hosts() as u32;
    for src in 4..n {
        sim.post_message(HostId(src), HostId(0), 2_000_000, None, Priority::MEASURED);
    }
    let r = sim.run();
    assert_eq!(r.reason, fp_netsim::sim::RunReason::Drained);
    assert!(sim.all_flows_complete());
    assert_eq!(sim.stats.total_drops(), 0, "lossless fabric must not drop");
    assert!(
        sim.stats.pfc_pauses > 0,
        "a 12:1 incast with small thresholds must trigger PFC"
    );
    assert!(
        sim.stats.pfc_resumes > 0,
        "queues must drain and resume after the pause"
    );
    // Trace captured the pause transitions.
    let pauses = sim
        .trace
        .records()
        .filter(|(_, e)| matches!(e, fp_netsim::trace::TraceEvent::PfcState { .. }))
        .count();
    assert!(pauses > 0);
}

#[test]
fn pfc_can_be_disabled() {
    let topo = incast_fabric();
    let mut cfg = SimConfig::default();
    cfg.pfc.enabled = false;
    let mut sim = Simulator::new(topo, cfg, 18);
    let n = sim.topo.n_hosts() as u32;
    for src in 4..n {
        sim.post_message(HostId(src), HostId(0), 1_000_000, None, Priority::MEASURED);
    }
    sim.run();
    // Queues are unbounded, so still no drops — just no backpressure.
    assert!(sim.all_flows_complete());
    assert_eq!(sim.stats.pfc_pauses, 0);
    assert_eq!(sim.stats.total_drops(), 0);
}

#[test]
fn strict_priority_isolates_the_measured_class() {
    // One bottleneck link, one measured flow racing a pile of background
    // flows posted *first*: the measured flow must finish far earlier than
    // fair sharing would allow.
    let topo = Topology::fat_tree(FatTreeSpec {
        leaves: 2,
        spines: 1,
        hosts_per_leaf: 2,
        ..Default::default()
    });
    let mut sim = Simulator::new(topo, SimConfig::default(), 19);
    // Background: host1 floods host2 through the single spine.
    for _ in 0..8 {
        sim.post_message(HostId(1), HostId(2), 4_000_000, None, Priority::BACKGROUND);
    }
    // Measured: host0 → host3 shares every fabric link with the flood.
    let m = sim.post_message(HostId(0), HostId(3), 4_000_000, None, Priority::MEASURED);
    sim.run();
    assert!(sim.all_flows_complete());
    let m_done = sim.flows[m as usize].completed_at.unwrap();
    let bg_last = sim
        .flows
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != m as usize)
        .map(|(_, f)| f.completed_at.unwrap())
        .max()
        .unwrap();
    assert!(
        m_done.as_ns() * 3 < bg_last.as_ns(),
        "measured {} vs background tail {}",
        m_done,
        bg_last
    );
}

#[test]
fn pause_state_is_per_priority() {
    // Saturate the BACKGROUND class hard enough to pause it, while a
    // MEASURED flow keeps flowing: pauses must not bleed across classes.
    let topo = incast_fabric();
    let mut cfg = SimConfig::default();
    cfg.pfc.xoff_bytes = 32 * 1024;
    cfg.pfc.xon_bytes = 16 * 1024;
    let mut sim = Simulator::new(topo, cfg, 23);
    let n = sim.topo.n_hosts() as u32;
    for src in 4..n {
        sim.post_message(
            HostId(src),
            HostId(0),
            1_500_000,
            None,
            Priority::BACKGROUND,
        );
    }
    let m = sim.post_message(HostId(5), HostId(1), 1_500_000, None, Priority::MEASURED);
    sim.run();
    assert!(sim.all_flows_complete());
    assert_eq!(sim.stats.total_drops(), 0);
    // The measured flow to an *uncongested* destination finished well
    // before the incast tail despite sharing its source host and leaf.
    let m_done = sim.flows[m as usize].completed_at.unwrap();
    let tail = sim
        .flows
        .iter()
        .map(|f| f.completed_at.unwrap())
        .max()
        .unwrap();
    assert!(m_done < tail);
}
