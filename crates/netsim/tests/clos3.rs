//! 3-level Clos integration tests (paper §7 "Network Topology").

use fp_netsim::prelude::*;
use fp_netsim::topology::{Clos3Spec, LinkClass, SwitchKind};

fn spec() -> Clos3Spec {
    Clos3Spec {
        pods: 3,
        leaves_per_pod: 2,
        aggs_per_pod: 2,
        cores_per_group: 2,
        hosts_per_leaf: 1,
        ..Default::default()
    }
}

#[test]
fn construction_dimensions() {
    let t = Topology::clos3(spec());
    assert_eq!(t.n_leaves(), 6);
    assert_eq!(t.n_aggs(), 6);
    assert_eq!(t.n_cores(), 4); // 2 groups x 2 cores
    assert_eq!(t.n_hosts(), 6);
    assert_eq!(t.n_vspines(), 2); // monitored leaf ports = aggs per pod
    assert!(t.is_three_level());
    // Links: 6 host pairs + 6 leaves x 2 aggs + 6 aggs x 2 cores, directed.
    assert_eq!(t.n_links(), 2 * (6 + 12 + 12));
    // Switch kinds laid out leaves, aggs, cores.
    assert!(matches!(t.switch_kind[0], SwitchKind::Leaf(0)));
    assert!(matches!(t.switch_kind[6], SwitchKind::Spine(0)));
    assert!(matches!(t.switch_kind[12], SwitchKind::Core(0)));
}

#[test]
fn peers_and_classes_consistent() {
    let t = Topology::clos3(spec());
    for i in 0..t.n_links() {
        let p = t.peer[i];
        assert_eq!(t.peer[p.idx()].idx(), i);
        assert_eq!(t.links[i].src, t.links[p.idx()].dst);
    }
    // agg_up / core_down tables agree with link classes.
    for g in 0..t.n_aggs() as u32 {
        for k in 0..t.cores_per_group {
            match t.links[t.agg_uplink(g, k).idx()].class {
                LinkClass::AggUp { agg, core_k } => {
                    assert_eq!((agg, core_k), (g, k));
                }
                c => panic!("wrong class {c:?}"),
            }
        }
    }
    for c in 0..t.n_cores() as u32 {
        for pod in 0..t.pods {
            match t.links[t.core_downlink(c, pod).idx()].class {
                LinkClass::CoreDown { core, agg } => {
                    assert_eq!(core, c);
                    // the target agg lives in `pod` with the core's group idx
                    let a = c / t.cores_per_group;
                    assert_eq!(agg, t.agg_global(pod, a));
                }
                c => panic!("wrong class {c:?}"),
            }
        }
    }
}

#[test]
fn intra_pod_traffic_never_reaches_cores() {
    let t = Topology::clos3(spec());
    let mut sim = Simulator::new(t, SimConfig::default(), 5);
    // hosts 0 and 1 are both in pod 0.
    sim.post_message(HostId(0), HostId(1), 1_000_000, None, Priority::MEASURED);
    sim.run();
    assert!(sim.all_flows_complete());
    for g in 0..sim.topo.n_aggs() as u32 {
        for k in 0..sim.topo.cores_per_group {
            assert_eq!(sim.link(sim.topo.agg_uplink(g, k)).txed_pkts, 0);
        }
    }
}

#[test]
fn cross_pod_traffic_sprays_both_stages() {
    let t = Topology::clos3(spec());
    let mut sim = Simulator::new(t, SimConfig::default(), 5);
    // host 0 (pod 0) -> host 5 (pod 2).
    sim.post_message(HostId(0), HostId(5), 4_000_000, None, Priority::MEASURED);
    sim.run();
    assert!(sim.all_flows_complete());
    assert_eq!(sim.stats.total_drops(), 0);
    // Both leaf uplinks and, behind each, both core slots carried traffic.
    for a in 0..2u32 {
        assert!(sim.link(sim.topo.uplink(0, a)).txed_pkts > 100);
        let g = sim.topo.agg_global(0, a);
        for k in 0..2u32 {
            assert!(
                sim.link(sim.topo.agg_uplink(g, k)).txed_pkts > 50,
                "agg {g} core slot {k} unused"
            );
        }
    }
}

#[test]
fn agg_level_counters_record_cross_pod_tags() {
    let t = Topology::clos3(spec());
    let mut sim = Simulator::new(t, SimConfig::default(), 5);
    let tag = CollectiveTag { job: 4, iter: 0 };
    sim.post_message(
        HostId(0),
        HostId(5),
        2_000_000,
        Some(tag),
        Priority::MEASURED,
    );
    sim.run();
    // Leaf-level counters at the destination leaf (leaf 5).
    let c = sim.counters.get(4, 0).unwrap();
    assert_eq!(c.leaf_ports(5).iter().sum::<u64>(), 2_000_000);
    // Agg-level counters at the destination pod's aggs (pod 2 => aggs 4,5).
    let ac = sim.agg_counters.get(4, 0).unwrap();
    let agg_total: u64 = (0..sim.topo.n_aggs() as u32)
        .map(|g| ac.leaf_ports(g).iter().sum::<u64>())
        .sum();
    assert_eq!(agg_total, 2_000_000);
    for g in [4u32, 5] {
        assert!(
            ac.leaf_ports(g).iter().sum::<u64>() > 0,
            "agg {g} saw nothing"
        );
    }
    // Source-pod aggs never *receive* from cores for this flow.
    for g in [0u32, 1, 2, 3] {
        assert_eq!(ac.leaf_ports(g).iter().sum::<u64>(), 0);
    }
}

#[test]
fn core_link_admin_fault_reroutes() {
    let t = Topology::clos3(spec());
    let mut sim = Simulator::new(t, SimConfig::default(), 7);
    // Down the core0 -> agg(pod2, group0) downlink: cross-pod traffic into
    // pod 2 via group 0 must use core 1 only.
    let c0 = 0u32;
    let down = sim.topo.core_downlink(c0, 2);
    sim.apply_fault_now(down, FaultAction::Set(FaultKind::AdminDown), true);
    sim.post_message(HostId(0), HostId(5), 2_000_000, None, Priority::MEASURED);
    sim.run();
    assert!(sim.all_flows_complete());
    assert_eq!(sim.stats.total_drops(), 0);
    assert_eq!(sim.link(down).txed_pkts, 0);
    // Group 0's other core carried group-0's share instead.
    let c1_down = sim.topo.core_downlink(1, 2);
    assert!(sim.link(c1_down).txed_pkts > 0);
}

#[test]
fn silent_core_fault_recovers_and_is_visible_in_agg_counters() {
    let t = Topology::clos3(spec());
    let mut sim = Simulator::new(t, SimConfig::default(), 9);
    let tag = CollectiveTag { job: 4, iter: 0 };
    let bad = sim.topo.core_downlink(0, 2); // silent 20% drop toward pod 2
    sim.apply_fault_now(
        bad,
        FaultAction::Set(FaultKind::SilentDrop { rate: 0.2 }),
        false,
    );
    sim.post_message(
        HostId(0),
        HostId(5),
        4_000_000,
        Some(tag),
        Priority::MEASURED,
    );
    sim.run();
    assert!(sim.all_flows_complete());
    assert!(sim.stats.silent_drops() > 0);
    // Totals conserved (transport retransmits), but the faulty core slot's
    // share at agg(pod2, group0) is visibly below its sibling.
    let ac = sim.agg_counters.get(4, 0).unwrap();
    let g = sim.topo.agg_global(2, 0);
    let faulty_slot = ac.port_bytes(g, 0);
    let healthy_slot = ac.port_bytes(g, 1);
    assert!(
        (faulty_slot as f64) < healthy_slot as f64 * 0.95,
        "faulty {faulty_slot} vs healthy {healthy_slot}"
    );
}

#[test]
fn all_pairs_reachable() {
    let t = Topology::clos3(spec());
    let n = t.n_hosts() as u32;
    let mut sim = Simulator::new(t, SimConfig::default(), 3);
    for s in 0..n {
        for d in 0..n {
            if s != d {
                sim.post_message(HostId(s), HostId(d), 64 * 1024, None, Priority::MEASURED);
            }
        }
    }
    sim.run();
    assert!(sim.all_flows_complete());
    assert_eq!(sim.stats.total_drops(), 0);
}

#[test]
fn deterministic_across_identical_runs() {
    let run = || {
        let t = Topology::clos3(spec());
        let mut sim = Simulator::new(t, SimConfig::default(), 11);
        let tag = CollectiveTag { job: 1, iter: 0 };
        sim.post_message(
            HostId(1),
            HostId(4),
            3_000_000,
            Some(tag),
            Priority::MEASURED,
        );
        sim.run();
        (
            sim.now().as_ns(),
            sim.counters.get(1, 0).unwrap().bytes.clone(),
            sim.agg_counters.get(1, 0).unwrap().bytes.clone(),
        )
    };
    assert_eq!(run(), run());
}
