//! Transport edge cases: tiny messages, give-up behaviour, coalescing
//! configurations, overhead accounting.

use fp_netsim::prelude::*;

fn small() -> Topology {
    Topology::fat_tree(FatTreeSpec {
        leaves: 4,
        spines: 2,
        ..Default::default()
    })
}

#[test]
fn one_byte_message() {
    let mut sim = Simulator::new(small(), SimConfig::default(), 1);
    let f = sim.post_message(HostId(0), HostId(3), 1, None, Priority::MEASURED);
    sim.run();
    assert!(sim.flows[f as usize].is_complete());
    assert_eq!(sim.flows[f as usize].npkts, 1);
    assert_eq!(sim.stats.bytes_delivered, 1);
}

#[test]
fn message_exactly_one_mtu() {
    let mut sim = Simulator::new(small(), SimConfig::default(), 1);
    let mtu = sim.cfg.mtu as u64;
    let f = sim.post_message(HostId(0), HostId(2), mtu, None, Priority::MEASURED);
    sim.run();
    assert_eq!(sim.flows[f as usize].npkts, 1);
    assert!(sim.flows[f as usize].is_complete());
}

#[test]
fn many_tiny_flows_all_complete() {
    let mut sim = Simulator::new(small(), SimConfig::default(), 2);
    for i in 0..200u64 {
        let src = (i % 4) as u32;
        let dst = ((i + 1) % 4) as u32;
        sim.post_message(HostId(src), HostId(dst), 64 + i, None, Priority::MEASURED);
    }
    sim.run();
    assert!(sim.all_flows_complete());
    assert_eq!(sim.stats.flows_completed, 200);
}

#[test]
fn no_ack_coalescing_works_too() {
    let cfg = SimConfig {
        ack_coalesce: 1, // one ACK per data packet
        ..Default::default()
    };
    let mut sim = Simulator::new(small(), cfg, 3);
    sim.post_message(HostId(1), HostId(2), 500_000, None, Priority::MEASURED);
    sim.run();
    assert!(sim.all_flows_complete());
    // Every data packet individually acked.
    assert!(sim.stats.acks_sent >= sim.stats.data_pkts_sent);
}

#[test]
fn give_up_after_max_attempts_fires_failure() {
    // A total black hole on the *only* route (1 spine) can never recover:
    // the sender must give up and report failure.
    let topo = Topology::fat_tree(FatTreeSpec {
        leaves: 2,
        spines: 1,
        ..Default::default()
    });
    let cfg = SimConfig {
        rto_max_attempts: 4,
        ..Default::default()
    };
    let mut sim = Simulator::new(topo, cfg, 5);
    let bad = sim.topo.downlink(0, 1);
    sim.apply_fault_now(bad, FaultAction::Set(FaultKind::SilentBlackhole), false);
    let f = sim.post_message(HostId(0), HostId(1), 100_000, None, Priority::MEASURED);
    let r = sim.run();
    assert_eq!(r.reason, fp_netsim::sim::RunReason::Drained);
    assert!(sim.flows[f as usize].failed);
    assert!(!sim.flows[f as usize].is_complete());
    assert!(sim.stats.flows_failed >= 1);
    assert!(sim.stats.retransmits >= 4);
    // Failure shows up in the trace.
    assert!(sim
        .trace
        .records()
        .any(|(_, e)| matches!(e, fp_netsim::trace::TraceEvent::FlowFailed { .. })));
}

#[test]
fn wire_overhead_is_charged_on_the_wire_only() {
    // Counters and delivery totals are payload-only; link tx counters see
    // payload + overhead.
    let cfg = SimConfig {
        wire_overhead: 100,
        ..Default::default()
    };
    let mut sim = Simulator::new(small(), cfg, 7);
    let tag = CollectiveTag { job: 1, iter: 0 };
    sim.post_message(HostId(0), HostId(2), 40_960, Some(tag), Priority::MEASURED);
    sim.run();
    assert_eq!(sim.stats.bytes_delivered, 40_960);
    assert_eq!(sim.counters.get(1, 0).unwrap().total_bytes(), 40_960);
    // Host uplink carried 10 packets with +100B each (plus ACK wire).
    let up = sim.link(sim.topo.host_up[0]);
    assert!(up.txed_bytes >= 40_960 + 10 * 100);
}

#[test]
fn bidirectional_flows_between_same_pair() {
    let mut sim = Simulator::new(small(), SimConfig::default(), 9);
    let a = sim.post_message(HostId(0), HostId(3), 1_000_000, None, Priority::MEASURED);
    let b = sim.post_message(HostId(3), HostId(0), 1_000_000, None, Priority::MEASURED);
    sim.run();
    assert!(sim.flows[a as usize].is_complete());
    assert!(sim.flows[b as usize].is_complete());
    assert_eq!(sim.stats.bytes_delivered, 2_000_000);
}

#[test]
fn flow_failure_notifies_application() {
    use std::cell::Cell;
    use std::rc::Rc;
    struct Watch {
        failed: Rc<Cell<u32>>,
    }
    impl fp_netsim::app::Application for Watch {
        fn on_flow_failed(&mut self, _sim: &mut Simulator, _flow: FlowId) {
            self.failed.set(self.failed.get() + 1);
        }
    }
    let topo = Topology::fat_tree(FatTreeSpec {
        leaves: 2,
        spines: 1,
        ..Default::default()
    });
    let cfg = SimConfig {
        rto_max_attempts: 3,
        ..Default::default()
    };
    let mut sim = Simulator::new(topo, cfg, 11);
    let failed = Rc::new(Cell::new(0));
    sim.set_app(Box::new(Watch {
        failed: failed.clone(),
    }));
    let bad = sim.topo.downlink(0, 1);
    sim.apply_fault_now(bad, FaultAction::Set(FaultKind::SilentBlackhole), false);
    sim.post_message(HostId(0), HostId(1), 8_192, None, Priority::MEASURED);
    sim.run();
    assert_eq!(failed.get(), 1);
}

#[test]
fn retx_counter_tracks_per_flow_losses() {
    // One flow per source host: two same-source flows would phase-lock
    // onto disjoint uplinks under aggregate deficit balancing (the §5.1
    // multi-destination effect) and the lossy path might see no traffic.
    let mut sim = Simulator::new(small(), SimConfig::default(), 13);
    let bad = sim.topo.downlink(0, 3);
    sim.apply_fault_now(
        bad,
        FaultAction::Set(FaultKind::SilentDrop { rate: 0.2 }),
        false,
    );
    let lossy = sim.post_message(HostId(0), HostId(3), 1_000_000, None, Priority::MEASURED);
    let clean = sim.post_message(HostId(1), HostId(2), 1_000_000, None, Priority::MEASURED);
    sim.run();
    assert!(sim.flows[lossy as usize].retx > 0);
    assert_eq!(sim.flows[clean as usize].retx, 0);
}
