//! Property tests for the delivery pipes.
//!
//! Two layers:
//!
//! * A **model-level** test drives the [`FrontHeap`] + FIFO pipe machinery
//!   exactly the way the engine does — pipe inserts reserve a scheduler
//!   sequence number, the dispatcher pops whichever of (scheduler head,
//!   front head) orders first by `(time, seq)` — against random scripts
//!   that interleave scheduler traffic (including the *backdated* pushes
//!   lazy RTO cancellation produces) on **both** scheduler backends. The
//!   model uses one pipe per link (the finest legal granularity; the
//!   simulator coalesces same-latency links, which only merges already-
//!   sorted streams). The property: per-link delivery order equals
//!   per-link injection order (the FIFO invariant), and both backends
//!   dispatch the identical global sequence.
//! * A **full-simulator** test runs small random fabrics under random
//!   silent faults, admin-downs, and PFC configurations on both backends
//!   and asserts byte-identical statistics plus the scheduled/executed
//!   accounting identity. The per-link monotonicity `debug_assert!`s inside
//!   the simulator are live in this build, so any FIFO violation aborts the
//!   run instead of merely skewing results.

use std::collections::VecDeque;

use fp_netsim::engine::{EventHeap, EventKind, SchedKind, Scheduler};
use fp_netsim::fault::{FaultEvent, FaultKind};
use fp_netsim::ids::{HostId, LinkId};
use fp_netsim::pipeline::{FrontHeap, PipeFront};
use fp_netsim::prelude::*;
use fp_netsim::time::SimTime;
use fp_netsim::wheel::TimingWheel;
use proptest::prelude::*;

const NLINKS: usize = 8;

fn wake(token: u64) -> EventKind {
    EventKind::Wake {
        host: HostId(0),
        token,
    }
}

/// One dispatched occurrence, for cross-backend comparison.
#[derive(Copy, Clone, PartialEq, Debug)]
enum Dispatched {
    /// A pipeline head delivery: (arrival, reserved seq, link, inject id).
    Delivery(u64, u64, u32, u64),
    /// A scheduler pop: (time, seq is implicit in order) wake token.
    Sched(u64, u64),
}

/// Drive one scheduler backend plus the pipeline machinery with a raw
/// op script; returns the global dispatch log and asserts per-link FIFO.
fn drive<S: Scheduler>(sched: &mut S, script: &[u64]) -> Result<Vec<Dispatched>, String> {
    let mut front = FrontHeap::new();
    // Per-link pipeline of (arrival, seq, inject id).
    let mut pipes: Vec<VecDeque<(SimTime, u64, u64)>> = vec![VecDeque::new(); NLINKS];
    let mut injected: Vec<Vec<u64>> = vec![Vec::new(); NLINKS];
    let mut delivered: Vec<Vec<u64>> = vec![Vec::new(); NLINKS];
    let mut last_at = [0u64; NLINKS];
    let mut log = Vec::new();
    let mut now = 0u64;
    let mut next_inject = 0u64;
    let mut next_token = 0u64;

    // Dispatch the earlier of (scheduler head, front head) by (time, seq),
    // exactly the engine's main-loop comparison.
    let dispatch_one = |sched: &mut S,
                        front: &mut FrontHeap,
                        pipes: &mut Vec<VecDeque<(SimTime, u64, u64)>>,
                        delivered: &mut Vec<Vec<u64>>,
                        log: &mut Vec<Dispatched>,
                        now: &mut u64|
     -> Result<bool, String> {
        let f = front.peek();
        let from_front = match (sched.peek_next(), f) {
            (None, None) => return Ok(false),
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some((t, s)), Some(f)) => (f.at, f.seq) < (t, s),
        };
        if from_front {
            let f = f.unwrap();
            let link = f.pipe as usize;
            let (at, seq, id) = pipes[link].pop_front().ok_or("armed link has empty pipe")?;
            if (at, seq) != (f.at, f.seq) {
                return Err(format!(
                    "front heap head {:?} disagrees with pipe head {:?}",
                    (f.at, f.seq),
                    (at, seq)
                ));
            }
            match pipes[link].front() {
                Some(&(nat, nseq, _)) => front.replace_top(PipeFront {
                    at: nat,
                    seq: nseq,
                    pipe: f.pipe,
                }),
                None => {
                    front.pop_top();
                }
            }
            delivered[link].push(id);
            *now = (*now).max(at.as_ns());
            log.push(Dispatched::Delivery(at.as_ns(), seq, f.pipe, id));
        } else {
            let (at, kind) = sched.pop().ok_or("peeked scheduler is empty")?;
            let token = match kind {
                EventKind::Wake { token, .. } => token,
                _ => unreachable!("script only schedules Wake"),
            };
            *now = (*now).max(at.as_ns());
            log.push(Dispatched::Sched(at.as_ns(), token));
        }
        Ok(true)
    };

    for &raw in script {
        match raw % 8 {
            // Pipeline insert: reserve a seq (never a push), arm if idle.
            0..=2 => {
                let link = ((raw >> 3) % NLINKS as u64) as usize;
                let dt = (raw >> 6) % 100;
                // Serialization is sequential per link, so arrivals
                // strictly increase.
                let at = SimTime::from_ns(last_at[link].max(now) + 1 + dt);
                last_at[link] = at.as_ns();
                let seq = sched.reserve_seq();
                if pipes[link].is_empty() {
                    front.arm(PipeFront {
                        at,
                        seq,
                        pipe: link as u32,
                    });
                }
                pipes[link].push_back((at, seq, next_inject));
                injected[link].push(next_inject);
                next_inject += 1;
            }
            // Scheduler push; one flavor is backdated below `now`, the
            // stale-RTO shape.
            3..=4 => {
                let dt = (raw >> 6) % 10_000;
                let at = if raw & 32 != 0 {
                    SimTime::from_ns(now.saturating_sub(dt))
                } else {
                    SimTime::from_ns(now + dt)
                };
                sched.push(at, wake(next_token));
                next_token += 1;
            }
            // Dispatch a few events.
            _ => {
                let k = raw % 4 + 1;
                for _ in 0..k {
                    if !dispatch_one(
                        sched,
                        &mut front,
                        &mut pipes,
                        &mut delivered,
                        &mut log,
                        &mut now,
                    )? {
                        break;
                    }
                }
            }
        }
    }
    // Drain everything.
    while dispatch_one(
        sched,
        &mut front,
        &mut pipes,
        &mut delivered,
        &mut log,
        &mut now,
    )? {}

    // The FIFO invariant: each link delivered exactly what was injected,
    // in injection order.
    for link in 0..NLINKS {
        if delivered[link] != injected[link] {
            return Err(format!(
                "link {link} delivery order {:?} != injection order {:?}",
                delivered[link], injected[link]
            ));
        }
    }
    Ok(log)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Per-link delivery order equals per-link injection order under
    /// arbitrary interleavings of pipeline inserts, scheduler pushes
    /// (including backdated ones) and dispatches — and the heap and wheel
    /// backends dispatch the identical global sequence.
    #[test]
    fn per_link_delivery_order_equals_injection_order(
        script in proptest::collection::vec(0u64..u64::MAX, 1..300)
    ) {
        let mut heap = EventHeap::new();
        let mut wheel = TimingWheel::new();
        let a = drive(&mut heap, &script);
        let b = drive(&mut wheel, &script);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a, b, "backends dispatched different sequences");
                let (hs, ws) = (Scheduler::stats(&heap), wheel.stats());
                prop_assert_eq!(hs.pushes, ws.pushes);
                prop_assert_eq!(hs.pops, ws.pops);
                prop_assert_eq!(hs.pushes, hs.pops, "drained: pushes == pops");
            }
            (a, b) => prop_assert!(false, "driver failed: heap={:?} wheel={:?}", a.err(), b.err()),
        }
    }

    /// Full-simulator determinism and accounting under random faults and
    /// PFC configurations: both backends produce identical statistics, and
    /// on a drained recorder-free run the scheduler pop count decomposes
    /// exactly into engine events minus pipeline deliveries plus stale-RTO
    /// skips.
    #[test]
    fn random_faulted_runs_agree_across_backends(
        seed in 0u64..1 << 48,
        leaves in 2u32..6,
        spines in 1u32..4,
        msgs in 1usize..6,
        fault_sel in 0u32..5,
        pfc_sel in 0u32..2,
    ) {
        let pfc_on = pfc_sel == 1;
        let mut results = Vec::new();
        for sched in [SchedKind::Heap, SchedKind::Wheel] {
            let topo = Topology::fat_tree(FatTreeSpec {
                leaves,
                spines,
                hosts_per_leaf: 1,
                ..Default::default()
            });
            let n_links = topo.n_links() as u32;
            let mut cfg = SimConfig {
                sched: Some(sched),
                // Fail fast under black holes so drains stay cheap.
                rto_max_attempts: 6,
                ..SimConfig::default()
            };
            cfg.pfc.enabled = pfc_on;
            let mut sim = Simulator::new(topo, cfg, seed);
            // A deterministic spread of small messages.
            for m in 0..msgs {
                let src = HostId((m as u32) % leaves);
                let dst = HostId((m as u32 + 1 + (seed as u32 % (leaves - 1))) % leaves);
                if src != dst {
                    sim.post_message(src, dst, 200_000 + 17 * m as u64, None, Priority::MEASURED);
                }
            }
            // One random fault, healed midway through the expected run.
            let link = LinkId((seed as u32 >> 8) % n_links);
            let kind = match fault_sel {
                0 => Some(FaultKind::SilentDrop { rate: 0.2 }),
                1 => Some(FaultKind::SilentBlackhole),
                2 => Some(FaultKind::DstBlackhole { dst_leaf: 0 }),
                3 => Some(FaultKind::AdminDown),
                _ => None,
            };
            if let Some(kind) = kind {
                sim.schedule_fault(FaultEvent::set_bidir(SimTime::from_ns(2_000), link, kind));
                sim.schedule_fault(FaultEvent::clear_bidir(SimTime::from_ns(40_000), link));
            }
            let summary = sim.run();
            prop_assert_eq!(summary.reason, RunReason::Drained);
            prop_assert_eq!(sim.pending_events(), 0, "drained run left pending work");

            // Scheduled-vs-executed accounting: every pop is either an
            // engine-processed event that was *not* a pipeline delivery,
            // or a stale RTO discarded by lazy cancellation.
            let ss = sim.sched_stats();
            prop_assert_eq!(ss.pushes, ss.pops, "drained: pushes == pops");
            prop_assert_eq!(
                ss.pops,
                sim.stats.events - sim.stats.pipeline_deliveries + sim.stats.rto_stale_skips,
                "pop count decomposition"
            );
            results.push((summary.events, summary.end, format!("{:?}", sim.stats)));
        }
        prop_assert_eq!(&results[0], &results[1], "heap and wheel runs diverged");
    }
}
