//! Property-based tests for the simulator substrate.

use fp_netsim::bitset::BitSet;
use fp_netsim::packet::AckBlock;
use fp_netsim::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serialization time is monotone in size and never zero for nonzero
    /// payloads.
    #[test]
    fn ser_time_monotone(bytes in 1u64..10_000_000, gbps in 1u64..1600) {
        let bw = Bandwidth::from_gbps(gbps);
        let t1 = bw.ser_time(bytes);
        let t2 = bw.ser_time(bytes + 1);
        prop_assert!(t2 >= t1);
        prop_assert!(t1.as_ns() > 0);
    }

    /// bytes_in is a near-inverse of ser_time (within one packet's worth).
    #[test]
    fn ser_time_roundtrip(bytes in 1u64..1_000_000, gbps in 1u64..800) {
        let bw = Bandwidth::from_gbps(gbps);
        let back = bw.bytes_in(bw.ser_time(bytes));
        prop_assert!(back >= bytes);
        // ceil rounding adds at most one ns worth of bytes
        prop_assert!(back - bytes <= gbps * 1_000_000_000 / 8_000_000_000 + 1);
    }

    /// BitSet counts are exact under arbitrary set sequences.
    #[test]
    fn bitset_count_matches_reference(len in 1u32..300, idxs in proptest::collection::vec(0u32..300, 0..100)) {
        let mut b = BitSet::new(len);
        let mut reference = std::collections::HashSet::new();
        for i in idxs {
            if i < len {
                b.set(i);
                reference.insert(i);
            }
        }
        prop_assert_eq!(b.count() as usize, reference.len());
        for i in 0..len {
            prop_assert_eq!(b.get(i), reference.contains(&i));
        }
        prop_assert_eq!(b.full(), reference.len() == len as usize);
    }

    /// AckBlock round-trips arbitrary seq sets within a 64-window.
    #[test]
    fn ackblock_roundtrip(base in 0u32..1_000_000, offsets in proptest::collection::btree_set(0u32..64, 1..64)) {
        let mut mask = 0u64;
        for &o in &offsets {
            mask |= 1 << o;
        }
        let b = AckBlock { cum: 0, base, mask, ce_mask: 0 };
        let got: Vec<u32> = b.seqs().collect();
        let want: Vec<u32> = offsets.iter().map(|o| base + o).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(b.count() as usize, offsets.len());
    }

    /// Fat-tree construction invariants hold for arbitrary specs.
    #[test]
    fn topology_invariants(leaves in 2u32..20, spines in 1u32..10, hosts in 1u32..4, par in 1u32..3) {
        let t = Topology::fat_tree(FatTreeSpec {
            leaves, spines, hosts_per_leaf: hosts, parallel_links: par,
            ..Default::default()
        });
        prop_assert_eq!(t.n_hosts() as u32, leaves * hosts);
        prop_assert_eq!(t.n_vspines() as u32, spines * par);
        prop_assert_eq!(t.n_links() as u32, 2 * (leaves * hosts + leaves * spines * par));
        // peer is an involution that reverses direction
        for i in 0..t.n_links() {
            let p = t.peer[i];
            prop_assert_eq!(t.peer[p.idx()].idx(), i);
            prop_assert_eq!(t.links[i].src, t.links[p.idx()].dst);
        }
        // every host's leaf is consistent with hosts_of_leaf
        for l in 0..leaves {
            for h in t.hosts_of_leaf(l) {
                prop_assert_eq!(t.leaf_of(h), l);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every spray backend returns an in-range candidate index for
    /// arbitrary packet identities, candidate counts and feedback
    /// histories — the contract `spray_among` relies on.
    #[test]
    fn every_backend_picks_valid_candidates(
        policy_idx in 0usize..9,
        n in 1usize..9,
        src in 0u32..64,
        dst in 0u32..64,
        flow in 0u32..1_000_000,
        seq in 0u32..10_000,
        seed in 0u64..1000,
        data_bit in 0u32..2,
        // Each entry encodes (seq, echo kind) as seq * 3 + kind.
        echoes in proptest::collection::vec(0u32..192, 0..16),
    ) {
        use fp_netsim::spray::{make_sprayer, SprayCtx, SprayEcho, SprayPolicy};
        use fp_netsim::ids::LinkId;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let policies = [
            SprayPolicy::Random,
            SprayPolicy::RoundRobin,
            SprayPolicy::Adaptive,
            SprayPolicy::LeastLoaded,
            SprayPolicy::LeastLoadedRandomTie,
            SprayPolicy::Ecmp,
            SprayPolicy::Prime,
            SprayPolicy::Reps,
            SprayPolicy::RepsFailover,
        ];
        let policy = policies[policy_idx];
        let data = data_bit == 1;
        let cands: Vec<LinkId> = (0..n as u32).map(LinkId).collect();
        let loads: Vec<u64> = vec![0; n];
        let slots: Vec<u32> = (0..n as u32).collect();
        let mut sprayer = make_sprayer(policy, n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut cursor = 0u64;
        // Arbitrary feedback history first (ACK/ECN/timeout per seq) —
        // the pick must stay total whatever state it built up.
        for coded in echoes {
            let echo = [SprayEcho::Ack, SprayEcho::Ecn, SprayEcho::Timeout][coded as usize % 3];
            sprayer.on_feedback(flow, (src, dst), coded / 3, echo);
        }
        for round in 0..16u32 {
            let ctx = SprayCtx {
                flow,
                src,
                dst,
                seq: seq.wrapping_add(round),
                data,
                cands: &cands,
                loads: &loads,
                slots: &slots,
            };
            let idx = sprayer.pick(&ctx, &mut cursor, &mut rng);
            prop_assert!(idx < n, "{policy:?} picked {idx} of {n}");
        }
    }
}

proptest! {
    // Packet-level runs are slower: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every message is delivered exactly once (unique bytes) regardless of
    /// size, endpoints and spray policy, on a clean fabric.
    #[test]
    fn delivery_is_exact(
        bytes in 1u64..2_000_000,
        src in 0u32..8,
        dst in 0u32..8,
        policy_idx in 0usize..8,
        seed in 0u64..1000,
    ) {
        prop_assume!(src != dst);
        let policies = [
            SprayPolicy::Adaptive,
            SprayPolicy::LeastLoaded,
            SprayPolicy::RoundRobin,
            SprayPolicy::Random,
            SprayPolicy::Ecmp,
            SprayPolicy::Prime,
            SprayPolicy::Reps,
            SprayPolicy::RepsFailover,
        ];
        let topo = Topology::fat_tree(FatTreeSpec { leaves: 8, spines: 4, ..Default::default() });
        let cfg = SimConfig { spray: policies[policy_idx], ..Default::default() };
        let mut sim = Simulator::new(topo, cfg, seed);
        let f = sim.post_message(HostId(src), HostId(dst), bytes, None, Priority::MEASURED);
        sim.run();
        prop_assert!(sim.flows[f as usize].is_complete());
        prop_assert_eq!(sim.stats.bytes_delivered, bytes);
        prop_assert_eq!(sim.stats.total_drops(), 0);
    }

    /// Under a random silent drop rate < 1, transport still delivers every
    /// byte exactly once (retransmission correctness).
    #[test]
    fn lossy_link_still_delivers_exactly_once(
        rate in 0.01f64..0.6,
        seed in 0u64..500,
    ) {
        let topo = Topology::fat_tree(FatTreeSpec { leaves: 4, spines: 2, ..Default::default() });
        let mut sim = Simulator::new(topo, SimConfig::default(), seed);
        let bad = sim.topo.downlink(0, 3);
        sim.apply_fault_now(bad, FaultAction::Set(FaultKind::SilentDrop { rate }), false);
        let bytes = 500_000u64;
        let f = sim.post_message(HostId(0), HostId(3), bytes, None, Priority::MEASURED);
        sim.run();
        prop_assert!(sim.flows[f as usize].is_complete());
        // Unique delivered payload equals the message exactly, despite
        // retransmissions and duplicates.
        prop_assert_eq!(sim.stats.bytes_delivered, bytes);
    }

    /// Tagged counter totals equal delivered tagged payload (counters see
    /// each delivered data packet exactly once, at one leaf).
    #[test]
    fn counters_conserve_bytes(
        bytes in 4096u64..1_000_000,
        seed in 0u64..500,
    ) {
        let topo = Topology::fat_tree(FatTreeSpec { leaves: 4, spines: 2, ..Default::default() });
        let mut sim = Simulator::new(topo, SimConfig::default(), seed);
        let tag = CollectiveTag { job: 3, iter: 0 };
        sim.post_message(HostId(1), HostId(3), bytes, Some(tag), Priority::MEASURED);
        sim.run();
        let c = sim.counters.get(3, 0).unwrap();
        prop_assert_eq!(c.total_bytes(), bytes);
        // ...and it all landed at the destination's leaf.
        prop_assert_eq!(c.leaf_ports(3).iter().sum::<u64>(), bytes);
    }

    /// The pluggable backends conserve packets under a lossy cable and
    /// PFC backpressure: an incast onto one leaf (xoff/xon cycling) plus
    /// a silent drop on a shared uplink, and every flow still delivers
    /// its payload exactly once — entropy recycling, epoch bumps and
    /// static hashing never lose or duplicate a byte.
    #[test]
    fn pluggable_backends_deliver_exactly_under_loss_and_pfc(
        policy_idx in 0usize..4,
        rate in 0.05f64..0.45,
        seed in 0u64..500,
    ) {
        let policies = [
            SprayPolicy::Ecmp,
            SprayPolicy::Prime,
            SprayPolicy::Reps,
            SprayPolicy::RepsFailover,
        ];
        let topo = Topology::fat_tree(FatTreeSpec { leaves: 4, spines: 2, ..Default::default() });
        let cfg = SimConfig { spray: policies[policy_idx], ..Default::default() };
        let mut sim = Simulator::new(topo, cfg, seed);
        let bad = sim.topo.uplink(0, 1);
        sim.apply_fault_now(bad, FaultAction::Set(FaultKind::SilentDrop { rate }), false);
        // Incast: three senders converge on host 3 (PFC pause churn at its
        // leaf) while host 0's flow also crosses the lossy uplink.
        let bytes = 300_000u64;
        let mut total = 0u64;
        for src in 0..3u32 {
            sim.post_message(HostId(src), HostId(3), bytes, None, Priority::MEASURED);
            total += bytes;
        }
        sim.post_message(HostId(3), HostId(0), bytes, None, Priority::MEASURED);
        total += bytes;
        sim.run();
        prop_assert!(sim.all_flows_complete());
        prop_assert_eq!(sim.stats.bytes_delivered, total);
    }

    /// Admin-down uplinks are never used, whatever the spray policy.
    #[test]
    fn admin_down_is_respected(seed in 0u64..200, v in 0u32..4) {
        let topo = Topology::fat_tree(FatTreeSpec { leaves: 4, spines: 4, ..Default::default() });
        let mut sim = Simulator::new(topo, SimConfig::default(), seed);
        let up = sim.topo.uplink(0, v);
        sim.apply_fault_now(up, FaultAction::Set(FaultKind::AdminDown), true);
        sim.post_message(HostId(0), HostId(2), 400_000, None, Priority::MEASURED);
        sim.run();
        prop_assert!(sim.all_flows_complete());
        prop_assert_eq!(sim.link(up).txed_pkts, 0);
    }
}
