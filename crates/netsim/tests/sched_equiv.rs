//! Property test: the heap and wheel schedulers are observably identical.
//!
//! Both backends are driven with the same random push / pop-at-or-before
//! script — including equal-timestamp bursts (the FIFO tie-break regime)
//! and far-future times beyond the wheel horizon (the overflow spill) —
//! and must produce exactly the same pop sequence at every step. This is
//! the unit-level half of the determinism argument; the trial-level half
//! (byte-identical result JSON under `FP_SCHED=heap` vs `wheel`) lives in
//! `fp-bench`'s determinism suite.

use fp_netsim::engine::{EventHeap, EventKind, Scheduler};
use fp_netsim::ids::HostId;
use fp_netsim::time::SimTime;
use fp_netsim::wheel::{TimingWheel, WHEEL_BITS, WHEEL_LEVELS};
use proptest::prelude::*;

/// The wheel covers `[cursor, cursor + 2^32)` ns; anything at or beyond
/// spills to the overflow structure.
const HORIZON_NS: u64 = 1 << (WHEEL_BITS * WHEEL_LEVELS as u32);

fn wake(token: u64) -> EventKind {
    EventKind::Wake {
        host: HostId(0),
        token,
    }
}

fn token(k: EventKind) -> u64 {
    match k {
        EventKind::Wake { token, .. } => token,
        _ => unreachable!("script only schedules Wake events"),
    }
}

/// Decode one raw `u64` into a push offset that stresses a particular
/// scheduler regime: same-timestamp bursts, slot-adjacent near futures,
/// RTO-scale mid futures, cascade-heavy far futures, and overflow times
/// past the wheel horizon.
fn decode_offset(raw: u64) -> u64 {
    match raw % 16 {
        // Equal-timestamp burst: several consecutive pushes decode to the
        // same zero offset, exercising the FIFO tie-break.
        0..=4 => 0,
        5..=7 => 1 + (raw >> 4) % 300,          // level-0 neighborhood
        8..=9 => 5_000,                         // the RoCE-like RTO offset
        10..=11 => 1 + (raw >> 4) % 1_000_000,  // multi-level cascades
        12 => 70_000,                           // a fixed level-2 offset
        13..=14 => HORIZON_NS + (raw >> 4) % 5, // overflow spill (+ ties)
        _ => HORIZON_NS * 2 + (raw >> 4) % 1_000_000_000,
    }
}

/// Apply one scripted op to both schedulers and assert identical behavior.
/// Returns `Err` (proptest failure) on divergence.
fn lockstep(
    heap: &mut EventHeap,
    wheel: &mut TimingWheel,
    now: &mut u64,
    next_token: &mut u64,
    raw: u64,
) -> Result<(), String> {
    // Bits 0..2 select the op; pops outnumber pushes slightly so scripts
    // drain as well as fill. One op flavor in sixteen reserves a sequence
    // number without pushing (the pipeline-insert shape): the tie-break
    // counter advances, the push count must not.
    if raw % 16 == 7 {
        let a = heap.reserve_seq();
        let b = wheel.reserve_seq();
        if a != b {
            return Err(format!("reserved seqs diverged: heap={a} wheel={b}"));
        }
        return Ok(());
    }
    if raw % 4 < 2 {
        // One push flavor in eight is *backdated*: scheduled below `now`,
        // and hence below timestamps both backends have already popped.
        // That is the lazy-RTO shape — a stale timer pops at a future
        // time without advancing the clock, then the engine schedules off
        // its own earlier clock — and must come straight back out first.
        let at = if raw % 8 == 1 {
            SimTime::from_ns(now.saturating_sub(decode_offset(raw >> 3)))
        } else {
            SimTime::from_ns(*now + decode_offset(raw >> 2))
        };
        heap.push(at, wake(*next_token));
        wheel.push(at, wake(*next_token));
        *next_token += 1;
        return Ok(());
    }
    // Pop everything due within a horizon a little past `now`, in lockstep.
    let horizon = SimTime::from_ns(*now + decode_offset(raw >> 2));
    loop {
        let a = heap.pop_at_or_before(horizon);
        let b = wheel.pop_at_or_before(horizon);
        match (a, b) {
            (None, None) => break,
            (Some((ta, ka)), Some((tb, kb))) => {
                if ta != tb || token(ka) != token(kb) {
                    return Err(format!(
                        "divergence: heap popped ({}, {}), wheel popped ({}, {})",
                        ta,
                        token(ka),
                        tb,
                        token(kb)
                    ));
                }
                *now = ta.as_ns();
            }
            (a, b) => {
                return Err(format!(
                    "one scheduler drained early: heap={a:?} wheel={b:?}"
                ));
            }
        }
    }
    // The run clock jumps to the horizon even when nothing was due, like a
    // time-limited `Simulator::run_until`.
    *now = (*now).max(horizon.as_ns());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    fn schedulers_agree_on_random_scripts(script in proptest::collection::vec(0u64..u64::MAX, 1..200)) {
        let mut heap = EventHeap::new();
        let mut wheel = TimingWheel::new();
        let mut now = 0u64;
        let mut next_token = 0u64;
        for raw in script {
            if let Err(e) = lockstep(&mut heap, &mut wheel, &mut now, &mut next_token, raw) {
                prop_assert!(false, "{}", e);
            }
        }
        // Drain both completely: the leftover sequences must match too.
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            match (a, b) {
                (None, None) => break,
                (Some((ta, ka)), Some((tb, kb))) => {
                    prop_assert_eq!(ta, tb);
                    prop_assert_eq!(token(ka), token(kb));
                }
                (a, b) => prop_assert!(false, "tail divergence: heap={:?} wheel={:?}", a, b),
            }
        }
        prop_assert_eq!(heap.len(), 0);
        prop_assert_eq!(wheel.len(), 0);
        prop_assert_eq!(Scheduler::scheduled(&heap), wheel.scheduled());

        // Scheduled-vs-executed accounting is consistent on both backends:
        // every event ever filed was popped (the queues are drained), the
        // two backends agree on both totals, and `scheduled()` reports
        // exactly the push count — reservations never leak into it.
        let (hs, ws) = (Scheduler::stats(&heap), wheel.stats());
        prop_assert_eq!(hs.pushes, hs.pops, "heap drained: pushes == pops");
        prop_assert_eq!(ws.pushes, ws.pops, "wheel drained: pushes == pops");
        prop_assert_eq!(hs.pushes, ws.pushes);
        prop_assert_eq!(hs.pops, ws.pops);
        prop_assert_eq!(Scheduler::scheduled(&heap), hs.pushes);
        prop_assert_eq!(wheel.scheduled(), ws.pushes);
    }

    fn equal_timestamp_bursts_stay_fifo(burst in 2usize..64, at in 0u64..HORIZON_NS * 2) {
        // Directed version of the tie-break property: one shared timestamp,
        // many pushes, FIFO out of both backends.
        let mut heap = EventHeap::new();
        let mut wheel = TimingWheel::new();
        let t = SimTime::from_ns(at);
        for tok in 0..burst as u64 {
            heap.push(t, wake(tok));
            wheel.push(t, wake(tok));
        }
        for expect in 0..burst as u64 {
            let (ta, ka) = heap.pop().expect("heap holds the burst");
            let (tb, kb) = wheel.pop().expect("wheel holds the burst");
            prop_assert_eq!(ta, t);
            prop_assert_eq!(tb, t);
            prop_assert_eq!(token(ka), expect);
            prop_assert_eq!(token(kb), expect);
        }
    }
}
