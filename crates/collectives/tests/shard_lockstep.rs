//! Sharded-vs-unsharded lockstep equivalence.
//!
//! The intra-trial sharding coordinator (`fp_collectives::shard`) promises
//! byte-identical results to an unsharded `CollectiveRunner` run at any
//! shard count, on either execution backend. These tests run both paths
//! over identical inputs — including silent-fault installs and heals at
//! iteration boundaries, preexisting admin-down links, and multiple
//! collective shapes — and compare every artifact the harness reads:
//! statistics, both counter stores, iteration spans, and the trace.

use fp_collectives::prelude::*;
use fp_netsim::prelude::*;
use fp_netsim::trace::TraceRecord;
use proptest::prelude::*;

/// Everything a trial reads from the fabric, in debug form (none of the
/// artifact types implement `Eq`; their `Debug` output is total).
#[derive(PartialEq, Eq, Debug)]
struct Fingerprint {
    stats: String,
    counters: String,
    agg_counters: String,
    spans: Vec<(u32, u32, u64, u64)>,
    trace: String,
}

/// Stats fingerprint. With `seen_exact` false, the `max_queue_bytes`
/// high-water mark is scrubbed: whether a same-instant arrival enqueues
/// before or after a departure moves the momentary peak by one packet —
/// the same tie residual as the `first_seen`/`last_seen` stamps. All
/// conservation counters (events, packets, bytes, drops, retransmits)
/// are always compared exactly.
fn stats_fp(stats: &Stats, seen_exact: bool) -> String {
    let mut s = format!("{stats:?}");
    if !seen_exact {
        if let Some(i) = s.find("max_queue_bytes") {
            s.truncate(i);
            s.push_str("max_queue_bytes: _ }");
        }
    }
    s
}

/// Scrub the `max_queue_bytes` high-water mark from a stats fingerprint —
/// the same truncation [`stats_fp`] applies when `seen_exact` is false.
fn scrub_queue_peak(s: &mut String) {
    if let Some(i) = s.find("max_queue_bytes") {
        s.truncate(i);
        s.push_str("max_queue_bytes: _ }");
    }
}

fn spans_of(spans: &[IterSpanRecord]) -> Vec<(u32, u32, u64, u64)> {
    spans
        .iter()
        .map(|s| (s.job, s.iter, s.start.as_ns(), s.end.as_ns()))
        .collect()
}

struct Scenario {
    topo: Topology,
    cfg: SimConfig,
    seed: u64,
    sched: Schedule,
    rcfg: RunnerConfig,
    admin_down: Vec<LinkId>,
    faults: Vec<ShardFault>,
    /// Compare the counters' `first_seen`/`last_seen` arrival stamps
    /// exactly. Collectives whose symmetric exchanges land two packets on
    /// different upstream links at the *same nanosecond* (halving-doubling
    /// does; jittered rings do not) hit the one residual the sharded path
    /// does not replicate: the unsharded engine serves same-instant
    /// arrivals in global send order, while shards resolve the tie by
    /// shard-local sequence, shifting a tail arrival stamp by one
    /// serialization quantum. Placement (bytes/pkts matrices), drops,
    /// stats, spans and trace stay identical — only these two telemetry
    /// stamps can move, so such scenarios compare counters with the
    /// stamps scrubbed.
    seen_exact: bool,
}

fn hosts(n: u32) -> Vec<HostId> {
    (0..n).map(HostId).collect()
}

/// Canonical trace fingerprint: the record multiset, sorted, with flow-id
/// labels scrubbed. Two known label-level differences exist between the
/// sharded and unsharded paths, neither observable through any exported
/// artifact: cross-shard records carrying the same timestamp have no
/// defined interleave order in the merged trace, and sharded runs
/// allocate trial-global flow ids strided by shard count, so a dropped
/// flow's *number* differs even though the drop itself (time, link,
/// cause) is in lockstep.
fn trace_fp(records: &[TraceRecord]) -> String {
    let mut lines: Vec<String> = records
        .iter()
        .map(|r| {
            let mut line = format!("{r:?}");
            let mut from = 0;
            while let Some(off) = line[from..].find("Some(") {
                let i = from + off;
                let rest = &line[i + 5..];
                match rest.find(')') {
                    Some(j) if rest[..j].bytes().all(|b| b.is_ascii_digit()) => {
                        line.replace_range(i..i + 5 + j + 1, "Some(_)");
                    }
                    _ => {}
                }
                from = i + 5;
            }
            line
        })
        .collect();
    lines.sort_unstable();
    lines.join("\n")
}

/// Canonical counter-store fingerprint: entries in sorted key order (the
/// store's raw `Debug` includes a `HashMap` index whose print order is
/// nondeterministic even for identical contents). With `seen_exact`
/// false, the trailing `first_seen`/`last_seen` stamps are scrubbed —
/// see [`Scenario::seen_exact`].
fn counters_fp(c: &CounterStore, seen_exact: bool) -> String {
    let mut keys = c.keys();
    keys.sort_unstable();
    let mut s = String::new();
    for (job, iter) in keys {
        let mut entry = format!("{:?}", c.get(job, iter).unwrap());
        if !seen_exact {
            if let Some(i) = entry.find("first_seen") {
                entry.truncate(i);
                entry.push_str("first_seen: _ }");
            }
        }
        s.push_str(&format!("({job},{iter})=>{entry};"));
    }
    s
}

/// The unsharded reference: one simulator, the real `CollectiveRunner`,
/// and an iteration-start hook applying the fault flips with the
/// evaluation harness's once-only semantics.
fn reference(sc: &Scenario) -> Fingerprint {
    let mut sim = Simulator::new(sc.topo.clone(), sc.cfg.clone(), sc.seed);
    for &l in &sc.admin_down {
        sim.apply_fault_now(l, FaultAction::Set(FaultKind::AdminDown), false);
    }
    let mut runner = CollectiveRunner::new(sc.sched.clone(), sc.rcfg.clone());
    let faults = sc.faults.clone();
    let mut fired = vec![false; faults.len()];
    runner.set_iteration_start_hook(Box::new(move |sim, iter| {
        for (f, fr) in faults.iter().zip(fired.iter_mut()) {
            if !*fr && iter >= f.at_iter {
                sim.apply_fault_now(f.link, f.action, false);
                *fr = true;
            }
        }
    }));
    sim.set_app(Box::new(runner));
    sim.run();
    Fingerprint {
        stats: stats_fp(&sim.stats, sc.seen_exact),
        counters: counters_fp(&sim.counters, sc.seen_exact),
        agg_counters: counters_fp(&sim.agg_counters, sc.seen_exact),
        spans: spans_of(sim.iter_spans()),
        trace: trace_fp(&sim.trace.to_records()),
    }
}

fn sharded(sc: &Scenario, shards: u32, threaded: bool, epoch: u32) -> Fingerprint {
    let out = run_sharded(
        &sc.topo,
        &sc.cfg,
        sc.seed,
        shards,
        threaded,
        epoch,
        sc.sched.clone(),
        sc.rcfg.clone(),
        &sc.admin_down,
        &sc.faults,
        None,
    );
    Fingerprint {
        stats: stats_fp(&out.stats, sc.seen_exact),
        counters: counters_fp(&out.counters, sc.seen_exact),
        agg_counters: counters_fp(&out.agg_counters, sc.seen_exact),
        spans: spans_of(&out.iter_spans),
        trace: trace_fp(&out.trace),
    }
}

fn check_all_backends(sc: &Scenario, shard_counts: &[u32]) {
    let want = reference(sc);
    for &k in shard_counts {
        // Epoch cap 1 forces the legacy per-window handshake; 4 exercises
        // the batched epoch protocol. Both must stay byte-identical to the
        // unsharded reference.
        for (threaded, epoch) in [(false, 1), (false, 4), (true, 1), (true, 4)] {
            let got = sharded(sc, k, threaded, epoch);
            let ctx = format!("shards={k}, threaded={threaded}, epoch={epoch}");
            assert_eq!(want.stats, got.stats, "stats diverged ({ctx})");
            assert_eq!(want.counters, got.counters, "counters diverged ({ctx})");
            assert_eq!(
                want.agg_counters, got.agg_counters,
                "agg counters diverged ({ctx})"
            );
            if sc.seen_exact {
                assert_eq!(want.spans, got.spans, "iteration spans diverged ({ctx})");
            } else {
                // Same-instant tie scenarios: a tail arrival can shift by
                // one serialization quantum, moving the span end with it
                // (see `Scenario::seen_exact`). Starts stay exact.
                assert_eq!(want.spans.len(), got.spans.len(), "span count ({ctx})");
                for (w, g) in want.spans.iter().zip(got.spans.iter()) {
                    assert_eq!(
                        (w.0, w.1, w.2),
                        (g.0, g.1, g.2),
                        "span identity/start diverged ({ctx})"
                    );
                    assert!(
                        w.3.abs_diff(g.3) <= 1_000,
                        "span end drifted beyond one quantum: {} vs {} ({ctx})",
                        w.3,
                        g.3
                    );
                }
            }
            assert_eq!(want.trace, got.trace, "trace diverged ({ctx})");
        }
    }
}

fn base_scenario(leaves: u32, spines: u32, seed: u64) -> Scenario {
    let topo = Topology::fat_tree(FatTreeSpec {
        leaves,
        spines,
        hosts_per_leaf: 1,
        ..Default::default()
    });
    let sched = ring_allreduce(&hosts(leaves), 96 * 1024);
    let rcfg = RunnerConfig {
        iterations: 3,
        jitter: JitterModel::Uniform {
            max: SimDuration::from_us(1),
        },
        ..Default::default()
    };
    Scenario {
        topo,
        cfg: SimConfig::default(),
        seed,
        sched,
        rcfg,
        admin_down: Vec::new(),
        faults: Vec::new(),
        seen_exact: true,
    }
}

#[test]
fn clean_ring_matches_at_all_shard_counts() {
    let sc = base_scenario(8, 4, 11);
    check_all_backends(&sc, &[1, 2, 3, 4, 8]);
}

#[test]
fn silent_drop_install_and_heal_match() {
    let mut sc = base_scenario(8, 4, 12);
    let down = sc.topo.downlink(1, 2);
    sc.faults = vec![
        ShardFault {
            link: down,
            action: FaultAction::Set(FaultKind::SilentDrop { rate: 0.05 }),
            at_iter: 1,
        },
        ShardFault {
            link: down,
            action: FaultAction::Clear,
            at_iter: 2,
        },
    ];
    check_all_backends(&sc, &[1, 2, 4, 8]);
}

#[test]
fn blackhole_from_start_matches() {
    let mut sc = base_scenario(8, 4, 13);
    sc.faults = vec![ShardFault {
        link: sc.topo.downlink(0, 5),
        action: FaultAction::Set(FaultKind::SilentBlackhole),
        at_iter: 0,
    }];
    check_all_backends(&sc, &[1, 2, 4]);
}

#[test]
fn preexisting_admin_down_matches() {
    let mut sc = base_scenario(8, 4, 14);
    // An admin-down pair (uplink and downlink of one cable), as the
    // harness installs preexisting known faults.
    sc.admin_down = vec![sc.topo.uplink(3, 1), sc.topo.downlink(1, 3)];
    check_all_backends(&sc, &[1, 2, 4, 8]);
}

#[test]
fn halving_doubling_matches() {
    let mut sc = base_scenario(8, 4, 15);
    sc.sched = halving_doubling_allreduce(&hosts(8), 128 * 1024);
    // Halving-doubling's pairwise exchanges land packets on two spine
    // downlinks at the same nanosecond — the same-instant tie the sharded
    // path resolves differently (see `Scenario::seen_exact`).
    sc.seen_exact = false;
    sc.faults = vec![ShardFault {
        link: sc.topo.downlink(2, 6),
        action: FaultAction::Set(FaultKind::SilentDrop { rate: 0.1 }),
        at_iter: 1,
    }];
    check_all_backends(&sc, &[2, 4]);
}

#[test]
fn no_jitter_simultaneous_starts_match() {
    let mut sc = base_scenario(4, 2, 16);
    sc.rcfg.jitter = JitterModel::None;
    check_all_backends(&sc, &[2, 4]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random faulted scenarios stay in lockstep at random shard counts,
    /// epoch caps, and both backends.
    #[test]
    fn random_faulted_runs_match(
        seed in 1u64..1_000,
        shards in 2u32..8,
        fleaf in 0u32..8,
        fv in 0u32..4,
        at_iter in 0u32..3,
        rate in 0.02f64..1.0,
        threaded_bit in 0u32..2,
        epoch in 1u32..=8,
    ) {
        let threaded = threaded_bit == 1;
        let mut sc = base_scenario(8, 4, seed);
        sc.sched = ring_allreduce(&hosts(8), 32 * 1024);
        let heal = at_iter + 1;
        sc.faults = vec![
            ShardFault {
                link: sc.topo.downlink(fv, fleaf),
                action: FaultAction::Set(FaultKind::SilentDrop { rate }),
                at_iter,
            },
            ShardFault {
                link: sc.topo.downlink(fv, fleaf),
                action: FaultAction::Clear,
                at_iter: heal,
            },
        ];
        let mut want = reference(&sc);
        let mut got = sharded(&sc, shards, threaded, epoch);
        // Random shard counts can split a symmetric exchange so that two
        // same-instant arrivals land on different shards, flipping the
        // enqueue/departure interleave at the momentary peak — the
        // documented `max_queue_bytes` tie residual (see [`stats_fp`]),
        // present on the legacy per-window path as well. Conservation
        // counters, placement, stamps, spans, and trace stay exact.
        scrub_queue_peak(&mut want.stats);
        scrub_queue_peak(&mut got.stats);
        prop_assert_eq!(want, got);
    }
}
