//! Temporal-symmetry fast-forward (`FP_MEMO`) equivalence: a memoized
//! fault-free, jitter-free run must leave the simulator in a state
//! byte-identical to a live run — same flow table, statistics, counters,
//! per-link counters, iteration spans and end time — while actually
//! replaying iterations (hits > 0). The debug-mode re-snapshot assertion
//! inside the engine additionally verifies every replay preserved the
//! normalized residual.

use fp_collectives::ring::ring_allreduce;
use fp_collectives::runner::{CollectiveRunner, RunnerConfig};
use fp_netsim::config::SimConfig;
use fp_netsim::engine::SchedKind;
use fp_netsim::ids::HostId;
use fp_netsim::sim::{RunSummary, Simulator};
use fp_netsim::spray::SprayPolicy;
use fp_netsim::topology::{FatTreeSpec, Topology};
use fp_netsim::trace::TraceEvent;

fn hosts(n: u32) -> Vec<HostId> {
    (0..n).map(HostId).collect()
}

fn run(memo: bool, sched: SchedKind, iters: u32) -> (Simulator, RunSummary) {
    let topo = Topology::fat_tree(FatTreeSpec {
        leaves: 4,
        spines: 2,
        ..Default::default()
    });
    // Adaptive spraying (the default) is memo-ineligible: its deficit
    // decay is anchored to an absolute tau grid, so the boundary-relative
    // state never repeats. LeastLoaded is deterministic and periodic.
    let cfg = SimConfig {
        sched: Some(sched),
        spray: SprayPolicy::LeastLoaded,
        ..Default::default()
    };
    let mut sim = Simulator::new(topo, cfg, 7);
    if memo {
        sim.enable_memo(Vec::new());
    }
    let sched_w = ring_allreduce(&hosts(4), 64 * 1024);
    let runner = CollectiveRunner::new(
        sched_w,
        RunnerConfig {
            iterations: iters,
            ..Default::default()
        },
    );
    sim.set_app(Box::new(runner));
    let summary = sim.run();
    (sim, summary)
}

/// Full-state comparison, modulo the one allowed divergence: the
/// `MemoFastForward` trace records (and the trace's offered count).
fn assert_equivalent(live: &(Simulator, RunSummary), memo: &(Simulator, RunSummary)) {
    let (ls, lr) = live;
    let (ms, mr) = memo;
    assert_eq!(lr.end, mr.end, "end time diverged");
    assert_eq!(
        format!("{:?}", ls.stats),
        format!("{:?}", ms.stats),
        "stats diverged"
    );
    assert_eq!(
        format!("{:?}", ls.flows),
        format!("{:?}", ms.flows),
        "flow table diverged"
    );
    assert_eq!(ls.iter_spans(), ms.iter_spans(), "iteration spans diverged");
    assert_eq!(ls.counters.keys(), ms.counters.keys());
    for key in ls.counters.keys() {
        assert_eq!(
            format!("{:?}", ls.counters.get(key.0, key.1)),
            format!("{:?}", ms.counters.get(key.0, key.1)),
            "counters diverged at {key:?}"
        );
    }
    for i in 0..ls.topo.n_links() {
        let (a, b) = (
            ls.link(fp_netsim::ids::LinkId(i as u32)),
            ms.link(fp_netsim::ids::LinkId(i as u32)),
        );
        assert_eq!(
            (
                a.txed_pkts,
                a.txed_bytes,
                a.delivered_pkts,
                a.delivered_bytes
            ),
            (
                b.txed_pkts,
                b.txed_bytes,
                b.delivered_pkts,
                b.delivered_bytes
            ),
            "link {i} counters diverged"
        );
    }
    let strip = |s: &Simulator| {
        s.trace
            .to_records()
            .into_iter()
            .filter(|r| !matches!(r.event, TraceEvent::MemoFastForward { .. }))
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(ls), strip(ms), "trace diverged beyond memo records");
}

#[test]
fn memoized_run_is_byte_identical_and_actually_replays_heap() {
    let live = run(false, SchedKind::Heap, 12);
    let memo = run(true, SchedKind::Heap, 12);
    assert_equivalent(&live, &memo);
    let c = memo.0.memo_counters().expect("memo enabled");
    assert!(
        c.hits > 0,
        "no fast-forward fired: fallback={:?}",
        c.fallback
    );
    assert!(c.replayed_iters > 0);
    assert!(c.replayed_events > 0);
    // The replayed spans account for events the engine never dispatched.
    assert_eq!(live.0.stats.events, memo.0.stats.events);
}

#[test]
fn memoized_run_is_byte_identical_on_wheel() {
    let live = run(false, SchedKind::Wheel, 12);
    let memo = run(true, SchedKind::Wheel, 12);
    assert_equivalent(&live, &memo);
    let c = memo.0.memo_counters().expect("memo enabled");
    assert!(
        c.hits > 0,
        "no fast-forward fired: fallback={:?}",
        c.fallback
    );
}

#[test]
fn live_run_without_enable_reports_no_counters() {
    let (sim, _) = run(false, SchedKind::Heap, 3);
    assert!(sim.memo_counters().is_none());
}
