//! Property-based tests for collective schedules.

use fp_collectives::prelude::*;
use fp_netsim::ids::HostId;
use proptest::prelude::*;

fn hosts(n: u32) -> Vec<HostId> {
    (0..n).map(HostId).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ring-AllReduce structural invariants for arbitrary sizes.
    #[test]
    fn ring_allreduce_invariants(n in 2u32..40, bytes in 64u64..10_000_000) {
        prop_assume!(bytes >= n as u64);
        let s = ring_allreduce(&hosts(n), bytes);
        prop_assert!(s.validate().is_ok());
        prop_assert_eq!(s.n_steps(), 2 * (n - 1));
        prop_assert_eq!(s.transfers.len() as u32, 2 * (n - 1) * n);
        // Every stage moves exactly the full buffer once (all N chunks).
        for st in 0..s.n_steps() {
            let stage_bytes: u64 = s.transfers.iter()
                .filter(|t| t.step == st)
                .map(|t| t.bytes)
                .sum();
            prop_assert_eq!(stage_bytes, bytes);
        }
        // Per-node send volume = 2(N−1)/N · S, exactly (chunk partition).
        let v0: u64 = s.transfers.iter()
            .filter(|t| t.src == HostId(0))
            .map(|t| t.bytes)
            .sum();
        let total: u64 = s.total_bytes();
        prop_assert_eq!(total, bytes * 2 * (n as u64 - 1));
        // Node volumes differ by at most the chunk-size imbalance (1 byte
        // per stage).
        prop_assert!(v0 * n as u64 >= total - (2 * (n as u64 - 1)) * n as u64);
    }

    /// Demand matrix of a ring only links successors.
    #[test]
    fn ring_demand_is_a_cycle(n in 2u32..32) {
        let s = ring_allreduce(&hosts(n), 4096 * n as u64);
        let d = s.demand(n as usize);
        for i in 0..n {
            for j in 0..n {
                let v = d.get(HostId(i), HostId(j));
                if j == (i + 1) % n {
                    prop_assert!(v > 0);
                } else {
                    prop_assert_eq!(v, 0);
                }
            }
        }
    }

    /// ReduceScatter is exactly the first half of AllReduce.
    #[test]
    fn reduce_scatter_is_half(n in 2u32..24, bytes in 1024u64..1_000_000) {
        prop_assume!(bytes >= n as u64);
        let rs = ring_reduce_scatter(&hosts(n), bytes);
        let ar = ring_allreduce(&hosts(n), bytes);
        prop_assert!(rs.validate().is_ok());
        prop_assert_eq!(rs.transfers.len() * 2, ar.transfers.len());
        prop_assert_eq!(&ar.transfers[..rs.transfers.len()], &rs.transfers[..]);
    }

    /// Halving-doubling conserves per-node volume like the ring.
    #[test]
    fn halving_doubling_volume(pow in 1u32..6, mult in 1u64..50) {
        let n = 1u32 << pow;
        let bytes = n as u64 * 1024 * mult;
        let s = halving_doubling_allreduce(&hosts(n), bytes);
        prop_assert!(s.validate().is_ok());
        let v0: u64 = s.transfers.iter()
            .filter(|t| t.src == HostId(0))
            .map(|t| t.bytes)
            .sum();
        prop_assert_eq!(v0, 2 * bytes * (n as u64 - 1) / n as u64);
        prop_assert_eq!(s.n_steps(), 2 * pow);
    }

    /// AlltoAll covers all ordered pairs, once.
    #[test]
    fn alltoall_pairs(n in 2u32..20, per in 1u64..100_000) {
        let s = alltoall_uniform(&hosts(n), per);
        prop_assert!(s.validate().is_ok());
        prop_assert_eq!(s.transfers.len() as u32, n * (n - 1));
        prop_assert_eq!(s.total_bytes(), per * (n as u64) * (n as u64 - 1));
        let d = s.demand(n as usize);
        prop_assert_eq!(d.total(), s.total_bytes());
    }

    /// Dependency chains in a ring have exactly pipeline depth 2(N−1) and
    /// every non-root transfer's sender is its dependency's receiver.
    #[test]
    fn ring_dependency_structure(n in 2u32..24) {
        let s = ring_allreduce(&hosts(n), 8192 * n as u64);
        prop_assert_eq!(s.depth(), 2 * (n - 1));
        prop_assert_eq!(s.roots().len() as u32, n);
        for (i, d) in s.deps.iter().enumerate() {
            if let Some(p) = d {
                prop_assert_eq!(s.transfers[*p as usize].dst, s.transfers[i].src);
            }
        }
    }

    /// Jitter samples respect their model across arbitrary shapes.
    #[test]
    fn jitter_bounds(n in 1usize..64, max_us in 1u64..100, seed in 0u64..1000) {
        use fp_netsim::time::SimDuration;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let m = JitterModel::Uniform { max: SimDuration::from_us(max_us) };
        let v = m.sample(n, &mut rng);
        prop_assert_eq!(v.len(), n);
        for d in v {
            prop_assert!(d <= SimDuration::from_us(max_us));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Running a random ring on a real fabric always completes and the
    /// tagged per-iteration volume equals the schedule's non-local bytes.
    #[test]
    fn runner_conserves_schedule_volume(n_pow in 1u32..4, kib in 64u64..512, seed in 0u64..100) {
        use fp_netsim::prelude::*;
        let n = 2u32 << n_pow; // 4..16
        let topo = Topology::fat_tree(FatTreeSpec {
            leaves: n,
            spines: (n / 2).max(1),
            ..Default::default()
        });
        let bytes = kib * 1024;
        prop_assume!(bytes >= n as u64);
        let sched = ring_allreduce(&hosts(n), bytes);
        let expected = sched.total_bytes(); // ring: all transfers non-local
        let mut sim = Simulator::new(topo, SimConfig::default(), seed);
        sim.set_app(Box::new(CollectiveRunner::new(sched, RunnerConfig::default())));
        sim.run();
        prop_assert!(sim.all_flows_complete());
        let c = sim.counters.get(1, 0).unwrap();
        prop_assert_eq!(c.total_bytes(), expected);
    }
}
