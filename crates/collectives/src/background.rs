//! Background (non-measured) traffic generator.
//!
//! Clusters are rarely single-tenant (paper §7 "Parallel Jobs"). This app
//! injects unstructured best-effort traffic — random host pairs, roughly
//! Poisson arrivals — at [`Priority::BACKGROUND`], below the measured
//! collective. The A3 ablation uses it to show that prioritizing the
//! measured collective (§5.1) preserves temporal symmetry under load, and
//! that *without* prioritization the symmetry degrades.

use fp_netsim::app::Application;
use fp_netsim::ids::HostId;
use fp_netsim::packet::Priority;
use fp_netsim::sim::Simulator;
use fp_netsim::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Background generator parameters.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct BackgroundConfig {
    /// Token namespace (must differ from collective job ids on the fabric).
    pub job: u32,
    /// Message size, bytes.
    pub msg_bytes: u64,
    /// Mean inter-arrival time (exponential).
    pub mean_interval: SimDuration,
    /// Stop generating at this simulated time.
    pub until: SimTime,
    /// Priority of the generated flows.
    pub prio: Priority,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            job: 0xB6,
            msg_bytes: 512 * 1024,
            mean_interval: SimDuration::from_us(20),
            until: SimTime::from_ms(2),
            prio: Priority::BACKGROUND,
            seed: 0xBA5E,
        }
    }
}

/// Injects random-pair best-effort messages until a deadline.
pub struct BackgroundTraffic {
    cfg: BackgroundConfig,
    rng: SmallRng,
    /// Messages posted so far.
    pub posted: u64,
}

impl BackgroundTraffic {
    /// New generator.
    pub fn new(cfg: BackgroundConfig) -> Self {
        let rng = SmallRng::seed_from_u64(cfg.seed);
        BackgroundTraffic {
            cfg,
            rng,
            posted: 0,
        }
    }

    fn exp_interval(&mut self) -> SimDuration {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.cfg.mean_interval.mul_f64(-u.ln())
    }

    fn schedule_next(&mut self, sim: &mut Simulator) {
        let at = sim.now() + self.exp_interval();
        if at <= self.cfg.until {
            // Host in the token is irrelevant; we use host 0 as the anchor.
            sim.schedule_wake(at, HostId(0), (self.cfg.job as u64) << 32);
        }
    }
}

impl Application for BackgroundTraffic {
    fn on_start(&mut self, sim: &mut Simulator) {
        self.schedule_next(sim);
    }

    fn on_wake(&mut self, sim: &mut Simulator, _host: HostId, token: u64) {
        if token >> 32 != self.cfg.job as u64 {
            return;
        }
        let n = sim.topo.n_hosts() as u32;
        if n >= 2 {
            let src = self.rng.gen_range(0..n);
            let mut dst = self.rng.gen_range(0..n - 1);
            if dst >= src {
                dst += 1;
            }
            sim.post_message(
                HostId(src),
                HostId(dst),
                self.cfg.msg_bytes,
                None,
                self.cfg.prio,
            );
            self.posted += 1;
        }
        self.schedule_next(sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_netsim::config::SimConfig;
    use fp_netsim::topology::{FatTreeSpec, Topology};

    #[test]
    fn generates_until_deadline() {
        let topo = Topology::fat_tree(FatTreeSpec {
            leaves: 4,
            spines: 2,
            ..Default::default()
        });
        let mut sim = Simulator::new(topo, SimConfig::default(), 5);
        let cfg = BackgroundConfig {
            mean_interval: SimDuration::from_us(10),
            until: SimTime::from_us(500),
            msg_bytes: 64 * 1024,
            ..Default::default()
        };
        sim.set_app(Box::new(BackgroundTraffic::new(cfg)));
        sim.run();
        assert!(sim.all_flows_complete());
        // ~50 expected arrivals; accept a broad band.
        assert!(sim.flows.len() > 15, "only {} flows", sim.flows.len());
        assert!(sim.flows.len() < 150);
        // Background traffic is untagged: no counter entries.
        assert!(sim.counters.keys().is_empty());
    }

    #[test]
    fn never_posts_self_pairs() {
        // gen logic: dst != src by construction; run a few hundred draws.
        let topo = Topology::fat_tree(FatTreeSpec {
            leaves: 2,
            spines: 2,
            ..Default::default()
        });
        let mut sim = Simulator::new(topo, SimConfig::default(), 5);
        let cfg = BackgroundConfig {
            mean_interval: SimDuration::from_ns(200),
            until: SimTime::from_us(100),
            msg_bytes: 4096,
            ..Default::default()
        };
        sim.set_app(Box::new(BackgroundTraffic::new(cfg)));
        sim.run();
        for f in &sim.flows {
            assert_ne!(f.src, f.dst);
        }
        assert!(!sim.flows.is_empty());
    }
}
