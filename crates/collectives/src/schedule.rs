//! Collective schedules: transfers plus dependencies.
//!
//! A [`Schedule`] is the static communication plan of one collective
//! iteration: a list of point-to-point [`Transfer`]s, where a transfer may
//! depend on another transfer having *completed at its receiver* (the
//! receive-then-forward structure of pipelined rings and recursive
//! halving/doubling). The runner executes the same schedule every training
//! iteration — that repetition is the source of temporal symmetry (§4).

use crate::demand::DemandMatrix;
use fp_netsim::ids::HostId;
use serde::{Deserialize, Serialize};

/// One point-to-point message within a collective iteration.
#[derive(Copy, Clone, PartialEq, Eq, Serialize, Deserialize, Debug)]
pub struct Transfer {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Message size in bytes.
    pub bytes: u64,
    /// Logical step (for inspection; execution order is driven by `deps`).
    pub step: u32,
}

/// A complete collective iteration plan.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize, Debug)]
pub struct Schedule {
    /// Human-readable collective name.
    pub name: String,
    /// Participating hosts.
    pub nodes: Vec<HostId>,
    /// All transfers of one iteration.
    pub transfers: Vec<Transfer>,
    /// `deps[t]` = transfer that must complete before `t` may start
    /// (`None` = starts at iteration begin).
    pub deps: Vec<Option<u32>>,
}

impl Schedule {
    /// Indices of transfers with no prerequisite.
    pub fn roots(&self) -> Vec<u32> {
        self.deps
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.is_none().then_some(i as u32))
            .collect()
    }

    /// Inverse dependency map: `children()[t]` = transfers unblocked when
    /// `t` completes.
    pub fn children(&self) -> Vec<Vec<u32>> {
        let mut ch = vec![Vec::new(); self.transfers.len()];
        for (i, d) in self.deps.iter().enumerate() {
            if let Some(p) = d {
                ch[*p as usize].push(i as u32);
            }
        }
        ch
    }

    /// Aggregate per-pair demand over one iteration, sized for `n_hosts`.
    pub fn demand(&self, n_hosts: usize) -> DemandMatrix {
        let mut d = DemandMatrix::new(n_hosts);
        for t in &self.transfers {
            d.add(t.src, t.dst, t.bytes);
        }
        d
    }

    /// Total bytes moved per iteration.
    pub fn total_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// Number of distinct steps.
    pub fn n_steps(&self) -> u32 {
        self.transfers.iter().map(|t| t.step + 1).max().unwrap_or(0)
    }

    /// Structural sanity: deps in range and acyclic (prerequisite must have
    /// a strictly smaller step), transfers non-degenerate, and the
    /// dependency's receiver is the dependent transfer's sender (you can
    /// only forward what *you* received).
    pub fn validate(&self) -> Result<(), String> {
        if self.deps.len() != self.transfers.len() {
            return Err("deps/transfers length mismatch".into());
        }
        for (i, t) in self.transfers.iter().enumerate() {
            if t.src == t.dst {
                return Err(format!("transfer {i} is self-addressed"));
            }
            if t.bytes == 0 {
                return Err(format!("transfer {i} is empty"));
            }
            if let Some(p) = self.deps[i] {
                let p = p as usize;
                if p >= self.transfers.len() {
                    return Err(format!("transfer {i} depends on out-of-range {p}"));
                }
                if self.transfers[p].step >= t.step {
                    return Err(format!(
                        "transfer {i} (step {}) depends on {p} (step {}) — not acyclic",
                        t.step, self.transfers[p].step
                    ));
                }
                if self.transfers[p].dst != t.src {
                    return Err(format!(
                        "transfer {i} sender {} is not the receiver {} of its dependency",
                        t.src, self.transfers[p].dst
                    ));
                }
            }
        }
        Ok(())
    }

    /// Longest dependency chain length (pipeline depth).
    pub fn depth(&self) -> u32 {
        let mut depth = vec![0u32; self.transfers.len()];
        let mut max = 0;
        // deps always point to earlier indices after validate(); walk in order.
        for i in 0..self.transfers.len() {
            if let Some(p) = self.deps[i] {
                depth[i] = depth[p as usize] + 1;
            } else {
                depth[i] = 1;
            }
            max = max.max(depth[i]);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_step() -> Schedule {
        Schedule {
            name: "test".into(),
            nodes: vec![HostId(0), HostId(1), HostId(2)],
            transfers: vec![
                Transfer {
                    src: HostId(0),
                    dst: HostId(1),
                    bytes: 10,
                    step: 0,
                },
                Transfer {
                    src: HostId(1),
                    dst: HostId(2),
                    bytes: 10,
                    step: 1,
                },
            ],
            deps: vec![None, Some(0)],
        }
    }

    #[test]
    fn roots_and_children() {
        let s = two_step();
        assert_eq!(s.roots(), vec![0]);
        assert_eq!(s.children(), vec![vec![1], vec![]]);
        assert_eq!(s.depth(), 2);
        assert_eq!(s.n_steps(), 2);
        s.validate().unwrap();
    }

    #[test]
    fn demand_aggregates() {
        let s = two_step();
        let d = s.demand(3);
        assert_eq!(d.get(HostId(0), HostId(1)), 10);
        assert_eq!(d.get(HostId(1), HostId(2)), 10);
        assert_eq!(d.total(), 20);
    }

    #[test]
    fn validate_catches_cycles() {
        let mut s = two_step();
        s.transfers[1].step = 0; // same step as its dependency
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_catches_wrong_forwarder() {
        let mut s = two_step();
        s.transfers[1].src = HostId(2); // dep's receiver is 1, not 2
        s.transfers[1].dst = HostId(0);
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_catches_degenerate() {
        let mut s = two_step();
        s.transfers[0].bytes = 0;
        assert!(s.validate().is_err());
    }
}
