//! Intra-trial parallel execution: one collective trial sharded across
//! per-pod/per-leaf fabric partitions, advanced in conservative lockstep.
//!
//! `fp-netsim`'s [`fp_netsim::shard`] module provides the partition
//! ([`ShardPlan`]), the cross-shard record types and the SPSC mailboxes;
//! this module provides the piece that must live next to the workload: a
//! coordinator that replicates [`crate::runner::CollectiveRunner`]
//! draw-for-draw while each shard runs its own [`Simulator`] over the
//! owned slice of the fabric.
//!
//! ## Window protocol
//!
//! Every round the coordinator computes the conservative horizon
//! `W = min over shards of next-event-time + L`, where `L` is the minimum
//! propagation latency of any cross-shard link ([`ShardPlan::lookahead`]).
//! Each shard then runs all events strictly below `W`: any packet a
//! neighbour emits during the round finishes serialization at `t ≥
//! min-next` and arrives at `t + latency ≥ W`, so it cannot be missed.
//! At the barrier the coordinator drains every shard's
//! [`fp_netsim::shard::ShardOutbox`], routes each record to the shard
//! owning its receiving node, and injects it (arrival-time-stamped)
//! before the next round.
//!
//! ## Epoch batching
//!
//! The window *schedule* above is exact, but paying one coordinator
//! round-trip (two mailbox hops plus a wake-up per shard) per window is
//! what held the threaded backend under 0.5× of the unsharded engine.
//! The coordinator instead issues one
//! [`Cmd::Epoch`]: shards advance up to `FP_SHARD_EPOCH` windows
//! peer-to-peer, synchronizing each window over a shared [`EpochShared`]
//! slot array (cache-line-padded per-shard next/events/completions
//! atomics) and a spin barrier, and exchanging boundary records directly
//! through batched SPSC rings ([`fp_netsim::shard::batch_ring`]) — one
//! release-store publish per shard pair per window, no coordinator in the
//! loop. The per-window horizon remains exactly `W = global-min-next +
//! L`, so the event sequence (and therefore every byte of output) is
//! identical to the per-window protocol; epochs batch only the
//! synchronization transport. An epoch ends — at every shard in the same
//! window, since all break decisions read the same shared slots — when
//! the fabric drains, the window cap is hit, the engine event budget is
//! exceeded, or the running iteration completes (detected via the
//! completion-count slots; boundary bookkeeping, jitter draws and
//! next-iteration wakes stay coordinator-side, so records still in the
//! rings at the break are returned with the epoch response and re-injected
//! by the coordinator *after* the new iteration's wakes, preserving the
//! legacy sequence-number order). The inline backend drives the identical
//! per-window phase methods over all shards from the coordinator thread —
//! same code, same order, no barriers needed.
//!
//! ## Why the result is byte-identical to an unsharded run
//!
//! * Every link, switch, host and flow endpoint has exactly one owning
//!   shard, so every counter/statistic has a single writer and merging is
//!   exact ([`Stats::merge`], [`CounterStore::merge_from`]).
//! * The eligible spray policies (`Adaptive`, `LeastLoaded`, `RoundRobin`)
//!   never consume randomness, and the fault stream is drawn only at the
//!   faulted link's owning shard in per-link FIFO order — the same order
//!   an unsharded run draws it in.
//! * Iteration jitter is drawn by the coordinator from the same seeded
//!   stream, one [`crate::jitter::JitterModel::sample`] call per
//!   iteration, exactly like the runner.
//! * Mid-run fault flips land at the precise instant the unsharded
//!   iteration-start hook fires (the previous iteration's last completion)
//!   via the armed-window protocol below.
//!
//! ## Armed windows (exact fault-install timing)
//!
//! The harness installs/heals silent faults at iteration boundaries: the
//! unsharded hook runs synchronously inside the completion dispatch of the
//! iteration's last transfer. Sharded, that completion happens at the
//! shard owning the completing transfer's destination, while the fault
//! must flip at the shard owning the faulted link (`S_f`). While a
//! boundary with scheduled flips is imminent, rounds run `S_f` *last*:
//!
//! * if transfers completing at other shards remain unfinished after their
//!   windows, the iteration cannot end this round — `S_f` runs a plain
//!   window;
//! * if every remaining transfer already completed at the other shards,
//!   the boundary time `t_end` is known exactly — `S_f` schedules the flip
//!   at `t_end` and runs its window across it;
//! * if the only remaining transfers complete at `S_f` itself, `S_f` is
//!   armed with a countdown: its in-shard application applies the flip the
//!   moment the last one completes.
//!
//! Under epoch batching the same three-way decision runs *inside* the
//! epoch (an "armed epoch", seeded by [`EpochArm`]): each window the
//! other shards run first and publish their cumulative completion counts
//! and max completion times, and `S_f` replays the decision locally
//! before running its window last — the identical dependency structure,
//! without a coordinator round trip per window. Only an `FP_SHARD_EPOCH=1`
//! run still takes the coordinator-mediated armed rounds above.

use crate::runner::{MeasuredSubset, RunnerConfig};
use crate::schedule::{Schedule, Transfer};
use fp_netsim::app::Application;
use fp_netsim::config::SimConfig;
use fp_netsim::counters::CounterStore;
use fp_netsim::engine::{SchedKind, SchedStats};
use fp_netsim::fault::{FaultAction, FaultEvent, FaultKind};
use fp_netsim::ids::{HostId, LinkId, NodeId};
use fp_netsim::packet::{CollectiveTag, FlowId, Priority};
use fp_netsim::shard::{
    batch_ring, spsc, BatchReceiver, BatchSender, RemoteOpen, RemotePfc, RemotePkt, ShardPlan,
    SpscReceiver, SpscSender, MAX_EPOCH_WINDOWS,
};
use fp_netsim::sim::{IterSpanRecord, Simulator};
use fp_netsim::stats::Stats;
use fp_netsim::time::{SimDuration, SimTime};
use fp_netsim::topology::Topology;
use fp_netsim::trace::TraceRecord;
use fp_telemetry::{LinkSample, TapRecorder};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// One scheduled fault flip: apply `action` to `link` at the start of
/// iteration `at_iter` (the instant iteration `at_iter − 1` completes, or
/// `t = 0` for `at_iter = 0`) — the iteration-start-hook contract of the
/// evaluation harness.
#[derive(Clone, Debug)]
pub struct ShardFault {
    /// Target directed link (its transmitting node's shard applies it).
    pub link: LinkId,
    /// Install or clear.
    pub action: FaultAction,
    /// Iteration at whose start the flip lands.
    pub at_iter: u32,
}

/// Everything a sharded run produced, merged across shards. Field for
/// field this matches what the harness reads off an unsharded
/// [`Simulator`] after a run.
#[derive(Clone, Debug)]
pub struct ShardedOutcome {
    /// Merged transport/fabric statistics. `events` excludes the
    /// coordination-artifact fault-update events, so it equals an
    /// unsharded run's total exactly.
    pub stats: Stats,
    /// Merged leaf-ingress counters.
    pub counters: CounterStore,
    /// Merged agg-uplink counters (3-level fabrics).
    pub agg_counters: CounterStore,
    /// Iteration spans of the measured job, coordinator-recorded.
    pub iter_spans: Vec<IterSpanRecord>,
    /// Trace records from all shards, merged in timestamp order.
    pub trace: Vec<TraceRecord>,
    /// Total records offered to the per-shard trace rings.
    pub trace_offered: u64,
    /// Whether any shard's trace ring evicted records.
    pub trace_truncated: bool,
    /// Scheduler backend the shards ran (identical across shards).
    pub sched_kind: SchedKind,
    /// Merged scheduler occupancy counters.
    pub sched: SchedStats,
    /// Raw engine events per shard (before artifact adjustment) — the
    /// load-balance signal exported to campaign manifests.
    pub shard_events: Vec<u64>,
    /// Simulated time the first `FaultAction::Set` flip landed.
    pub install_ns: Option<u64>,
    /// Conservative windows the run advanced (perf telemetry). Every
    /// window is one `W = min-next + L` horizon, whether it ran inside an
    /// epoch or as a standalone round.
    pub windows: u64,
    /// Coordinator synchronization round-trips. The per-window protocol
    /// has `syncs == windows`; the epoch protocol amortizes one sync over
    /// up to `FP_SHARD_EPOCH` windows, so `windows / syncs` is the
    /// measured amortization factor.
    pub syncs: u64,
    /// Merged per-shard telemetry streams, present when the run was asked
    /// to tap telemetry (`tap_interval` in [`run_sharded`]). The caller
    /// replays these into its real recorder in unsharded hook order.
    pub telemetry: Option<ShardTelemetry>,
}

/// Per-shard recorder streams merged back into the unsharded hook order.
///
/// Link samples are tick-major (every sampler grid point from
/// `interval_ns` to `end_ns`, links ascending within a tick) — exactly
/// the order an unsharded [`Simulator`]'s sampler emits. FCT / RTO / PFC
/// observations are concatenated in shard order; they carry no
/// timestamps and feed order-insensitive histograms, so their exported
/// bytes match the unsharded run's (see `DESIGN.md` §9 for the exact-tie
/// residuals).
#[derive(Clone, Debug)]
pub struct ShardTelemetry {
    /// Sampler period the taps ran with (0 = periodic sampler disabled).
    pub interval_ns: u64,
    /// `(t_ns, link, sample)` rows, tick-major, links ascending.
    pub samples: Vec<(u64, u32, LinkSample)>,
    /// Flow completion times, concatenated in shard order.
    pub fct_ns: Vec<u64>,
    /// RTO attempt numbers, concatenated in shard order.
    pub rto_attempts: Vec<u32>,
    /// `(prio, pause_ns)` PFC pauses, concatenated in shard order.
    pub pfc_pause_ns: Vec<(u8, u64)>,
    /// Where the unsharded clock would stop: the final trailing sampler
    /// tick when the sampler ran, else the last real event time.
    pub end_ns: u64,
}

/// A fault flip armed inside `S_f`'s application: applied once
/// `remaining` further completions land, at `max(floor, now)`.
#[derive(Clone, Debug)]
struct PendingArm {
    remaining: u32,
    floor: SimTime,
    actions: Vec<(LinkId, FaultAction)>,
}

/// State shared between a shard's in-simulator application and its command
/// executor (single-threaded within the shard: `Rc<RefCell>`).
#[derive(Default)]
struct ShardShared {
    iter: u32,
    completions: Vec<(SimTime, u32)>,
    /// Max completion time this shard has ever produced (monotone across
    /// iterations). Armed epochs fold it into the boundary floor; stale
    /// prior-iteration values are provably below every completion of the
    /// running iteration, so the max is exact wherever the floor matters.
    comp_floor: SimTime,
    pending: Option<PendingArm>,
    /// Scheduler events this shard created purely to coordinate (fault
    /// updates standing in for the unsharded synchronous hook); subtracted
    /// from the merged event total.
    artifact_events: u64,
    install_ns: Option<u64>,
}

/// Apply fault flips at exactly `at`: synchronously when the shard clock
/// already reached `at`, else via a scheduled fault update that dispatches
/// at `at` inside the current window.
fn apply_flips(
    sim: &mut Simulator,
    shared: &mut ShardShared,
    actions: &[(LinkId, FaultAction)],
    at: SimTime,
) {
    for &(link, action) in actions {
        let effective = at.max(sim.now());
        if effective <= sim.now() {
            sim.apply_fault_now(link, action, false);
        } else {
            sim.schedule_fault(FaultEvent {
                at: effective,
                link,
                bidirectional: false,
                action,
            });
            shared.artifact_events += 1;
        }
        if shared.install_ns.is_none() && matches!(action, FaultAction::Set(_)) {
            shared.install_ns = Some(effective.as_ns());
        }
    }
}

/// The per-shard workload application: the completion-driven half of
/// [`crate::runner::CollectiveRunner`]. Iteration bookkeeping (outstanding
/// counts, spans, jitter, next-iteration wakes) lives in the coordinator;
/// this half posts transfers and their dependents and reports completions.
struct ShardApp {
    shared: Rc<RefCell<ShardShared>>,
    job: u32,
    tag: bool,
    prio: Priority,
    measured: MeasuredSubset,
    transfers: Vec<Transfer>,
    children: Vec<Vec<u32>>,
    scratch: Vec<u32>,
}

impl ShardApp {
    fn token(&self, t: u32) -> u64 {
        (self.job as u64) << 32 | t as u64
    }

    fn post(&mut self, sim: &mut Simulator, t: u32) {
        let tr = self.transfers[t as usize];
        let measured = self.measured.contains(t);
        let tag = (self.tag && measured).then_some(CollectiveTag {
            job: self.job,
            iter: self.shared.borrow().iter,
        });
        let prio = if measured {
            self.prio
        } else {
            Priority::BACKGROUND
        };
        sim.post_message_tok(tr.src, tr.dst, tr.bytes, tag, prio, self.token(t));
    }
}

impl Application for ShardApp {
    fn on_wake(&mut self, sim: &mut Simulator, _host: HostId, token: u64) {
        if token >> 32 == self.job as u64 {
            self.post(sim, (token & 0xffff_ffff) as u32);
        }
    }

    fn on_message_complete(&mut self, sim: &mut Simulator, flow: FlowId) {
        let token = sim.flows[flow as usize].app_token;
        if token == u64::MAX || token >> 32 != self.job as u64 {
            return;
        }
        let t = (token & 0xffff_ffff) as u32;
        // Dependents post at the completing shard (the schedule guarantees
        // a dependent's source is its dependency's destination).
        let mut unblocked = std::mem::take(&mut self.scratch);
        unblocked.clear();
        unblocked.extend_from_slice(&self.children[t as usize]);
        for &c in &unblocked {
            self.post(sim, c);
        }
        self.scratch = unblocked;
        let now = sim.now();
        let fire = {
            let mut sh = self.shared.borrow_mut();
            sh.completions.push((now, t));
            sh.comp_floor = sh.comp_floor.max(now);
            match sh.pending.as_mut() {
                Some(p) => {
                    p.remaining -= 1;
                    if p.remaining == 0 {
                        sh.pending.take()
                    } else {
                        None
                    }
                }
                None => None,
            }
        };
        if let Some(p) = fire {
            let mut sh = self.shared.borrow_mut();
            apply_flips(sim, &mut sh, &p.actions, p.floor.max(now));
        }
    }
}

// ---------------------------------------------------------------------
// Epoch synchronization (threaded backend)
// ---------------------------------------------------------------------

/// Reusable generation-counting spin barrier. Shard counts are at most a
/// few per core and every wait is bounded by one window of simulation, so
/// waiters spin briefly then yield — the E10 sweep already showed parked
/// retries beat condvar handoffs ~4× at this handoff rate, and a barrier
/// round is cheaper still (no mutex, no syscall on the fast path).
struct SpinBarrier {
    n: u32,
    count: AtomicU32,
    generation: AtomicU64,
}

impl SpinBarrier {
    fn new(n: u32) -> SpinBarrier {
        SpinBarrier {
            n,
            count: AtomicU32::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// Block until all `n` participants arrive. The last arriver resets
    /// the count before bumping the generation, so the reset is visible
    /// (release → acquire on `generation`) to every waiter before it can
    /// re-enter.
    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(generation.wrapping_add(1), Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == generation {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                // Oversubscribed hosts (or a single core) must let the
                // other shard workers run at all.
                std::thread::yield_now();
            }
        }
    }
}

/// One per-shard value on its own cache line: shards publish into their
/// slot and read all others, so sharing lines across writers would ping
/// the whole array on every store.
#[repr(align(64))]
struct Slot(AtomicU64);

/// The in-epoch synchronization state shared by all shard workers: the
/// double-barrier (publish → wait → read) discipline means every slot has
/// exactly one writer and is quiescent whenever anyone reads it, so all
/// shards see identical values and take identical break decisions — which
/// is what keeps their barrier counts aligned (no deadlock) and the epoch
/// length deterministic.
struct EpochShared {
    barrier: SpinBarrier,
    /// Per-shard next-event time (`u64::MAX` = drained), published before
    /// barrier A of every window; the global min reconstructs the exact
    /// per-window horizon `W = gmin + L` of the legacy protocol.
    next: Vec<Slot>,
    /// Per-shard cumulative engine events, published before barrier B —
    /// the sum replicates the coordinator's `max_events` safety stop.
    events: Vec<Slot>,
    /// Per-shard cumulative workload completions, published before
    /// barrier B — the sum crossing the coordinator-supplied target is
    /// the iteration boundary (bookkeeping returns to the coordinator).
    comps: Vec<Slot>,
    /// Per-shard max completion time ever produced, published alongside
    /// `comps`. The fault owner of an armed epoch reads the others' slots
    /// to reconstruct the boundary floor exactly as the legacy
    /// coordinator did from collected completions.
    floors: Vec<Slot>,
}

impl EpochShared {
    fn new(n: u32) -> EpochShared {
        let slots = |v: u64| (0..n).map(|_| Slot(AtomicU64::new(v))).collect::<Vec<_>>();
        EpochShared {
            barrier: SpinBarrier::new(n),
            next: slots(0),
            events: slots(0),
            comps: slots(0),
            floors: slots(0),
        }
    }
}

/// Sending half of one shard's batched mailboxes to one peer.
struct PeerTx {
    opens: BatchSender<RemoteOpen>,
    pkts: BatchSender<RemotePkt>,
    pfcs: BatchSender<RemotePfc>,
}

/// Receiving half of one shard's batched mailboxes from one peer.
struct PeerRx {
    opens: BatchReceiver<RemoteOpen>,
    pkts: BatchReceiver<RemotePkt>,
    pfcs: BatchReceiver<RemotePfc>,
}

/// One shard's view of the epoch fabric: the shared slot array plus its
/// row (senders, indexed by destination) and column (receivers, indexed
/// by source) of the all-pairs batch-ring matrix. `None` on the diagonal
/// — a shard's outbox never routes to itself.
struct EpochLinks {
    shared: Arc<EpochShared>,
    tx: Vec<Option<PeerTx>>,
    rx: Vec<Option<PeerRx>>,
    lookahead: SimDuration,
}

/// Build the all-pairs epoch fabric for `n` shards.
#[allow(clippy::needless_range_loop)] // src/dst index two matrices symmetrically
fn epoch_fabric(n: u32, lookahead: SimDuration) -> Vec<EpochLinks> {
    let shared = Arc::new(EpochShared::new(n));
    let n = n as usize;
    let mut txs: Vec<Vec<Option<PeerTx>>> = (0..n).map(|_| Vec::new()).collect();
    let mut rxs: Vec<Vec<Option<PeerRx>>> = (0..n).map(|_| Vec::new()).collect();
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                txs[src].push(None);
                rxs[dst].push(None);
                continue;
            }
            // Capacity 2 suffices — at most one batch per stream is ever
            // in flight under the barrier discipline — but 4 keeps the
            // full-ring panic strictly a protocol-violation signal.
            let (otx, orx) = batch_ring(4);
            let (ptx, prx) = batch_ring(4);
            let (ftx, frx) = batch_ring(4);
            txs[src].push(Some(PeerTx {
                opens: otx,
                pkts: ptx,
                pfcs: ftx,
            }));
            rxs[dst].push(Some(PeerRx {
                opens: orx,
                pkts: prx,
                pfcs: frx,
            }));
        }
    }
    txs.into_iter()
        .zip(rxs)
        .map(|(tx, rx)| EpochLinks {
            shared: shared.clone(),
            tx,
            rx,
            lookahead,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Commands and responses (identical for the inline and threaded backends)
// ---------------------------------------------------------------------

/// An armed completion-countdown flip: how many in-shard completions
/// remain before the boundary, the earliest instant the flip may land,
/// and the fault actions to apply when it does.
type ArmedFlip = (u32, SimTime, Vec<(LinkId, FaultAction)>);

/// Coordinator-computed seed for an *armed epoch*: an epoch that may have
/// to fire iteration-boundary fault flips mid-stream. It snapshots the
/// legacy armed round's inputs at epoch start, so the fault owner can
/// replay the per-window arm/install decision locally from the counters
/// the other shards publish — the same dependency structure (owner runs
/// last, with every other shard's window already in), executed
/// peer-to-peer instead of through a coordinator round trip per window.
#[derive(Clone)]
struct EpochArm {
    /// Shard owning the faulted links (`S_f`).
    owner: u32,
    /// Outstanding completions landing at the owner, at epoch start.
    m_at_sf: u32,
    /// Outstanding completions landing anywhere else, at epoch start.
    rem_elsewhere: u32,
    /// Sum of the *other* shards' cumulative completion counts at epoch
    /// start — the baseline their published counters are read against.
    others_base: u64,
    /// Max completion time of the running iteration, at epoch start.
    floor: SimTime,
    /// The flips to land at the iteration boundary.
    flips: Vec<(LinkId, FaultAction)>,
}

/// One coordinator→shard command. All payloads are `Send` so the same
/// protocol drives in-process execution and worker threads.
enum Cmd {
    /// Schedule application wakes (root transfers of an iteration).
    Wakes(Vec<(SimTime, HostId, u64)>),
    /// Set the iteration number stamped into collective tags.
    SetIter(u32),
    /// Inject boundary-crossing records collected at the last barrier.
    Inject {
        opens: Vec<RemoteOpen>,
        pkts: Vec<RemotePkt>,
        pfcs: Vec<RemotePfc>,
    },
    /// Arm (or overwrite, or clear) the completion-countdown fault flip.
    Arm(Option<ArmedFlip>),
    /// Apply fault flips at exactly the given time.
    Install(Vec<(LinkId, FaultAction)>, SimTime),
    /// Run all events strictly below the horizon; reply with a window
    /// response.
    Window(SimTime),
    /// Advance up to `cap` windows peer-to-peer (barrier-synchronized,
    /// records over the batch rings), breaking early when the fabric
    /// drains, the engine event budget trips, or the cumulative
    /// completion count reaches `stop_comps` (the running iteration's
    /// boundary); reply with one window response covering the whole
    /// epoch. With `arm`, the epoch is *armed*: each window the fault
    /// owner runs last and replays the legacy boundary-flip decision
    /// locally (see [`EpochArm`]).
    Epoch {
        cap: u32,
        stop_comps: u64,
        arm: Option<EpochArm>,
    },
    /// Tear down and reply with the shard's final artifacts.
    Finish,
}

/// Per-round barrier data returned by every shard: one window's worth for
/// [`Cmd::Window`], a whole epoch's for [`Cmd::Epoch`] (where the record
/// vectors hold only the *leftovers* still in the shard's inbound rings at
/// the epoch break — everything else was exchanged peer-to-peer).
struct WindowResp {
    next: Option<SimTime>,
    opens: Vec<RemoteOpen>,
    pkts: Vec<RemotePkt>,
    pfcs: Vec<RemotePfc>,
    completions: Vec<(SimTime, u32)>,
    /// Cumulative engine events (including coordination artifacts).
    events: u64,
    install_ns: Option<u64>,
    /// Conservative windows this response covers (1 for [`Cmd::Window`]).
    windows: u64,
}

/// Final artifacts returned by every shard.
struct FinishResp {
    stats: Stats,
    counters: CounterStore,
    agg_counters: CounterStore,
    trace: Vec<TraceRecord>,
    trace_offered: u64,
    trace_truncated: bool,
    sched_kind: SchedKind,
    sched: SchedStats,
    artifact_events: u64,
    install_ns: Option<u64>,
    /// Raw telemetry captured by this shard's tap (when one was attached).
    tap: Option<Box<TapShard>>,
    /// Time of the shard's last real (non-sampler) event.
    last_event_ns: u64,
}

/// One shard's raw telemetry: the tap's buffers plus the wire-transit log
/// of boundary packets it sent (for in-flight depth reconstruction).
struct TapShard {
    samples: Vec<(u64, u32, LinkSample)>,
    fct_ns: Vec<u64>,
    rto_attempts: Vec<u32>,
    pfc_pause_ns: Vec<(u8, u64)>,
    /// `(link, send_ns, arrive_ns)` of boundary-crossing packets.
    wire: Vec<(u32, u64, u64)>,
}

enum Resp {
    Window(Box<WindowResp>),
    Finish(Box<FinishResp>),
}

/// Everything needed to build one shard's executor — plain `Send` data,
/// so the threaded backend can move it into a worker (a [`Simulator`]
/// itself is not `Send`).
struct ShardSeed {
    topo: Topology,
    cfg: SimConfig,
    seed: u64,
    shard: u32,
    plan: ShardPlan,
    admin_down: Vec<LinkId>,
    job: u32,
    tag: bool,
    prio: Priority,
    measured: MeasuredSubset,
    transfers: Vec<Transfer>,
    children: Vec<Vec<u32>>,
    /// Attach a telemetry tap sampling at this period (`None` = no tap).
    tap_interval: Option<u64>,
    /// The shard's slice of the epoch fabric (`None` when single-shard —
    /// epochs never run there).
    links: Option<EpochLinks>,
}

/// One shard's simulator plus its command loop, shared verbatim between
/// the inline and threaded backends.
struct ShardExec {
    sim: Simulator,
    shared: Rc<RefCell<ShardShared>>,
    shard: u32,
    plan: ShardPlan,
    links: Option<EpochLinks>,
    max_events: u64,
    /// Completions already returned to the coordinator in prior responses
    /// (the cumulative completion count published to the epoch slots is
    /// `comps_reported + pending`).
    comps_reported: u64,
    /// Per-destination-shard staging for outbox records, reused across
    /// windows (drained by every ring publish).
    stage_opens: Vec<Vec<RemoteOpen>>,
    stage_pkts: Vec<Vec<RemotePkt>>,
    stage_pfcs: Vec<Vec<RemotePfc>>,
}

impl ShardExec {
    fn build(seed: ShardSeed) -> ShardExec {
        let shard = seed.shard;
        let plan = seed.plan.clone();
        let links = seed.links;
        let max_events = seed.cfg.max_events;
        let n = plan.n_shards as usize;
        // Known (admin-down) faults are routing state: every shard's view
        // of the fabric must exclude them from spray candidate sets, so
        // they are applied on all shards — but only the link owner's shard
        // records the trace event, or the merged trace would carry one
        // duplicate per shard.
        let owned: Vec<bool> = seed
            .admin_down
            .iter()
            .map(|&l| seed.plan.link_owner(&seed.topo, l) == seed.shard)
            .collect();
        // Each link is sampled only at its owning shard (the single writer
        // of its egress state), so merged rows have exactly one producer.
        let owned_links: Vec<bool> = (0..seed.topo.n_links())
            .map(|l| seed.plan.link_owner(&seed.topo, LinkId(l as u32)) == seed.shard)
            .collect();
        let mut sim = Simulator::new(seed.topo, seed.cfg, seed.seed);
        sim.attach_shard(seed.shard, seed.plan);
        if let Some(interval) = seed.tap_interval {
            sim.set_recorder(Box::new(
                TapRecorder::new(interval).with_owned_links(owned_links),
            ));
        }
        for (&l, &own) in seed.admin_down.iter().zip(owned.iter()) {
            if own {
                sim.apply_fault_now(l, FaultAction::Set(FaultKind::AdminDown), false);
            } else {
                sim.apply_fault_untraced(l, FaultAction::Set(FaultKind::AdminDown), false);
            }
        }
        let shared: Rc<RefCell<ShardShared>> = Rc::new(RefCell::new(ShardShared::default()));
        sim.set_app(Box::new(ShardApp {
            shared: shared.clone(),
            job: seed.job,
            tag: seed.tag,
            prio: seed.prio,
            measured: seed.measured,
            transfers: seed.transfers,
            children: seed.children,
            scratch: Vec::new(),
        }));
        ShardExec {
            sim,
            shared,
            shard,
            plan,
            links,
            max_events,
            comps_reported: 0,
            stage_opens: (0..n).map(|_| Vec::new()).collect(),
            stage_pkts: (0..n).map(|_| Vec::new()).collect(),
            stage_pfcs: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    fn exec(&mut self, cmd: Cmd) -> Option<Resp> {
        match cmd {
            Cmd::Wakes(wakes) => {
                for (at, host, token) in wakes {
                    self.sim.schedule_wake(at, host, token);
                }
                None
            }
            Cmd::SetIter(i) => {
                self.shared.borrow_mut().iter = i;
                None
            }
            Cmd::Inject { opens, pkts, pfcs } => {
                for o in &opens {
                    self.sim.shard_open_flow(o);
                }
                self.sim.shard_inject_pkts(&pkts);
                for p in pfcs {
                    self.sim.shard_inject_pfc(p.at, p.link, p.prio, p.pause);
                }
                None
            }
            Cmd::Arm(arm) => {
                self.shared.borrow_mut().pending =
                    arm.map(|(remaining, floor, actions)| PendingArm {
                        remaining,
                        floor,
                        actions,
                    });
                None
            }
            Cmd::Install(actions, at) => {
                let mut sh = self.shared.borrow_mut();
                apply_flips(&mut self.sim, &mut sh, &actions, at);
                None
            }
            Cmd::Window(end) => {
                self.sim.run_window(end);
                let outbox = self.sim.shard_take_outbox();
                let mut sh = self.shared.borrow_mut();
                let completions = std::mem::take(&mut sh.completions);
                self.comps_reported += completions.len() as u64;
                Some(Resp::Window(Box::new(WindowResp {
                    next: self.sim.next_event_time(),
                    opens: outbox.opens,
                    pkts: outbox.pkts,
                    pfcs: outbox.pfcs,
                    completions,
                    events: self.sim.stats.events,
                    install_ns: sh.install_ns,
                    windows: 1,
                })))
            }
            Cmd::Epoch {
                cap,
                stop_comps,
                arm,
            } => Some(Resp::Window(self.run_epoch_threaded(cap, stop_comps, arm))),
            Cmd::Finish => {
                self.sim.sampler_flush_final();
                let tap = self.sim.take_recorder().map(|mut rec| {
                    let t = rec
                        .as_any_mut()
                        .and_then(|a| a.downcast_mut::<TapRecorder>())
                        .expect("shard recorder is always a TapRecorder");
                    Box::new(TapShard {
                        samples: std::mem::take(&mut t.samples),
                        fct_ns: std::mem::take(&mut t.fct_ns),
                        rto_attempts: std::mem::take(&mut t.rto_attempts),
                        pfc_pause_ns: std::mem::take(&mut t.pfc_pause_ns),
                        wire: self.sim.shard_take_wire_log(),
                    })
                });
                let sh = self.shared.borrow();
                Some(Resp::Finish(Box::new(FinishResp {
                    stats: self.sim.stats.clone(),
                    counters: self.sim.counters.clone(),
                    agg_counters: self.sim.agg_counters.clone(),
                    trace: self.sim.trace.to_records(),
                    trace_offered: self.sim.trace.offered,
                    trace_truncated: self.sim.trace.truncated(),
                    sched_kind: self.sim.sched_kind(),
                    sched: self.sim.sched_stats(),
                    artifact_events: sh.artifact_events,
                    install_ns: sh.install_ns,
                    tap,
                    last_event_ns: self.sim.last_event_ns(),
                })))
            }
        }
    }

    /// Cumulative workload completions: already reported plus pending.
    fn comp_total(&self) -> u64 {
        self.comps_reported + self.shared.borrow().completions.len() as u64
    }

    /// One epoch window: run all events strictly below `w`, then route the
    /// outbox per destination shard and publish each nonempty stream as a
    /// single batch (one release store each).
    fn epoch_window(&mut self, links: &EpochLinks, w: SimTime) {
        self.sim.run_window(w);
        let outbox = self.sim.shard_take_outbox();
        for o in outbox.opens {
            let dst = self.plan.owner(NodeId::Host(o.dst)) as usize;
            self.stage_opens[dst].push(o);
        }
        for p in outbox.pkts {
            let dst = self.plan.link_dst_owner(&self.sim.topo, p.link) as usize;
            self.stage_pkts[dst].push(p);
        }
        for p in outbox.pfcs {
            let dst = self.plan.link_owner(&self.sim.topo, p.link) as usize;
            self.stage_pfcs[dst].push(p);
        }
        for (dst, tx) in links.tx.iter().enumerate() {
            let Some(tx) = tx else {
                debug_assert!(
                    self.stage_opens[dst].is_empty()
                        && self.stage_pkts[dst].is_empty()
                        && self.stage_pfcs[dst].is_empty(),
                    "outbox record routed to its own shard"
                );
                continue;
            };
            if !self.stage_opens[dst].is_empty() {
                assert!(tx.opens.publish(&mut self.stage_opens[dst]), "ring full");
            }
            if !self.stage_pkts[dst].is_empty() {
                assert!(tx.pkts.publish(&mut self.stage_pkts[dst]), "ring full");
            }
            if !self.stage_pfcs[dst].is_empty() {
                assert!(tx.pfcs.publish(&mut self.stage_pfcs[dst]), "ring full");
            }
        }
    }

    /// Drain every peer ring (source shards ascending — the same stable
    /// pre-sort order the coordinator's route loop produces), sort by the
    /// legacy injection keys, and inject. Byte-identical to a
    /// [`Cmd::Inject`] built from the same records.
    fn epoch_drain_inject(&mut self, links: &EpochLinks) {
        let mut opens: Vec<RemoteOpen> = Vec::new();
        let mut pkts: Vec<RemotePkt> = Vec::new();
        let mut pfcs: Vec<RemotePfc> = Vec::new();
        for rx in links.rx.iter().flatten() {
            rx.opens.drain_into(&mut opens);
            rx.pkts.drain_into(&mut pkts);
            rx.pfcs.drain_into(&mut pfcs);
        }
        if opens.is_empty() && pkts.is_empty() && pfcs.is_empty() {
            return;
        }
        opens.sort_by_key(|o| (o.at, o.global));
        pkts.sort_by_key(|p| (p.at, p.link.0));
        pfcs.sort_by_key(|p| (p.at, p.link.0, p.prio));
        for o in &opens {
            self.sim.shard_open_flow(o);
        }
        self.sim.shard_inject_pkts(&pkts);
        for p in pfcs {
            self.sim.shard_inject_pfc(p.at, p.link, p.prio, p.pause);
        }
    }

    /// Build the epoch response: whatever is still in the inbound rings at
    /// the break (records addressed to this shard) rides back to the
    /// coordinator, which re-injects it after any iteration-boundary
    /// wakes — the legacy ordering.
    fn epoch_resp(&mut self, links: &EpochLinks, windows: u64) -> Box<WindowResp> {
        let mut opens: Vec<RemoteOpen> = Vec::new();
        let mut pkts: Vec<RemotePkt> = Vec::new();
        let mut pfcs: Vec<RemotePfc> = Vec::new();
        for rx in links.rx.iter().flatten() {
            rx.opens.drain_into(&mut opens);
            rx.pkts.drain_into(&mut pkts);
            rx.pfcs.drain_into(&mut pfcs);
        }
        let mut sh = self.shared.borrow_mut();
        let completions = std::mem::take(&mut sh.completions);
        self.comps_reported += completions.len() as u64;
        Box::new(WindowResp {
            next: self.sim.next_event_time(),
            opens,
            pkts,
            pfcs,
            completions,
            events: self.sim.stats.events,
            install_ns: sh.install_ns,
            windows,
        })
    }

    /// Publish this shard's post-window counters — cumulative engine
    /// events, cumulative completions, max completion time — to its
    /// epoch slots (one release store each).
    fn epoch_publish(&self, sh: &EpochShared) {
        let me = self.shard as usize;
        sh.events[me]
            .0
            .store(self.sim.stats.events, Ordering::Release);
        sh.comps[me].0.store(self.comp_total(), Ordering::Release);
        sh.floors[me]
            .0
            .store(self.shared.borrow().comp_floor.as_ns(), Ordering::Release);
    }

    /// The fault owner's per-window decision inside an armed epoch: the
    /// legacy coordinator's three-way arm/install protocol, replayed
    /// locally from published counters. `others_comps` / `others_floor`
    /// must cover every *other* shard through the current window (they
    /// run before the owner), while the owner's own state covers windows
    /// strictly before it — exactly the information the legacy round had
    /// when it commanded `S_f` last.
    fn epoch_arm_decide(&mut self, a: &EpochArm, others_comps: u64, others_floor: SimTime) {
        let (own_comps, own_floor) = {
            let sh = self.shared.borrow();
            (sh.completions.len() as u64, sh.comp_floor)
        };
        let elsewhere_delta = others_comps - a.others_base;
        debug_assert!(elsewhere_delta <= u64::from(a.rem_elsewhere));
        debug_assert!(own_comps <= u64::from(a.m_at_sf));
        let rem_elsewhere = a.rem_elsewhere - elsewhere_delta as u32;
        let m_at_sf = a.m_at_sf - own_comps as u32;
        // Stale floor contributions (prior iterations) predate every
        // completion of the running iteration, so the max is exact in
        // both cases where the floor is consumed below.
        let floor = a.floor.max(own_floor).max(others_floor);
        let mut sh = self.shared.borrow_mut();
        if rem_elsewhere == 0 && m_at_sf == 0 {
            // The iteration just ended at the other shards: the boundary
            // time is exact; land the flips before this window runs.
            sh.pending = None;
            apply_flips(&mut self.sim, &mut sh, &a.flips, floor);
        } else if rem_elsewhere == 0 {
            // Every remaining completion lands at the owner itself: arm
            // the countdown (overwriting any partial arm from a previous
            // window with recomputed numbers).
            sh.pending = Some(PendingArm {
                remaining: m_at_sf,
                floor,
                actions: a.flips.clone(),
            });
        } else {
            // The iteration cannot end this window; clear any stale arm.
            sh.pending = None;
        }
    }

    /// The threaded backend's epoch loop: lockstep with the sibling
    /// workers over the shared slots and spin barrier. Every break
    /// condition is evaluated on slot values that are quiescent between
    /// the two barriers around them, so all shards break in the same
    /// window and barrier counts stay aligned. Armed epochs add a third
    /// barrier per window so the fault owner's window runs strictly
    /// after everyone else's.
    fn run_epoch_threaded(
        &mut self,
        cap: u32,
        stop_comps: u64,
        arm: Option<EpochArm>,
    ) -> Box<WindowResp> {
        debug_assert!(
            arm.is_some() || self.shared.borrow().pending.is_none(),
            "plain epoch round with an armed fault countdown"
        );
        let links = self.links.take().expect("epoch without links");
        let sh = &links.shared;
        let me = self.shard as usize;
        let n = sh.next.len();
        let owner = arm.as_ref().map(|a| a.owner as usize);
        let mut windows = 0u64;
        loop {
            let next = self.sim.next_event_time().map_or(u64::MAX, |t| t.as_ns());
            sh.next[me].0.store(next, Ordering::Release);
            sh.barrier.wait(); // A: everyone published `next`
            let gmin = (0..n)
                .map(|s| sh.next[s].0.load(Ordering::Acquire))
                .min()
                .expect("at least one shard");
            if gmin == u64::MAX {
                // Fully drained. Rings are empty by construction: the last
                // flush (barrier B) was followed by a full drain before
                // anyone re-published `next`.
                break;
            }
            let w = SimTime::from_ns(gmin) + links.lookahead;
            match owner {
                None => {
                    self.epoch_window(&links, w);
                    self.epoch_publish(sh);
                    sh.barrier.wait(); // B: everyone flushed + published
                }
                Some(sf) if sf != me => {
                    // Armed epoch, non-owner: run and publish first, then
                    // hold at C while the owner takes its turn.
                    self.epoch_window(&links, w);
                    self.epoch_publish(sh);
                    sh.barrier.wait(); // B
                    sh.barrier.wait(); // C: owner flushed + published
                }
                Some(_) => {
                    // Armed epoch, fault owner: wait for every other
                    // shard's window (barrier B), replay the legacy
                    // arm/install decision from their published counters,
                    // then run last.
                    sh.barrier.wait(); // B
                    let a = arm.as_ref().expect("owner implies arm");
                    let others_comps: u64 = (0..n)
                        .filter(|&s| s != me)
                        .map(|s| sh.comps[s].0.load(Ordering::Acquire))
                        .sum();
                    let others_floor = (0..n)
                        .filter(|&s| s != me)
                        .map(|s| sh.floors[s].0.load(Ordering::Acquire))
                        .max()
                        .map_or(SimTime::ZERO, SimTime::from_ns);
                    self.epoch_arm_decide(a, others_comps, others_floor);
                    self.epoch_window(&links, w);
                    self.epoch_publish(sh);
                    sh.barrier.wait(); // C
                }
            }
            windows += 1;
            let comps: u64 = (0..n).map(|s| sh.comps[s].0.load(Ordering::Acquire)).sum();
            let events: u64 = (0..n).map(|s| sh.events[s].0.load(Ordering::Acquire)).sum();
            if comps >= stop_comps || windows >= cap as u64 || events >= self.max_events {
                // Leftovers stay in the rings for `epoch_resp`.
                break;
            }
            self.epoch_drain_inject(&links);
        }
        let resp = self.epoch_resp(&links, windows);
        self.links = Some(links);
        resp
    }
}

/// The inline backend's epoch driver: the identical per-window phase
/// sequence as [`ShardExec::run_epoch_threaded`], executed round-robin
/// over all shards from the coordinator thread (shared data needs no
/// barriers — phase order supplies the synchronization, including the
/// armed-epoch rule that the fault owner's window runs last). Same phase
/// methods, same per-stream batch rings, same break predicates on the
/// same sums — so the two backends are byte-identical by construction.
#[allow(clippy::vec_box)] // boxed to share the threaded handles' response type
fn run_epoch_inline(
    handles: &mut [ShardHandle],
    cap: u32,
    stop_comps: u64,
    arm: Option<EpochArm>,
) -> Vec<Box<WindowResp>> {
    let mut execs: Vec<&mut ShardExec> = handles
        .iter_mut()
        .map(|h| match h {
            ShardHandle::Inline(e, _) => &mut **e,
            ShardHandle::Thread { .. } => unreachable!("inline epoch over a threaded handle"),
        })
        .collect();
    let lookahead = execs[0]
        .links
        .as_ref()
        .expect("epoch without links")
        .lookahead;
    let max_events = execs[0].max_events;
    let owner = arm.as_ref().map(|a| a.owner as usize);
    let mut windows = 0u64;
    loop {
        let gmin = execs
            .iter_mut()
            .filter_map(|e| e.sim.next_event_time())
            .min();
        let Some(gmin) = gmin else { break };
        let w = gmin + lookahead;
        for (s, e) in execs.iter_mut().enumerate() {
            if owner == Some(s) {
                continue;
            }
            let links = e.links.take().expect("epoch without links");
            e.epoch_window(&links, w);
            e.links = Some(links);
        }
        if let (Some(sf), Some(a)) = (owner, arm.as_ref()) {
            // Armed epoch: the owner decides with every other shard's
            // window already in — the live reads here see exactly the
            // values the threaded backend publishes before barrier B.
            let others_comps: u64 = execs
                .iter()
                .enumerate()
                .filter(|&(s, _)| s != sf)
                .map(|(_, e)| e.comp_total())
                .sum();
            let others_floor = execs
                .iter()
                .enumerate()
                .filter(|&(s, _)| s != sf)
                .map(|(_, e)| e.shared.borrow().comp_floor)
                .max()
                .unwrap_or(SimTime::ZERO);
            let e = &mut *execs[sf];
            e.epoch_arm_decide(a, others_comps, others_floor);
            let links = e.links.take().expect("epoch without links");
            e.epoch_window(&links, w);
            e.links = Some(links);
        }
        windows += 1;
        let comps: u64 = execs.iter().map(|e| e.comp_total()).sum();
        let events: u64 = execs.iter().map(|e| e.sim.stats.events).sum();
        if comps >= stop_comps || windows >= cap as u64 || events >= max_events {
            break;
        }
        for e in execs.iter_mut() {
            let links = e.links.take().expect("epoch without links");
            e.epoch_drain_inject(&links);
            e.links = Some(links);
        }
    }
    execs
        .into_iter()
        .map(|e| {
            let links = e.links.take().expect("epoch without links");
            let r = e.epoch_resp(&links, windows);
            e.links = Some(links);
            r
        })
        .collect()
}

/// A shard handle: inline (commands execute on the calling thread) or
/// threaded (commands stream over an SPSC mailbox to a worker that owns
/// the simulator). Both run the identical [`ShardExec`] loop, so results
/// cannot depend on the backend.
enum ShardHandle {
    Inline(Box<ShardExec>, Option<Resp>),
    Thread {
        tx: SpscSender<Cmd>,
        rx: SpscReceiver<Resp>,
        join: Option<std::thread::JoinHandle<()>>,
    },
}

impl ShardHandle {
    fn inline(seed: ShardSeed) -> ShardHandle {
        ShardHandle::Inline(Box::new(ShardExec::build(seed)), None)
    }

    fn threaded(seed: ShardSeed) -> ShardHandle {
        let (cmd_tx, cmd_rx) = spsc::<Cmd>(64);
        let (resp_tx, resp_rx) = spsc::<Resp>(64);
        let shard = seed.shard;
        let join = std::thread::Builder::new()
            .name(format!("fp-shard-{shard}"))
            .spawn(move || {
                let mut exec = ShardExec::build(seed);
                while let Some(cmd) = cmd_rx.recv() {
                    let done = matches!(cmd, Cmd::Finish);
                    if let Some(resp) = exec.exec(cmd) {
                        if !resp_tx.send(resp) {
                            break;
                        }
                    }
                    if done {
                        break;
                    }
                }
            })
            .expect("spawn shard worker");
        ShardHandle::Thread {
            tx: cmd_tx,
            rx: resp_rx,
            join: Some(join),
        }
    }

    fn send(&mut self, cmd: Cmd) {
        match self {
            ShardHandle::Inline(exec, slot) => {
                if let Some(resp) = exec.exec(cmd) {
                    debug_assert!(slot.is_none(), "unconsumed shard response");
                    *slot = Some(resp);
                }
            }
            ShardHandle::Thread { tx, .. } => {
                assert!(tx.send(cmd), "shard worker died");
            }
        }
    }

    fn recv(&mut self) -> Resp {
        match self {
            ShardHandle::Inline(_, slot) => slot.take().expect("no pending shard response"),
            ShardHandle::Thread { rx, .. } => rx.recv().expect("shard worker hung up"),
        }
    }

    fn window(&mut self) -> Box<WindowResp> {
        match self.recv() {
            Resp::Window(w) => w,
            Resp::Finish(_) => unreachable!("expected window response"),
        }
    }

    /// Consume the `Finish` response; the threaded backend joins its
    /// worker so panics surface here instead of being silently dropped.
    fn finish(&mut self) -> Box<FinishResp> {
        let resp = match self.recv() {
            Resp::Finish(f) => f,
            Resp::Window(_) => unreachable!("expected finish response"),
        };
        if let ShardHandle::Thread { join, .. } = self {
            if let Some(j) = join.take() {
                j.join().expect("shard worker panicked");
            }
        }
        resp
    }
}

// ---------------------------------------------------------------------
// The coordinator
// ---------------------------------------------------------------------

/// Run `sched` for `rcfg.iterations` iterations over `topo` split into
/// `shards` shards, reproducing an unsharded
/// [`crate::runner::CollectiveRunner`] trial byte for byte. `threaded`
/// selects worker threads (one per shard) versus inline round-robin
/// execution; both produce identical results.
///
/// `epoch` caps how many conservative windows may run per coordinator
/// synchronization (see the module docs; clamped to
/// `1..=`[`MAX_EPOCH_WINDOWS`], `1` = the legacy per-window protocol).
/// The window schedule — and therefore every output byte — is identical
/// at every setting; only the synchronization transport changes.
///
/// `admin_down` lists known-fault links applied to every shard's routing
/// at `t = 0`; `faults` schedules silent-fault flips at iteration
/// boundaries. All flips must target links owned by one shard (the
/// caller's eligibility gate guarantees this by rejecting bidirectional
/// faults).
///
/// `tap_interval` attaches a per-shard telemetry tap sampling at that
/// period (0 = hooks only, no periodic sampler); the merged streams come
/// back in [`ShardedOutcome::telemetry`] for replay into a real recorder.
#[allow(clippy::too_many_arguments)]
pub fn run_sharded(
    topo: &Topology,
    cfg: &SimConfig,
    seed: u64,
    shards: u32,
    threaded: bool,
    epoch: u32,
    sched: Schedule,
    rcfg: RunnerConfig,
    admin_down: &[LinkId],
    faults: &[ShardFault],
    tap_interval: Option<u64>,
) -> ShardedOutcome {
    sched.validate().expect("invalid schedule");
    assert!(rcfg.iterations > 0, "at least one iteration");
    let epoch_cap = epoch.clamp(1, MAX_EPOCH_WINDOWS);
    // Topology-aware planning: balance per-shard event load by weighting
    // each partition unit (leaf, or pod on a 3-level Clos) with the
    // number of transfer endpoints it hosts. Symmetric collectives have
    // uniform weights and keep the round-robin partition exactly.
    let plan = {
        let three = topo.is_three_level();
        let units = if three {
            topo.pods
        } else {
            topo.n_leaves() as u32
        };
        let mut loads = vec![0u64; units as usize];
        let unit_of = |h: HostId| -> usize {
            let leaf = topo.host_leaf[h.idx()];
            if three {
                topo.pod_of_leaf(leaf) as usize
            } else {
                leaf as usize
            }
        };
        for t in &sched.transfers {
            loads[unit_of(t.src)] += 1;
            loads[unit_of(t.dst)] += 1;
        }
        ShardPlan::with_loads(topo, shards, &loads)
    };
    let n = plan.n_shards;
    let lookahead = plan.lookahead;
    // A window never spans from one iteration's end into the next one's
    // first wake: wakes sit a compute gap after the boundary, and every
    // window is exactly one lookahead deep.
    assert!(
        rcfg.compute_gap > lookahead,
        "compute gap must exceed the sync lookahead"
    );

    // The faulted-link owner: the shard whose window placement must track
    // iteration boundaries. All scheduled flips must share one owner.
    let fault_owner: Option<u32> = {
        let mut owners = faults.iter().map(|f| plan.link_owner(topo, f.link));
        let first = owners.next();
        if let Some(o) = first {
            assert!(
                owners.all(|x| x == o),
                "scheduled fault flips span multiple shard owners"
            );
        }
        first
    };

    // Replicated runner state.
    let children = sched.children();
    let roots = sched.roots();
    let node_of: HashMap<HostId, usize> = sched
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &h)| (h, i))
        .collect();
    let mut rng = SmallRng::seed_from_u64(rcfg.jitter_seed);
    let n_transfers = sched.transfers.len() as u32;
    // Completion shard of each transfer: where its receiving host lives.
    let comp_shard: Vec<u32> = sched
        .transfers
        .iter()
        .map(|t| plan.owner(NodeId::Host(t.dst)))
        .collect();

    let mut fabric: Vec<Option<EpochLinks>> = if n > 1 {
        epoch_fabric(n, lookahead).into_iter().map(Some).collect()
    } else {
        vec![None]
    };
    let mut handles: Vec<ShardHandle> = (0..n)
        .map(|s| {
            let seed_data = ShardSeed {
                topo: topo.clone(),
                cfg: cfg.clone(),
                seed,
                shard: s,
                plan: plan.clone(),
                admin_down: admin_down.to_vec(),
                job: rcfg.job,
                tag: rcfg.tag,
                prio: rcfg.prio,
                measured: rcfg.measured.clone(),
                transfers: sched.transfers.clone(),
                children: children.clone(),
                tap_interval,
                links: fabric[s as usize].take(),
            };
            if threaded {
                ShardHandle::threaded(seed_data)
            } else {
                ShardHandle::inline(seed_data)
            }
        })
        .collect();

    // Fault flips are consumed in schedule order with the harness hook's
    // once-only semantics: a flip fires at the first boundary `i` with
    // `i >= at_iter`, then never again.
    let mut fired = vec![false; faults.len()];
    // Flips due at the start of iteration `i`, in schedule order, marking
    // them fired.
    let take_flips = |i: u32, fired: &mut [bool]| -> Vec<(LinkId, FaultAction)> {
        faults
            .iter()
            .zip(fired.iter_mut())
            .filter(|(f, fr)| !**fr && i >= f.at_iter)
            .map(|(f, fr)| {
                *fr = true;
                (f.link, f.action)
            })
            .collect()
    };
    // The same set, without marking (armed-round planning).
    let peek_flips = |i: u32, fired: &[bool]| -> Vec<(LinkId, FaultAction)> {
        faults
            .iter()
            .zip(fired.iter())
            .filter(|(f, fr)| !**fr && i >= f.at_iter)
            .map(|(f, _)| (f.link, f.action))
            .collect()
    };

    // Iteration bookkeeping (the runner's, replicated).
    let mut iter: u32 = 0;
    let mut done = vec![false; n_transfers as usize];
    let mut outstanding = n_transfers;
    let mut iter_max_completion = SimTime::ZERO;
    let mut iter_started: Vec<SimTime> = Vec::new();
    let mut iter_spans: Vec<IterSpanRecord> = Vec::new();
    let gap = rcfg.compute_gap;

    // Effective next-event time per shard: the shard's own report folded
    // with everything the coordinator injected since.
    let mut nexts: Vec<Option<SimTime>> = vec![Some(SimTime::ZERO); n as usize];
    let fold_next = |slot: &mut Option<SimTime>, t: SimTime| {
        *slot = Some(slot.map_or(t, |cur| cur.min(t)));
    };

    // Start an iteration: one jitter sample, root wakes at the iteration
    // base plus the transfer source's delay — the runner's exact draw
    // order and arithmetic.
    let begin_iteration = |iter: u32,
                           base: SimTime,
                           rng: &mut SmallRng,
                           iter_started: &mut Vec<SimTime>,
                           handles: &mut [ShardHandle],
                           nexts: &mut [Option<SimTime>]| {
        iter_started.push(base);
        let delays = rcfg.jitter.sample(sched.nodes.len(), rng);
        let mut wakes: Vec<Vec<(SimTime, HostId, u64)>> = vec![Vec::new(); n as usize];
        for &r in &roots {
            let src = sched.transfers[r as usize].src;
            let at = base + delays[node_of[&src]];
            let token = (rcfg.job as u64) << 32 | r as u64;
            let owner = plan.owner(NodeId::Host(src)) as usize;
            wakes[owner].push((at, src, token));
            fold_next(&mut nexts[owner], at);
        }
        for (s, w) in wakes.into_iter().enumerate() {
            handles[s].send(Cmd::SetIter(iter));
            if !w.is_empty() {
                handles[s].send(Cmd::Wakes(w));
            }
        }
    };

    // Iteration 0 starts at t = 0; flips with `at_iter = 0` land before
    // any event, exactly like the unsharded start hook.
    let t0_flips = take_flips(0, &mut fired);
    if !t0_flips.is_empty() {
        let owner = fault_owner.expect("flips imply an owner") as usize;
        handles[owner].send(Cmd::Install(t0_flips, SimTime::ZERO));
    }
    begin_iteration(
        0,
        SimTime::ZERO,
        &mut rng,
        &mut iter_started,
        &mut handles,
        &mut nexts,
    );

    let max_events = cfg.max_events;
    let mut total_events: u64 = 0;
    let mut install_ns: Option<u64> = None;
    let mut windows_total: u64 = 0;
    let mut syncs: u64 = 0;
    // Completions the coordinator has consumed so far; shards publish
    // their cumulative counts, so `comps_processed + outstanding` is the
    // epoch's stop target (the running iteration's boundary).
    let mut comps_processed: u64 = 0;
    // Last reported cumulative engine events per shard, carried across
    // rounds that skip (or epoch-break before re-reporting) a shard.
    let mut events_by: Vec<u64> = vec![0; n as usize];
    // Cumulative completions per shard — the coordinator-side mirror of
    // each shard's published count, baselining armed-epoch deltas.
    let mut comps_by: Vec<u64> = vec![0; n as usize];
    let epoch_eligible = n > 1 && epoch_cap > 1;

    // The conservative-lockstep round loop; exits when fully drained.
    while let Some(min_next) = nexts.iter().flatten().min().copied() {
        if total_events >= max_events {
            break; // safety stop, mirroring the unsharded engine's guard
        }
        syncs += 1;
        let w = min_next + lookahead;

        // Flips that would land if the current iteration ends inside this
        // round (the next boundary is the start of iteration `iter + 1`).
        let boundary_flips = if iter + 1 < rcfg.iterations {
            peek_flips(iter + 1, &fired)
        } else {
            Vec::new()
        };

        let mut resps: Vec<Option<Box<WindowResp>>> = (0..n as usize).map(|_| None).collect();

        if epoch_eligible {
            // Epoch round: shards advance up to `epoch_cap` windows
            // peer-to-peer; the coordinator only supplies the iteration
            // stop target. Post-final-iteration drain rounds have no
            // outstanding transfers and can produce no completions, so
            // the target is unreachable there by construction.
            let stop_comps = if outstanding == 0 {
                u64::MAX
            } else {
                comps_processed + outstanding as u64
            };
            // Boundary flips ride into the epoch as an armed sub-protocol
            // (see [`EpochArm`]): each window the other shards run first
            // and publish completion counts and max completion times, and
            // the fault owner replays the legacy per-window arm/install
            // decision locally before running its own window last.
            let arm = if boundary_flips.is_empty() {
                None
            } else {
                let sf = fault_owner.expect("boundary flips imply an owner");
                let mut m_at_sf = 0u32;
                let mut rem_elsewhere = 0u32;
                for t in 0..n_transfers as usize {
                    if !done[t] {
                        if comp_shard[t] == sf {
                            m_at_sf += 1;
                        } else {
                            rem_elsewhere += 1;
                        }
                    }
                }
                let others_base = comps_by
                    .iter()
                    .enumerate()
                    .filter(|&(s, _)| s != sf as usize)
                    .map(|(_, &c)| c)
                    .sum();
                Some(EpochArm {
                    owner: sf,
                    m_at_sf,
                    rem_elsewhere,
                    others_base,
                    floor: iter_max_completion,
                    flips: boundary_flips.clone(),
                })
            };
            if threaded {
                for h in handles.iter_mut() {
                    h.send(Cmd::Epoch {
                        cap: epoch_cap,
                        stop_comps,
                        arm: arm.clone(),
                    });
                }
                for (s, h) in handles.iter_mut().enumerate() {
                    resps[s] = Some(h.window());
                }
            } else {
                for (s, r) in run_epoch_inline(&mut handles, epoch_cap, stop_comps, arm)
                    .into_iter()
                    .enumerate()
                {
                    resps[s] = Some(r);
                }
            }
            let wnd = resps[0].as_ref().expect("every shard answered").windows;
            debug_assert!(
                resps
                    .iter()
                    .all(|r| r.as_ref().is_some_and(|r| r.windows == wnd)),
                "epoch window counts diverged across shards"
            );
            windows_total += wnd;
        } else if boundary_flips.is_empty() {
            // Legacy per-window round (epoch cap 1, or a single shard).
            // Null-message-style skip: a shard whose next event is at or
            // past the horizon runs no events, emits nothing and completes
            // nothing — `run_window` is a pure no-op there — so it is not
            // commanded at all and its last report stays valid.
            windows_total += 1;
            let skip: Vec<bool> = nexts.iter().map(|t| t.is_none_or(|t| t >= w)).collect();
            for (s, h) in handles.iter_mut().enumerate() {
                if !skip[s] {
                    h.send(Cmd::Window(w));
                }
            }
            for (s, h) in handles.iter_mut().enumerate() {
                if !skip[s] {
                    resps[s] = Some(h.window());
                }
            }
        } else {
            // Armed round: run the fault owner's window last, after the
            // boundary time has been pinned down by every other shard.
            windows_total += 1;
            let sf = fault_owner.expect("boundary flips imply an owner") as usize;
            for (s, h) in handles.iter_mut().enumerate() {
                if s != sf {
                    h.send(Cmd::Window(w));
                }
            }
            let mut m_at_sf = 0u32;
            let mut rem_elsewhere = 0u32;
            for t in 0..n_transfers as usize {
                if !done[t] {
                    if comp_shard[t] == sf as u32 {
                        m_at_sf += 1;
                    } else {
                        rem_elsewhere += 1;
                    }
                }
            }
            let mut floor = iter_max_completion;
            for (s, h) in handles.iter_mut().enumerate() {
                if s == sf {
                    continue;
                }
                let r = h.window();
                for &(at, _) in &r.completions {
                    rem_elsewhere -= 1;
                    floor = floor.max(at);
                }
                resps[s] = Some(r);
            }
            if rem_elsewhere == 0 && m_at_sf == 0 {
                // The iteration just ended at the other shards: the
                // boundary time is exact. (The barrier below marks the
                // flips fired when it observes the final completion.)
                handles[sf].send(Cmd::Arm(None));
                handles[sf].send(Cmd::Install(boundary_flips, floor));
            } else if rem_elsewhere == 0 {
                // Every remaining completion lands at the owner itself:
                // arm the countdown (overwriting any partial arm from a
                // previous round with recomputed numbers).
                handles[sf].send(Cmd::Arm(Some((m_at_sf, floor, boundary_flips))));
            } else {
                // The iteration cannot end this round; make sure no stale
                // arm survives.
                handles[sf].send(Cmd::Arm(None));
            }
            handles[sf].send(Cmd::Window(w));
            resps[sf] = Some(handles[sf].window());
        }

        // Barrier: merge responses. A `None` is a skipped idle shard —
        // nothing ran there, so its previous report still stands.
        let mut round_completions: Vec<(SimTime, u32)> = Vec::new();
        let mut opens_by: Vec<Vec<RemoteOpen>> = vec![Vec::new(); n as usize];
        let mut pkts_by: Vec<Vec<RemotePkt>> = vec![Vec::new(); n as usize];
        let mut pfcs_by: Vec<Vec<RemotePfc>> = vec![Vec::new(); n as usize];
        for (s, r) in resps.iter_mut().enumerate() {
            let Some(r) = r.as_mut() else { continue };
            nexts[s] = r.next;
            events_by[s] = r.events;
            comps_by[s] += r.completions.len() as u64;
            if install_ns.is_none() {
                install_ns = r.install_ns;
            }
            round_completions.extend_from_slice(&r.completions);
            for o in r.opens.drain(..) {
                opens_by[plan.owner(NodeId::Host(o.dst)) as usize].push(o);
            }
            for p in r.pkts.drain(..) {
                pkts_by[plan.link_dst_owner(topo, p.link) as usize].push(p);
            }
            for p in r.pfcs.drain(..) {
                pfcs_by[plan.link_owner(topo, p.link) as usize].push(p);
            }
        }
        total_events = events_by.iter().sum();
        comps_processed += round_completions.len() as u64;

        // Completions advance the iteration state machine in time order
        // (ties broken by transfer id; the tie-break never matters for the
        // boundary, which is the *maximum* completion time).
        round_completions.sort_by_key(|&(at, t)| (at, t));
        for &(at, t) in &round_completions {
            debug_assert!(!done[t as usize], "transfer completed twice");
            done[t as usize] = true;
            outstanding -= 1;
            iter_max_completion = iter_max_completion.max(at);
            if outstanding == 0 {
                let t_end = iter_max_completion;
                iter_spans.push(IterSpanRecord {
                    job: rcfg.job,
                    iter,
                    start: iter_started[iter as usize],
                    end: t_end,
                });
                // Flips due at this boundary fired in-round via the armed
                // protocol; consume them from the schedule.
                if iter + 1 < rcfg.iterations {
                    let _ = take_flips(iter + 1, &mut fired);
                }
                iter += 1;
                if iter < rcfg.iterations {
                    done.iter_mut().for_each(|d| *d = false);
                    outstanding = n_transfers;
                    iter_max_completion = SimTime::ZERO;
                    begin_iteration(
                        iter,
                        t_end + gap,
                        &mut rng,
                        &mut iter_started,
                        &mut handles,
                        &mut nexts,
                    );
                }
            }
        }

        // Route boundary-crossing records, deterministically ordered by
        // arrival time (ties broken by link/flow identity — stable across
        // shard counts and backends).
        for s in 0..n as usize {
            let mut opens = std::mem::take(&mut opens_by[s]);
            let mut pkts = std::mem::take(&mut pkts_by[s]);
            let mut pfcs = std::mem::take(&mut pfcs_by[s]);
            if opens.is_empty() && pkts.is_empty() && pfcs.is_empty() {
                continue;
            }
            opens.sort_by_key(|o| (o.at, o.global));
            pkts.sort_by_key(|p| (p.at, p.link.0));
            pfcs.sort_by_key(|p| (p.at, p.link.0, p.prio));
            for p in &pkts {
                fold_next(&mut nexts[s], p.at);
            }
            for p in &pfcs {
                fold_next(&mut nexts[s], p.at);
            }
            handles[s].send(Cmd::Inject { opens, pkts, pfcs });
        }
    }

    // Collect and merge final artifacts.
    for h in handles.iter_mut() {
        h.send(Cmd::Finish);
    }
    let mut stats = Stats::default();
    let mut counters: Option<CounterStore> = None;
    let mut agg_counters: Option<CounterStore> = None;
    let mut trace: Vec<TraceRecord> = Vec::new();
    let mut trace_offered = 0u64;
    let mut trace_truncated = false;
    let mut sched_kind = SchedKind::default();
    let mut sched_stats = SchedStats::default();
    let mut shard_events = Vec::with_capacity(n as usize);
    let mut artifacts = 0u64;
    let mut taps: Vec<Option<Box<TapShard>>> = Vec::with_capacity(n as usize);
    let mut last_event_ns = 0u64;
    for (s, h) in handles.iter_mut().enumerate() {
        let mut f = h.finish();
        taps.push(f.tap.take());
        last_event_ns = last_event_ns.max(f.last_event_ns);
        shard_events.push(f.stats.events);
        artifacts += f.artifact_events;
        if install_ns.is_none() {
            install_ns = f.install_ns;
        }
        stats.merge(&f.stats);
        match counters.as_mut() {
            None => counters = Some(f.counters),
            Some(c) => c.merge_from(&f.counters),
        }
        match agg_counters.as_mut() {
            None => agg_counters = Some(f.agg_counters),
            Some(c) => c.merge_from(&f.agg_counters),
        }
        trace.extend(f.trace);
        trace_offered += f.trace_offered;
        trace_truncated |= f.trace_truncated;
        if s == 0 {
            sched_kind = f.sched_kind;
        }
        sched_stats.merge(&f.sched);
    }
    // Coordination-artifact events (scheduled fault updates standing in
    // for the unsharded synchronous hook) are excluded so merged event
    // totals match an unsharded run exactly.
    stats.events -= artifacts;
    trace.sort_by_key(|r| r.t_ns);

    let telemetry = tap_interval.map(|interval_ns| {
        let taps: Vec<TapShard> = taps
            .into_iter()
            .map(|t| *t.expect("tap_interval implies every shard tapped"))
            .collect();
        merge_taps(topo, &plan, interval_ns, taps, last_event_ns)
    });

    ShardedOutcome {
        stats,
        counters: counters.expect("at least one shard"),
        agg_counters: agg_counters.expect("at least one shard"),
        iter_spans,
        trace,
        trace_offered,
        trace_truncated,
        sched_kind,
        sched: sched_stats,
        shard_events,
        install_ns,
        windows: windows_total,
        syncs,
        telemetry,
    }
}

/// Merge per-shard tap streams into unsharded hook order.
///
/// Link samples: every link is sampled by its owning shard, but a shard's
/// sampler only runs while the shard has local events, so its tick set can
/// be a subset of the global grid. The merge walks the full grid
/// (`interval, 2·interval, …, M` where `M` is the first grid point past
/// the last real event — exactly where an unsharded run's trailing tick
/// lands), takes the owner's row when that tick fired there, and
/// otherwise carries the link's previous row forward — an ownerless tick
/// means the owner was idle, so the link's egress state is unchanged by
/// construction (single-writer links). Boundary links are the one
/// exception: their in-flight depth decays at the *receiving* shard, so
/// it is recomputed at every tick from the sender's wire-transit log
/// (`send ≤ t < arrive`).
fn merge_taps(
    topo: &Topology,
    plan: &ShardPlan,
    interval_ns: u64,
    taps: Vec<TapShard>,
    last_event_ns: u64,
) -> ShardTelemetry {
    let mut fct_ns = Vec::new();
    let mut rto_attempts = Vec::new();
    let mut pfc_pause_ns = Vec::new();
    for t in &taps {
        fct_ns.extend_from_slice(&t.fct_ns);
        rto_attempts.extend_from_slice(&t.rto_attempts);
        pfc_pause_ns.extend_from_slice(&t.pfc_pause_ns);
    }
    if interval_ns == 0 {
        return ShardTelemetry {
            interval_ns,
            samples: Vec::new(),
            fct_ns,
            rto_attempts,
            pfc_pause_ns,
            end_ns: last_event_ns,
        };
    }

    let n_links = topo.n_links();
    // Per-boundary-link wire transit times, for in-flight reconstruction.
    let mut sends: Vec<Vec<u64>> = vec![Vec::new(); n_links];
    let mut arrives: Vec<Vec<u64>> = vec![Vec::new(); n_links];
    for t in &taps {
        for &(link, send, arrive) in &t.wire {
            sends[link as usize].push(send);
            arrives[link as usize].push(arrive);
        }
    }
    for l in 0..n_links {
        sends[l].sort_unstable();
        arrives[l].sort_unstable();
    }
    let boundary: Vec<bool> = (0..n_links)
        .map(|l| {
            let id = LinkId(l as u32);
            plan.link_owner(topo, id) != plan.link_dst_owner(topo, id)
        })
        .collect();

    // The unsharded sampler's final tick: the first grid point strictly
    // past the last real event (see `Simulator::dispatch`'s Sample arm).
    let end_ns = (last_event_ns / interval_ns + 1) * interval_ns;
    let zero = LinkSample {
        queued_bytes: 0,
        queued_pkts: 0,
        inflight_pkts: 0,
        txed_bytes: 0,
        paused_mask: 0,
    };
    let mut latest: Vec<LinkSample> = vec![zero; n_links];
    let mut cursors: Vec<std::iter::Peekable<std::slice::Iter<'_, (u64, u32, LinkSample)>>> =
        taps.iter().map(|t| t.samples.iter().peekable()).collect();
    let ticks = end_ns / interval_ns;
    let mut samples = Vec::with_capacity(ticks as usize * n_links);
    for tick in 1..=ticks {
        let t = tick * interval_ns;
        for c in cursors.iter_mut() {
            while let Some(&&(row_t, link, s)) = c.peek() {
                debug_assert!(row_t >= t, "tap rows must be tick-major");
                if row_t > t {
                    break;
                }
                latest[link as usize] = s;
                c.next();
            }
        }
        for (l, s) in latest.iter().enumerate() {
            let mut s = *s;
            if boundary[l] {
                // In transit at `t`: sent strictly before the tick and
                // arriving at it or later. Both bounds are strict because
                // the unsharded sampler's heap entry is pushed a full
                // interval before the tick, so at equal timestamps it
                // dispatches *before* same-instant send/arrival events
                // (lower seq) and sees neither applied yet. Holds while
                // link latency and serialization stay below the sample
                // interval (µs-scale wires vs the 100 µs default tick).
                let sent = sends[l].partition_point(|&v| v < t);
                let done = arrives[l].partition_point(|&v| v < t);
                s.inflight_pkts = (sent - done) as u32;
            }
            samples.push((t, l as u32, s));
        }
    }

    ShardTelemetry {
        interval_ns,
        samples,
        fct_ns,
        rto_attempts,
        pfc_pause_ns,
        end_ns,
    }
}

/// Execution backend for sharded runs, from `FP_SHARD_EXEC`
/// (`thread` default, `inline` for single-threaded debugging).
pub fn threaded_from_env() -> bool {
    !matches!(
        std::env::var("FP_SHARD_EXEC").as_deref(),
        Ok("inline") | Ok("0")
    )
}
