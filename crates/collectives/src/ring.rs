//! Ring collectives: AllReduce, ReduceScatter, AllGather.
//!
//! Ring-AllReduce over N nodes runs 2(N−1) pipelined stages: N−1
//! reduce-scatter stages followed by N−1 all-gather stages; in each stage
//! every node sends one 1/N-sized chunk to its ring successor (paper §2:
//! collectives "are often implemented as a pipeline over a virtual ring,
//! thus achieving optimal communication bandwidth"). With one host per leaf
//! this gives the single-non-local-source/destination-per-leaf property the
//! paper's measurement relies on (§5.1).
//!
//! The paper's §6 workload — "a 31-stage Ring-AllReduce" on 32 leaves — is
//! the N−1 = 31-stage pipeline of one phase; [`ring_reduce_scatter`]
//! reproduces exactly that, and [`ring_allreduce`] the full 62-stage
//! collective.

use crate::schedule::{Schedule, Transfer};
use fp_netsim::ids::HostId;

/// Size of chunk `c` when `bytes` is split into `n` chunks as evenly as
/// possible (first `bytes % n` chunks get one extra byte).
fn chunk_size(bytes: u64, n: u64, c: u64) -> u64 {
    bytes / n + u64::from(c < bytes % n)
}

fn ring_schedule(
    name: &str,
    nodes: &[HostId],
    bytes_per_node: u64,
    phases: &[RingPhase],
) -> Schedule {
    let n = nodes.len();
    assert!(n >= 2, "a ring needs at least two nodes");
    assert!(bytes_per_node >= n as u64, "fewer bytes than chunks");
    let mut transfers = Vec::with_capacity(phases.len() * (n - 1) * n);
    let mut deps = Vec::with_capacity(transfers.capacity());
    let mut step = 0u32;
    for phase in phases {
        for s in 0..(n - 1) as u64 {
            for (i, &src) in nodes.iter().enumerate() {
                let dst = nodes[(i + 1) % n];
                let c = match phase {
                    // Reduce-scatter stage s: node i forwards chunk (i − s).
                    RingPhase::ReduceScatter => (i as u64 + n as u64 - (s % n as u64)) % n as u64,
                    // All-gather stage s: node i forwards chunk (i + 1 − s).
                    RingPhase::AllGather => (i as u64 + 1 + n as u64 - (s % n as u64)) % n as u64,
                };
                transfers.push(Transfer {
                    src,
                    dst,
                    bytes: chunk_size(bytes_per_node, n as u64, c),
                    step,
                });
                // Node i's send at global step k>0 waits on the message its
                // ring predecessor sent it at step k−1.
                deps.push(if step == 0 {
                    None
                } else {
                    let pred = (i + n - 1) % n;
                    Some((step - 1) * n as u32 + pred as u32)
                });
            }
            step += 1;
        }
    }
    Schedule {
        name: name.to_string(),
        nodes: nodes.to_vec(),
        transfers,
        deps,
    }
}

enum RingPhase {
    ReduceScatter,
    AllGather,
}

/// Full Ring-AllReduce: 2(N−1) stages (reduce-scatter then all-gather),
/// aggregating `bytes_per_node` across all `nodes`.
pub fn ring_allreduce(nodes: &[HostId], bytes_per_node: u64) -> Schedule {
    ring_schedule(
        "ring-allreduce",
        nodes,
        bytes_per_node,
        &[RingPhase::ReduceScatter, RingPhase::AllGather],
    )
}

/// Ring ReduceScatter: the first N−1 stages only (the paper's "31-stage
/// Ring-AllReduce" workload at N = 32).
pub fn ring_reduce_scatter(nodes: &[HostId], bytes_per_node: u64) -> Schedule {
    ring_schedule(
        "ring-reduce-scatter",
        nodes,
        bytes_per_node,
        &[RingPhase::ReduceScatter],
    )
}

/// Ring AllGather: N−1 stages propagating each node's chunk around the ring.
pub fn ring_allgather(nodes: &[HostId], bytes_per_node: u64) -> Schedule {
    ring_schedule(
        "ring-allgather",
        nodes,
        bytes_per_node,
        &[RingPhase::AllGather],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: u32) -> Vec<HostId> {
        (0..n).map(HostId).collect()
    }

    #[test]
    fn allreduce_shape() {
        let n = 8u64;
        let s = ring_allreduce(&hosts(n as u32), 8_000);
        s.validate().unwrap();
        assert_eq!(s.transfers.len(), 2 * (n as usize - 1) * n as usize);
        assert_eq!(s.n_steps(), 2 * (n as u32 - 1));
        assert_eq!(s.depth(), 2 * (n as u32 - 1));
        // Each node sends 2(N−1)/N of its buffer: 2*7*1000 = 14_000.
        let per_node: u64 = s
            .transfers
            .iter()
            .filter(|t| t.src == HostId(0))
            .map(|t| t.bytes)
            .sum();
        assert_eq!(per_node, 14_000);
    }

    #[test]
    fn reduce_scatter_is_n_minus_1_stages() {
        let s = ring_reduce_scatter(&hosts(32), 32 * 4096);
        s.validate().unwrap();
        assert_eq!(s.n_steps(), 31, "paper's 31-stage workload");
        assert_eq!(s.transfers.len(), 31 * 32);
    }

    #[test]
    fn ring_only_talks_to_successor() {
        let s = ring_allreduce(&hosts(5), 5_000);
        for t in &s.transfers {
            assert_eq!(t.dst.0, (t.src.0 + 1) % 5);
        }
    }

    #[test]
    fn uneven_bytes_conserve_total() {
        // 1003 bytes over 4 chunks: sizes 251,251,251,250.
        let s = ring_allreduce(&hosts(4), 1_003);
        s.validate().unwrap();
        // Each stage moves the full buffer once (sum of all 4 chunk sizes
        // appears once per stage across the 4 nodes... each node sends one
        // chunk per stage; over a full rotation all chunks appear).
        let total: u64 = s.transfers.iter().map(|t| t.bytes).sum();
        // 6 stages × sum-of-some-chunks; exact conservation per stage:
        // stage s carries chunks {(i−s) mod 4 : i} = all 4 chunks = 1003.
        assert_eq!(total, 6 * 1_003);
    }

    #[test]
    fn deps_follow_the_pipeline() {
        let n = 4;
        let s = ring_allreduce(&hosts(n), 4_000);
        let ch = s.children();
        // Step-0 sends unblock exactly one step-1 send each.
        for r in s.roots() {
            assert_eq!(ch[r as usize].len(), 1);
            let child = ch[r as usize][0] as usize;
            // The unblocked sender is the receiver of the root transfer.
            assert_eq!(s.transfers[child].src, s.transfers[r as usize].dst);
        }
    }

    #[test]
    fn allgather_matches_reduce_scatter_volume() {
        let a = ring_reduce_scatter(&hosts(6), 6_000);
        let b = ring_allgather(&hosts(6), 6_000);
        assert_eq!(a.total_bytes(), b.total_bytes());
    }

    #[test]
    #[should_panic]
    fn singleton_ring_panics() {
        ring_allreduce(&hosts(1), 100);
    }
}
