//! AlltoAll collectives (paper §7 "Beyond reduction collectives").
//!
//! AlltoAll has a *dense* demand matrix — every node sends to every other
//! node — and, unlike data-parallel AllReduce, the per-pair volume may vary
//! (expert parallelism). FlowPulse's future-work section proposes handling
//! it by extracting the demand matrix and recomputing expected loads; this
//! module provides both the uniform and the demand-driven variants so the
//! localization experiments (which need multiple senders per monitored
//! port — Fig. 4) have a workload to run on.

use crate::demand::DemandMatrix;
use crate::schedule::{Schedule, Transfer};
use fp_netsim::ids::HostId;

/// Uniform AlltoAll: every node sends `bytes_per_pair` to every other node,
/// all transfers independent (step 0).
pub fn alltoall_uniform(nodes: &[HostId], bytes_per_pair: u64) -> Schedule {
    assert!(nodes.len() >= 2);
    assert!(bytes_per_pair > 0);
    let mut transfers = Vec::with_capacity(nodes.len() * (nodes.len() - 1));
    for &src in nodes {
        for &dst in nodes {
            if src != dst {
                transfers.push(Transfer {
                    src,
                    dst,
                    bytes: bytes_per_pair,
                    step: 0,
                });
            }
        }
    }
    let deps = vec![None; transfers.len()];
    Schedule {
        name: "alltoall-uniform".to_string(),
        nodes: nodes.to_vec(),
        transfers,
        deps,
    }
}

/// Demand-driven AlltoAll: one transfer per non-zero demand entry (dynamic
/// demand matrices from e.g. expert-parallel routing).
pub fn alltoall_from_demand(nodes: &[HostId], demand: &DemandMatrix) -> Schedule {
    let mut transfers = Vec::new();
    for (src, dst, bytes) in demand.pairs() {
        transfers.push(Transfer {
            src,
            dst,
            bytes,
            step: 0,
        });
    }
    let deps = vec![None; transfers.len()];
    Schedule {
        name: "alltoall-demand".to_string(),
        nodes: nodes.to_vec(),
        transfers,
        deps,
    }
}

/// Pick the paper's §5.1 measured subset for a multi-destination schedule:
/// for each leaf, the single transfer to the cyclically-next leaf — every
/// leaf appears exactly once as a non-local sender and once as a receiver.
/// `host_leaf` maps host index → leaf index. Panics if some leaf has no
/// transfer to its successor (uniform AlltoAll always does).
pub fn single_nonlocal_subset(sched: &Schedule, host_leaf: &[u32]) -> Vec<u32> {
    let n_leaves = host_leaf.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut picked = Vec::with_capacity(n_leaves as usize);
    for l in 0..n_leaves {
        let succ = (l + 1) % n_leaves;
        let t = sched
            .transfers
            .iter()
            .position(|t| host_leaf[t.src.idx()] == l && host_leaf[t.dst.idx()] == succ)
            .unwrap_or_else(|| panic!("no transfer from leaf {l} to leaf {succ}"));
        picked.push(t as u32);
    }
    picked
}

/// Aggregate demand of a subset of transfers (the demand matrix FlowPulse
/// models when only a measured subset is tagged).
pub fn demand_of_subset(
    sched: &Schedule,
    subset: &[u32],
    n_hosts: usize,
) -> crate::demand::DemandMatrix {
    let mut d = crate::demand::DemandMatrix::new(n_hosts);
    for &i in subset {
        let t = sched.transfers[i as usize];
        d.add(t.src, t.dst, t.bytes);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: u32) -> Vec<HostId> {
        (0..n).map(HostId).collect()
    }

    #[test]
    fn subset_covers_each_leaf_once() {
        let s = alltoall_uniform(&hosts(6), 100);
        let host_leaf: Vec<u32> = (0..6).collect(); // one host per leaf
        let subset = single_nonlocal_subset(&s, &host_leaf);
        assert_eq!(subset.len(), 6);
        // Each leaf sends exactly once (to its successor) and receives once.
        let mut senders = std::collections::HashSet::new();
        let mut receivers = std::collections::HashSet::new();
        for &i in &subset {
            let t = s.transfers[i as usize];
            assert!(senders.insert(t.src));
            assert!(receivers.insert(t.dst));
            assert_eq!(t.dst.0, (t.src.0 + 1) % 6);
        }
        let d = demand_of_subset(&s, &subset, 6);
        assert_eq!(d.total(), 600);
    }

    #[test]
    fn subset_with_multiple_hosts_per_leaf() {
        // 4 hosts on 2 leaves: subset picks one representative pair per
        // leaf boundary.
        let s = alltoall_uniform(&hosts(4), 50);
        let host_leaf = vec![0u32, 0, 1, 1];
        let subset = single_nonlocal_subset(&s, &host_leaf);
        assert_eq!(subset.len(), 2);
        for &i in &subset {
            let t = s.transfers[i as usize];
            assert_ne!(host_leaf[t.src.idx()], host_leaf[t.dst.idx()]);
        }
    }

    #[test]
    fn uniform_covers_all_pairs() {
        let s = alltoall_uniform(&hosts(4), 100);
        s.validate().unwrap();
        assert_eq!(s.transfers.len(), 12);
        assert_eq!(s.total_bytes(), 1200);
        assert_eq!(s.n_steps(), 1);
        let d = s.demand(4);
        for i in 0..4u32 {
            for j in 0..4u32 {
                let want = if i == j { 0 } else { 100 };
                assert_eq!(d.get(HostId(i), HostId(j)), want);
            }
        }
    }

    #[test]
    fn demand_driven_roundtrips() {
        let mut d = DemandMatrix::new(3);
        d.add(HostId(0), HostId(2), 500);
        d.add(HostId(1), HostId(0), 250);
        let s = alltoall_from_demand(&hosts(3), &d);
        s.validate().unwrap();
        assert_eq!(s.demand(3), d);
    }

    #[test]
    fn all_transfers_are_roots() {
        let s = alltoall_uniform(&hosts(3), 10);
        assert_eq!(s.roots().len(), s.transfers.len());
        assert_eq!(s.depth(), 1);
    }
}
