//! # fp-collectives — collective communication workloads for fp-netsim
//!
//! ML training traffic for the FlowPulse reproduction: collective
//! *schedules* (who sends what to whom, with pipeline dependencies), the
//! iteration *runner* that replays a schedule every training iteration with
//! collective tags and optional jitter, and a *background traffic*
//! generator for multi-tenant scenarios.
//!
//! The paper's workload model (§2): data-parallel training runs an
//! identical reduction collective each iteration — typically Ring-AllReduce
//! — making the traffic matrix perfectly repetitive. That repetition is
//! what FlowPulse's temporal symmetry rests on.
//!
//! ```
//! use fp_collectives::prelude::*;
//! use fp_netsim::prelude::*;
//!
//! let topo = Topology::fat_tree(FatTreeSpec { leaves: 4, spines: 2, ..Default::default() });
//! let hosts: Vec<HostId> = (0..4).map(HostId).collect();
//! let sched = ring_allreduce(&hosts, 64 * 1024);
//! let mut sim = Simulator::new(topo, SimConfig::default(), 7);
//! sim.set_app(Box::new(CollectiveRunner::new(sched, RunnerConfig::default())));
//! sim.run();
//! assert!(sim.counters.get(1, 0).is_some()); // iteration 0 measured
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alltoall;
pub mod background;
pub mod demand;
pub mod halving;
pub mod jitter;
pub mod ring;
pub mod runner;
pub mod schedule;
pub mod shard;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::alltoall::{
        alltoall_from_demand, alltoall_uniform, demand_of_subset, single_nonlocal_subset,
    };
    pub use crate::background::{BackgroundConfig, BackgroundTraffic};
    pub use crate::demand::DemandMatrix;
    pub use crate::halving::halving_doubling_allreduce;
    pub use crate::jitter::JitterModel;
    pub use crate::ring::{ring_allgather, ring_allreduce, ring_reduce_scatter};
    pub use crate::runner::{CollectiveRunner, MeasuredSubset, RunnerConfig};
    pub use crate::schedule::{Schedule, Transfer};
    pub use crate::shard::{run_sharded, threaded_from_env, ShardFault, ShardedOutcome};
}
