//! Straggler / jitter models (paper §4, §5.1).
//!
//! "Prior to each collective, some nodes may experience longer computation
//! times, resulting in straggler nodes that begin the collective after other
//! nodes. Different nodes may become stragglers during different
//! iterations." The runner samples a fresh per-node delay at each iteration
//! start from one of these models.

use fp_netsim::time::SimDuration;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-node iteration-start delay distribution.
#[derive(Copy, Clone, PartialEq, Serialize, Deserialize, Debug, Default)]
pub enum JitterModel {
    /// All nodes start simultaneously.
    #[default]
    None,
    /// Delay uniform in `[0, max]`.
    Uniform {
        /// Upper bound.
        max: SimDuration,
    },
    /// A single straggler: one uniformly-chosen node per iteration is
    /// delayed by exactly `delay`; everyone else starts on time.
    Straggler {
        /// The straggler's extra delay.
        delay: SimDuration,
    },
}

impl JitterModel {
    /// Sample per-node delays for one iteration over `n` nodes.
    pub fn sample(&self, n: usize, rng: &mut SmallRng) -> Vec<SimDuration> {
        match *self {
            JitterModel::None => vec![SimDuration::ZERO; n],
            JitterModel::Uniform { max } => (0..n)
                .map(|_| SimDuration::from_ns(rng.gen_range(0..=max.as_ns())))
                .collect(),
            JitterModel::Straggler { delay } => {
                let mut v = vec![SimDuration::ZERO; n];
                if n > 0 {
                    v[rng.gen_range(0..n)] = delay;
                }
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn none_is_zero() {
        let mut rng = SmallRng::seed_from_u64(0);
        let v = JitterModel::None.sample(5, &mut rng);
        assert!(v.iter().all(|d| *d == SimDuration::ZERO));
    }

    #[test]
    fn uniform_is_bounded() {
        let mut rng = SmallRng::seed_from_u64(1);
        let max = SimDuration::from_us(3);
        for _ in 0..100 {
            for d in (JitterModel::Uniform { max }).sample(8, &mut rng) {
                assert!(d <= max);
            }
        }
    }

    #[test]
    fn straggler_hits_exactly_one() {
        let mut rng = SmallRng::seed_from_u64(2);
        let delay = SimDuration::from_us(10);
        let mut who = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = JitterModel::Straggler { delay }.sample(4, &mut rng);
            let idx: Vec<usize> = v
                .iter()
                .enumerate()
                .filter_map(|(i, d)| (*d == delay).then_some(i))
                .collect();
            assert_eq!(idx.len(), 1);
            who.insert(idx[0]);
        }
        // Different nodes straggle across iterations.
        assert!(who.len() >= 3, "straggler should rotate, saw {who:?}");
    }
}
