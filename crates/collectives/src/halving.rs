//! Recursive halving-doubling AllReduce (two-tree-family alternative to the
//! ring; used as an ablation workload — it has log₂N stages and a very
//! different leaf-to-leaf traffic pattern, with *multiple* non-local peers
//! per leaf across the iteration).

use crate::schedule::{Schedule, Transfer};
use fp_netsim::ids::HostId;

/// Halving-doubling AllReduce over a power-of-two node count.
///
/// Stage `k` of the halving (reduce-scatter) phase pairs node `i` with
/// `i ^ 2^k` and exchanges `bytes / 2^(k+1)`; the doubling (all-gather)
/// phase mirrors it in reverse. Panics unless `nodes.len()` is a power of
/// two ≥ 2 and `bytes_per_node` is divisible by `nodes.len()`.
pub fn halving_doubling_allreduce(nodes: &[HostId], bytes_per_node: u64) -> Schedule {
    let n = nodes.len();
    assert!(n >= 2 && n.is_power_of_two(), "need power-of-two nodes");
    assert!(
        bytes_per_node.is_multiple_of(n as u64),
        "bytes_per_node must divide evenly for halving-doubling"
    );
    let stages = n.trailing_zeros();
    let mut transfers = Vec::with_capacity(2 * stages as usize * n);
    let mut deps = Vec::with_capacity(transfers.capacity());
    // Halving: k = 0 .. stages; doubling: k = stages-1 .. 0.
    let ks: Vec<u32> = (0..stages).chain((0..stages).rev()).collect();
    for (step, &k) in (0u32..).zip(&ks) {
        let bytes = bytes_per_node >> (k + 1);
        for (i, &src) in nodes.iter().enumerate() {
            let dst = nodes[i ^ (1usize << k)];
            transfers.push(Transfer {
                src,
                dst,
                bytes,
                step,
            });
            deps.push(if step == 0 {
                None
            } else {
                // Node i's send at step s waits on the message it received
                // at step s−1, which came from its step-(s−1) partner.
                let prev_k = ks[(step - 1) as usize];
                let prev_partner = i ^ (1usize << prev_k);
                Some((step - 1) * n as u32 + prev_partner as u32)
            });
        }
    }
    Schedule {
        name: "halving-doubling-allreduce".to_string(),
        nodes: nodes.to_vec(),
        transfers,
        deps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: u32) -> Vec<HostId> {
        (0..n).map(HostId).collect()
    }

    #[test]
    fn shape_for_eight_nodes() {
        let s = halving_doubling_allreduce(&hosts(8), 8_192);
        s.validate().unwrap();
        // 2*log2(8) = 6 stages, 8 transfers each.
        assert_eq!(s.n_steps(), 6);
        assert_eq!(s.transfers.len(), 48);
        // Per-node volume: 2*(4096/2 + ... ) = 2*(4096+2048+1024)/... :
        // stage sizes 4096,2048,1024 then 1024,2048,4096 => 14336 per node.
        let v: u64 = s
            .transfers
            .iter()
            .filter(|t| t.src == HostId(0))
            .map(|t| t.bytes)
            .sum();
        assert_eq!(v, 2 * (4096 + 2048 + 1024));
    }

    #[test]
    fn volume_matches_ring_asymptotics() {
        // Both move 2S(N−1)/N per node.
        let s = halving_doubling_allreduce(&hosts(4), 4_000);
        let per_node: u64 = s
            .transfers
            .iter()
            .filter(|t| t.src == HostId(0))
            .map(|t| t.bytes)
            .sum();
        assert_eq!(per_node, 2 * 4_000 * 3 / 4);
    }

    #[test]
    fn partners_are_symmetric() {
        let s = halving_doubling_allreduce(&hosts(4), 4_000);
        // In every stage, if i sends to j then j sends to i.
        for st in 0..s.n_steps() {
            let stage: Vec<_> = s.transfers.iter().filter(|t| t.step == st).collect();
            for t in &stage {
                assert!(stage.iter().any(|u| u.src == t.dst && u.dst == t.src));
            }
        }
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_panics() {
        halving_doubling_allreduce(&hosts(6), 6_000);
    }
}
