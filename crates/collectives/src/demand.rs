//! Demand matrices: how many bytes each host pair exchanges per iteration.
//!
//! The demand matrix is the application-level knowledge FlowPulse's
//! analytical model consumes (paper §5.2): "The application knows which
//! nodes will communicate over the course of the collective, as well as how
//! much data each pair will send."

use fp_netsim::ids::HostId;
use serde::{Deserialize, Serialize};

/// Dense N×N matrix of per-iteration bytes, indexed `[src][dst]`.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize, Debug)]
pub struct DemandMatrix {
    n: usize,
    d: Vec<u64>,
}

impl DemandMatrix {
    /// Zero demand among `n` hosts.
    pub fn new(n: usize) -> Self {
        DemandMatrix {
            n,
            d: vec![0; n * n],
        }
    }

    /// Number of hosts.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Add `bytes` to the `(src, dst)` demand.
    pub fn add(&mut self, src: HostId, dst: HostId, bytes: u64) {
        assert_ne!(src, dst, "self-demand");
        self.d[src.idx() * self.n + dst.idx()] += bytes;
    }

    /// Demand from `src` to `dst`.
    pub fn get(&self, src: HostId, dst: HostId) -> u64 {
        self.d[src.idx() * self.n + dst.idx()]
    }

    /// Total bytes across all pairs.
    pub fn total(&self) -> u64 {
        self.d.iter().sum()
    }

    /// Iterate all non-zero `(src, dst, bytes)` entries.
    pub fn pairs(&self) -> impl Iterator<Item = (HostId, HostId, u64)> + '_ {
        let n = self.n;
        self.d
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b > 0)
            .map(move |(i, &b)| (HostId((i / n) as u32), HostId((i % n) as u32), b))
    }

    /// Total bytes destined to `dst`.
    pub fn to_dst(&self, dst: HostId) -> u64 {
        (0..self.n).map(|s| self.d[s * self.n + dst.idx()]).sum()
    }

    /// Total bytes originated by `src`.
    pub fn from_src(&self, src: HostId) -> u64 {
        self.d[src.idx() * self.n..(src.idx() + 1) * self.n]
            .iter()
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut d = DemandMatrix::new(4);
        d.add(HostId(0), HostId(1), 100);
        d.add(HostId(0), HostId(1), 50);
        d.add(HostId(3), HostId(0), 7);
        assert_eq!(d.get(HostId(0), HostId(1)), 150);
        assert_eq!(d.get(HostId(1), HostId(0)), 0);
        assert_eq!(d.total(), 157);
        assert_eq!(d.to_dst(HostId(1)), 150);
        assert_eq!(d.from_src(HostId(0)), 150);
        assert_eq!(d.from_src(HostId(3)), 7);
    }

    #[test]
    fn pairs_skips_zeros() {
        let mut d = DemandMatrix::new(3);
        d.add(HostId(2), HostId(0), 9);
        let ps: Vec<_> = d.pairs().collect();
        assert_eq!(ps, vec![(HostId(2), HostId(0), 9)]);
    }

    #[test]
    #[should_panic]
    fn self_demand_panics() {
        let mut d = DemandMatrix::new(2);
        d.add(HostId(1), HostId(1), 1);
    }
}
