//! The collective workload driver.
//!
//! [`CollectiveRunner`] executes the same [`Schedule`] for a configured
//! number of training iterations over an `fp-netsim` fabric, tagging every
//! data packet with `(job, iteration)` — the paper's NCCL modification
//! (§5.1) — and separating iterations by a compute gap with optional
//! per-node jitter. Dependencies are honoured exactly: a transfer is posted
//! the moment its prerequisite message completes at the forwarding node.

use crate::jitter::JitterModel;
use crate::schedule::Schedule;
use fp_netsim::app::Application;
use fp_netsim::ids::HostId;
use fp_netsim::packet::{CollectiveTag, FlowId, Priority};
use fp_netsim::sim::Simulator;
use fp_netsim::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which transfers of the schedule FlowPulse measures (paper §5.1: for
/// collectives with multiple non-local destinations per leaf, "we may
/// select a subset of flows from the collective representing each leaf
/// switch once as a sender, and once as a receiver. These flows are run at
/// a high priority and are the only flows used for verifying temporal
/// symmetry").
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize, Debug, Default)]
pub enum MeasuredSubset {
    /// Tag and prioritize every transfer (right for ring collectives,
    /// which naturally have one non-local flow per leaf).
    #[default]
    All,
    /// Tag and prioritize only these transfer indices; the rest run
    /// untagged at [`Priority::BACKGROUND`].
    Transfers(Vec<u32>),
}

impl MeasuredSubset {
    /// True when transfer index `t` is measured (tagged + prioritized).
    pub fn contains(&self, t: u32) -> bool {
        match self {
            MeasuredSubset::All => true,
            MeasuredSubset::Transfers(v) => v.contains(&t),
        }
    }
}

/// Runner parameters.
#[derive(Clone, PartialEq, Serialize, Deserialize, Debug)]
pub struct RunnerConfig {
    /// Job id: the tag's sentinel value and the wake-token namespace.
    pub job: u32,
    /// Training iterations to run.
    pub iterations: u32,
    /// Compute time separating an iteration's end from the next one's start.
    pub compute_gap: SimDuration,
    /// Per-node start jitter model.
    pub jitter: JitterModel,
    /// Priority class for the collective's *measured* data packets (the
    /// measured collective runs at [`Priority::MEASURED`], §5.1).
    pub prio: Priority,
    /// Stamp packets with a [`CollectiveTag`] (disable to model an untagged
    /// legacy job that FlowPulse cannot see).
    pub tag: bool,
    /// Which transfers are measured (tagged + prioritized).
    pub measured: MeasuredSubset,
    /// Seed for the jitter stream (independent of fabric randomness).
    pub jitter_seed: u64,
    /// Caller's promise that any installed iteration hooks observe or
    /// mutate state only at the barrier iterations passed to
    /// [`Simulator::enable_memo`] (e.g. a fault install/heal hook). With
    /// this set, the runner offers iteration boundaries to the memo engine
    /// even though hooks are present — a fast-forward never crosses a
    /// barrier, so the skipped hook invocations were no-ops by promise.
    /// Ignored (harmless) when memoization is not enabled.
    #[serde(default)]
    pub memo_barrier_hooks: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            job: 1,
            iterations: 1,
            compute_gap: SimDuration::from_us(20),
            jitter: JitterModel::None,
            prio: Priority::MEASURED,
            tag: true,
            measured: MeasuredSubset::All,
            jitter_seed: 0x6a_17_7e_12,
            memo_barrier_hooks: false,
        }
    }
}

/// Callback invoked at an iteration boundary with `(sim, iteration)`.
pub type IterationHook = Box<dyn FnMut(&mut Simulator, u32)>;

/// Drives one collective job across iterations.
pub struct CollectiveRunner {
    cfg: RunnerConfig,
    sched: Schedule,
    children: Vec<Vec<u32>>,
    roots: Vec<u32>,
    node_of: HashMap<HostId, usize>,
    rng: SmallRng,
    on_iter_start: Option<IterationHook>,
    on_iter_end: Option<IterationHook>,

    iter: u32,
    outstanding: u32,
    flow_map: HashMap<FlowId, u32>,
    /// Reusable buffer for the transfers unblocked by one completion
    /// (avoids a heap allocation per completed transfer, mirroring the
    /// simulator's `scratch_cands` pattern).
    scratch_unblocked: Vec<u32>,

    /// Scheduled start time of each iteration (before jitter).
    pub iter_started: Vec<SimTime>,
    /// Completion time (last transfer received) of each iteration.
    pub iter_finished: Vec<SimTime>,
    /// Per-iteration goodput in bits/second: the schedule's application
    /// bytes divided by the iteration's wall span. Faults stretch the span
    /// (retransmissions, stalls), so this is the workload-level signal a
    /// remediation loop is judged by.
    pub iter_goodput_bps: Vec<f64>,
    /// Application bytes one iteration moves (cached `Schedule` total).
    total_bytes: u64,
    /// Transfers whose flow was abandoned by the transport.
    pub failed_transfers: u32,
}

impl CollectiveRunner {
    /// Build a runner for `sched` with `cfg`.
    pub fn new(sched: Schedule, cfg: RunnerConfig) -> Self {
        sched.validate().expect("invalid schedule");
        assert!(cfg.iterations > 0);
        let children = sched.children();
        let roots = sched.roots();
        let node_of = sched
            .nodes
            .iter()
            .enumerate()
            .map(|(i, &h)| (h, i))
            .collect();
        let rng = SmallRng::seed_from_u64(cfg.jitter_seed);
        let total_bytes = sched.total_bytes();
        CollectiveRunner {
            cfg,
            sched,
            children,
            roots,
            node_of,
            rng,
            on_iter_start: None,
            on_iter_end: None,
            iter: 0,
            outstanding: 0,
            flow_map: HashMap::new(),
            scratch_unblocked: Vec::new(),
            iter_started: Vec::new(),
            iter_finished: Vec::new(),
            iter_goodput_bps: Vec::new(),
            total_bytes,
            failed_transfers: 0,
        }
    }

    /// The schedule being executed.
    pub fn schedule(&self) -> &Schedule {
        &self.sched
    }

    /// The runner config.
    pub fn config(&self) -> &RunnerConfig {
        &self.cfg
    }

    /// Iterations fully completed so far.
    pub fn completed_iterations(&self) -> u32 {
        self.iter_finished.len() as u32
    }

    /// True once all configured iterations completed.
    pub fn finished(&self) -> bool {
        self.completed_iterations() == self.cfg.iterations
    }

    fn token(&self, transfer: u32) -> u64 {
        (self.cfg.job as u64) << 32 | transfer as u64
    }

    fn owns_token(&self, token: u64) -> Option<u32> {
        (token >> 32 == self.cfg.job as u64).then_some((token & 0xffff_ffff) as u32)
    }

    /// Install a hook called when iteration `i` is about to start (before
    /// any of its transfers are scheduled). Harnesses use this to inject or
    /// heal faults at precise iteration boundaries.
    pub fn set_iteration_start_hook(&mut self, hook: IterationHook) {
        self.on_iter_start = Some(hook);
    }

    /// Install a hook called when iteration `i` has fully completed.
    pub fn set_iteration_end_hook(&mut self, hook: IterationHook) {
        self.on_iter_end = Some(hook);
    }

    fn begin_iteration(&mut self, sim: &mut Simulator, base: SimTime) {
        if let Some(h) = self.on_iter_start.as_mut() {
            h(sim, self.iter);
        }
        self.outstanding = self.sched.transfers.len() as u32;
        self.iter_started.push(base);
        let delays = self
            .cfg
            .jitter
            .sample(self.sched.nodes.len(), &mut self.rng);
        // Roots fire at the iteration start plus their sender's jitter.
        // Nothing here needs `&mut self`, so iterate in place.
        for &r in &self.roots {
            let src = self.sched.transfers[r as usize].src;
            let d = delays[self.node_of[&src]];
            sim.schedule_wake(base + d, src, self.token(r));
        }
    }

    fn post_transfer(&mut self, sim: &mut Simulator, t: u32) {
        let tr = self.sched.transfers[t as usize];
        let measured = self.cfg.measured.contains(t);
        let tag = (self.cfg.tag && measured).then_some(CollectiveTag {
            job: self.cfg.job,
            iter: self.iter,
        });
        let prio = if measured {
            self.cfg.prio
        } else {
            Priority::BACKGROUND
        };
        let fid = sim.post_message(tr.src, tr.dst, tr.bytes, tag, prio);
        self.flow_map.insert(fid, t);
    }
}

impl Application for CollectiveRunner {
    fn on_start(&mut self, sim: &mut Simulator) {
        let now = sim.now();
        self.begin_iteration(sim, now);
    }

    fn on_wake(&mut self, sim: &mut Simulator, _host: HostId, token: u64) {
        if let Some(t) = self.owns_token(token) {
            self.post_transfer(sim, t);
        }
    }

    fn on_message_complete(&mut self, sim: &mut Simulator, flow: FlowId) {
        let Some(t) = self.flow_map.remove(&flow) else {
            return; // not our flow (multi-job fabric)
        };
        self.outstanding -= 1;
        let mut unblocked = std::mem::take(&mut self.scratch_unblocked);
        unblocked.clear();
        unblocked.extend_from_slice(&self.children[t as usize]);
        for &c in &unblocked {
            self.post_transfer(sim, c);
        }
        self.scratch_unblocked = unblocked;
        if self.outstanding == 0 {
            let now = sim.now();
            self.iter_finished.push(now);
            let start = self.iter_started[self.iter as usize];
            let span_ns = now.as_ns().saturating_sub(start.as_ns()).max(1);
            self.iter_goodput_bps
                .push(self.total_bytes as f64 * 8.0 / (span_ns as f64 * 1e-9));
            sim.record_iteration_span(self.cfg.job, self.iter, start, now);
            if let Some(h) = self.on_iter_end.as_mut() {
                h(sim, self.iter);
            }
            self.iter += 1;
            if self.iter < self.cfg.iterations {
                let mut base = now;
                // Temporal-symmetry fast-forward (`FP_MEMO`): at a clean
                // boundary the engine may replay recorded steady-state
                // iterations instead of simulating them. Only offered on
                // jitter-free runs — jitter draws from the runner's
                // private RNG (invisible to the engine fingerprint) — and
                // only when hooks are absent or the caller promised they
                // act solely at memo barrier iterations
                // (`memo_barrier_hooks`), which a fast-forward never
                // crosses. The replay covers whole steady-state windows
                // of `ff.window` iterations; each window's records are
                // the last `window` live iterations' records shifted
                // rigidly by one more period — the spans are identical,
                // so the goodput values are bit-identical too.
                if self.cfg.jitter == JitterModel::None
                    && (self.cfg.memo_barrier_hooks
                        || (self.on_iter_start.is_none() && self.on_iter_end.is_none()))
                {
                    if let Some(ff) = sim.memo_boundary(self.iter, self.cfg.iterations - self.iter)
                    {
                        let k = ff.window as usize;
                        let n = self.iter_started.len();
                        debug_assert!(n >= k, "matched window exceeds recorded iterations");
                        for u in 1..=(ff.iters / ff.window) as u64 {
                            let dt = SimDuration::from_ns(ff.period.as_ns() * u);
                            for j in (n - k)..n {
                                self.iter_started.push(self.iter_started[j] + dt);
                                self.iter_finished.push(self.iter_finished[j] + dt);
                                self.iter_goodput_bps.push(self.iter_goodput_bps[j]);
                            }
                        }
                        self.iter += ff.iters;
                        base = sim.now();
                    }
                }
                if self.iter < self.cfg.iterations {
                    self.begin_iteration(sim, base + self.cfg.compute_gap);
                }
            }
        }
    }

    fn on_flow_failed(&mut self, _sim: &mut Simulator, flow: FlowId) {
        if self.flow_map.contains_key(&flow) {
            self.failed_transfers += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::ring_allreduce;
    use fp_netsim::config::SimConfig;
    use fp_netsim::topology::{FatTreeSpec, Topology};

    fn fabric(leaves: u32, spines: u32) -> Simulator {
        let topo = Topology::fat_tree(FatTreeSpec {
            leaves,
            spines,
            ..Default::default()
        });
        Simulator::new(topo, SimConfig::default(), 99)
    }

    fn hosts(n: u32) -> Vec<HostId> {
        (0..n).map(HostId).collect()
    }

    #[test]
    fn one_iteration_completes() {
        let mut sim = fabric(4, 2);
        let sched = ring_allreduce(&hosts(4), 64 * 1024);
        let runner = CollectiveRunner::new(sched, RunnerConfig::default());
        sim.set_app(Box::new(runner));
        sim.run();
        assert!(sim.all_flows_complete());
        assert_eq!(sim.stats.flows_failed, 0);
        // Counters saw iteration 0 of job 1 at every leaf.
        let c = sim.counters.get(1, 0).expect("iteration recorded");
        for l in 0..4u32 {
            assert!(
                c.leaf_ports(l).iter().sum::<u64>() > 0,
                "leaf {l} saw no tagged traffic"
            );
        }
    }

    #[test]
    fn iterations_are_temporally_symmetric() {
        // The core §4 claim, as a test: with a deterministic adaptive spray
        // and no new faults, per-port tagged volumes are identical across
        // iterations.
        let mut sim = fabric(8, 4);
        let sched = ring_allreduce(&hosts(8), 256 * 1024);
        let cfg = RunnerConfig {
            iterations: 3,
            ..Default::default()
        };
        sim.set_app(Box::new(CollectiveRunner::new(sched, cfg)));
        sim.run();
        let c0 = sim.counters.get(1, 0).unwrap().bytes.clone();
        let c1 = sim.counters.get(1, 1).unwrap().bytes.clone();
        let c2 = sim.counters.get(1, 2).unwrap().bytes.clone();
        assert_eq!(c0, c1);
        assert_eq!(c1, c2);
        assert!(c0.iter().sum::<u64>() > 0);
    }

    #[test]
    fn runner_tracks_iteration_spans() {
        let mut sim = fabric(4, 2);
        let sched = ring_allreduce(&hosts(4), 32 * 1024);
        let cfg = RunnerConfig {
            iterations: 2,
            compute_gap: SimDuration::from_us(50),
            ..Default::default()
        };
        let runner = CollectiveRunner::new(sched, cfg);
        sim.set_app(Box::new(runner));
        sim.run();
        // Retrieve the runner back? We can't — it's boxed inside. Instead
        // validate via counters: two iterations recorded, second later.
        let i0 = sim.counters.get(1, 0).unwrap();
        let i1 = sim.counters.get(1, 1).unwrap();
        assert!(i1.first_seen_at(1).unwrap() > i0.first_seen_at(1).unwrap());
        assert_eq!(i0.bytes, i1.bytes);
    }

    #[test]
    fn iteration_spans_reach_the_recorder() {
        use std::cell::RefCell;
        use std::rc::Rc;
        type Spans = Rc<RefCell<Vec<(u32, u32, u64, u64)>>>;
        struct Rec(Spans);
        impl fp_telemetry::Recorder for Rec {
            fn on_iteration(&mut self, job: u32, iter: u32, start_ns: u64, end_ns: u64) {
                self.0.borrow_mut().push((job, iter, start_ns, end_ns));
            }
        }
        let spans: Spans = Default::default();
        let mut sim = fabric(4, 2);
        sim.set_recorder(Box::new(Rec(spans.clone())));
        let sched = ring_allreduce(&hosts(4), 32 * 1024);
        let gap = SimDuration::from_us(50);
        let cfg = RunnerConfig {
            iterations: 2,
            compute_gap: gap,
            ..Default::default()
        };
        sim.set_app(Box::new(CollectiveRunner::new(sched, cfg)));
        sim.run();
        let s = spans.borrow();
        assert_eq!(s.len(), 2);
        for (i, &(job, iter, start, end)) in s.iter().enumerate() {
            assert_eq!(job, 1);
            assert_eq!(iter, i as u32);
            assert!(start < end);
        }
        // Iteration 1's scheduled base is exactly iteration 0's completion
        // plus the compute gap (jitter is off by default).
        assert_eq!(s[1].2, s[0].3 + gap.as_ns());
    }

    #[test]
    fn goodput_accounts_schedule_bytes_over_span() {
        use std::cell::RefCell;
        use std::rc::Rc;

        // The runner is consumed by `set_app`, so mirror its goodput log
        // out through a forwarding wrapper.
        struct Expose {
            inner: CollectiveRunner,
            out: Rc<RefCell<Vec<f64>>>,
        }
        impl Application for Expose {
            fn on_start(&mut self, sim: &mut Simulator) {
                self.inner.on_start(sim);
            }
            fn on_wake(&mut self, sim: &mut Simulator, host: HostId, token: u64) {
                self.inner.on_wake(sim, host, token);
            }
            fn on_message_complete(&mut self, sim: &mut Simulator, flow: FlowId) {
                self.inner.on_message_complete(sim, flow);
                *self.out.borrow_mut() = self.inner.iter_goodput_bps.clone();
            }
            fn on_flow_failed(&mut self, sim: &mut Simulator, flow: FlowId) {
                self.inner.on_flow_failed(sim, flow);
            }
        }

        let mut sim = fabric(4, 2);
        let sched = ring_allreduce(&hosts(4), 32 * 1024);
        let total_bytes = sched.total_bytes();
        let cfg = RunnerConfig {
            iterations: 2,
            ..Default::default()
        };
        let out: Rc<RefCell<Vec<f64>>> = Default::default();
        sim.set_app(Box::new(Expose {
            inner: CollectiveRunner::new(sched, cfg),
            out: out.clone(),
        }));
        sim.run();

        let goodput = out.borrow().clone();
        assert_eq!(goodput.len(), 2);
        // Cross-check against the engine's always-on span log.
        let spans = sim.iter_spans();
        assert_eq!(spans.len(), 2);
        for (g, s) in goodput.iter().zip(spans) {
            let span_ns = s.end.as_ns() - s.start.as_ns();
            let expect = total_bytes as f64 * 8.0 / (span_ns as f64 * 1e-9);
            assert!((g - expect).abs() / expect < 1e-12, "{g} vs {expect}");
            assert!(*g > 0.0);
        }
        // A fault-free fabric runs both iterations at the same rate.
        assert!((goodput[0] - goodput[1]).abs() / goodput[0] < 0.05);
    }

    #[test]
    fn adaptive_spray_keeps_symmetry_tight_under_jitter() {
        // §4: temporal symmetry is resilient to jitter for rings. With the
        // utilization-aware Adaptive policy the per-port byte deficit
        // self-corrects, so even with 5 µs of per-node jitter the
        // iteration-over-iteration deviation stays well below the paper's
        // 1% detection threshold. Queue-only spraying (LeastLoaded) lacks
        // that correction and is markedly noisier at small sizes.
        let max_dev = |bytes: u64, policy: fp_netsim::spray::SprayPolicy| {
            let topo = fp_netsim::topology::Topology::fat_tree(FatTreeSpec {
                leaves: 8,
                spines: 4,
                ..Default::default()
            });
            let cfg_s = SimConfig {
                spray: policy,
                ..Default::default()
            };
            let mut sim = Simulator::new(topo, cfg_s, 99);
            let sched = ring_allreduce(&hosts(8), bytes);
            let cfg = RunnerConfig {
                iterations: 3,
                jitter: JitterModel::Uniform {
                    max: SimDuration::from_us(5),
                },
                ..Default::default()
            };
            sim.set_app(Box::new(CollectiveRunner::new(sched, cfg)));
            sim.run();
            let base = sim.counters.get(1, 0).unwrap().bytes.clone();
            let mut worst = 0.0f64;
            for it in 1..3 {
                let c = sim.counters.get(1, it).unwrap();
                for (&a, &b) in base.iter().zip(&c.bytes) {
                    if a > 0 {
                        worst = worst.max(((a as f64 - b as f64) / a as f64).abs());
                    }
                }
            }
            worst
        };
        use fp_netsim::spray::SprayPolicy;
        let adaptive = max_dev(4 * 1024 * 1024, SprayPolicy::Adaptive);
        let queue_only = max_dev(4 * 1024 * 1024, SprayPolicy::LeastLoaded);
        assert!(
            adaptive < 0.005,
            "adaptive symmetry noise should be <0.5%, got {:.3}%",
            adaptive * 100.0
        );
        assert!(
            adaptive < queue_only,
            "adaptive must beat queue-only: {adaptive} vs {queue_only}"
        );
    }

    #[test]
    fn untagged_job_is_invisible() {
        let mut sim = fabric(4, 2);
        let sched = ring_allreduce(&hosts(4), 32 * 1024);
        let cfg = RunnerConfig {
            tag: false,
            ..Default::default()
        };
        sim.set_app(Box::new(CollectiveRunner::new(sched, cfg)));
        sim.run();
        assert!(sim.all_flows_complete());
        assert!(sim.counters.keys().is_empty());
    }

    #[test]
    fn measured_subset_tags_and_prioritizes_only_chosen_transfers() {
        use crate::alltoall::{alltoall_uniform, single_nonlocal_subset};
        use crate::runner::MeasuredSubset;
        let mut sim = fabric(4, 2);
        let sched = alltoall_uniform(&hosts(4), 256 * 1024);
        let host_leaf: Vec<u32> = (0..4).collect();
        let subset = single_nonlocal_subset(&sched, &host_leaf);
        let subset_bytes: u64 = subset
            .iter()
            .map(|&i| sched.transfers[i as usize].bytes)
            .sum();
        let cfg = RunnerConfig {
            measured: MeasuredSubset::Transfers(subset.clone()),
            ..Default::default()
        };
        sim.set_app(Box::new(CollectiveRunner::new(sched, cfg)));
        sim.run();
        assert!(sim.all_flows_complete());
        // Only the subset's bytes were counted.
        let c = sim.counters.get(1, 0).unwrap();
        assert_eq!(c.total_bytes(), subset_bytes);
        // Non-subset flows ran untagged at background priority.
        let bg = sim
            .flows
            .iter()
            .filter(|f| f.tag.is_none() && f.prio == fp_netsim::packet::Priority::BACKGROUND)
            .count();
        assert_eq!(bg, 4 * 3 - subset.len());
    }

    #[test]
    fn token_namespace_is_job_scoped() {
        let sched = ring_allreduce(&hosts(4), 32 * 1024);
        let r = CollectiveRunner::new(
            sched,
            RunnerConfig {
                job: 7,
                ..Default::default()
            },
        );
        assert_eq!(r.owns_token((7u64 << 32) | 3), Some(3));
        assert_eq!(r.owns_token((8u64 << 32) | 3), None);
    }
}
