//! `BENCH_netsim.json` — the machine-readable perf trajectory.
//!
//! Every logged campaign updates one entry, keyed by campaign name, in a
//! single JSON map at the repository root. Committing the file makes the
//! headline events/sec visible (and diffable) across PRs without parsing
//! `results/campaign_log.txt`.
//!
//! Placement rules:
//! * `FP_BENCH_JSON=<path>` writes there instead (set it to a scratch path
//!   in smoke scripts so CI runs don't clobber the committed numbers;
//!   setting it to the empty string disables the write entirely);
//! * otherwise the file goes to the enclosing repository root (the nearest
//!   ancestor directory containing `Cargo.lock` or `.git`) — but only for
//!   *full* runs: `FP_QUICK` numbers are meaningless as a trajectory and
//!   are dropped unless `FP_BENCH_JSON` asks for them explicitly.

use serde::{Serialize, Value};
use std::path::PathBuf;

/// One campaign's headline numbers.
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Campaign name (`"headline"`, `"fig5a"`, …) — also the map key.
    pub name: String,
    /// `git describe --always --dirty` of the producing tree.
    pub git: String,
    /// Event-scheduler backend (`"heap"` / `"wheel"`).
    pub scheduler: String,
    /// Worker threads the campaign ran with.
    pub threads: u64,
    /// Logical cores the producing host exposed
    /// (`std::thread::available_parallelism`). Shard-scaling rows recorded
    /// on a single-core host measure coordination overhead, not speedup —
    /// this field lets readers tell the two apart.
    pub host_parallelism: u64,
    /// Intra-trial shard count the fabric ran with (1 = unsharded).
    pub shards: u64,
    /// Epoch cap (max windows per synchronization round) the sharded
    /// coordinator ran with; 1 is the legacy per-window handshake. 0 when
    /// unsharded (omitted from the JSON).
    pub shard_epoch: u64,
    /// Conservative-lookahead windows executed across trials. 0 when
    /// unsharded (omitted from the JSON).
    pub shard_windows: u64,
    /// Coordinator synchronization rounds across trials. Equals
    /// `shard_windows` under the per-window handshake; epoch batching
    /// amortizes `shard_windows / shard_syncs` windows per round. 0 when
    /// unsharded (omitted from the JSON).
    pub shard_syncs: u64,
    /// Engine events dispatched per shard, summed across trials (empty,
    /// and omitted from the JSON, when unsharded). Sums to more than
    /// `events` because boundary packets are counted once per side.
    pub shard_events: Vec<u64>,
    /// Whether `FP_QUICK` reduced the sweep.
    pub quick: bool,
    /// Trial count.
    pub trials: u64,
    /// Campaign wall-clock, microseconds.
    pub wall_us: u64,
    /// Total engine events across trials.
    pub events: u64,
    /// Aggregate engine events per wall-clock second.
    pub events_per_sec: f64,
    /// Total scheduler pushes across trials. Pipeline deliveries bypass the
    /// scheduler, so this tracks how much traffic the wheel/heap actually
    /// absorbs — the number the link-pipeline work drives down.
    pub sched_pushes: u64,
    /// Iteration spans fast-forwarded by temporal-symmetry memoization
    /// (`FP_MEMO`), summed across trials. 0 when memoization was off or
    /// never converged.
    pub memo_hits: u64,
    /// Engine events accounted for by replayed spans (already included in
    /// `events`), summed across trials.
    pub memo_replayed_events: u64,
    /// Mean time-to-detect across controller-enabled faulty trials,
    /// nanoseconds of simulated time. `None` for controller-less campaigns.
    pub tt_detect_ns: Option<u64>,
    /// Mean time-to-mitigate across controller-enabled faulty trials,
    /// nanoseconds of simulated time. `None` for controller-less campaigns.
    pub tt_mitigate_ns: Option<u64>,
    /// Healthy cables wrongly admin-downed across the campaign. `None` for
    /// controller-less campaigns.
    pub false_mitigations: Option<u64>,
}

/// Logical cores this host exposes, for [`BenchEntry::host_parallelism`].
pub fn host_parallelism() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

/// Hand-written so unsharded rows omit the shard-only keys entirely
/// instead of carrying a misleading `"shard_events": []` (the vendored
/// derive has no skip attribute). The controller keys (`tt_*`,
/// `false_mitigations`) stay explicit nulls: their absence would read as
/// "metric not implemented" rather than "controller disabled".
impl Serialize for BenchEntry {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("name".into(), self.name.to_value()),
            ("git".into(), self.git.to_value()),
            ("scheduler".into(), self.scheduler.to_value()),
            ("threads".into(), self.threads.to_value()),
            ("host_parallelism".into(), self.host_parallelism.to_value()),
            ("shards".into(), self.shards.to_value()),
        ];
        if self.shards > 1 {
            m.push(("shard_epoch".into(), self.shard_epoch.to_value()));
            m.push(("shard_windows".into(), self.shard_windows.to_value()));
            m.push(("shard_syncs".into(), self.shard_syncs.to_value()));
            m.push(("shard_events".into(), self.shard_events.to_value()));
        }
        m.extend([
            ("quick".into(), self.quick.to_value()),
            ("trials".into(), self.trials.to_value()),
            ("wall_us".into(), self.wall_us.to_value()),
            ("events".into(), self.events.to_value()),
            ("events_per_sec".into(), self.events_per_sec.to_value()),
            ("sched_pushes".into(), self.sched_pushes.to_value()),
            ("memo_hits".into(), self.memo_hits.to_value()),
            (
                "memo_replayed_events".into(),
                self.memo_replayed_events.to_value(),
            ),
            ("tt_detect_ns".into(), self.tt_detect_ns.to_value()),
            ("tt_mitigate_ns".into(), self.tt_mitigate_ns.to_value()),
            (
                "false_mitigations".into(),
                self.false_mitigations.to_value(),
            ),
        ]);
        Value::Map(m)
    }
}

/// Where this process should write the bench file, honouring the rules in
/// the module docs. `None` means "don't write".
pub fn bench_json_path(quick: bool) -> Option<PathBuf> {
    if let Ok(p) = std::env::var("FP_BENCH_JSON") {
        if p.is_empty() {
            return None;
        }
        return Some(PathBuf::from(p));
    }
    if quick {
        return None;
    }
    repo_root().map(|r| r.join("BENCH_netsim.json"))
}

/// Nearest ancestor of the current directory that looks like a repository
/// root (holds `Cargo.lock` or `.git`).
fn repo_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.lock").exists() || dir.join(".git").exists() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Insert-or-replace `entry` under its name in the bench file at the
/// env-resolved path (see [`bench_json_path`]). Returns the path written,
/// or `None` when the write is disabled.
pub fn record_bench(entry: &BenchEntry) -> std::io::Result<Option<PathBuf>> {
    let Some(path) = bench_json_path(entry.quick) else {
        return Ok(None);
    };
    // A `-dirty` stamp caused only by regenerated artifacts (`results/`,
    // `BENCH_*.json`) would mark every benchmark refresh as untrustworthy;
    // drop the suffix when the dirt is exclusively such files.
    let cleaned = entry
        .git
        .strip_suffix("-dirty")
        .filter(|_| fp_telemetry::dirt_is_artifacts_only());
    let entry = match cleaned {
        Some(clean) => {
            let mut e = entry.clone();
            e.git = clean.to_string();
            std::borrow::Cow::Owned(e)
        }
        None => std::borrow::Cow::Borrowed(entry),
    };
    record_bench_at(&path, &entry)?;
    Ok(Some(path))
}

/// [`record_bench`] against an explicit path: preserves every other
/// campaign's entry and keeps keys sorted for stable diffs.
pub fn record_bench_at(path: &std::path::Path, entry: &BenchEntry) -> std::io::Result<()> {
    let mut entries: Vec<(String, Value)> = match std::fs::read_to_string(path) {
        Ok(text) => match serde_json::from_str::<Value>(&text) {
            Ok(v) => v
                .as_map()
                .map(<[(String, Value)]>::to_vec)
                .unwrap_or_default(),
            // A corrupt file is rebuilt rather than wedging every campaign.
            Err(_) => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    entries.retain(|(k, _)| k != &entry.name);
    entries.push((entry.name.clone(), entry.to_value()));
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut json =
        serde_json::to_string_pretty(&Value::Map(entries)).map_err(std::io::Error::other)?;
    json.push('\n');
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, eps: f64) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            git: "test".into(),
            scheduler: "wheel".into(),
            threads: 2,
            host_parallelism: 4,
            shards: 1,
            shard_epoch: 0,
            shard_windows: 0,
            shard_syncs: 0,
            shard_events: Vec::new(),
            quick: false,
            trials: 3,
            wall_us: 1_000_000,
            events: 5_000_000,
            events_per_sec: eps,
            sched_pushes: 2_500_000,
            memo_hits: 0,
            memo_replayed_events: 0,
            tt_detect_ns: Some(1_000),
            tt_mitigate_ns: Some(51_000),
            false_mitigations: Some(0),
        }
    }

    #[test]
    fn record_bench_merges_and_sorts_entries() {
        let dir = std::env::temp_dir().join(format!("fp-bench-json-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_netsim.json");
        // Env-var races with other tests are avoided by not touching the
        // process environment: exercise the explicit-path variant.
        record_bench_at(&path, &entry("headline", 1e6)).unwrap();
        record_bench_at(&path, &entry("fig5a", 2e6)).unwrap();
        record_bench_at(&path, &entry("headline", 3e6)).unwrap(); // replaces, not duplicates
        let v: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let map = v.as_map().unwrap();
        let keys: Vec<&str> = map.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["fig5a", "headline"]); // sorted, deduped
        let headline = map.iter().find(|(k, _)| k == "headline").unwrap();
        let eps = headline
            .1
            .as_map()
            .unwrap()
            .iter()
            .find(|(k, _)| k == "events_per_sec")
            .and_then(|(_, v)| v.as_f64())
            .unwrap();
        assert!((eps - 3e6).abs() < 1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_serializes_all_fields() {
        let v = entry("x", 1.5).to_value();
        let map = v.as_map().unwrap();
        for key in [
            "name",
            "git",
            "scheduler",
            "threads",
            "host_parallelism",
            "shards",
            "quick",
            "trials",
            "wall_us",
            "events",
            "events_per_sec",
            "sched_pushes",
            "memo_hits",
            "memo_replayed_events",
            "tt_detect_ns",
            "tt_mitigate_ns",
            "false_mitigations",
        ] {
            assert!(map.iter().any(|(k, _)| k == key), "missing {key}");
        }
    }

    #[test]
    fn unsharded_entry_omits_shard_keys() {
        let v = entry("x", 1.5).to_value();
        let map = v.as_map().unwrap();
        for key in [
            "shard_events",
            "shard_epoch",
            "shard_windows",
            "shard_syncs",
        ] {
            assert!(map.iter().all(|(k, _)| k != key), "unexpected {key}");
        }
    }

    #[test]
    fn sharded_entry_carries_shard_keys() {
        let mut e = entry("x", 1.5);
        e.shards = 2;
        e.shard_epoch = 32;
        e.shard_windows = 400;
        e.shard_syncs = 25;
        e.shard_events = vec![100, 120];
        let v = e.to_value();
        let map = v.as_map().unwrap();
        let get = |key: &str| map.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone());
        assert!(matches!(get("shard_epoch"), Some(Value::U64(32))));
        assert!(matches!(get("shard_windows"), Some(Value::U64(400))));
        assert!(matches!(get("shard_syncs"), Some(Value::U64(25))));
        match get("shard_events") {
            Some(Value::Seq(s)) => assert_eq!(s.len(), 2),
            other => panic!("shard_events missing or wrong shape: {other:?}"),
        }
    }
}
