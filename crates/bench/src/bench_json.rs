//! `BENCH_netsim.json` — the machine-readable perf trajectory.
//!
//! Every logged campaign updates one entry, keyed by campaign name, in a
//! single JSON map at the repository root. Committing the file makes the
//! headline events/sec visible (and diffable) across PRs without parsing
//! `results/campaign_log.txt`.
//!
//! Placement rules:
//! * `FP_BENCH_JSON=<path>` writes there instead (set it to a scratch path
//!   in smoke scripts so CI runs don't clobber the committed numbers;
//!   setting it to the empty string disables the write entirely);
//! * otherwise the file goes to the enclosing repository root (the nearest
//!   ancestor directory containing `Cargo.lock` or `.git`) — but only for
//!   *full* runs: `FP_QUICK` numbers are meaningless as a trajectory and
//!   are dropped unless `FP_BENCH_JSON` asks for them explicitly.

use serde::{Serialize, Value};
use std::path::PathBuf;

/// One campaign's headline numbers.
#[derive(Clone, Serialize, Debug)]
pub struct BenchEntry {
    /// Campaign name (`"headline"`, `"fig5a"`, …) — also the map key.
    pub name: String,
    /// `git describe --always --dirty` of the producing tree.
    pub git: String,
    /// Event-scheduler backend (`"heap"` / `"wheel"`).
    pub scheduler: String,
    /// Worker threads the campaign ran with.
    pub threads: u64,
    /// Intra-trial shard count the fabric ran with (1 = unsharded).
    pub shards: u64,
    /// Engine events dispatched per shard, summed across trials (empty
    /// when unsharded). Sums to more than `events` because boundary
    /// packets are counted once per side.
    pub shard_events: Vec<u64>,
    /// Whether `FP_QUICK` reduced the sweep.
    pub quick: bool,
    /// Trial count.
    pub trials: u64,
    /// Campaign wall-clock, microseconds.
    pub wall_us: u64,
    /// Total engine events across trials.
    pub events: u64,
    /// Aggregate engine events per wall-clock second.
    pub events_per_sec: f64,
    /// Total scheduler pushes across trials. Pipeline deliveries bypass the
    /// scheduler, so this tracks how much traffic the wheel/heap actually
    /// absorbs — the number the link-pipeline work drives down.
    pub sched_pushes: u64,
    /// Iteration spans fast-forwarded by temporal-symmetry memoization
    /// (`FP_MEMO`), summed across trials. 0 when memoization was off or
    /// never converged.
    pub memo_hits: u64,
    /// Engine events accounted for by replayed spans (already included in
    /// `events`), summed across trials.
    pub memo_replayed_events: u64,
    /// Mean time-to-detect across controller-enabled faulty trials,
    /// nanoseconds of simulated time. `None` for controller-less campaigns.
    pub tt_detect_ns: Option<u64>,
    /// Mean time-to-mitigate across controller-enabled faulty trials,
    /// nanoseconds of simulated time. `None` for controller-less campaigns.
    pub tt_mitigate_ns: Option<u64>,
    /// Healthy cables wrongly admin-downed across the campaign. `None` for
    /// controller-less campaigns.
    pub false_mitigations: Option<u64>,
}

/// Where this process should write the bench file, honouring the rules in
/// the module docs. `None` means "don't write".
pub fn bench_json_path(quick: bool) -> Option<PathBuf> {
    if let Ok(p) = std::env::var("FP_BENCH_JSON") {
        if p.is_empty() {
            return None;
        }
        return Some(PathBuf::from(p));
    }
    if quick {
        return None;
    }
    repo_root().map(|r| r.join("BENCH_netsim.json"))
}

/// Nearest ancestor of the current directory that looks like a repository
/// root (holds `Cargo.lock` or `.git`).
fn repo_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.lock").exists() || dir.join(".git").exists() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Insert-or-replace `entry` under its name in the bench file at the
/// env-resolved path (see [`bench_json_path`]). Returns the path written,
/// or `None` when the write is disabled.
pub fn record_bench(entry: &BenchEntry) -> std::io::Result<Option<PathBuf>> {
    let Some(path) = bench_json_path(entry.quick) else {
        return Ok(None);
    };
    // A `-dirty` stamp caused only by regenerated artifacts (`results/`,
    // `BENCH_*.json`) would mark every benchmark refresh as untrustworthy;
    // drop the suffix when the dirt is exclusively such files.
    let cleaned = entry
        .git
        .strip_suffix("-dirty")
        .filter(|_| fp_telemetry::dirt_is_artifacts_only());
    let entry = match cleaned {
        Some(clean) => {
            let mut e = entry.clone();
            e.git = clean.to_string();
            std::borrow::Cow::Owned(e)
        }
        None => std::borrow::Cow::Borrowed(entry),
    };
    record_bench_at(&path, &entry)?;
    Ok(Some(path))
}

/// [`record_bench`] against an explicit path: preserves every other
/// campaign's entry and keeps keys sorted for stable diffs.
pub fn record_bench_at(path: &std::path::Path, entry: &BenchEntry) -> std::io::Result<()> {
    let mut entries: Vec<(String, Value)> = match std::fs::read_to_string(path) {
        Ok(text) => match serde_json::from_str::<Value>(&text) {
            Ok(v) => v
                .as_map()
                .map(<[(String, Value)]>::to_vec)
                .unwrap_or_default(),
            // A corrupt file is rebuilt rather than wedging every campaign.
            Err(_) => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    entries.retain(|(k, _)| k != &entry.name);
    entries.push((entry.name.clone(), entry.to_value()));
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut json =
        serde_json::to_string_pretty(&Value::Map(entries)).map_err(std::io::Error::other)?;
    json.push('\n');
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, eps: f64) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            git: "test".into(),
            scheduler: "wheel".into(),
            threads: 2,
            shards: 1,
            shard_events: Vec::new(),
            quick: false,
            trials: 3,
            wall_us: 1_000_000,
            events: 5_000_000,
            events_per_sec: eps,
            sched_pushes: 2_500_000,
            memo_hits: 0,
            memo_replayed_events: 0,
            tt_detect_ns: Some(1_000),
            tt_mitigate_ns: Some(51_000),
            false_mitigations: Some(0),
        }
    }

    #[test]
    fn record_bench_merges_and_sorts_entries() {
        let dir = std::env::temp_dir().join(format!("fp-bench-json-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_netsim.json");
        // Env-var races with other tests are avoided by not touching the
        // process environment: exercise the explicit-path variant.
        record_bench_at(&path, &entry("headline", 1e6)).unwrap();
        record_bench_at(&path, &entry("fig5a", 2e6)).unwrap();
        record_bench_at(&path, &entry("headline", 3e6)).unwrap(); // replaces, not duplicates
        let v: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let map = v.as_map().unwrap();
        let keys: Vec<&str> = map.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["fig5a", "headline"]); // sorted, deduped
        let headline = map.iter().find(|(k, _)| k == "headline").unwrap();
        let eps = headline
            .1
            .as_map()
            .unwrap()
            .iter()
            .find(|(k, _)| k == "events_per_sec")
            .and_then(|(_, v)| v.as_f64())
            .unwrap();
        assert!((eps - 3e6).abs() < 1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_serializes_all_fields() {
        let v = entry("x", 1.5).to_value();
        let map = v.as_map().unwrap();
        for key in [
            "name",
            "git",
            "scheduler",
            "threads",
            "shards",
            "shard_events",
            "quick",
            "trials",
            "wall_us",
            "events",
            "events_per_sec",
            "sched_pushes",
            "memo_hits",
            "memo_replayed_events",
            "tt_detect_ns",
            "tt_mitigate_ns",
            "false_mitigations",
        ] {
            assert!(map.iter().any(|(k, _)| k == key), "missing {key}");
        }
    }
}
