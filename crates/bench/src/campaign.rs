//! Parallel, deterministic trial campaigns.
//!
//! Every fp-bench binary is a sweep over independent [`TrialSpec`]s: tens of
//! self-contained simulations, each seeded from its spec. A [`Campaign`]
//! fans those trials out over a worker pool while keeping the output
//! *byte-identical* to a serial run:
//!
//! * each trial's randomness derives entirely from the spec it was built
//!   from (`TrialSpec::seed`), never from execution order, thread identity
//!   or wall-clock time;
//! * results come back in input order no matter which worker finished first.
//!
//! The pool size comes from `FP_THREADS` (falling back to the machine's
//! available parallelism), so `FP_THREADS=1` reproduces the serial harness
//! exactly and any other value produces the same bytes, faster. Binaries
//! build their full spec list up front in the order the serial code ran
//! trials, call [`Campaign::run`] once, then aggregate the results walking
//! that same order.

use flowpulse::prelude::{run_trial, TrialResult, TrialSpec};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-size worker pool for trial sweeps.
pub struct Campaign {
    threads: usize,
}

impl Campaign {
    /// Pool sized from `FP_THREADS`, or the machine's available parallelism
    /// when the variable is unset or unparsable.
    pub fn from_env() -> Campaign {
        let threads = std::env::var("FP_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Campaign::with_threads(threads)
    }

    /// Pool of exactly `threads` workers (0 is clamped to 1).
    pub fn with_threads(threads: usize) -> Campaign {
        Campaign {
            threads: threads.max(1),
        }
    }

    /// Worker count this campaign will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every spec, returning results in input order.
    pub fn run(&self, specs: &[TrialSpec]) -> Vec<TrialResult> {
        self.map(specs, run_trial)
    }

    /// Apply `f` to every item on the pool, returning outputs in input
    /// order. Items are claimed through a shared atomic cursor, so workers
    /// self-balance across uneven trial costs; a panicking worker is
    /// propagated after the scope joins.
    pub fn map<I, O, F>(&self, items: &[I], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(&I) -> O + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, O)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            done.push((i, f(&items[i])));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        let mut slots: Vec<Option<O>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for part in parts {
            for (i, v) in part {
                debug_assert!(slots[i].is_none(), "index {i} produced twice");
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            .map(|o| o.expect("work cursor covers every index"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = Campaign::with_threads(4).map(&items, |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn map_handles_fewer_items_than_workers() {
        let out = Campaign::with_threads(8).map(&[5u32], |&x| x + 1);
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn map_on_empty_input() {
        let out = Campaign::with_threads(4).map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Campaign::with_threads(0).threads(), 1);
    }

    #[test]
    #[should_panic(expected = "trial 3 exploded")]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..8).collect();
        Campaign::with_threads(4).map(&items, |&i| {
            if i == 3 {
                panic!("trial {i} exploded");
            }
            i
        });
    }
}
