//! Parallel, deterministic trial campaigns.
//!
//! Every fp-bench binary is a sweep over independent [`TrialSpec`]s: tens of
//! self-contained simulations, each seeded from its spec. A [`Campaign`]
//! fans those trials out over a worker pool while keeping the output
//! *byte-identical* to a serial run:
//!
//! * each trial's randomness derives entirely from the spec it was built
//!   from (`TrialSpec::seed`), never from execution order, thread identity
//!   or wall-clock time;
//! * results come back in input order no matter which worker finished first.
//!
//! The pool size comes from `FP_THREADS` (falling back to the machine's
//! available parallelism), so `FP_THREADS=1` reproduces the serial harness
//! exactly and any other value produces the same bytes, faster. Binaries
//! build their full spec list up front in the order the serial code ran
//! trials, call [`Campaign::run`] once, then aggregate the results walking
//! that same order.

use flowpulse::prelude::{run_trial, TrialResult, TrialSpec};
use fp_netsim::engine::{SchedKind, SchedStats};
use serde::Serialize;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Per-trial accounting captured by [`Campaign::run_logged`].
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct TrialTiming {
    /// Index within the sweep's spec list.
    pub idx: usize,
    /// The spec's master seed.
    pub seed: u64,
    /// Wall-clock the trial took, microseconds.
    pub wall_us: u64,
    /// Engine events the trial processed.
    pub events: u64,
}

impl TrialTiming {
    /// Engine events per wall-clock second (0 when the clock read 0 µs).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_us == 0 {
            0.0
        } else {
            self.events as f64 * 1e6 / self.wall_us as f64
        }
    }
}

/// A fixed-size worker pool for trial sweeps.
pub struct Campaign {
    threads: usize,
}

impl Campaign {
    /// Pool sized from `FP_THREADS`, or the machine's available parallelism
    /// when the variable is unset or unparsable.
    pub fn from_env() -> Campaign {
        let threads = std::env::var("FP_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Campaign::with_threads(threads)
    }

    /// Pool of exactly `threads` workers (0 is clamped to 1).
    pub fn with_threads(threads: usize) -> Campaign {
        Campaign {
            threads: threads.max(1),
        }
    }

    /// Worker count this campaign will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every spec, returning results in input order.
    pub fn run(&self, specs: &[TrialSpec]) -> Vec<TrialResult> {
        self.map(specs, run_trial)
    }

    /// [`run`](Campaign::run) with per-trial accounting: each trial's
    /// wall-clock and engine events/second are appended to
    /// `results/campaign_log.txt` in the stable format of
    /// [`log_trials_to`], and — when `FP_TELEMETRY` is set — a
    /// `manifest.json` describing the whole run (specs, seeds, revision,
    /// totals) is written to `$FP_TELEMETRY/<name>/`. The trial results
    /// themselves are byte-identical to [`run`](Campaign::run): timing
    /// never feeds back into simulation.
    pub fn run_logged(&self, name: &str, specs: &[TrialSpec]) -> Vec<TrialResult> {
        let t0 = Instant::now();
        let timed = self.map(specs, |s| {
            let t = Instant::now();
            let r = run_trial(s);
            (r, t.elapsed().as_micros() as u64)
        });
        let wall_us_total = (t0.elapsed().as_micros() as u64).max(1);
        let mut results = Vec::with_capacity(timed.len());
        let mut timings = Vec::with_capacity(timed.len());
        for (idx, (r, wall_us)) in timed.into_iter().enumerate() {
            timings.push(TrialTiming {
                idx,
                seed: specs[idx].seed,
                wall_us,
                events: r.stats.events,
            });
            results.push(r);
        }
        let log_path = crate::out_dir().join("campaign_log.txt");
        if let Err(e) = log_trials_to(&log_path, name, self.threads, &timings, wall_us_total) {
            eprintln!(
                "warning: cannot append campaign log {}: {e}",
                log_path.display()
            );
        }
        let (sched_kind, sched) = aggregate_sched(&results);
        let shard_agg = aggregate_shards(&results);
        let (memo_hits, memo_replayed_events) = aggregate_memo(&results);
        let events_total: u64 = timings.iter().map(|t| t.events).sum();
        match crate::record_bench(&crate::BenchEntry {
            name: name.to_string(),
            git: fp_telemetry::git_describe(),
            scheduler: sched_kind.name().to_string(),
            threads: self.threads as u64,
            host_parallelism: crate::host_parallelism(),
            shards: shard_agg.shards,
            shard_epoch: shard_agg.epoch,
            shard_windows: shard_agg.windows,
            shard_syncs: shard_agg.syncs,
            shard_events: shard_agg.events.clone(),
            quick: crate::quick(),
            trials: specs.len() as u64,
            wall_us: wall_us_total,
            events: events_total,
            events_per_sec: events_total as f64 * 1e6 / wall_us_total as f64,
            sched_pushes: sched.pushes,
            memo_hits,
            memo_replayed_events,
            tt_detect_ns: None,
            tt_mitigate_ns: None,
            false_mitigations: None,
        }) {
            Ok(Some(p)) => println!("[bench {}]", p.display()),
            Ok(None) => {}
            Err(e) => eprintln!("warning: cannot update bench json: {e}"),
        }
        if let Some(dir) = fp_telemetry::dir_from_env() {
            let m = campaign_manifest(
                name,
                self.threads,
                specs,
                &timings,
                wall_us_total,
                sched_kind,
                &sched,
                &shard_agg,
                (memo_hits, memo_replayed_events),
            );
            let mdir = dir.join(name);
            match m.write(&mdir) {
                Ok(()) => println!("[manifest {}]", mdir.join("manifest.json").display()),
                Err(e) => eprintln!("warning: cannot write manifest in {}: {e}", mdir.display()),
            }
        }
        results
    }
}

/// Aggregate scheduler identity and occupancy counters over a campaign's
/// results (max of high-water marks, sums of traffic counters). The kind is
/// taken from the first trial; campaigns never mix backends unless a spec
/// explicitly pins one, in which case the first trial's still describes the
/// headline run.
pub fn aggregate_sched(results: &[TrialResult]) -> (SchedKind, SchedStats) {
    let kind = results.first().map(|r| r.sched_kind).unwrap_or_default();
    let mut agg = SchedStats::default();
    for r in results {
        agg.merge(&r.sched);
    }
    (kind, agg)
}

/// Aggregated intra-trial shard accounting for one campaign.
#[derive(Clone, Debug, Default)]
pub struct ShardAgg {
    /// Shard count from the first trial (campaigns don't mix shard counts
    /// within a sweep; 1 = unsharded).
    pub shards: u64,
    /// Epoch cap from the first trial (0 when unsharded).
    pub epoch: u64,
    /// Conservative-lookahead windows executed, summed across trials.
    pub windows: u64,
    /// Coordinator synchronization rounds, summed across trials.
    pub syncs: u64,
    /// Element-wise sum of per-shard event counts across trials (empty
    /// when the campaign ran unsharded).
    pub events: Vec<u64>,
}

/// Aggregate intra-trial shard accounting over a campaign's results.
pub fn aggregate_shards(results: &[TrialResult]) -> ShardAgg {
    let mut agg = ShardAgg {
        shards: results.first().map(|r| u64::from(r.shards)).unwrap_or(1),
        epoch: results
            .first()
            .map(|r| u64::from(r.shard_epoch))
            .unwrap_or(0),
        ..ShardAgg::default()
    };
    for r in results {
        agg.windows += r.shard_windows;
        agg.syncs += r.shard_syncs;
        if agg.events.len() < r.shard_events.len() {
            agg.events.resize(r.shard_events.len(), 0);
        }
        for (slot, &e) in agg.events.iter_mut().zip(r.shard_events.iter()) {
            *slot += e;
        }
    }
    agg
}

/// Aggregate temporal-symmetry memoization accounting over a campaign's
/// results: total fast-forwarded spans and the engine events those spans
/// account for (both 0 when memoization was off or never converged).
pub fn aggregate_memo(results: &[TrialResult]) -> (u64, u64) {
    results.iter().fold((0, 0), |(h, e), r| {
        (h + r.memo_hits, e + r.memo_replayed_events)
    })
}

/// Build the self-describing [`fp_telemetry::Manifest`] for one campaign.
#[allow(clippy::too_many_arguments)]
pub fn campaign_manifest(
    name: &str,
    threads: usize,
    specs: &[TrialSpec],
    timings: &[TrialTiming],
    wall_us_total: u64,
    sched_kind: SchedKind,
    sched: &SchedStats,
    shard_agg: &ShardAgg,
    memo: (u64, u64),
) -> fp_telemetry::Manifest {
    let events_total: u64 = timings.iter().map(|t| t.events).sum();
    fp_telemetry::Manifest {
        name: name.to_string(),
        git: fp_telemetry::git_describe(),
        threads: threads as u64,
        host_parallelism: crate::host_parallelism(),
        quick: crate::quick(),
        trials: specs.len() as u64,
        seeds: specs.iter().map(|s| s.seed).collect(),
        wall_us_total,
        events_total,
        events_per_sec: if wall_us_total == 0 {
            0.0
        } else {
            events_total as f64 * 1e6 / wall_us_total as f64
        },
        scheduler: sched_kind.name().to_string(),
        shards: shard_agg.shards,
        shard_epoch: shard_agg.epoch,
        memo_hits: memo.0,
        memo_replayed_events: memo.1,
        sched: sched.to_value(),
        specs: specs.to_value(),
        ctrl: serde::Value::Null,
    }
}

/// Append one campaign's per-trial accounting to `path` in a stable,
/// line-oriented format (one `trial` line per spec, then one `total` line):
///
/// ```text
/// # campaign <name> git=<describe> threads=<n> trials=<n>
/// trial <name>[<idx>] seed=<seed> wall_us=<µs> events=<n> ev_per_sec=<n>
/// total <name> wall_us=<µs> events=<n> ev_per_sec=<n>
/// ```
///
/// `ev_per_sec` on the `total` line is aggregate throughput — summed
/// events over the campaign's wall-clock, which exceeds any single trial's
/// rate when the pool runs trials in parallel.
pub fn log_trials_to(
    path: &Path,
    name: &str,
    threads: usize,
    timings: &[TrialTiming],
    wall_us_total: u64,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(
        f,
        "# campaign {name} git={} threads={threads} trials={}",
        fp_telemetry::git_describe(),
        timings.len()
    )?;
    let mut events_total = 0u64;
    for t in timings {
        events_total += t.events;
        writeln!(
            f,
            "trial {name}[{:03}] seed={} wall_us={} events={} ev_per_sec={:.0}",
            t.idx,
            t.seed,
            t.wall_us,
            t.events,
            t.events_per_sec()
        )?;
    }
    let agg = if wall_us_total == 0 {
        0.0
    } else {
        events_total as f64 * 1e6 / wall_us_total as f64
    };
    writeln!(
        f,
        "total {name} wall_us={wall_us_total} events={events_total} ev_per_sec={agg:.0}"
    )
}

impl Campaign {
    /// Apply `f` to every item on the pool, returning outputs in input
    /// order. Items are claimed through a shared atomic cursor, so workers
    /// self-balance across uneven trial costs; a panicking worker is
    /// propagated after the scope joins.
    pub fn map<I, O, F>(&self, items: &[I], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(&I) -> O + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, O)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            done.push((i, f(&items[i])));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        let mut slots: Vec<Option<O>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for part in parts {
            for (i, v) in part {
                debug_assert!(slots[i].is_none(), "index {i} produced twice");
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            .map(|o| o.expect("work cursor covers every index"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = Campaign::with_threads(4).map(&items, |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn map_handles_fewer_items_than_workers() {
        let out = Campaign::with_threads(8).map(&[5u32], |&x| x + 1);
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn map_on_empty_input() {
        let out = Campaign::with_threads(4).map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Campaign::with_threads(0).threads(), 1);
    }

    #[test]
    fn log_trials_format_is_stable() {
        let dir = std::env::temp_dir().join(format!("fp-bench-log-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("campaign_log.txt");
        let timings = [
            TrialTiming {
                idx: 0,
                seed: 1000,
                wall_us: 2_000_000,
                events: 4_000_000,
            },
            TrialTiming {
                idx: 1,
                seed: 1001,
                wall_us: 1_000_000,
                events: 1_000_000,
            },
        ];
        log_trials_to(&path, "figX", 2, &timings, 2_000_000).unwrap();
        // Appending a second campaign must not clobber the first.
        log_trials_to(&path, "figY", 1, &timings[..1], 2_000_000).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("# campaign figX git="));
        assert!(lines[0].ends_with("threads=2 trials=2"));
        assert_eq!(
            lines[1],
            "trial figX[000] seed=1000 wall_us=2000000 events=4000000 ev_per_sec=2000000"
        );
        assert_eq!(
            lines[2],
            "trial figX[001] seed=1001 wall_us=1000000 events=1000000 ev_per_sec=1000000"
        );
        // Aggregate: 5M events over 2s of campaign wall — 2.5M ev/s, more
        // than either trial alone (parallelism shows up here).
        assert_eq!(
            lines[3],
            "total figX wall_us=2000000 events=5000000 ev_per_sec=2500000"
        );
        assert!(lines[4].starts_with("# campaign figY"));
        assert_eq!(lines.len(), 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_manifest_totals() {
        let specs = vec![
            TrialSpec {
                seed: 7,
                ..TrialSpec::default()
            },
            TrialSpec {
                seed: 8,
                ..TrialSpec::default()
            },
        ];
        let timings = [
            TrialTiming {
                idx: 0,
                seed: 7,
                wall_us: 500_000,
                events: 3_000_000,
            },
            TrialTiming {
                idx: 1,
                seed: 8,
                wall_us: 500_000,
                events: 1_000_000,
            },
        ];
        let stats = SchedStats {
            max_pending: 42,
            ..SchedStats::default()
        };
        let m = campaign_manifest(
            "demo",
            4,
            &specs,
            &timings,
            1_000_000,
            SchedKind::Wheel,
            &stats,
            &ShardAgg {
                shards: 1,
                ..ShardAgg::default()
            },
            (5, 2_000),
        );
        assert_eq!(m.trials, 2);
        assert_eq!(m.shards, 1);
        assert_eq!(m.shard_epoch, 0);
        assert!(m.host_parallelism >= 1);
        assert_eq!(m.memo_hits, 5);
        assert_eq!(m.memo_replayed_events, 2_000);
        assert_eq!(m.seeds, vec![7, 8]);
        assert_eq!(m.events_total, 4_000_000);
        assert!((m.events_per_sec - 4_000_000.0).abs() < 1e-6);
        assert_eq!(m.scheduler, "wheel");
        // Slot-occupancy stats are embedded as a map.
        let sched = m.sched.as_map().expect("sched is a map");
        assert!(sched
            .iter()
            .any(|(k, v)| k == "max_pending" && v.as_u64() == Some(42)));
        // The spec list is embedded verbatim.
        assert_eq!(m.specs.as_seq().map(<[serde::Value]>::len), Some(2));
    }

    #[test]
    fn aggregate_sched_merges_counters() {
        use flowpulse::prelude::run_trial;
        let spec = TrialSpec {
            leaves: 4,
            spines: 2,
            bytes_per_node: 64 * 1024,
            iterations: 1,
            ..TrialSpec::default()
        };
        let mut wheel_spec = spec.clone();
        wheel_spec.sim.sched = Some(SchedKind::Wheel);
        let results = vec![run_trial(&wheel_spec), run_trial(&wheel_spec)];
        let (kind, agg) = aggregate_sched(&results);
        assert_eq!(kind, SchedKind::Wheel);
        let one = results[0].sched;
        assert!(agg.max_pending >= one.max_pending);
        assert_eq!(
            agg.level_pushes.iter().sum::<u64>(),
            2 * one.level_pushes.iter().sum::<u64>()
        );
    }

    #[test]
    #[should_panic(expected = "trial 3 exploded")]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..8).collect();
        Campaign::with_threads(4).map(&items, |&i| {
            if i == 3 {
                panic!("trial {i} exploded");
            }
            i
        });
    }
}
