//! E7 — the abstract's headline claim: "FlowPulse identifies a single
//! faulty link with 1.5% corruption rate by checking temporal symmetry in
//! a full two-level fat tree topology with 32 leaf switches while
//! performing Ring-AllReduce on all nodes."
//!
//! One end-to-end run at exactly that configuration, plus a probe-mesh
//! comparison showing the overhead FlowPulse avoids.

use flowpulse::baselines::{run_probe_mesh, ProbeMeshConfig};
use flowpulse::prelude::*;
use fp_bench::{header, pct, pick, save_json};
use fp_netsim::fault::FaultAction;
use fp_netsim::prelude::*;
use fp_netsim::units::fmt_bytes;
use serde::Serialize;

#[derive(Serialize)]
struct Headline {
    drop_rate: f64,
    detected: bool,
    false_alarm: bool,
    localized_correctly: bool,
    faulty_iteration_dev: f64,
    clean_iteration_dev_max: f64,
    probe_bytes_for_parity: u64,
    flowpulse_bytes_injected: u64,
}

fn main() {
    let spec = TrialSpec {
        leaves: pick(32, 8),
        spines: pick(16, 4),
        bytes_per_node: pick(64, 8) * 1024 * 1024,
        iterations: 3,
        fault: Some(FaultSpec {
            kind: InjectedFault::Drop { rate: 0.015 },
            at_iter: 1,
            heal_at_iter: None,
            bidirectional: false,
        }),
        seed: 2025,
        ..Default::default()
    };
    header("E7 — headline: 1.5% silent corruption, 32-leaf fat tree, Ring-AllReduce");
    // With FP_TELEMETRY=dir, ride a full RunRecorder along: link samples,
    // FCT/RTO/PFC histograms, structured events and a Chrome trace land in
    // $FP_TELEMETRY/headline/ next to the run's manifest.
    let telemetry = fp_telemetry::dir_from_env().map(|d| d.join("headline"));
    let recorder = telemetry.clone().map(|d| {
        Box::new(
            fp_telemetry::RunRecorder::new(d)
                .with_interval_ns(fp_telemetry::sample_interval_from_env()),
        ) as Box<dyn fp_telemetry::Recorder>
    });
    let t0 = std::time::Instant::now();
    let (r, recorder) = run_trial_with(&spec, recorder);
    let wall_us = (t0.elapsed().as_micros() as u64).max(1);
    if let Some(mut rec) = recorder {
        rec.finish().expect("write telemetry artifacts");
    }
    let timing = [fp_bench::TrialTiming {
        idx: 0,
        seed: spec.seed,
        wall_us,
        events: r.stats.events,
    }];
    let log_path = fp_bench::out_dir().join("campaign_log.txt");
    if let Err(e) = fp_bench::log_trials_to(&log_path, "headline", 1, &timing, wall_us) {
        eprintln!("warning: cannot append campaign log: {e}");
    }
    match fp_bench::record_bench(&fp_bench::BenchEntry {
        name: "headline".into(),
        git: fp_telemetry::git_describe(),
        scheduler: r.sched_kind.name().into(),
        threads: 1,
        host_parallelism: fp_bench::host_parallelism(),
        shards: u64::from(r.shards),
        shard_epoch: u64::from(r.shard_epoch),
        shard_windows: r.shard_windows,
        shard_syncs: r.shard_syncs,
        shard_events: r.shard_events.clone(),
        quick: fp_bench::quick(),
        trials: 1,
        wall_us,
        events: r.stats.events,
        events_per_sec: r.stats.events as f64 * 1e6 / wall_us as f64,
        sched_pushes: r.sched.pushes,
        memo_hits: r.memo_hits,
        memo_replayed_events: r.memo_replayed_events,
        tt_detect_ns: None,
        tt_mitigate_ns: None,
        false_mitigations: None,
    }) {
        Ok(Some(p)) => println!("[bench {}]", p.display()),
        Ok(None) => {}
        Err(e) => eprintln!("warning: cannot update bench json: {e}"),
    }
    // `baseline`: the identical trial pinned to the binary-heap scheduler,
    // recorded under its own key so the committed bench file always carries
    // a same-tree heap-vs-wheel comparison. Full runs only — quick numbers
    // are meaningless as a trajectory.
    if !fp_bench::quick() {
        let mut base_spec = spec.clone();
        base_spec.sim.sched = Some(SchedKind::Heap);
        let t0 = std::time::Instant::now();
        let base = run_trial(&base_spec);
        let base_wall = (t0.elapsed().as_micros() as u64).max(1);
        assert_eq!(
            base.stats.events, r.stats.events,
            "scheduler backends must process identical event totals"
        );
        match fp_bench::record_bench(&fp_bench::BenchEntry {
            name: "baseline".into(),
            git: fp_telemetry::git_describe(),
            scheduler: base.sched_kind.name().into(),
            threads: 1,
            host_parallelism: fp_bench::host_parallelism(),
            shards: u64::from(base.shards),
            shard_epoch: u64::from(base.shard_epoch),
            shard_windows: base.shard_windows,
            shard_syncs: base.shard_syncs,
            shard_events: base.shard_events.clone(),
            quick: false,
            trials: 1,
            wall_us: base_wall,
            events: base.stats.events,
            events_per_sec: base.stats.events as f64 * 1e6 / base_wall as f64,
            sched_pushes: base.sched.pushes,
            memo_hits: base.memo_hits,
            memo_replayed_events: base.memo_replayed_events,
            tt_detect_ns: None,
            tt_mitigate_ns: None,
            false_mitigations: None,
        }) {
            Ok(Some(p)) => println!("[bench baseline {}]", p.display()),
            Ok(None) => {}
            Err(e) => eprintln!("warning: cannot update bench json: {e}"),
        }
    }
    // `telemetry_overhead`: the identical trial with a full RunRecorder
    // riding along, written to a scratch dir — the committed trajectory
    // behind DESIGN.md §7's "≈5% recorder-on, ~0% off" overhead claim.
    // Full runs only, like `baseline`.
    if !fp_bench::quick() {
        let scratch = std::env::temp_dir().join("fp_overhead_headline");
        let rec = Box::new(
            fp_telemetry::RunRecorder::new(scratch.clone())
                .with_interval_ns(fp_telemetry::sample_interval_from_env()),
        ) as Box<dyn fp_telemetry::Recorder>;
        let t0 = std::time::Instant::now();
        let (tel, rec) = run_trial_with(&spec, Some(rec));
        let tel_wall = (t0.elapsed().as_micros() as u64).max(1);
        rec.expect("recorder returned")
            .finish()
            .expect("write scratch telemetry");
        assert_eq!(
            tel.stats.events, r.stats.events,
            "a riding recorder must not change the run"
        );
        if telemetry.is_none() {
            println!(
                "telemetry overhead: {tel_wall} us recorder-on vs {wall_us} us off \
                 ({:+.1}%)",
                (tel_wall as f64 / wall_us as f64 - 1.0) * 100.0
            );
        }
        match fp_bench::record_bench(&fp_bench::BenchEntry {
            name: "telemetry_overhead".into(),
            git: fp_telemetry::git_describe(),
            scheduler: tel.sched_kind.name().into(),
            threads: 1,
            host_parallelism: fp_bench::host_parallelism(),
            shards: u64::from(tel.shards),
            shard_epoch: u64::from(tel.shard_epoch),
            shard_windows: tel.shard_windows,
            shard_syncs: tel.shard_syncs,
            shard_events: tel.shard_events.clone(),
            quick: false,
            trials: 1,
            wall_us: tel_wall,
            events: tel.stats.events,
            events_per_sec: tel.stats.events as f64 * 1e6 / tel_wall as f64,
            sched_pushes: tel.sched.pushes,
            memo_hits: tel.memo_hits,
            memo_replayed_events: tel.memo_replayed_events,
            tt_detect_ns: None,
            tt_mitigate_ns: None,
            false_mitigations: None,
        }) {
            Ok(Some(p)) => println!("[bench telemetry_overhead {}]", p.display()),
            Ok(None) => {}
            Err(e) => eprintln!("warning: cannot update bench json: {e}"),
        }
        let _ = std::fs::remove_dir_all(&scratch);
    }
    // `memo_headline`: the steady-state companion row — the same fabric
    // running 12 fault-free iterations with temporal-symmetry fast-forward
    // (`FP_MEMO`) on, against a live run of the identical spec for the
    // byte-identity check. Fault-free because an active fault window
    // refuses replay, and pinned to least-loaded spray: the default
    // adaptive policy's deficit decay runs on an absolute time grid that
    // never realigns with the iteration period — and without the default
    // 1 µs start jitter, whose per-node RNG draws the gate also refuses
    // (DESIGN.md §11). Full runs only, like `baseline`.
    if !fp_bench::quick() {
        let mut memo_spec = spec.clone();
        memo_spec.fault = None;
        memo_spec.iterations = 12;
        memo_spec.jitter = fp_collectives::jitter::JitterModel::None;
        memo_spec.sim.spray = SprayPolicy::LeastLoaded;
        let mut live_spec = memo_spec.clone();
        live_spec.memo = Some(false);
        memo_spec.memo = Some(true);
        let t0 = std::time::Instant::now();
        let live = run_trial(&live_spec);
        let live_wall = (t0.elapsed().as_micros() as u64).max(1);
        let t0 = std::time::Instant::now();
        let memo = run_trial(&memo_spec);
        let memo_wall = (t0.elapsed().as_micros() as u64).max(1);
        assert_eq!(memo.memo_fallback, None, "memo must stay eligible");
        assert!(memo.memo_hits > 0, "steady state never fast-forwarded");
        assert_eq!(
            format!("{:?}", live.stats),
            format!("{:?}", memo.stats),
            "fast-forward must be byte-identical to the live engine"
        );
        assert_eq!(live.iter_max_dev, memo.iter_max_dev);
        assert_eq!(live.iter_goodput, memo.iter_goodput);
        println!(
            "memo headline: {}/{} iterations replayed ({} events), \
             {memo_wall} us memo-on vs {live_wall} us live ({:.2}x)",
            memo.memo_replayed_iters,
            memo_spec.iterations,
            memo.memo_replayed_events,
            live_wall as f64 / memo_wall as f64
        );
        match fp_bench::record_bench(&fp_bench::BenchEntry {
            name: "memo_headline".into(),
            git: fp_telemetry::git_describe(),
            scheduler: memo.sched_kind.name().into(),
            threads: 1,
            host_parallelism: fp_bench::host_parallelism(),
            shards: u64::from(memo.shards),
            shard_epoch: u64::from(memo.shard_epoch),
            shard_windows: memo.shard_windows,
            shard_syncs: memo.shard_syncs,
            shard_events: memo.shard_events.clone(),
            quick: false,
            trials: 1,
            wall_us: memo_wall,
            events: memo.stats.events,
            events_per_sec: memo.stats.events as f64 * 1e6 / memo_wall as f64,
            sched_pushes: memo.sched.pushes,
            memo_hits: memo.memo_hits,
            memo_replayed_events: memo.memo_replayed_events,
            tt_detect_ns: None,
            tt_mitigate_ns: None,
            false_mitigations: None,
        }) {
            Ok(Some(p)) => println!("[bench memo_headline {}]", p.display()),
            Ok(None) => {}
            Err(e) => eprintln!("warning: cannot update bench json: {e}"),
        }
    }
    if let Some(dir) = &telemetry {
        fp_bench::campaign_manifest(
            "headline",
            1,
            std::slice::from_ref(&spec),
            &timing,
            wall_us,
            r.sched_kind,
            &r.sched,
            &fp_bench::ShardAgg {
                shards: u64::from(r.shards),
                epoch: u64::from(r.shard_epoch),
                windows: r.shard_windows,
                syncs: r.shard_syncs,
                events: r.shard_events.clone(),
            },
            (r.memo_hits, r.memo_replayed_events),
        )
        .write(dir)
        .expect("write manifest");
        println!("[telemetry {}]", dir.display());
    }
    let (clean, faulty) = flowpulse::eval::split_devs(&r);
    let clean_max = clean.iter().cloned().fold(0.0, f64::max);
    let faulty_max = faulty.iter().cloned().fold(0.0, f64::max);
    let (fleaf, fv) = r.fault_port.unwrap();

    println!("fault:      spine{fv} → leaf{fleaf}, 1.5% silent drop from iteration 1");
    println!("detected:   {}", r.detected);
    println!("false alarm:{}", r.false_alarm);
    println!(
        "localized:  {:?} (expected unpaired port ({fleaf}, {fv}))",
        r.localization.as_ref().unwrap()
    );
    println!("clean-iteration max deviation:  {}", pct(clean_max));
    println!("faulty-iteration max deviation: {}", pct(faulty_max));
    println!(
        "drops: {} silent, retransmits: {}",
        r.stats.silent_drops(),
        r.stats.retransmits
    );

    // Probe-mesh comparison: how many probe bytes does an active prober
    // inject to catch the same fault with ~99% confidence? Each probe
    // crosses the faulty link with probability 1/spines and is then dropped
    // with probability 1.5%.
    let mut sim = Simulator::new(
        Topology::fat_tree(FatTreeSpec {
            leaves: spec.leaves,
            spines: spec.spines,
            ..Default::default()
        }),
        SimConfig::default(),
        1,
    );
    let bad = sim.topo.downlink(fv, fleaf);
    sim.apply_fault_now(
        bad,
        FaultAction::Set(FaultKind::SilentDrop { rate: 0.015 }),
        false,
    );
    // p(hit) per probe to the faulty leaf ≈ 0.015/spines; probes to other
    // leaves never help. Run rounds until detected.
    let mut probe_bytes = 0u64;
    let mut detected_by_probe = false;
    for _ in 0..pick(40, 10) {
        let rep = run_probe_mesh(&mut sim, &ProbeMeshConfig::default());
        probe_bytes += rep.bytes_injected;
        if rep.detected {
            detected_by_probe = true;
            break;
        }
    }
    println!(
        "\nprobe-mesh baseline: {} injected before {} — FlowPulse injects 0 \
         (passive).",
        fmt_bytes(probe_bytes),
        if detected_by_probe {
            "first detection"
        } else {
            "giving up (undetected!)"
        }
    );

    save_json(
        "headline",
        &Headline {
            drop_rate: 0.015,
            detected: r.detected,
            false_alarm: r.false_alarm,
            localized_correctly: r.localized_correctly.unwrap_or(false),
            faulty_iteration_dev: faulty_max,
            clean_iteration_dev_max: clean_max,
            probe_bytes_for_parity: probe_bytes,
            flowpulse_bytes_injected: 0,
        },
    );

    if fp_bench::quick() {
        // Quick mode shrinks the fabric below the regime the headline
        // claim is about (1.5% signal vs 4-spine retransmit inflation);
        // report without asserting.
        println!(
            "\nE7 (quick mode): detected={} localized={:?}",
            r.detected, r.localized_correctly
        );
        return;
    }
    assert!(r.detected && !r.false_alarm, "headline claim regressed");
    assert_eq!(r.localized_correctly, Some(true));
    println!("\nE7 verdict: headline claim reproduced.");
}
