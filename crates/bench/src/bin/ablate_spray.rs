//! A1 — spray-policy ablation.
//!
//! Temporal symmetry quality depends on how smooth the APS policy is. The
//! utilization-aware `Adaptive` policy self-corrects byte imbalance and
//! yields a near-zero noise floor; pure `Random` spraying leaves binomial
//! noise that only very large collectives average out. This quantifies the
//! noise floor (fault-free max deviation) and detection quality at a 1.5%
//! drop for each policy.

use flowpulse::prelude::*;
use fp_bench::{header, pct, pick, save_json, seeds};
use fp_netsim::spray::SprayPolicy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    bytes_per_node: u64,
    noise_floor: f64,
    fpr: f64,
    fnr: f64,
}

fn main() {
    let policies = [
        SprayPolicy::Adaptive,
        SprayPolicy::LeastLoaded,
        SprayPolicy::RoundRobin,
        SprayPolicy::Random,
    ];
    let sizes_mib: Vec<u64> = pick(vec![8, 32], vec![8]);
    let fault_seeds = seeds(pick(3, 2));
    let clean_seeds = seeds(pick(3, 1));

    header("A1 — spray policy vs symmetry noise and detection (1.5% drop)");
    println!(
        "{:>22} {:>10} {:>12} {:>8} {:>8}",
        "policy", "size/node", "noise-floor", "FPR", "FNR"
    );

    let mut rows = Vec::new();
    for policy in policies {
        for &mib in &sizes_mib {
            let mut sim_cfg = fp_netsim::config::SimConfig::default();
            sim_cfg.spray = policy;
            let base = TrialSpec {
                leaves: pick(16, 8),
                spines: pick(8, 4),
                bytes_per_node: mib * 1024 * 1024,
                iterations: 3,
                sim: sim_cfg,
                ..Default::default()
            };
            let mut trials = Vec::new();
            let mut noise: f64 = 0.0;
            for &s in &clean_seeds {
                let t = run_trial(&TrialSpec {
                    seed: s,
                    ..base.clone()
                });
                let (c, _) = flowpulse::eval::split_devs(&t);
                noise = noise.max(c.iter().cloned().fold(0.0, f64::max));
                trials.push(t);
            }
            for &s in &fault_seeds {
                trials.push(run_trial(&TrialSpec {
                    seed: s,
                    fault: Some(FaultSpec {
                        kind: InjectedFault::Drop { rate: 0.015 },
                        at_iter: 1,
                        heal_at_iter: None,
                        bidirectional: false,
                    }),
                    ..base.clone()
                }));
            }
            let r = Rates::from_trials(&trials);
            println!(
                "{:>22} {:>8}Mi {:>12} {:>8} {:>8}",
                format!("{policy:?}"),
                mib,
                pct(noise),
                pct(r.fpr()),
                pct(r.fnr())
            );
            rows.push(Row {
                policy: format!("{policy:?}"),
                bytes_per_node: mib * 1024 * 1024,
                noise_floor: noise,
                fpr: r.fpr(),
                fnr: r.fnr(),
            });
        }
    }
    save_json("ablate_spray", &rows);
    println!(
        "\nA1 verdict: adaptive (utilization-aware) spraying gives the lowest \
         noise floor; random spraying needs far larger collectives for the \
         same accuracy."
    );
}
