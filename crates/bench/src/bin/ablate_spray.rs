//! A1 — spray-backend ablation.
//!
//! Temporal symmetry quality depends on how smooth the APS policy is. The
//! utilization-aware `Adaptive` policy self-corrects byte imbalance and
//! yields a near-zero noise floor; pure `Random` spraying leaves binomial
//! noise that only very large collectives average out. This quantifies the
//! noise floor (fault-free max deviation) and detection quality at a 1.5%
//! drop for each backend of the spray engine.
//!
//! The classic policies are scored against the closed-form uniform-spray
//! model, which is what they approximate. The pluggable backends (ECMP,
//! PRIME, REPS) deliberately do *not* spray uniformly — a pair-hashed
//! fabric concentrates whole pairs on single ports — so they are scored
//! against the learned baseline instead, the detector FlowPulse actually
//! deploys on them: their pair-keyed designs make healthy-state port
//! volumes iteration-stable, and the rows measure how much detection
//! accuracy each backend's spray pattern leaves on the table (a static
//! ECMP hash leaves most cables uncovered by any one pair-set, so a
//! random faulty cable is usually invisible to it).

use flowpulse::prelude::*;
use fp_bench::{header, pct, pick, save_json, seeds, Campaign};
use fp_netsim::spray::SprayPolicy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    model: String,
    bytes_per_node: u64,
    noise_floor: f64,
    fpr: f64,
    fnr: f64,
}

fn main() {
    // (backend, reference model it is scored against).
    let policies = [
        (SprayPolicy::Adaptive, ModelKind::Analytical),
        (SprayPolicy::LeastLoaded, ModelKind::Analytical),
        (SprayPolicy::RoundRobin, ModelKind::Analytical),
        (SprayPolicy::Random, ModelKind::Analytical),
        (SprayPolicy::Ecmp, ModelKind::Learned { warmup: 1 }),
        (SprayPolicy::Prime, ModelKind::Learned { warmup: 1 }),
        (SprayPolicy::Reps, ModelKind::Learned { warmup: 1 }),
        (SprayPolicy::RepsFailover, ModelKind::Learned { warmup: 1 }),
    ];
    let sizes_mib: Vec<u64> = pick(vec![8, 32], vec![8]);
    let fault_seeds = seeds(pick(3, 2));
    let clean_seeds = seeds(pick(3, 1));

    let base_for = |policy: SprayPolicy, model: ModelKind, mib: u64| {
        let sim_cfg = fp_netsim::config::SimConfig {
            spray: policy,
            ..Default::default()
        };
        TrialSpec {
            leaves: pick(16, 8),
            spines: pick(8, 4),
            bytes_per_node: mib * 1024 * 1024,
            iterations: 3,
            model,
            sim: sim_cfg,
            ..Default::default()
        }
    };

    // Specs in serial-harness order: per (policy, size), clean seeds then
    // fault seeds.
    let mut specs: Vec<TrialSpec> = Vec::new();
    for (policy, model) in policies {
        for &mib in &sizes_mib {
            let base = base_for(policy, model, mib);
            for &s in &clean_seeds {
                specs.push(TrialSpec {
                    seed: s,
                    ..base.clone()
                });
            }
            for &s in &fault_seeds {
                specs.push(TrialSpec {
                    seed: s,
                    fault: Some(FaultSpec {
                        kind: InjectedFault::Drop { rate: 0.015 },
                        at_iter: 1,
                        heal_at_iter: None,
                        bidirectional: false,
                    }),
                    ..base.clone()
                });
            }
        }
    }
    let mut results = Campaign::from_env()
        .run_logged("ablate_spray", &specs)
        .into_iter();

    header("A1 — spray backend vs symmetry noise and detection (1.5% drop)");
    println!(
        "{:>22} {:>10} {:>10} {:>12} {:>8} {:>8}",
        "policy", "model", "size/node", "noise-floor", "FPR", "FNR"
    );

    let mut rows = Vec::new();
    for (policy, model) in policies {
        for &mib in &sizes_mib {
            let mut trials = Vec::new();
            let mut noise: f64 = 0.0;
            for _ in &clean_seeds {
                let t = results.next().expect("one result per spec");
                let (c, _) = flowpulse::eval::split_devs(&t);
                noise = noise.max(c.iter().cloned().fold(0.0, f64::max));
                trials.push(t);
            }
            trials.extend(results.by_ref().take(fault_seeds.len()));
            let r = Rates::from_trials(&trials);
            let model_name = match model {
                ModelKind::Analytical => "analytical",
                ModelKind::Simulation => "simulation",
                ModelKind::Learned { .. } => "learned",
            };
            println!(
                "{:>22} {:>10} {:>8}Mi {:>12} {:>8} {:>8}",
                format!("{policy:?}"),
                model_name,
                mib,
                pct(noise),
                pct(r.fpr()),
                pct(r.fnr())
            );
            rows.push(Row {
                policy: format!("{policy:?}"),
                model: model_name.into(),
                bytes_per_node: mib * 1024 * 1024,
                noise_floor: noise,
                fpr: r.fpr(),
                fnr: r.fnr(),
            });
        }
    }
    save_json("ablate_spray", &rows);
    // The pair-keyed backends must not pay for their determinism with
    // false alarms: healthy-state volumes are iteration-stable under the
    // learned baseline by construction.
    for row in &rows {
        if row.model == "learned" {
            assert_eq!(
                row.fpr, 0.0,
                "{}: pair-keyed backend false-alarmed on a healthy fabric",
                row.policy
            );
        }
    }
    println!(
        "\nA1 verdict: adaptive (utilization-aware) spraying gives the lowest \
         noise floor; random spraying needs far larger collectives for the \
         same accuracy; pair-keyed backends are iteration-stable under the \
         learned baseline but a static ECMP hash leaves most cables \
         unwatched."
    );
}
