//! A3 — measurement prioritization (paper §5.1).
//!
//! "We prioritize the target flows in the network … This prioritization
//! isolates the collective while maintaining the original load experienced
//! during training … background flows impose additional, unaccounted, load
//! on the switch and naturally alter the packet spraying pattern."
//!
//! We run the measured collective with and without background traffic, and
//! with the collective at high priority versus mixed in at background
//! priority, then compare each iteration's observed loads against the
//! analytical prediction.

use flowpulse::prelude::*;
use fp_bench::{header, pct, pick, save_json};
use fp_collectives::prelude::*;
use fp_netsim::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    background: bool,
    prioritized: bool,
    max_dev_vs_model: f64,
    collective_wall_us: u64,
}

fn scenario(background: bool, prioritized: bool) -> Row {
    let leaves = pick(16u32, 8);
    let spines = leaves / 2;
    let bytes = pick(16u64, 8) * 1024 * 1024;
    let topo = Topology::fat_tree(FatTreeSpec {
        leaves,
        spines,
        ..Default::default()
    });
    let hosts: Vec<HostId> = (0..leaves).map(HostId).collect();
    let sched = ring_allreduce(&hosts, bytes);
    let demand = sched.demand(topo.n_hosts());
    let prediction = flowpulse::analytical::AnalyticalModel::new(&topo, [])
        .predict(&demand)
        .loads;

    let mut sim = Simulator::new(topo, SimConfig::default(), 11);
    let rcfg = RunnerConfig {
        job: 1,
        iterations: 3,
        prio: if prioritized {
            Priority::MEASURED
        } else {
            Priority::BACKGROUND
        },
        jitter: JitterModel::Uniform {
            max: SimDuration::from_us(1),
        },
        ..Default::default()
    };
    let runner = CollectiveRunner::new(sched, rcfg);
    let mut apps: Vec<Box<dyn Application>> = vec![Box::new(runner)];
    if background {
        apps.push(Box::new(BackgroundTraffic::new(BackgroundConfig {
            msg_bytes: 1024 * 1024,
            mean_interval: SimDuration::from_us(5),
            until: SimTime::from_ms(pick(4, 2)),
            ..Default::default()
        })));
    }
    sim.set_app(Box::new(MultiApp::new(apps)));
    sim.run();

    let detector = Detector::new(0.01);
    let mut worst: f64 = 0.0;
    let mut last_seen = 0u64;
    for i in sim.counters.iters_of(1) {
        let c = sim.counters.get(1, i).unwrap();
        let obs = PortLoads::from_counters(c);
        worst = worst.max(detector.max_abs_rel(&prediction, &obs));
        last_seen = last_seen.max(c.last_seen.iter().copied().max().unwrap_or(0));
    }
    Row {
        background,
        prioritized,
        max_dev_vs_model: worst,
        collective_wall_us: last_seen / 1000,
    }
}

fn main() {
    header("A3 — background traffic and measurement prioritization");
    println!(
        "{:>12} {:>12} {:>16} {:>16}",
        "background", "prioritized", "max-dev-vs-model", "collective-end"
    );
    let mut rows = Vec::new();
    for (bg, prio) in [(false, true), (true, true), (true, false)] {
        let r = scenario(bg, prio);
        println!(
            "{:>12} {:>12} {:>16} {:>14}us",
            r.background,
            r.prioritized,
            pct(r.max_dev_vs_model),
            r.collective_wall_us
        );
        rows.push(r);
    }
    save_json("ablate_priority", &rows);
    println!(
        "\nA3 verdict: prioritizing the measured collective keeps observed \
         loads on-model under background load; an unprioritized collective \
         contends with background flows and its spraying pattern drifts."
    );
}
