//! E6 / §6 "Effect of pre-existing faults" — "FlowPulse detects new faults
//! even when known faults already exist. As the model takes these faults
//! into account, we observe perfect classification for new faults that
//! drop ≥ 2.5% of packets or more."
//!
//! Also demonstrates *why* the spatial-symmetry baseline fails here: known
//! faults permanently skew per-leaf port balance, so spatial checks alarm
//! on healthy iterations while FlowPulse's fault-aware model stays silent.

use flowpulse::baselines::SpatialSymmetryDetector;
use flowpulse::prelude::*;
use fp_bench::{header, pct, pick, save_json, seeds, Campaign};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    preexisting: u32,
    drop_rate: f64,
    fpr: f64,
    fnr: f64,
    spatial_baseline_fpr: f64,
}

fn main() {
    let preexisting_counts: Vec<u32> = pick(vec![0, 2, 4, 8], vec![0, 2]);
    let drop_rates: Vec<f64> = pick(vec![0.010, 0.015, 0.025], vec![0.025]);
    let fault_seeds = seeds(pick(3, 2));
    let clean_seeds = seeds(pick(3, 1));
    let spatial = SpatialSymmetryDetector::default();

    let base_for = |pre: u32| TrialSpec {
        leaves: pick(32, 8),
        spines: pick(16, 4),
        bytes_per_node: pick(32, 8) * 1024 * 1024,
        preexisting: pre,
        iterations: 3,
        ..Default::default()
    };

    // Specs in serial-harness order: per pre-existing count, the shared
    // clean trials, then fault seeds per drop rate.
    let mut specs: Vec<TrialSpec> = Vec::new();
    for &pre in &preexisting_counts {
        let base = base_for(pre);
        for &s in &clean_seeds {
            specs.push(TrialSpec {
                seed: s,
                ..base.clone()
            });
        }
        for &rate in &drop_rates {
            for &s in &fault_seeds {
                specs.push(TrialSpec {
                    seed: s,
                    fault: Some(FaultSpec {
                        kind: InjectedFault::Drop { rate },
                        at_iter: 1,
                        heal_at_iter: None,
                        bidirectional: false,
                    }),
                    ..base.clone()
                });
            }
        }
    }
    let mut results = Campaign::from_env()
        .run_logged("preexisting", &specs)
        .into_iter();

    header("E6 — new silent faults on top of pre-existing known faults");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>14}",
        "pre", "drop", "FPR", "FNR", "spatial-FPR"
    );

    let mut rows = Vec::new();
    for &pre in &preexisting_counts {
        let clean_trials: Vec<TrialResult> = results.by_ref().take(clean_seeds.len()).collect();
        // Spatial baseline FPR: fraction of *clean* iterations it alarms on.
        let mut spatial_fp = 0u32;
        let mut spatial_n = 0u32;
        for t in &clean_trials {
            for obs in &t.observed {
                spatial_n += 1;
                if !spatial.check(obs).is_empty() {
                    spatial_fp += 1;
                }
            }
        }
        let spatial_fpr = if spatial_n > 0 {
            spatial_fp as f64 / spatial_n as f64
        } else {
            0.0
        };

        for &rate in &drop_rates {
            let mut trials = clean_trials.clone();
            trials.extend(results.by_ref().take(fault_seeds.len()));
            let r = Rates::from_trials(&trials);
            println!(
                "{pre:>6} {:>8} {:>8} {:>8} {:>14}",
                pct(rate),
                pct(r.fpr()),
                pct(r.fnr()),
                pct(spatial_fpr)
            );
            rows.push(Row {
                preexisting: pre,
                drop_rate: rate,
                fpr: r.fpr(),
                fnr: r.fnr(),
                spatial_baseline_fpr: spatial_fpr,
            });
        }
    }
    save_json("preexisting", &rows);

    let perfect: Vec<&Row> = rows
        .iter()
        .filter(|r| r.drop_rate >= 0.025 && (r.fpr > 0.0 || r.fnr > 0.0))
        .collect();
    println!(
        "\nE6 verdict: {} — spatial-symmetry baseline false-alarms on {} of \
         clean iterations once pre-existing faults exist (FlowPulse: model-aware, silent).",
        if perfect.is_empty() {
            "perfect classification at ≥2.5% drops across all pre-existing-fault counts (matches paper)".to_string()
        } else {
            format!("{} imperfect rows at ≥2.5%", perfect.len())
        },
        rows.iter()
            .filter(|r| r.preexisting > 0)
            .map(|r| pct(r.spatial_baseline_fpr))
            .next_back()
            .unwrap_or_else(|| "n/a".into())
    );
}
