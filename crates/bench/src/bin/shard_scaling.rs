//! Intra-trial shard scaling: the headline trial at 1/2/4/8 shards,
//! through both execution backends.
//!
//! One `BENCH_netsim.json` entry per shard count (`"shards1"` …
//! `"shards8"`) for the threaded-mailbox backend, plus `"shards2_inline"`
//! … `"shards8_inline"` for the single-threaded coordinator
//! (`FP_SHARD_EXEC=inline`), so the committed perf trajectory captures
//! what fabric sharding costs or buys on the build host — and how much of
//! that is thread coordination versus the conservative-lookahead
//! synchronization itself. The numbers are honest for the machine that
//! produced them: on a single hardware thread every `shards > 1` row is
//! *slower* than `shards1` and the inline rows bound the pure sync
//! overhead; the speedup only materializes with cores to spread the
//! shards over (each row's `host_parallelism` says which regime it
//! measured). Every sharded row also records `shard_windows` and
//! `shard_syncs`: under epoch batching (`FP_SHARD_EPOCH`, default 32)
//! many conservative windows ride one synchronization round, and since
//! the window schedule is identical at any epoch cap, `shard_windows` is
//! exactly what `shard_syncs` would have been under the legacy per-window
//! handshake — one row carries its own before/after. `FP_QUICK` shrinks
//! the fabric.

use flowpulse::prelude::*;
use fp_bench::{header, pick};

fn record(name: &str, r: &TrialResult, wall_us: u64, eps: f64) {
    match fp_bench::record_bench(&fp_bench::BenchEntry {
        name: name.into(),
        git: fp_telemetry::git_describe(),
        scheduler: r.sched_kind.name().into(),
        threads: 1,
        host_parallelism: fp_bench::host_parallelism(),
        shards: u64::from(r.shards),
        shard_epoch: u64::from(r.shard_epoch),
        shard_windows: r.shard_windows,
        shard_syncs: r.shard_syncs,
        shard_events: r.shard_events.clone(),
        quick: fp_bench::quick(),
        trials: 1,
        wall_us,
        events: r.stats.events,
        events_per_sec: eps,
        sched_pushes: r.sched.pushes,
        memo_hits: r.memo_hits,
        memo_replayed_events: r.memo_replayed_events,
        tt_detect_ns: None,
        tt_mitigate_ns: None,
        false_mitigations: None,
    }) {
        Ok(Some(p)) => println!("[bench {}]", p.display()),
        Ok(None) => {}
        Err(e) => eprintln!("warning: cannot update bench json: {e}"),
    }
}

fn main() {
    header("shard scaling — headline trial at 1/2/4/8 shards, both backends");
    let base = TrialSpec {
        leaves: pick(32, 8),
        spines: pick(16, 4),
        bytes_per_node: pick(64, 8) * 1024 * 1024,
        iterations: 3,
        fault: Some(FaultSpec {
            kind: InjectedFault::Drop { rate: 0.015 },
            at_iter: 1,
            heal_at_iter: None,
            bidirectional: false,
        }),
        seed: 2025,
        ..Default::default()
    };
    // The backend is an env knob read at shard-plan time, so each pass
    // pins it explicitly rather than inheriting whatever the caller set.
    // `shards1` is the unsharded engine — the backend never applies there,
    // so the inline pass covers 2/4/8 only.
    let mut base_eps = None;
    for (backend, suffix, counts) in [
        ("threaded", "", &[1u32, 2, 4, 8][..]),
        ("inline", "_inline", &[2u32, 4, 8][..]),
    ] {
        std::env::set_var("FP_SHARD_EXEC", backend);
        for &shards in counts {
            let mut spec = base.clone();
            spec.shards = Some(shards);
            let t0 = std::time::Instant::now();
            let r = run_trial(&spec);
            let wall_us = (t0.elapsed().as_micros() as u64).max(1);
            let eps = r.stats.events as f64 * 1e6 / wall_us as f64;
            let speedup = match base_eps {
                None => {
                    base_eps = Some(eps);
                    1.0
                }
                Some(b) => eps / b,
            };
            let amort = if r.shard_syncs == 0 {
                0.0
            } else {
                r.shard_windows as f64 / r.shard_syncs as f64
            };
            println!(
                "shards={shards} ({backend}) wall_us={wall_us} events={} \
                 ev_per_sec={eps:.0} speedup_vs_1={speedup:.2}x detected={} \
                 epoch={} windows={} syncs={} windows_per_sync={amort:.1} \
                 shard_events={:?}",
                r.stats.events,
                r.detected,
                r.shard_epoch,
                r.shard_windows,
                r.shard_syncs,
                r.shard_events
            );
            record(&format!("shards{shards}{suffix}"), &r, wall_us, eps);
        }
    }
}
