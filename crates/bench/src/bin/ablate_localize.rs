//! A4 — localization accuracy (paper §5.3, Fig. 4).
//!
//! Two localization paths:
//!
//! 1. **Ring cross-leaf correlation** — the ring carries one sender per
//!    monitored port, so a single port comparison is ambiguous; pairing
//!    alarms at leaf X and succ(X) pins the cable. Measured over seeds for
//!    directional and bidirectional faults.
//! 2. **Per-sender comparison (Fig. 4)** — on AlltoAll, every monitored
//!    port carries all remote senders, so one switch can classify
//!    local-vs-remote by itself.

use flowpulse::prelude::*;
use fp_bench::{header, pick, save_json, seeds};
use serde::Serialize;

#[derive(Serialize)]
struct RingRow {
    bidirectional: bool,
    trials: u32,
    detected: u32,
    localized: u32,
}

#[derive(Serialize)]
struct A2ARow {
    port_role: String,
    verdict: String,
    correct: bool,
}

fn ring_part(rows: &mut Vec<RingRow>) {
    header("A4.1 — ring cross-leaf correlation");
    println!(
        "{:>14} {:>8} {:>10} {:>10}",
        "fault", "trials", "detected", "localized"
    );
    for bidir in [false, true] {
        let seeds = seeds(pick(8, 3));
        let mut detected = 0;
        let mut localized = 0;
        for &s in &seeds {
            let spec = TrialSpec {
                leaves: pick(16, 8),
                spines: pick(8, 4),
                bytes_per_node: pick(32, 8) * 1024 * 1024,
                iterations: 3,
                seed: s,
                fault: Some(FaultSpec {
                    kind: InjectedFault::Drop { rate: 0.025 },
                    at_iter: 1,
                    heal_at_iter: None,
                    bidirectional: bidir,
                }),
                ..Default::default()
            };
            let r = run_trial(&spec);
            detected += r.detected as u32;
            localized += (r.localized_correctly == Some(true)) as u32;
        }
        println!(
            "{:>14} {:>8} {:>10} {:>10}",
            if bidir {
                "bidirectional"
            } else {
                "spine→leaf"
            },
            seeds.len(),
            detected,
            localized
        );
        rows.push(RingRow {
            bidirectional: bidir,
            trials: seeds.len() as u32,
            detected,
            localized,
        });
    }
}

fn alltoall_part(rows: &mut Vec<A2ARow>) {
    header("A4.2 — Fig. 4 per-sender comparison on AlltoAll");
    // Per-sender localization needs every monitored port to carry many
    // senders with *independently* predictable shares. Aggregate-balancing
    // adaptive spray does not provide that (§5.1), but Random spraying
    // does — each packet picks uniformly, so the per-(port, sender) share
    // is d/s in expectation with binomial noise. We therefore run this
    // demonstration with Random spraying, a hefty 30% gray drop, and
    // thresholds sized to the noise.
    use fp_collectives::prelude::*;
    use fp_netsim::prelude::*;
    let leaves = 8u32;
    let topo = Topology::fat_tree(FatTreeSpec {
        leaves,
        spines: 4,
        ..Default::default()
    });
    let hosts: Vec<HostId> = (0..leaves).map(HostId).collect();
    let sched = alltoall_uniform(&hosts, 4 * 1024 * 1024);
    let demand = sched.demand(leaves as usize);
    let pred = flowpulse::analytical::AnalyticalModel::new(&topo, []).predict(&demand);

    let cfg = SimConfig {
        spray: fp_netsim::spray::SprayPolicy::Random,
        ..Default::default()
    };
    let mut sim = Simulator::new(topo.clone(), cfg, 5);
    // Bidirectional 30% gray fault on a known cable from iteration 1.
    let fleaf = 3u32;
    let fv = 1u32;
    let bad = topo.downlink(fv, fleaf);
    let mut runner = CollectiveRunner::new(
        sched,
        RunnerConfig {
            iterations: 2,
            ..Default::default()
        },
    );
    let mut installed = false;
    runner.set_iteration_start_hook(Box::new(move |sim, iter| {
        if iter >= 1 && !installed {
            installed = true;
            sim.apply_fault_now(
                bad,
                fp_netsim::fault::FaultAction::Set(FaultKind::SilentDrop { rate: 0.30 }),
                true,
            );
        }
    }));
    sim.set_app(Box::new(runner));
    sim.run();

    let expected = &pred.by_src;
    let observed = flowpulse::model::PortSrcLoads::from_counters(sim.counters.get(1, 1).unwrap());
    let localizer = Localizer {
        sender_threshold: 0.15,
        ..Default::default()
    };

    // At the faulty leaf's own port: all senders short → Local.
    let v_local = localizer.localize_port(expected, &observed, fleaf, fv);
    let ok_local = v_local == PortVerdict::Local;
    println!(
        "port (leaf{fleaf}, vspine{fv})  — verdict {:?} (expected Local): {}",
        v_local,
        if ok_local { "OK" } else { "WRONG" }
    );
    rows.push(A2ARow {
        port_role: "local".into(),
        verdict: format!("{v_local:?}"),
        correct: ok_local,
    });

    // At every other leaf's port for the same vspine: only the faulty
    // leaf's uplink traffic is short → Remote{fleaf}.
    let mut remote_ok = 0;
    let mut remote_total = 0;
    for leaf in 0..leaves {
        if leaf == fleaf {
            continue;
        }
        let v = localizer.localize_port(expected, &observed, leaf, fv);
        remote_total += 1;
        let correct = v
            == PortVerdict::Remote {
                senders: vec![fleaf],
            };
        remote_ok += correct as u32;
        rows.push(A2ARow {
            port_role: format!("remote@leaf{leaf}"),
            verdict: format!("{v:?}"),
            correct,
        });
    }
    println!("remote ports: {remote_ok}/{remote_total} correctly blamed leaf{fleaf}'s cable");
    assert!(ok_local, "Fig. 4 local verdict failed");
    assert!(
        remote_ok * 10 >= remote_total * 8,
        "Fig. 4 remote verdicts too weak: {remote_ok}/{remote_total}"
    );
}

fn main() {
    let mut ring_rows = Vec::new();
    ring_part(&mut ring_rows);
    let mut a2a_rows = Vec::new();
    alltoall_part(&mut a2a_rows);
    save_json("ablate_localize_ring", &ring_rows);
    save_json("ablate_localize_alltoall", &a2a_rows);
    println!("\nA4 verdict: see tables — both localization paths functional.");
}
