//! E3 / Fig. 5(a) — "Residual Operating Curve (ROC) for different packet
//! drop rates on a faulty link. A 1% threshold is a perfect classifier for
//! drop rates ≥ 1.5%."
//!
//! For each drop rate we run seeded trials (fault injected at iteration 1)
//! plus fault-free trials, record each iteration's max relative deviation,
//! and sweep the detection threshold offline to produce ROC points.

use flowpulse::prelude::*;
use fp_bench::{header, pct, pick, save_json, seeds, Campaign};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    drop_rate: f64,
    threshold: f64,
    fpr: f64,
    tpr: f64,
}

fn main() {
    let drop_rates: Vec<f64> = pick(
        vec![0.005, 0.008, 0.010, 0.015, 0.020, 0.030],
        vec![0.008, 0.015],
    );
    let fault_seeds = seeds(pick(5, 2));
    let clean_seeds = seeds(pick(8, 2));
    let thresholds = [0.001, 0.0025, 0.005, 0.0075, 0.01, 0.015, 0.02, 0.03];

    let base = TrialSpec {
        leaves: pick(32, 8),
        spines: pick(16, 4),
        bytes_per_node: pick(64, 8) * 1024 * 1024,
        iterations: 3,
        ..Default::default()
    };

    // The whole sweep as one spec list, in the order the serial harness ran
    // it: clean seeds first, then fault seeds per drop rate. The campaign
    // executes trials in parallel; aggregation below consumes the results
    // in input order, so the JSON is byte-identical at any FP_THREADS.
    let mut specs: Vec<TrialSpec> = Vec::new();
    for &s in &clean_seeds {
        specs.push(TrialSpec {
            seed: s,
            ..base.clone()
        });
    }
    for &rate in &drop_rates {
        for &s in &fault_seeds {
            specs.push(TrialSpec {
                seed: s,
                fault: Some(FaultSpec {
                    kind: InjectedFault::Drop { rate },
                    at_iter: 1,
                    heal_at_iter: None,
                    bidirectional: false,
                }),
                ..base.clone()
            });
        }
    }
    let mut results = Campaign::from_env().run_logged("fig5a", &specs).into_iter();

    // Clean deviations: fault-free trials + pre-fault iterations of fault
    // trials all contribute.
    let mut clean_devs: Vec<f64> = Vec::new();
    for _ in &clean_seeds {
        let r = results.next().expect("one result per spec");
        let (c, _) = flowpulse::eval::split_devs(&r);
        clean_devs.extend(c);
    }

    header("Fig 5(a) — ROC");
    println!(
        "fabric {}x{}, {} MiB/node ring-allreduce, analytical model",
        base.leaves,
        base.spines,
        base.bytes_per_node / (1024 * 1024)
    );
    println!(
        "clean iterations: {} (max clean deviation {})",
        clean_devs.len(),
        pct(clean_devs.iter().cloned().fold(0.0, f64::max))
    );

    let mut rows = Vec::new();
    let mut perfect_at_1pct = Vec::new();
    for &rate in &drop_rates {
        let mut faulty_devs = Vec::new();
        for _ in &fault_seeds {
            let r = results.next().expect("one result per spec");
            let (c, f) = flowpulse::eval::split_devs(&r);
            clean_devs.extend(c);
            faulty_devs.extend(f);
        }
        let curve = roc_curve(&clean_devs, &faulty_devs, &thresholds);
        println!("\ndrop rate {}:", pct(rate));
        println!("{:>10} {:>8} {:>8}", "threshold", "FPR", "TPR");
        for p in &curve {
            println!(
                "{:>10} {:>8} {:>8}",
                pct(p.threshold),
                pct(p.fpr),
                pct(p.tpr)
            );
            rows.push(Row {
                drop_rate: rate,
                threshold: p.threshold,
                fpr: p.fpr,
                tpr: p.tpr,
            });
        }
        let p01 = curve
            .iter()
            .find(|p| (p.threshold - 0.01).abs() < 1e-12)
            .unwrap();
        if p01.fpr == 0.0 && p01.tpr == 1.0 {
            perfect_at_1pct.push(rate);
        }
    }
    save_json("fig5a", &rows);

    println!(
        "\nFig 5(a) verdict: 1% threshold is a perfect classifier for drop \
         rates {{{}}} (paper: ≥ 1.5%).",
        perfect_at_1pct
            .iter()
            .map(|r| pct(*r))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
