//! E1 / Fig. 2 — "Analytical prediction matches the simulation for a single
//! flow."
//!
//! A single tagged flow crosses the fabric; we compare, per spine-ingress
//! port at the destination leaf, three quantities: the closed-form
//! analytical prediction `d/(s−f)`, the simulation-model prediction, and
//! the volume actually observed by the (packet-level) fabric. Run twice:
//! on a clean fabric and with pre-existing admin-down cables touching the
//! source and destination leaves, which reshape the valid-spine sets.

use flowpulse::prelude::*;
use fp_bench::{header, pct, save_json};
use fp_collectives::schedule::{Schedule, Transfer};
use fp_netsim::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scenario: String,
    vspine: u32,
    analytical: f64,
    simulated: f64,
    observed: f64,
    rel_err_analytical: f64,
}

fn single_flow_schedule(src: HostId, dst: HostId, bytes: u64) -> Schedule {
    Schedule {
        name: "single-flow".into(),
        nodes: vec![src, dst],
        transfers: vec![Transfer {
            src,
            dst,
            bytes,
            step: 0,
        }],
        deps: vec![None],
    }
}

fn run_scenario(
    name: &str,
    topo: &Topology,
    admin_cables: &[(u32, u32)],
    bytes: u64,
    rows: &mut Vec<Row>,
) -> f64 {
    let src = HostId(0);
    let dst_leaf = (topo.n_leaves() / 2) as u32;
    let dst = topo.hosts_of_leaf(dst_leaf).next().unwrap();
    let sched = single_flow_schedule(src, dst, bytes);
    let demand = sched.demand(topo.n_hosts());

    let mut admin_down = Vec::new();
    for &(leaf, v) in admin_cables {
        admin_down.push(topo.uplink(leaf, v));
        admin_down.push(topo.downlink(v, leaf));
    }

    let ana = AnalyticalModel::new(topo, admin_down.iter().copied()).predict(&demand);
    let (sim_pred, _) =
        SimulationModel::new(SimConfig::default()).predict(topo, &admin_down, &sched, 7);

    // The "production" fabric run.
    let mut sim = Simulator::new(topo.clone(), SimConfig::default(), 42);
    for &l in &admin_down {
        sim.apply_fault_now(
            l,
            fp_netsim::fault::FaultAction::Set(FaultKind::AdminDown),
            false,
        );
    }
    let tag = CollectiveTag { job: 7, iter: 0 };
    sim.post_message(src, dst, bytes, Some(tag), Priority::MEASURED);
    sim.run();
    assert!(sim.all_flows_complete(), "flow must complete");
    let obs = PortLoads::from_counters(sim.counters.get(7, 0).unwrap());

    header(&format!("Fig 2 — {name}"));
    println!(
        "{:>7} {:>14} {:>14} {:>14} {:>10}",
        "vspine", "analytical", "sim-model", "observed", "err(ana)"
    );
    let mut worst: f64 = 0.0;
    for v in 0..topo.n_vspines() as u32 {
        let a = ana.loads.get(dst_leaf, v);
        let s = sim_pred.get(dst_leaf, v);
        let o = obs.get(dst_leaf, v);
        let err = if a > 0.0 { (o - a) / a } else { 0.0 };
        worst = worst.max(err.abs());
        println!("{v:>7} {a:>14.0} {s:>14.0} {o:>14.0} {:>10}", pct(err));
        rows.push(Row {
            scenario: name.into(),
            vspine: v,
            analytical: a,
            simulated: s,
            observed: o,
            rel_err_analytical: err,
        });
    }
    println!("max |err| analytical-vs-observed: {}", pct(worst));
    worst
}

fn main() {
    let (leaves, spines, bytes) = if fp_bench::quick() {
        (8u32, 4u32, 8 * 1024 * 1024u64)
    } else {
        (32, 16, 64 * 1024 * 1024)
    };
    let topo = Topology::fat_tree(FatTreeSpec {
        leaves,
        spines,
        ..Default::default()
    });
    let mut rows = Vec::new();

    let w1 = run_scenario("clean fabric", &topo, &[], bytes, &mut rows);

    // Pre-existing faults touching both ends of the flow's path:
    // one uplink cable at the source leaf, one downlink cable at the
    // destination leaf.
    let dst_leaf = leaves / 2;
    let cables = [(0u32, 1u32), (dst_leaf, spines - 1)];
    let w2 = run_scenario("with pre-existing faults", &topo, &cables, bytes, &mut rows);

    save_json("fig2", &rows);
    println!(
        "\nFig 2 verdict: analytical model tracks the packet-level fabric to \
         within {} (clean) / {} (pre-existing faults).",
        pct(w1),
        pct(w2)
    );
    assert!(w1 < 0.01 && w2 < 0.01, "Fig 2 agreement regressed");
}
