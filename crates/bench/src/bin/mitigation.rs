//! E9 — closed-loop mitigation sweep: fault kind × onset iteration ×
//! controller reaction latency, each against a controller-less baseline.
//!
//! For every faulty scenario the `fp-ctrl` controller detects the fault
//! online, localizes the cable, admin-downs it after its reaction latency
//! and rebaselines; the sweep measures time-to-detect, time-to-mitigate and
//! the goodput trajectory (pre-fault / during-fault / post-mitigation).
//! Controller-less baselines show the fault burning to the end of the run,
//! and fault-free controller runs pin the false-mitigation count at zero.

use flowpulse::prelude::*;
use fp_bench::{header, pick, save_json, Campaign, TrialTiming};
use fp_ctrl::{run_ctrl_trial, CtrlConfig};
use fp_netsim::time::SimDuration;
use serde::Serialize;

/// One sweep cell: a spec plus the controller riding it (if any).
#[derive(Clone)]
struct Case {
    label: String,
    spec: TrialSpec,
    ctrl: Option<CtrlConfig>,
    /// Fault onset iteration (0 = fault-free run).
    onset: u32,
}

#[derive(Serialize)]
struct Row {
    label: String,
    controller: bool,
    reaction_us: u64,
    detected: bool,
    tt_detect_ns: Option<u64>,
    tt_mitigate_ns: Option<u64>,
    mitigate_iter: Option<u32>,
    false_mitigations: u32,
    pre_bps: f64,
    during_bps: f64,
    post_bps: f64,
    recovered: bool,
}

fn goodput(r: &TrialResult, iter: u32) -> f64 {
    r.iter_goodput
        .iter()
        .find(|&&(i, _)| i == iter)
        .map(|&(_, g)| g)
        .unwrap_or(0.0)
}

fn row_of(case: &Case, r: &TrialResult) -> Row {
    let iters = r.iter_goodput.len() as u32;
    let onset = case.onset;
    // Pre-fault mean; for fault-free runs the whole trajectory counts.
    let pre_to = if onset == 0 { iters } else { onset };
    let pre: Vec<f64> = (0..pre_to).map(|i| goodput(r, i)).collect();
    let pre_bps = pre.iter().sum::<f64>() / pre.len().max(1) as f64;
    // During: worst iteration while the fault burned unmitigated.
    let during_to = r
        .ctrl
        .as_ref()
        .and_then(|c| c.mitigate_iter)
        .unwrap_or(iters)
        .min(iters);
    let during_bps = (onset..during_to.max(onset + 1).min(iters))
        .map(|i| goodput(r, i))
        .fold(f64::INFINITY, f64::min);
    let during_bps = if during_bps.is_finite() {
        during_bps
    } else {
        pre_bps
    };
    let post_bps = goodput(r, iters - 1);
    let c = r.ctrl.as_ref();
    Row {
        label: case.label.clone(),
        controller: case.ctrl.is_some(),
        reaction_us: case
            .ctrl
            .map(|c| c.reaction_latency.as_ns() / 1_000)
            .unwrap_or(0),
        detected: r.detected,
        tt_detect_ns: c.and_then(|c| c.time_to_detect_ns),
        tt_mitigate_ns: c.and_then(|c| c.time_to_mitigate_ns),
        mitigate_iter: c.and_then(|c| c.mitigate_iter),
        false_mitigations: c.map(|c| c.false_mitigations).unwrap_or(0),
        pre_bps,
        during_bps,
        post_bps,
        recovered: onset > 0 && post_bps >= 0.95 * pre_bps,
    }
}

fn main() {
    header("E9 — closed-loop mitigation: fault × onset × reaction latency");
    let base = TrialSpec {
        leaves: pick(16, 8),
        spines: pick(8, 4),
        bytes_per_node: 8 * 1024 * 1024,
        iterations: 8,
        seed: 42,
        ..Default::default()
    };
    let kinds: &[(&str, InjectedFault)] = &[
        ("blackhole", InjectedFault::Blackhole),
        ("dst_blackhole", InjectedFault::DstBlackhole),
        ("drop5", InjectedFault::Drop { rate: 0.05 }),
    ];
    let kinds = &kinds[..pick(kinds.len(), 2)];
    let onsets: &[u32] = pick(&[2u32, 3][..], &[2u32][..]);
    let reactions: &[u64] = pick(&[0u64, 50, 200][..], &[50u64][..]);

    let mut cases = Vec::new();
    for (kname, kind) in kinds {
        for &onset in onsets {
            let spec = TrialSpec {
                fault: Some(FaultSpec {
                    kind: *kind,
                    at_iter: onset,
                    heal_at_iter: None,
                    bidirectional: false,
                }),
                seed: base.seed + onset as u64,
                ..base.clone()
            };
            for &us in reactions {
                cases.push(Case {
                    label: format!("{kname}@{onset} ctrl+{us}us"),
                    spec: spec.clone(),
                    ctrl: Some(CtrlConfig {
                        reaction_latency: SimDuration::from_us(us),
                        ..CtrlConfig::default()
                    }),
                    onset,
                });
            }
            cases.push(Case {
                label: format!("{kname}@{onset} baseline"),
                spec,
                ctrl: None,
                onset,
            });
        }
    }
    // Fault-free controller runs: the loop must never fire.
    for seed in [7u64, 8] {
        cases.push(Case {
            label: format!("clean/{seed} ctrl"),
            spec: TrialSpec {
                fault: None,
                seed,
                ..base.clone()
            },
            ctrl: Some(CtrlConfig::default()),
            onset: 0,
        });
    }

    // Controllers are !Send, so each worker builds its trial's controller
    // inside the closure; determinism is per-spec, not per-thread.
    let campaign = Campaign::from_env();
    let t0 = std::time::Instant::now();
    let timed: Vec<(TrialResult, u64)> = campaign.map(&cases, |case| {
        let t = std::time::Instant::now();
        let r = match case.ctrl {
            Some(cfg) => run_ctrl_trial(&case.spec, cfg),
            None => run_trial(&case.spec),
        };
        (r, t.elapsed().as_micros() as u64)
    });
    let wall_us_total = (t0.elapsed().as_micros() as u64).max(1);

    let mut timings = Vec::new();
    let mut rows = Vec::new();
    for (idx, (case, (r, wall_us))) in cases.iter().zip(&timed).enumerate() {
        timings.push(TrialTiming {
            idx,
            seed: case.spec.seed,
            wall_us: *wall_us,
            events: r.stats.events,
        });
        rows.push(row_of(case, r));
    }

    println!(
        "{:<28} {:>9} {:>12} {:>9} {:>9} {:>9}  recovered",
        "case", "tt_det_us", "tt_mit_us", "pre", "during", "post"
    );
    for row in &rows {
        println!(
            "{:<28} {:>9} {:>12} {:>9.2e} {:>9.2e} {:>9.2e}  {}",
            row.label,
            row.tt_detect_ns
                .map(|n| (n / 1_000).to_string())
                .unwrap_or_else(|| "-".into()),
            row.tt_mitigate_ns
                .map(|n| (n / 1_000).to_string())
                .unwrap_or_else(|| "-".into()),
            row.pre_bps,
            row.during_bps,
            row.post_bps,
            if row.controller {
                if row.recovered {
                    "yes"
                } else {
                    "no"
                }
            } else {
                "n/a"
            },
        );
    }

    // Campaign accounting: log, bench entry with closed-loop aggregates,
    // manifest with the controller sweep parameters attached.
    let log_path = fp_bench::out_dir().join("campaign_log.txt");
    if let Err(e) = fp_bench::log_trials_to(
        &log_path,
        "mitigation",
        campaign.threads(),
        &timings,
        wall_us_total,
    ) {
        eprintln!("warning: cannot append campaign log: {e}");
    }
    let ctrl_rows: Vec<&Row> = rows.iter().filter(|r| r.controller).collect();
    let mean = |xs: Vec<u64>| {
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<u64>() / xs.len() as u64)
        }
    };
    let tt_detect_ns = mean(ctrl_rows.iter().filter_map(|r| r.tt_detect_ns).collect());
    let tt_mitigate_ns = mean(ctrl_rows.iter().filter_map(|r| r.tt_mitigate_ns).collect());
    let false_mitigations: u64 = ctrl_rows.iter().map(|r| r.false_mitigations as u64).sum();
    let events_total: u64 = timings.iter().map(|t| t.events).sum();
    let results: Vec<TrialResult> = timed.into_iter().map(|(r, _)| r).collect();
    let (sched_kind, sched) = fp_bench::campaign::aggregate_sched(&results);
    let shard_agg = fp_bench::campaign::aggregate_shards(&results);
    let (memo_hits, memo_replayed_events) = fp_bench::campaign::aggregate_memo(&results);
    match fp_bench::record_bench(&fp_bench::BenchEntry {
        name: "mitigation".into(),
        git: fp_telemetry::git_describe(),
        scheduler: sched_kind.name().into(),
        threads: campaign.threads() as u64,
        host_parallelism: fp_bench::host_parallelism(),
        shards: shard_agg.shards,
        shard_epoch: shard_agg.epoch,
        shard_windows: shard_agg.windows,
        shard_syncs: shard_agg.syncs,
        shard_events: shard_agg.events.clone(),
        quick: fp_bench::quick(),
        trials: cases.len() as u64,
        wall_us: wall_us_total,
        events: events_total,
        events_per_sec: events_total as f64 * 1e6 / wall_us_total as f64,
        sched_pushes: sched.pushes,
        memo_hits,
        memo_replayed_events,
        tt_detect_ns,
        tt_mitigate_ns,
        false_mitigations: Some(false_mitigations),
    }) {
        Ok(Some(p)) => println!("[bench {}]", p.display()),
        Ok(None) => {}
        Err(e) => eprintln!("warning: cannot update bench json: {e}"),
    }
    if let Some(dir) = fp_telemetry::dir_from_env() {
        let specs: Vec<TrialSpec> = cases.iter().map(|c| c.spec.clone()).collect();
        let mut m = fp_bench::campaign_manifest(
            "mitigation",
            campaign.threads(),
            &specs,
            &timings,
            wall_us_total,
            sched_kind,
            &sched,
            &shard_agg,
            (memo_hits, memo_replayed_events),
        );
        // Attach the controller sweep: which cells ran closed-loop, with
        // what knobs (Null stays the controller-less marker elsewhere).
        m.ctrl = serde::Value::Map(
            cases
                .iter()
                .map(|c| {
                    (
                        c.label.clone(),
                        c.ctrl
                            .map(|cfg| cfg.to_value())
                            .unwrap_or(serde::Value::Null),
                    )
                })
                .collect(),
        );
        let mdir = dir.join("mitigation");
        match m.write(&mdir) {
            Ok(()) => println!("[manifest {}]", mdir.join("manifest.json").display()),
            Err(e) => eprintln!("warning: cannot write manifest in {}: {e}", mdir.display()),
        }
    }
    save_json("mitigation", &rows);

    // `memo_mitigation`: the sweep's fabric running a long fault-free
    // stretch — the regime onset sweeps spend most of their events in —
    // with temporal-symmetry fast-forward (`FP_MEMO`) on, against a live
    // run of the identical spec for the byte-identity check. Pinned to
    // least-loaded spray (the default adaptive policy's absolute-grid
    // deficit decay never realigns with the iteration period, DESIGN.md
    // §11) and jitter-free starts (per-node RNG draws are refused too).
    // Full runs only; the committed row is the trajectory behind the
    // "≥3× the mitigation sweep rate" fast-forward claim.
    if !fp_bench::quick() {
        let mut memo_spec = TrialSpec {
            iterations: 40,
            jitter: fp_collectives::jitter::JitterModel::None,
            ..base.clone()
        };
        memo_spec.sim.spray = fp_netsim::spray::SprayPolicy::LeastLoaded;
        let mut live_spec = memo_spec.clone();
        live_spec.memo = Some(false);
        memo_spec.memo = Some(true);
        let t0 = std::time::Instant::now();
        let live = run_trial(&live_spec);
        let live_wall = (t0.elapsed().as_micros() as u64).max(1);
        let t0 = std::time::Instant::now();
        let memo = run_trial(&memo_spec);
        let memo_wall = (t0.elapsed().as_micros() as u64).max(1);
        assert_eq!(memo.memo_fallback, None, "memo must stay eligible");
        assert!(memo.memo_hits > 0, "steady state never fast-forwarded");
        assert_eq!(
            format!("{:?}", live.stats),
            format!("{:?}", memo.stats),
            "fast-forward must be byte-identical to the live engine"
        );
        assert_eq!(live.iter_goodput, memo.iter_goodput);
        let eps = memo.stats.events as f64 * 1e6 / memo_wall as f64;
        println!(
            "memo mitigation: {}/{} iterations replayed ({} events), \
             {memo_wall} us memo-on vs {live_wall} us live ({:.2}x, \
             {:.1} Mev/s counting replayed events)",
            memo.memo_replayed_iters,
            memo_spec.iterations,
            memo.memo_replayed_events,
            live_wall as f64 / memo_wall as f64,
            eps / 1e6
        );
        match fp_bench::record_bench(&fp_bench::BenchEntry {
            name: "memo_mitigation".into(),
            git: fp_telemetry::git_describe(),
            scheduler: memo.sched_kind.name().into(),
            threads: 1,
            host_parallelism: fp_bench::host_parallelism(),
            shards: u64::from(memo.shards),
            shard_epoch: u64::from(memo.shard_epoch),
            shard_windows: memo.shard_windows,
            shard_syncs: memo.shard_syncs,
            shard_events: memo.shard_events.clone(),
            quick: false,
            trials: 1,
            wall_us: memo_wall,
            events: memo.stats.events,
            events_per_sec: eps,
            sched_pushes: memo.sched.pushes,
            memo_hits: memo.memo_hits,
            memo_replayed_events: memo.memo_replayed_events,
            tt_detect_ns: None,
            tt_mitigate_ns: None,
            false_mitigations: None,
        }) {
            Ok(Some(p)) => println!("[bench memo_mitigation {}]", p.display()),
            Ok(None) => {}
            Err(e) => eprintln!("warning: cannot update bench json: {e}"),
        }
    }

    if fp_bench::quick() {
        println!("\nE9 (quick mode): reduced sweep, reporting without asserting.");
        return;
    }
    // The acceptance bar: blackhole-class faults recover under the
    // controller, never under the baseline; clean runs never mitigate.
    for row in &rows {
        let blackhole = row.label.starts_with("blackhole") || row.label.starts_with("dst_");
        if row.controller && blackhole {
            assert!(row.detected, "{}: controller missed the fault", row.label);
            assert!(
                row.recovered,
                "{}: post {:.3e} < 95% of pre {:.3e}",
                row.label, row.post_bps, row.pre_bps
            );
            assert_eq!(row.false_mitigations, 0, "{}", row.label);
        }
        if !row.controller && blackhole {
            assert!(
                !row.recovered,
                "{}: baseline recovered without a controller",
                row.label
            );
        }
        if row.label.starts_with("clean") {
            assert_eq!(
                row.false_mitigations, 0,
                "{}: mitigated a healthy fabric",
                row.label
            );
        }
    }
    println!("\nE9 verdict: closed-loop mitigation restores goodput; zero false mitigations.");
}
